//! Workspace audit gate: runs the `remix-audit` rule engine over the
//! workspace sources and exits non-zero on any deny finding.
//!
//! ```text
//! cargo run --bin audit                # human-readable report
//! cargo run --bin audit -- --json     # versioned JSON (CI artifact)
//! cargo run --bin audit -- --root DIR # audit another workspace root
//! cargo run --bin audit -- FILE...    # audit specific .rs files
//! ```
//!
//! The default root is the workspace this binary was built from
//! (`CARGO_MANIFEST_DIR`), so the gate works from any cwd.

use remix_audit::{audit_sources, audit_workspace, AuditConfig};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("audit: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: audit [--json] [--root DIR] [FILE...]");
                println!("Audits workspace sources against the AUD rule catalog;");
                println!("exits non-zero when any deny-level finding is present.");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("audit: unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
            other => files.push(PathBuf::from(other)),
        }
    }

    let config = AuditConfig::new();
    let report = if files.is_empty() {
        let root = root.unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf());
        match audit_workspace(&root, &config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("audit: failed to walk {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        let mut sources = Vec::new();
        for path in &files {
            match std::fs::read_to_string(path) {
                Ok(text) => sources.push((path.to_string_lossy().replace('\\', "/"), text)),
                Err(e) => {
                    eprintln!("audit: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        audit_sources(
            sources.iter().map(|(p, t)| (p.as_str(), t.as_str())),
            &config,
        )
    };

    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
