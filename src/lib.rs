//! # remix
//!
//! A from-scratch Rust reproduction of **"A 1.2V Wide-Band Reconfigurable
//! Mixer for Wireless Application in 65nm CMOS Technology"** (Gupta,
//! Aravinth Kumar, Dutta, Singh — IEEE SOCC 2015), together with the
//! complete analog-simulation substrate it needs:
//!
//! | crate | contents |
//! |---|---|
//! | [`numerics`] | complex arithmetic, dense/sparse LU, Newton, integrators |
//! | [`dsp`] | FFT, windows, PSD, coherent tone plans, signal generators |
//! | [`circuit`] | netlists, 65 nm MOSFET model, transmission gates, MNA |
//! | [`lint`] | clippy-style ERC engine: stable rule ids, severities, text/JSON reports |
//! | [`telemetry`] | metrics registry, scoped spans, event sinks, bench perf records |
//! | [`analysis`] | DC op (homotopy), AC, transient, `.NOISE`, MC noise, power |
//! | [`rfkit`] | IIP3/IIP2/P1dB algebra, two-tone harness, behavioral blocks, Table I data |
//! | [`core`] | the reconfigurable mixer: TCA, quad, TIA/OTA, TG loads, models, evaluation |
//! | [`audit`] | workspace static analysis: AUD rules certifying the stack for parallel scale-out |
//! | [`serve`] | overload-safe JSON-lines-over-TCP batch simulation service with admission control |
//! | [`exec`] | run budgets, supervision, and the work-stealing study pool |
//! | [`topo`] | parametric topology families: N-path mixer-first RX, single-balanced mixer, MedRadio front-end |
//!
//! ## Quick start
//!
//! ```no_run
//! use remix::core::{eval::MixerEvaluator, MixerConfig, MixerMode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let eval = MixerEvaluator::new(&MixerConfig::default())?;
//! for mode in [MixerMode::Active, MixerMode::Passive] {
//!     let m = eval.model(mode);
//!     println!(
//!         "{:8} CG {:5.1} dB | NF {:4.1} dB | IIP3 {:6.1} dBm | {:4.2} mW",
//!         mode.label(),
//!         m.conv_gain_db(2.45e9, 5e6),
//!         m.nf_db(5e6),
//!         m.iip3_dbm(),
//!         m.power_mw(),
//!     );
//! }
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harness that regenerates every table and figure of the paper.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use remix_analysis as analysis;
pub use remix_audit as audit;
pub use remix_circuit as circuit;
pub use remix_core as core;
pub use remix_dsp as dsp;
pub use remix_exec as exec;
pub use remix_lint as lint;
pub use remix_numerics as numerics;
pub use remix_rfkit as rfkit;
pub use remix_serve as serve;
pub use remix_telemetry as telemetry;
pub use remix_topo as topo;
