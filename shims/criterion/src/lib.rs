//! Offline drop-in subset of the `criterion` crate API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `criterion` it uses: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with `sample_size` / `measurement_time` /
//! `warm_up_time`, [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Statistics are deliberately simple: each bench warms up, then runs
//! timed batches until the measurement budget is spent, and reports the
//! per-iteration mean and min. No outlier analysis, no HTML reports.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Runs closures under timing measurement.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// Filled by [`Bencher::iter`]: (iterations, total elapsed).
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `f`, first warming up, then measuring for the configured
    /// budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also calibrates a batch size aiming at ~50 batches
        // per measurement window.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((self.measurement.as_secs_f64() / 50.0 / per_iter.max(1e-9)) as u64).max(1);

        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < self.measurement {
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            iters += batch;
        }
        self.result = Some((iters, start.elapsed()));
    }
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Top-level bench context.
#[derive(Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some((iters, elapsed)) => {
                let per = elapsed.as_secs_f64() / iters.max(1) as f64;
                println!(
                    "bench: {name:<44} {:>12}/iter ({iters} iters)",
                    human_time(per)
                );
            }
            None => println!("bench: {name:<44} (no measurement)"),
        }
        self
    }

    /// Opens a named group with its own timing configuration.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            warm_up: None,
            measurement: None,
        }
    }
}

/// A group of benches sharing configuration overrides.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    warm_up: Option<Duration>,
    measurement: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the runner sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = Some(d);
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = Some(d);
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warm_up: self.warm_up.unwrap_or(self.parent.warm_up),
            measurement: self.measurement.unwrap_or(self.parent.measurement),
            result: None,
        };
        f(&mut b);
        let full = format!("{}/{name}", self.name);
        match b.result {
            Some((iters, elapsed)) => {
                let per = elapsed.as_secs_f64() / iters.max(1) as f64;
                println!(
                    "bench: {full:<44} {:>12}/iter ({iters} iters)",
                    human_time(per)
                );
            }
            None => println!("bench: {full:<44} (no measurement)"),
        }
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Re-export of the standard black box, for parity with upstream.
pub use std::hint::black_box;

/// Bundles bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(5),
            measurement: Duration::from_millis(20),
        };
        let mut hits = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                hits += 1;
                hits
            })
        });
        assert!(hits > 0);

        let mut g = c.benchmark_group("grp");
        g.sample_size(10)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        g.bench_function("inner", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn human_time_units() {
        assert!(human_time(2.0).ends_with(" s"));
        assert!(human_time(2e-3).ends_with(" ms"));
        assert!(human_time(2e-6).ends_with(" µs"));
        assert!(human_time(2e-9).ends_with(" ns"));
    }
}
