//! Offline drop-in subset of the `rand` crate API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the (small) slice of `rand` it actually uses: [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`rngs::StdRng`] and
//! [`SeedableRng::seed_from_u64`]. The generator behind `StdRng` is
//! xoshiro256++ seeded through SplitMix64 — not ChaCha12 like upstream,
//! but every use in this workspace is seeded explicitly and only relies
//! on deterministic, statistically well-behaved streams.

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level uniform word generator.
pub trait RngCore {
    /// Next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws one value in `[low, high)`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let f = f64::draw(rng);
        // The multiply keeps the result strictly below `high` for f < 1.
        let v = low + f * (high - low);
        if v >= high {
            low
        } else {
            v
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, i64, i32);

/// High-level convenience methods, blanket-implemented for every core
/// generator exactly as upstream `rand` does.
pub trait Rng: RngCore {
    /// Draws a value of an inferred type from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        f64::draw(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0);
            let k = rng.gen_range(3usize..17);
            assert!((3..17).contains(&k));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn uniformity_rough_mean() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
