//! Collection strategies (subset: `vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// `Vec` strategy with lengths drawn from `size` (upstream's
/// `proptest::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.start..self.size.end);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
