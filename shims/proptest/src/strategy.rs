//! Value-generation strategies (subset: ranges and `any::<T>()`).

use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::Range;

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}

impl_range_strategy_int!(usize, u64, u32, i64, i32);

/// Types with a full-domain default strategy (upstream's `Arbitrary`).
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws one value from the whole domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite full-range doubles; the workspace's properties never
        // want NaN/Inf from `any::<f64>()`.
        let v: f64 = rng.gen();
        (v - 0.5) * 2.0 * 1e12
    }
}

/// Strategy over the full domain of `T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

/// The strategy of all values of `T` (upstream's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}
