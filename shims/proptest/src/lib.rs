//! Offline drop-in subset of the `proptest` crate API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `proptest` it uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(..)]` header, range and `any::<T>()`
//! strategies, `proptest::collection::vec`, and the `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the drawn inputs via the
//!   panic message (every generated value is `Debug`-printed), but no
//!   minimization pass runs.
//! * **Deterministic seeding.** Case `k` of test `name` derives its seed
//!   from FNV-1a(`name`) mixed with `k`, so failures reproduce exactly
//!   without a persistence file.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub use strategy::{any, Any, Strategy};

/// Failure raised by `prop_assert!` inside a generated test body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

/// Runner configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Config running `PROPTEST_CASES` cases when that environment
    /// variable is set (matching upstream's env override), else
    /// `default_cases`. Lets CI raise the case count of expensive
    /// harnesses without patching every `proptest_config` header.
    pub fn env_or(default_cases: u32) -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(default_cases),
        }
    }
}

/// `PROPTEST_CASES` parsed as a case count, if set and valid.
fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.trim().parse().ok()
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(64),
        }
    }
}

/// Deterministic per-test RNG: FNV-1a of the test name mixed with the
/// case index.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// The common imports, mirroring upstream's `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, TestCaseError};
}

/// Generates `#[test]` functions that run their body over random draws
/// from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest case {case} failed: {}\n  inputs: {}",
                        e.message,
                        [$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", "),
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Asserts a condition inside a [`proptest!`] body, reporting the drawn
/// inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            n in 2usize..20,
            x in -1.5f64..1.5,
            seed in any::<u64>(),
            flag in any::<bool>(),
        ) {
            prop_assert!((2..20).contains(&n));
            prop_assert!((-1.5..1.5).contains(&x), "x = {x}");
            let _ = (seed, flag);
        }

        #[test]
        fn collection_vec_sizes(v in crate::collection::vec(0.0f64..1.0, 2..8)) {
            prop_assert!(v.len() >= 2 && v.len() < 8);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::case_rng("t", 3);
        let mut b = crate::case_rng("t", 3);
        assert_eq!(
            (0usize..10)
                .map(|_| (2usize..100).sample(&mut a))
                .collect::<Vec<_>>(),
            (0usize..10)
                .map(|_| (2usize..100).sample(&mut b))
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(k in 0usize..10) {
                prop_assert!(k > 100, "k = {k} not > 100");
            }
        }
        always_fails();
    }
}
