//! Two-tone lab: run the paper's Fig. 10 linearity experiment
//! interactively and print the measured sweep, the fitted slope-1 and
//! slope-3 lines, and the extracted intercepts for both modes.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example two_tone_lab
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // example: panicking on setup failure is fine in demo code
use remix::core::{eval::MixerEvaluator, MixerConfig, MixerMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let eval = MixerEvaluator::new(&MixerConfig::default())?;

    for mode in [MixerMode::Active, MixerMode::Passive] {
        let m = eval.model(mode);
        // Sweep well below the compression point for clean slopes.
        let start = m.p1db_dbm() - 22.0;
        let pins: Vec<f64> = (0..10).map(|k| start + 2.0 * k as f64).collect();
        let (sweep, result) = eval.iip3_two_tone(mode, &pins)?;

        println!(
            "=== {} mode — two-tone test (LO 2.4 GHz, tones +5/+6 MHz) ===",
            mode.label()
        );
        println!(
            "{:>10} {:>12} {:>12} {:>10}",
            "Pin(dBm)", "fund(dBm)", "IM3(dBm)", "ΔP(dB)"
        );
        for i in 0..sweep.len() {
            println!(
                "{:>10.1} {:>12.2} {:>12.2} {:>10.2}",
                sweep.pin_dbm[i],
                sweep.fund_dbm[i],
                sweep.im3_dbm[i],
                sweep.fund_dbm[i] - sweep.im3_dbm[i]
            );
        }
        println!(
            "fitted slopes: fundamental {:.2} (→1), IM3 {:.2} (→3)",
            result.fund_slope, result.im3_slope
        );
        println!(
            "IIP3 = {:+.1} dBm | OIP3 = {:+.1} dBm | small-signal gain {:.1} dB",
            result.iip3_dbm, result.oip3_dbm, result.gain_db
        );
        let paper = match mode {
            MixerMode::Active => -11.9,
            MixerMode::Passive => 6.57,
        };
        println!("paper reports IIP3 = {paper:+.1} dBm\n");
    }
    Ok(())
}
