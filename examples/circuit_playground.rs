//! Circuit playground: use the simulation substrate directly — no mixer,
//! just the SPICE-class engines — to characterize a common-source
//! amplifier the way a designer would in any circuit simulator:
//! operating point, transfer curve, AC response, output noise, transient
//! step response.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example circuit_playground
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // example: panicking on setup failure is fine in demo code
use remix::analysis::{
    ac_sweep, dc_operating_point, dc_sweep, log_space, output_noise, transient, OpOptions,
    TranOptions,
};
use remix::circuit::{Circuit, MosModel, Waveform};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 5 µm / 65 nm NMOS common-source stage with a 1 kΩ load.
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let gate = ckt.node("gate");
    let drain = ckt.node("drain");
    ckt.add_vsource("vdd", vdd, Circuit::gnd(), Waveform::Dc(1.2));
    ckt.add_vsource_ac("vin", gate, Circuit::gnd(), Waveform::Dc(0.55), 1.0, 0.0);
    ckt.add_resistor("rd", vdd, drain, 1e3);
    ckt.add_capacitor("cl", drain, Circuit::gnd(), 50e-15);
    let m1 = ckt.add_mosfet(
        "m1",
        MosModel::nmos_65nm(),
        5e-6,
        65e-9,
        drain,
        gate,
        Circuit::gnd(),
        Circuit::gnd(),
    );

    // --- operating point ---
    let op = dc_operating_point(&ckt, &OpOptions::default())?;
    let ev = op.mos_eval(m1).expect("m1 is a MOSFET");
    println!("operating point:");
    println!("  v(drain) = {:.3} V", op.voltage(drain));
    println!(
        "  id = {:.3} mA, gm = {:.2} mS, gds = {:.1} µS, region {:?}",
        ev.id * 1e3,
        ev.gm * 1e3,
        ev.gds * 1e6,
        ev.region
    );

    // --- DC transfer curve ---
    let vals: Vec<f64> = (0..=12).map(|k| 0.1 * k as f64).collect();
    let sweep = dc_sweep(&ckt, "vin", &vals, &OpOptions::default())?;
    println!("\nDC transfer (vin → vout):");
    for (vin, vout) in sweep.voltage_curve(drain) {
        let bar = "#".repeat((vout * 30.0) as usize);
        println!("  {vin:.1} V | {vout:6.3} V {bar}");
    }

    // --- AC response ---
    let freqs = log_space(1e6, 100e9, 3);
    let ac = ac_sweep(&ckt, &op, &freqs)?;
    println!("\nAC magnitude at the drain (dB):");
    for (i, &f) in freqs.iter().enumerate() {
        let g = 20.0 * ac.voltage(i, drain).abs().log10();
        println!("  {:>9.3e} Hz : {:6.1} dB", f, g);
    }

    // --- output noise ---
    let nr = output_noise(&ckt, &op, drain, Circuit::gnd(), &[1e6])?;
    println!(
        "\noutput noise @1 MHz: {:.2} nV/√Hz (dominant: {})",
        nr.total[0].sqrt() * 1e9,
        nr.dominant_source(0).map(|(n, _)| n).unwrap_or("?")
    );

    // --- transient: gate step ---
    let mut ckt2 = ckt.clone();
    if let remix::circuit::Element::VoltageSource { wave, .. } =
        ckt2.element_mut(ckt2.find_element("vin").unwrap())
    {
        *wave = Waveform::Pulse {
            v1: 0.3,
            v2: 0.8,
            delay: 1e-9,
            rise: 20e-12,
            fall: 20e-12,
            width: 3e-9,
            period: f64::INFINITY,
        };
    }
    let tr = transient(&ckt2, &TranOptions::new(6e-9, 5e-12))?;
    let v = tr.voltage_waveform(drain);
    let vmin = v.iter().cloned().fold(f64::MAX, f64::min);
    let vmax = v.iter().cloned().fold(f64::MIN, f64::max);
    println!("\ntransient gate step: drain swings {vmin:.3} V … {vmax:.3} V");
    Ok(())
}
