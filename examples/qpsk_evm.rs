//! QPSK link through the mixer: modulate a pseudo-random symbol stream
//! onto a 2.45 GHz carrier, downconvert through the behavioral receiver in
//! each mode, and measure the error-vector magnitude (EVM) — first on a
//! clean channel, then with a strong adjacent blocker.
//!
//! This is the paper's IoT story made concrete: the clean link is limited
//! by gain/noise (active mode's home turf); the blocker-limited link is
//! decided by IM3 spill (passive mode's). A zero-IF-style I/Q demodulation
//! is performed with two quadrature LO chains.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example qpsk_evm
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // example: panicking on setup failure is fine in demo code
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use remix::core::{eval::MixerEvaluator, MixerConfig, MixerMode};
use remix::rfkit::SampleProcessor;

/// Symbols per measurement.
const N_SYM: usize = 32;
/// Samples per symbol at the RF sample rate (1 MHz symbols at ~19.6 GS/s).
const SPS: usize = 19600;

struct QpskSignal {
    /// RF samples.
    rf: Vec<f64>,
    /// Transmitted symbols (±1, ±1).
    symbols: Vec<(f64, f64)>,
}

/// Builds a root-raised-ish (rectangular, adequate here) QPSK burst at
/// `f_c` with per-symbol amplitude `a`.
fn qpsk_burst(f_c: f64, fs: f64, a: f64, seed: u64) -> QpskSignal {
    let mut rng = StdRng::seed_from_u64(seed);
    let symbols: Vec<(f64, f64)> = (0..N_SYM)
        .map(|_| {
            (
                if rng.gen_bool(0.5) { 1.0 } else { -1.0 },
                if rng.gen_bool(0.5) { 1.0 } else { -1.0 },
            )
        })
        .collect();
    let w = 2.0 * std::f64::consts::PI * f_c;
    let mut rf = Vec::with_capacity(N_SYM * SPS);
    for k in 0..N_SYM * SPS {
        let t = k as f64 / fs;
        let (i, q) = symbols[k / SPS];
        rf.push(a * (i * (w * t).cos() - q * (w * t).sin()));
    }
    QpskSignal { rf, symbols }
}

/// Downconverts with I/Q chains and slices symbol decisions; returns EVM
/// in percent.
fn demod_evm(
    eval: &MixerEvaluator,
    mode: MixerMode,
    signal: &QpskSignal,
    f_lo: f64,
    fs: f64,
) -> f64 {
    // Two quadrature receive chains (the paper's front end is a
    // quadrature demodulator; the behavioral chain models one arm, so we
    // instantiate it twice with LO phases 90° apart).
    let m = eval.model(mode);
    let mut chain_i = m.chain(f_lo);
    let mut chain_q = m.chain(f_lo);
    // Phase-shift the Q LO by delaying its sample index: instead, mix the
    // *input* against a quarter-period-delayed copy by shifting the
    // signal; simplest correct approach: delay the Q input by T_lo/4,
    // which rotates the carrier by 90° while leaving symbols (≫ slower)
    // intact.
    // Receiver noise: the behavioral chain is noiseless, so inject the
    // model's equivalent input noise at the EMF — PSD = 4kT0·(2rs)·F —
    // as white Gaussian samples over the simulation bandwidth.
    let f = 10f64.powf(m.nf_db(1e6) / 10.0);
    let rs_diff = 2.0 * m.config().rs;
    let psd = 4.0 * 1.380649e-23 * 290.0 * rs_diff * f;
    let sigma = (psd * fs / 2.0).sqrt();
    let mut nrng = StdRng::seed_from_u64(0xA0 + mode as u64);
    let noisy: Vec<f64> = signal
        .rf
        .iter()
        .map(|v| {
            let u1: f64 = nrng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = nrng.gen_range(0.0..1.0);
            v + sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        })
        .collect();

    let quarter = (fs / f_lo / 4.0).round() as usize;
    let mut x_i = noisy.clone();
    let mut x_q: Vec<f64> = noisy[quarter.min(noisy.len() - 1)..].to_vec();
    x_q.extend(std::iter::repeat_n(0.0, noisy.len() - x_q.len()));
    chain_i.process(&mut x_i, fs);
    chain_q.process(&mut x_q, fs);
    m.clamp_output(&mut x_i);
    m.clamp_output(&mut x_q);

    // Symbol decisions: average the baseband over the middle half of each
    // symbol period.
    let mut rx: Vec<(f64, f64)> = Vec::with_capacity(N_SYM);
    for s in 0..N_SYM {
        let lo = s * SPS + SPS / 4;
        let hi = s * SPS + 3 * SPS / 4;
        let i_avg = x_i[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
        let q_avg = x_q[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
        rx.push((i_avg, q_avg));
    }
    // Data-aided correction: solve the complex least-squares gain
    // `g = Σ rx·conj(tx) / Σ|tx|²` for the received constellation and for
    // its mirror image (the square-LO I/Q derivation can hand back a
    // conjugated constellation, which no rotation can fix), and score the
    // better orientation. EVM is the RMS residual over the RMS reference.
    let evm_for = |points: &[(f64, f64)]| -> f64 {
        let (mut gr, mut gi, mut ref2) = (0.0, 0.0, 0.0);
        for (k, (i, q)) in points.iter().enumerate() {
            let (ti, tq) = signal.symbols[k];
            gr += i * ti + q * tq;
            gi += q * ti - i * tq;
            ref2 += ti * ti + tq * tq;
        }
        let (gr, gi) = (gr / ref2, gi / ref2);
        let mut err2 = 0.0;
        let mut sig2 = 0.0;
        for (k, (i, q)) in points.iter().enumerate() {
            let (ti, tq) = signal.symbols[k];
            let (ei, eq) = (gr * ti - gi * tq, gr * tq + gi * ti);
            err2 += (i - ei).powi(2) + (q - eq).powi(2);
            sig2 += ei * ei + eq * eq;
        }
        100.0 * (err2 / sig2).sqrt()
    };
    let mirrored: Vec<(f64, f64)> = rx.iter().map(|(i, q)| (*i, -*q)).collect();
    evm_for(&rx).min(evm_for(&mirrored))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let eval = MixerEvaluator::new(&MixerConfig::default())?;
    let f_lo = 2.45e9;
    let f_c = f_lo; // zero-IF: the I/Q baseband appears directly
    let fs = SPS as f64 * 1e6; // 1 MHz symbol rate, ≈19.6 GS/s
    println!("QPSK through the reconfigurable mixer ({N_SYM} symbols, zero-IF)\n");

    // Scenario A: clean channel, weak signal.
    let clean = qpsk_burst(f_c, fs, 1.8e-5, 11); // ≈ −82 dBm: sensitivity-limited
                                                 // Scenario B: strong two-tone blocker pair whose IM3 lands in-channel.
    let mut blocked = qpsk_burst(f_c, fs, 2e-3, 12);
    // IM3 of (f_lo+20M, f_lo+40M) lands at 2·20−40 = 0 → in-channel.
    let wb1 = 2.0 * std::f64::consts::PI * (f_lo + 20e6);
    let wb2 = 2.0 * std::f64::consts::PI * (f_lo + 40e6);
    let a_b = 0.05; // ~−12 dBm blockers
    for (k, v) in blocked.rf.iter_mut().enumerate() {
        let t = k as f64 / fs;
        *v += a_b * ((wb1 * t).cos() + (wb2 * t).cos());
    }

    println!("{:<34} {:>10} {:>10}", "scenario", "active", "passive");
    for (name, sig) in [
        ("clean weak burst", &clean),
        ("burst + −12 dBm blocker pair", &blocked),
    ] {
        let evm_a = demod_evm(&eval, MixerMode::Active, sig, f_lo, fs);
        let evm_p = demod_evm(&eval, MixerMode::Passive, sig, f_lo, fs);
        println!("{:<34} {:>8.1} % {:>8.1} %", name, evm_a, evm_p);
    }
    println!("\nthe clean link favours the active mode's gain; the blocked link");
    println!("flips to passive — IM3 of the blocker pair lands on the channel");
    println!("and only the passive mode's linearity keeps the constellation tight.");
    Ok(())
}
