//! Design optimizer: re-target the reconfigurable mixer for a different
//! specification using the extraction flow as the evaluation oracle.
//!
//! Scenario: a low-power IoT variant — trade conversion gain down to a
//! 24 dB target while minimizing supply power, keeping NF ≤ 9.5 dB and
//! the passive mode's gain within 1 dB of its paper value. Coordinate
//! descent over three knobs (TCA width, tail current, TIA bias), each
//! step re-running the transistor-level extraction.
//!
//! Run with (takes a minute — every candidate is a full extraction):
//!
//! ```text
//! cargo run --release --example design_optimizer
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // example: panicking on setup failure is fine in demo code
use remix::core::model::{ExtractedParams, MixerModel};
use remix::core::{MixerConfig, MixerMode};

#[derive(Debug, Clone, Copy)]
struct Score {
    cg_active: f64,
    cg_passive: f64,
    nf_active: f64,
    power: f64,
    /// Lower is better.
    cost: f64,
}

fn evaluate(cfg: &MixerConfig) -> Option<Score> {
    let params = ExtractedParams::extract(cfg).ok()?;
    let a = MixerModel::new(cfg.clone(), MixerMode::Active, params.clone());
    let p = MixerModel::new(cfg.clone(), MixerMode::Passive, params);
    let cg_a = a.conv_gain_db(2.45e9, 5e6);
    let cg_p = p.conv_gain_db(2.45e9, 5e6);
    let nf_a = a.nf_db(5e6);
    let power = 0.5 * (a.power_mw() + p.power_mw());
    // Cost: power plus quadratic penalties on constraint misses.
    let mut cost = power;
    cost += (cg_a - 24.0).powi(2) * 0.5; // hit the 24 dB target
    cost += (nf_a - 9.5).max(0.0).powi(2) * 4.0; // NF ceiling
    cost += (cg_p - 25.5).abs().max(1.0).powi(2) - 1.0; // keep passive near nominal
    Some(Score {
        cg_active: cg_a,
        cg_passive: cg_p,
        nf_active: nf_a,
        power,
        cost,
    })
}

fn main() {
    let mut cfg = MixerConfig::default();
    let mut best = evaluate(&cfg).expect("baseline evaluation");
    println!(
        "baseline: CGa {:.1} dB | CGp {:.1} dB | NFa {:.1} dB | P {:.2} mW | cost {:.2}\n",
        best.cg_active, best.cg_passive, best.nf_active, best.power, best.cost
    );

    // Knobs: (name, apply-factor).
    type Knob = (&'static str, fn(&mut MixerConfig, f64));
    let knobs: Vec<Knob> = vec![
        ("tca_width", |c, k| {
            c.tca_wn *= k;
            c.tca_wp *= k;
        }),
        ("tail_current", |c, k| c.tail_current *= k),
        ("ota_bias", |c, k| {
            c.ota_i1 *= k;
            c.ota_i2 *= k;
        }),
        ("tg_load_r", |c, k| c.tg_load_r *= k),
    ];

    let mut step = 0.20;
    for round in 0..3 {
        println!("— round {} (step ±{:.0} %) —", round + 1, step * 100.0);
        for (name, apply) in &knobs {
            for &factor in &[1.0 + step, 1.0 - step] {
                let mut candidate = cfg.clone();
                apply(&mut candidate, factor);
                if std::panic::catch_unwind(|| candidate.assert_valid()).is_err() {
                    continue;
                }
                if let Some(score) = evaluate(&candidate) {
                    if score.cost < best.cost {
                        println!(
                            "  {name} ×{factor:.2}: CGa {:.1} | NFa {:.1} | P {:.2} mW | cost {:.2}  ✓ accepted",
                            score.cg_active, score.nf_active, score.power, score.cost
                        );
                        cfg = candidate;
                        best = score;
                    }
                }
            }
        }
        step *= 0.5;
    }

    println!(
        "\noptimized: CGa {:.1} dB | CGp {:.1} dB | NFa {:.1} dB | P {:.2} mW",
        best.cg_active, best.cg_passive, best.nf_active, best.power
    );
    println!(
        "knobs: tca_wn {:.1} µm | tail {:.2} mA | ota_i1 {:.2} mA | tg_load {:.0} Ω",
        cfg.tca_wn * 1e6,
        cfg.tail_current * 1e3,
        cfg.ota_i1 * 1e3,
        cfg.tg_load_r
    );
    println!("\nThe same extraction flow that reproduces the paper doubles as a");
    println!("design-exploration oracle — the point of shipping it as a library.");
}
