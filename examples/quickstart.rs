//! Quickstart: build the reconfigurable mixer, evaluate both modes, and
//! print the paper's headline metrics side by side.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // example: panicking on setup failure is fine in demo code
use remix::core::{eval::MixerEvaluator, MixerConfig, MixerMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("remix quickstart — SOCC 2015 reconfigurable mixer");
    println!("extracting device parameters from the transistor level…\n");

    let eval = MixerEvaluator::new(&MixerConfig::default())?;

    println!(
        "{:<10} {:>9} {:>8} {:>10} {:>10} {:>8}",
        "mode", "CG (dB)", "NF (dB)", "IIP3(dBm)", "P1dB(dBm)", "P (mW)"
    );
    println!("{}", "-".repeat(60));
    for mode in [MixerMode::Active, MixerMode::Passive] {
        let m = eval.model(mode);
        println!(
            "{:<10} {:>9.1} {:>8.1} {:>10.1} {:>10.1} {:>8.2}",
            mode.label(),
            m.conv_gain_db(2.45e9, 5e6),
            m.nf_db(5e6),
            m.iip3_dbm(),
            m.p1db_dbm(),
            m.power_mw(),
        );
    }

    println!("\npaper (Table I):");
    println!(
        "{:<10} {:>9} {:>8} {:>10} {:>10} {:>8}",
        "active", 29.2, 7.6, -11.9, -24.5, 9.36
    );
    println!(
        "{:<10} {:>9} {:>8} {:>10} {:>10} {:>8}",
        "passive", 25.5, 10.2, 6.57, -14.0, 9.24
    );

    println!("\nband edges (−3 dB):");
    for mode in [MixerMode::Active, MixerMode::Passive] {
        let (lo, hi) = eval.band_edges(mode);
        println!(
            "  {:<8} {:.2} – {:.2} GHz   (paper: {})",
            mode.label(),
            lo.unwrap_or(f64::NAN) / 1e9,
            hi.unwrap_or(f64::NAN) / 1e9,
            match mode {
                MixerMode::Active => "1.0 – 5.5 GHz",
                MixerMode::Passive => "0.5 – 5.1 GHz",
            }
        );
    }

    Ok(())
}
