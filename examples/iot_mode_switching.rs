//! IoT mode switching: the scenario the paper's introduction motivates.
//!
//! A multi-standard IoT node lives on one radio and reconfigures the
//! mixer per link: a weak Zigbee beacon wants the active mode's gain and
//! noise figure; a strong Wi-Fi burst next to an interferer wants the
//! passive mode's linearity. This example scores both modes against a
//! set of representative link scenarios and picks the right one, using
//! nothing but the public evaluation API.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example iot_mode_switching
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // example: panicking on setup failure is fine in demo code
use remix::core::{eval::MixerEvaluator, MixerConfig, MixerMode};
use remix::dsp::units::{db_to_ratio, dbm_to_watts, watts_to_dbm, BOLTZMANN, T0};

/// A link scenario at the mixer input.
struct Scenario {
    name: &'static str,
    /// Carrier (Hz).
    f_rf: f64,
    /// Wanted signal power at the mixer input (dBm).
    signal_dbm: f64,
    /// Strongest in-band blocker (dBm); two-tone-style third-order
    /// products of the blocker land on the wanted channel.
    blocker_dbm: f64,
    /// Channel bandwidth (Hz).
    bandwidth: f64,
    /// SNR needed by the demodulator (dB).
    required_snr_db: f64,
}

/// Output SNR estimate: signal vs (thermal noise through NF + IM3 spill).
fn output_snr_db(eval: &MixerEvaluator, mode: MixerMode, sc: &Scenario) -> f64 {
    let m = eval.model(mode);
    let nf_db = m.nf_db(5e6);
    // Noise floor referred to the input: kT0·B · F.
    let noise_in_w = BOLTZMANN * T0 * sc.bandwidth * db_to_ratio(nf_db);
    // Third-order intermodulation of the blocker pair falling in-channel:
    // P_IM3(input-referred) = 3·P_blocker − 2·IIP3.
    let im3_dbm = 3.0 * sc.blocker_dbm - 2.0 * m.iip3_dbm();
    let interference_w = dbm_to_watts(im3_dbm);
    let signal_w = dbm_to_watts(sc.signal_dbm);
    10.0 * (signal_w / (noise_in_w + interference_w)).log10()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let eval = MixerEvaluator::new(&MixerConfig::default())?;

    let scenarios = [
        Scenario {
            name: "Zigbee beacon, quiet band",
            f_rf: 2.45e9,
            signal_dbm: -92.0,
            blocker_dbm: -60.0,
            bandwidth: 2e6,
            required_snr_db: 8.0,
        },
        Scenario {
            name: "Wi-Fi burst near blasting neighbour",
            f_rf: 2.437e9,
            signal_dbm: -55.0,
            blocker_dbm: -22.0,
            bandwidth: 20e6,
            required_snr_db: 20.0,
        },
        Scenario {
            name: "BLE advert, moderate interference",
            f_rf: 2.402e9,
            signal_dbm: -80.0,
            blocker_dbm: -40.0,
            bandwidth: 1e6,
            required_snr_db: 10.0,
        },
        Scenario {
            name: "sub-GHz LPWAN uplink",
            f_rf: 0.868e9,
            signal_dbm: -100.0,
            blocker_dbm: -70.0,
            bandwidth: 125e3,
            required_snr_db: 5.0,
        },
    ];

    println!("IoT link scheduler — choosing a mixer mode per scenario\n");
    for sc in &scenarios {
        let snr_a = output_snr_db(&eval, MixerMode::Active, sc);
        let snr_p = output_snr_db(&eval, MixerMode::Passive, sc);
        // In-band check: is the carrier inside each mode's band?
        let g_a = eval.model(MixerMode::Active).conv_gain_db(sc.f_rf, 5e6);
        let g_p = eval.model(MixerMode::Passive).conv_gain_db(sc.f_rf, 5e6);
        let peak_a = eval.model(MixerMode::Active).conv_gain_db(2.45e9, 5e6);
        let peak_p = eval.model(MixerMode::Passive).conv_gain_db(2.45e9, 5e6);
        let in_band_a = g_a > peak_a - 3.0;
        let in_band_p = g_p > peak_p - 3.0;

        let pick = match (in_band_a, in_band_p) {
            (true, true) => {
                if snr_a >= snr_p {
                    MixerMode::Active
                } else {
                    MixerMode::Passive
                }
            }
            (true, false) => MixerMode::Active,
            (false, true) => MixerMode::Passive,
            (false, false) => {
                println!(
                    "{:<40} out of band for both modes at {:.2} GHz!",
                    sc.name,
                    sc.f_rf / 1e9
                );
                continue;
            }
        };
        let snr = if pick == MixerMode::Active {
            snr_a
        } else {
            snr_p
        };
        let ok = snr >= sc.required_snr_db;
        println!("{:<40} → {:<8}", sc.name, pick.label());
        println!(
            "    SNR active {:6.1} dB | passive {:6.1} dB | need {:4.1} dB → {}",
            snr_a,
            snr_p,
            sc.required_snr_db,
            if ok { "link OK" } else { "LINK FAILS" }
        );
        println!(
            "    sensitivity floor ({}): {:.1} dBm",
            pick.label(),
            watts_to_dbm(
                BOLTZMANN
                    * T0
                    * sc.bandwidth
                    * db_to_ratio(eval.model(pick).nf_db(5e6) + sc.required_snr_db)
            )
        );
    }

    println!("\nThe weak-signal links pick the active mode (gain/NF win);");
    println!("the blocker-limited link picks passive (IIP3 win) — the");
    println!("trade-off of the paper's Fig. 1, exercised end to end.");
    Ok(())
}
