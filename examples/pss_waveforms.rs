//! Periodic-steady-state waveform viewer: computes the mixer's PSS under
//! LO drive and renders one LO period of the interesting node voltages as
//! ASCII oscillograms — the picture a designer stares at when debugging
//! commutation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example pss_waveforms
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // example: panicking on setup failure is fine in demo code
use remix::analysis::{periodic_steady_state, PssOptions};
use remix::core::mixer::{LoDrive, ReconfigurableMixer, RfDrive};
use remix::core::{MixerConfig, MixerMode};

fn oscillogram(label: &str, w: &[f64]) -> String {
    let lo = w.iter().cloned().fold(f64::MAX, f64::min);
    let hi = w.iter().cloned().fold(f64::MIN, f64::max);
    let span = (hi - lo).max(1e-9);
    let mut rows = vec![String::new(); 8];
    for &v in w {
        let lvl = (((v - lo) / span) * 7.0).round() as usize;
        for (r, row) in rows.iter_mut().enumerate() {
            row.push(if 7 - r == lvl { '#' } else { ' ' });
        }
    }
    let mut out = format!("{label}: {lo:.3} V … {hi:.3} V\n");
    for row in rows {
        out.push_str("  |");
        out.push_str(&row);
        out.push('\n');
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mixer = ReconfigurableMixer::new(MixerConfig::default());
    let f_lo = 0.48e9;
    for mode in [MixerMode::Active, MixerMode::Passive] {
        println!(
            "==== {} mode PSS at LO = {:.2} GHz ====\n",
            mode.label(),
            f_lo / 1e9
        );
        let (ckt, nodes) = mixer.build(mode, &RfDrive::Bias, &LoDrive::sine(f_lo));
        let mut opts = PssOptions::new(1.0 / f_lo);
        opts.steps_per_period = 72;
        opts.max_periods = 400;
        opts.v_tol = 2e-4;
        let pss = periodic_steady_state(&ckt, &opts)?;
        println!(
            "converged after {} periods (residual {:.1e} V)\n",
            pss.periods_used, pss.residual
        );
        for (label, node) in [
            ("LO+ gate", nodes.lo_p),
            ("quad in+", nodes.qin_p),
            ("quad out+ (IF)", nodes.qout_p),
            ("TIA out+", nodes.tia_p),
        ] {
            let w = pss.waveforms.voltage_waveform(node);
            println!("{}", oscillogram(label, &w));
        }
        let vdd_src = ckt.find_element("vdd").expect("vdd");
        println!(
            "cycle-average supply current: {:.3} mA\n",
            -pss.average_branch_current(vdd_src) * 1e3
        );
    }
    Ok(())
}
