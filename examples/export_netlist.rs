//! Exports the full reconfigurable-mixer netlist as a SPICE deck and a
//! Graphviz schematic — the artifacts an external reviewer would inspect.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example export_netlist
//! ```
//!
//! Files land in `target/`: `mixer_active.cir`, `mixer_passive.cir`,
//! `mixer_active.dot` (render with `dot -Tsvg`).

#![allow(clippy::unwrap_used, clippy::expect_used)] // example: panicking on setup failure is fine in demo code
use remix::circuit::{from_spice, to_dot, to_spice};
use remix::core::mixer::{LoDrive, ReconfigurableMixer, RfDrive};
use remix::core::{MixerConfig, MixerMode};
use std::fs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mixer = ReconfigurableMixer::new(MixerConfig::default());
    fs::create_dir_all("target")?;

    for mode in [MixerMode::Active, MixerMode::Passive] {
        let (ckt, _) = mixer.build(mode, &RfDrive::Bias, &LoDrive::sine(2.4e9));
        let deck = to_spice(
            &ckt,
            &format!("remix reconfigurable mixer — {} mode", mode.label()),
        );
        let path = format!("target/mixer_{}.cir", mode.label());
        fs::write(&path, &deck)?;
        println!(
            "{path}: {} elements, {} nodes, {} lines",
            ckt.element_count(),
            ckt.node_count(),
            deck.lines().count()
        );
        // Prove the deck is self-consistent by re-importing it.
        let back = from_spice(&deck)?;
        assert_eq!(back.element_count(), ckt.element_count());
    }

    let (ckt, _) = mixer.build(MixerMode::Active, &RfDrive::Bias, &LoDrive::sine(2.4e9));
    let dot = to_dot(&ckt, "remix reconfigurable mixer (active)");
    fs::write("target/mixer_active.dot", &dot)?;
    println!(
        "target/mixer_active.dot: {} lines (render: dot -Tsvg)",
        dot.lines().count()
    );

    println!("\nfirst lines of the active-mode deck:");
    let deck = to_spice(&ckt, "preview");
    for line in deck.lines().take(12) {
        println!("  {line}");
    }
    Ok(())
}
