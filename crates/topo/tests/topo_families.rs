//! Cross-layer contracts of the topology library:
//!
//! * property tests over each family's documented parameter grid —
//!   every validated point compiles to a defect-free, lint-deny-clean
//!   circuit, `ERC012` (structural MNA singularity) never fires, and
//!   SPICE emission is a fixpoint through the linted importer;
//! * the N-path physics claim — `|Z_in|` peaks where the LO lands on
//!   the probe;
//! * the serve lane — emitted family decks are accepted end-to-end by
//!   the batch service over a real socket;
//! * fixture sync — the committed `tests/decks/topo_*.cir` exemplars
//!   (linted by CI's deck gate) stay byte-identical to what the
//!   generators emit (`REMIX_REGEN_FIXTURES=1` rewrites them).

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code: panicking on setup failure is the point

use proptest::prelude::*;
use remix_circuit::to_spice;
use remix_lint::{import_spice, lint, LintConfig, RuleId};
use remix_topo::{
    input_impedance_vs_lo, Family, MedRadioParams, MixerFirstParams, SingleBalancedParams,
    ZinConfig,
};

/// The full per-family contract one parameter point must satisfy.
fn assert_point_contract(circuit: &remix_circuit::Circuit, deck: &str, label: &str) {
    assert!(circuit.defects().is_empty(), "{label}: defects");
    let config = LintConfig::default();
    let report = lint(circuit, &config);
    assert_eq!(
        report.deny_count(),
        0,
        "{label}: lint denies\n{}",
        report.render_text()
    );
    assert!(
        report.by_rule(RuleId::StructuralSingular).is_empty(),
        "{label}: ERC012 fired"
    );
    // Emission is injective and a fixpoint: the deck re-imports
    // deny-clean to a circuit that emits byte-identically.
    let (imported, import_report) = import_spice(deck, &config).unwrap_or_else(|e| {
        panic!("{label}: emitted deck failed to import: {e}\n{deck}");
    });
    assert_eq!(
        import_report.deny_count(),
        0,
        "{label}: import lint denies\n{}",
        import_report.render_text()
    );
    let d1 = to_spice(&imported, "fixpoint");
    assert_eq!(
        to_spice(circuit, "fixpoint"),
        d1,
        "{label}: emission lost information through the importer"
    );
    let (again, _) = import_spice(&d1, &config).expect("re-import");
    assert_eq!(to_spice(&again, "fixpoint"), d1, "{label}: not a fixpoint");
}

proptest! {
    #![proptest_config(ProptestConfig::env_or(24))]

    #[test]
    fn mixer_first_grid_is_clean_and_roundtrips(
        phase_idx in 0usize..3,
        switch_w in 1e-6..200e-6f64,
        switch_l in 60e-9..1e-6f64,
        r_bb in 50.0..10e3f64,
        c_bb in 10e-12..100e-9f64,
        rs in 10.0..1e3f64,
        f_lo in 1e6..5e9f64,
        vdd in 0.8..1.5f64,
    ) {
        let p = MixerFirstParams {
            n_phases: [2, 4, 8][phase_idx],
            switch_w,
            switch_l,
            r_bb,
            c_bb,
            rs,
            f_lo,
            vdd,
            ..MixerFirstParams::default()
        };
        let rx = p.generate().expect("validated grid point");
        assert_point_contract(&rx.circuit, &p.emit().expect("emit"), "mixer_first");
    }

    #[test]
    fn single_balanced_grid_is_clean_and_roundtrips(
        w_gm in 2e-6..200e-6f64,
        w_sw in 2e-6..200e-6f64,
        r_load in 100.0..20e3f64,
        vbias_rf in 0.4..0.8f64,
        vcm_lo in 0.5..1.1f64,
        lo_amp in 0.1..0.6f64,
        f_rf in 11e6..100e6f64,
    ) {
        let p = SingleBalancedParams {
            w_gm,
            w_sw,
            r_load,
            vbias_rf,
            vcm_lo,
            lo_amp,
            f_lo: 10e6,
            f_rf,
            ..SingleBalancedParams::default()
        };
        let m = p.generate().expect("validated grid point");
        assert_point_contract(&m.circuit, &p.emit().expect("emit"), "single_balanced");
    }

    #[test]
    fn medradio_grid_is_clean_and_roundtrips(
        w_gm in 5e-6..200e-6f64,
        r_load in 20e3..500e3f64,
        vbias in 0.15..0.33f64,
        r_bb in 1e3..100e3f64,
        c_couple in 100e-15..100e-12f64,
        f_rf in 401e6..406e6f64,
        f_lo in 390e6..406e6f64,
    ) {
        let p = MedRadioParams {
            w_gm,
            r_load,
            vbias,
            r_bb,
            c_couple,
            f_rf,
            f_lo,
            ..MedRadioParams::default()
        };
        let fe = p.generate().expect("validated grid point");
        assert_point_contract(&fe.circuit, &p.emit().expect("emit"), "medradio");
    }
}

#[test]
fn npath_bandpass_peaks_at_the_lo() {
    let params = MixerFirstParams::default();
    let cfg = ZinConfig::centered(1e6, 10, 2); // LO 8–12 MHz, probe 10 MHz
    let sweep =
        input_impedance_vs_lo(&params, &cfg, &remix_exec::PoolOptions::default()).expect("sweep");
    assert_eq!(sweep.n_ok(), 5, "{}", sweep.summary_line());
    let (f_peak, z_peak) = sweep.peak().expect("solved points");
    assert!(
        (f_peak - sweep.f_rf).abs() < 0.5 * cfg.f_grid,
        "peak at {f_peak:.3e}, expected {:.3e}",
        sweep.f_rf
    );
    // Band edges must sit well below the synthesized resonance.
    for (f, m) in sweep.magnitudes() {
        if (f - sweep.f_rf).abs() > 1.5 * cfg.f_grid {
            assert!(
                z_peak > 1.5 * m,
                "no contrast: peak {z_peak:.1} Ω vs {m:.1} Ω at {f:.3e} Hz"
            );
        }
    }
}

#[test]
fn emitted_family_decks_are_accepted_by_the_service() {
    use remix_serve::protocol::{JobKind, JobRequest};
    use remix_serve::{Client, ServeConfig, Server, Status};
    use std::time::Duration;

    let server = Server::start(ServeConfig::default()).expect("bind ephemeral port");
    let mut client = Client::connect(server.addr(), Duration::from_secs(5)).expect("connect");
    for family in Family::defaults() {
        let deck = family.emit().expect("emit");
        let response = client
            .submit(&JobRequest {
                id: format!("topo-{}", family.name()),
                kind: JobKind::Op,
                deck,
                deadline_ms: None,
                newton_budget: None,
                timestep_budget: None,
                events: false,
            })
            .expect("submit");
        assert_eq!(
            response.status,
            Status::Ok,
            "{}: raw {}",
            family.name(),
            response.raw
        );
    }
    server.shutdown();
}

/// The committed exemplar decks CI's deck-path lint gate covers
/// (`tests/decks/topo_*.cir`). `REMIX_REGEN_FIXTURES=1 cargo test -p
/// remix-topo` rewrites them after an intentional generator change.
#[test]
fn committed_fixture_decks_match_the_generators() {
    let fixtures = [
        (
            "topo_npath_rx.cir",
            Family::MixerFirst(MixerFirstParams::default()),
        ),
        (
            "topo_sbm_gen.cir",
            Family::SingleBalanced(SingleBalancedParams::default()),
        ),
        (
            "topo_medradio_fe.cir",
            Family::MedRadio(MedRadioParams::default()),
        ),
    ];
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/decks");
    let regen = std::env::var("REMIX_REGEN_FIXTURES").is_ok_and(|v| v == "1");
    for (name, family) in fixtures {
        let path = format!("{root}/{name}");
        let deck = family.emit().expect("emit");
        if regen {
            std::fs::write(&path, &deck).expect("write fixture");
            continue;
        }
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{path}: {e} (run with REMIX_REGEN_FIXTURES=1)"));
        assert_eq!(
            committed, deck,
            "{name} drifted from its generator; regenerate with REMIX_REGEN_FIXTURES=1"
        );
    }
}
