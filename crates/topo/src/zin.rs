//! `input_impedance_vs_lo`: the N-path analysis shape.
//!
//! The LTI `input_impedance` helper in `remix-analysis` cannot see the
//! N-path effect — frequency translation is a linear *time-variant*
//! phenomenon. This driver measures it the honest way: a transient run
//! per LO point with a fixed RF probe tone, single-bin DFT phasors of
//! the port voltage and current after settling, `Z_in = V/I`. Swept
//! over LO, `|Z_in(f_rf)|` traces the synthesized bandpass: maximal
//! when `f_lo ≈ f_rf`, collapsing toward `R_s + R_sw` away from it.
//!
//! ## Coherence
//!
//! All frequencies sit on a common grid `f_grid` and the DFT window is
//! an integer number of grid cycles, so both the probe tone and every
//! LO harmonic land exactly on DFT bins — no leakage, no window
//! functions, exact phasors from short records.
//!
//! ## Failure isolation
//!
//! Each LO point runs as its own task on the work-stealing pool behind
//! the [`Parallelism`](remix_exec::Parallelism) knob; a point that
//! fails to converge is recorded as [`ZinOutcome::Failed`] and the
//! sweep continues — one stubborn point never costs the curve.

use crate::error::TopoError;
use crate::mixer_first::{LoMode, MixerFirstParams};
use crate::FAMILY_MIXER_FIRST;
use remix_analysis::{tran_plan, transient, TranOptions};
use remix_exec::{run_tasks, PoolOptions, TaskOutcome, TaskResult};
use remix_numerics::Complex;

/// Configuration of the LO sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ZinConfig {
    /// Common frequency grid (Hz); the probe and every LO point are
    /// integer multiples of it.
    pub f_grid: f64,
    /// RF probe frequency as a grid multiple: `f_rf = rf_bin · f_grid`.
    pub rf_bin: usize,
    /// Swept LO frequencies as grid multiples.
    pub lo_bins: Vec<usize>,
    /// Probe EMF amplitude (V).
    pub rf_amplitude: f64,
    /// Settling time discarded before the DFT window, in grid cycles.
    pub settle_cycles: usize,
    /// DFT window length in grid cycles.
    pub window_cycles: usize,
    /// Transient steps per LO period (grid resolution of the switch
    /// edges).
    pub steps_per_lo: usize,
}

impl ZinConfig {
    /// A sweep centred on `rf_bin` spanning `±span` grid bins — the
    /// shape used by the `npath_zin` bench bin and the tests.
    pub fn centered(f_grid: f64, rf_bin: usize, span: usize) -> Self {
        let lo_bins = (rf_bin.saturating_sub(span)..=rf_bin + span)
            .filter(|&b| b >= 1)
            .collect();
        ZinConfig {
            f_grid,
            rf_bin,
            lo_bins,
            rf_amplitude: 0.05,
            settle_cycles: 3,
            window_cycles: 2,
            steps_per_lo: 64,
        }
    }

    fn validate(&self) -> Result<(), TopoError> {
        let fail = |requirement: String| TopoError::Constraint {
            family: FAMILY_MIXER_FIRST,
            requirement,
        };
        if !(self.f_grid.is_finite() && self.f_grid > 0.0) {
            return Err(fail(format!("f_grid {} must be positive", self.f_grid)));
        }
        if self.rf_bin == 0 {
            return Err(fail("rf_bin must be ≥ 1".into()));
        }
        if self.lo_bins.is_empty() || self.lo_bins.contains(&0) {
            return Err(fail("lo_bins must be non-empty, all ≥ 1".into()));
        }
        if self.settle_cycles == 0 || self.window_cycles == 0 {
            return Err(fail("settle_cycles and window_cycles must be ≥ 1".into()));
        }
        if self.steps_per_lo < 16 {
            return Err(fail(format!(
                "steps_per_lo {} too coarse to resolve switch edges (≥ 16)",
                self.steps_per_lo
            )));
        }
        if !(self.rf_amplitude.is_finite() && self.rf_amplitude > 0.0 && self.rf_amplitude <= 0.3) {
            return Err(fail(format!(
                "rf_amplitude {} outside (0, 0.3] V",
                self.rf_amplitude
            )));
        }
        Ok(())
    }
}

/// Outcome of one LO point.
#[derive(Debug, Clone, PartialEq)]
pub enum ZinOutcome {
    /// The point solved: complex input impedance at the probe frequency.
    Ok(Complex),
    /// The point failed (lint rejection, no convergence, pool
    /// casualty); the sweep continued without it.
    Failed(String),
}

impl ZinOutcome {
    /// Impedance magnitude when the point solved.
    pub fn magnitude(&self) -> Option<f64> {
        match self {
            ZinOutcome::Ok(z) => Some(z.abs()),
            ZinOutcome::Failed(_) => None,
        }
    }
}

/// A completed LO sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ZinSweep {
    /// RF probe frequency (Hz).
    pub f_rf: f64,
    /// `(f_lo, outcome)` per swept point, in ascending LO order.
    pub points: Vec<(f64, ZinOutcome)>,
}

impl ZinSweep {
    /// Number of solved points.
    pub fn n_ok(&self) -> usize {
        self.points
            .iter()
            .filter(|(_, o)| matches!(o, ZinOutcome::Ok(_)))
            .count()
    }

    /// `(f_lo, |Z_in|)` of the solved points.
    pub fn magnitudes(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .filter_map(|(f, o)| o.magnitude().map(|m| (*f, m)))
            .collect()
    }

    /// The solved point with the largest `|Z_in|`.
    pub fn peak(&self) -> Option<(f64, f64)> {
        self.magnitudes()
            .into_iter()
            .reduce(|a, b| if b.1 > a.1 { b } else { a })
    }

    /// One-line summary, e.g. `9/9 points, peak 812 Ω at 1.000e7 Hz`.
    pub fn summary_line(&self) -> String {
        match self.peak() {
            Some((f, z)) => format!(
                "{}/{} points, peak {z:.0} Ω at {f:.3e} Hz",
                self.n_ok(),
                self.points.len()
            ),
            None => format!("0/{} points solved", self.points.len()),
        }
    }
}

/// Exact single-bin DFT phasor of a coherently sampled record:
/// `(2/M)·Σ x_m·e^{−j2πf t_m}` over the first `m_use` samples.
fn phasor(times: &[f64], samples: &[f64], f: f64, m_use: usize) -> Complex {
    let m = m_use.min(samples.len()).min(times.len());
    let mut acc = Complex::ZERO;
    for i in 0..m {
        let theta = -2.0 * std::f64::consts::PI * f * times[i];
        acc += Complex::from_polar(samples[i], theta);
    }
    acc * (2.0 / m as f64)
}

/// Measures one LO point: generate, probe, gate, run, extract.
fn zin_point(params: &MixerFirstParams, cfg: &ZinConfig, f_lo: f64) -> Result<Complex, String> {
    let point = MixerFirstParams {
        f_lo,
        lo_mode: LoMode::Running,
        ..params.clone()
    };
    let mut rx = point.generate().map_err(|e| e.to_string())?;
    let f_rf = cfg.rf_bin as f64 * cfg.f_grid;
    rx.set_rf_tone(cfg.rf_amplitude, f_rf);

    let h = 1.0 / (f_lo * cfg.steps_per_lo as f64);
    let settle = cfg.settle_cycles as f64 / cfg.f_grid;
    let window = cfg.window_cycles as f64 / cfg.f_grid;
    let mut opts = TranOptions::new(settle + window, h);
    opts.record_start = settle;

    let plan = tran_plan(&rx.circuit, &opts);
    remix_analysis::plan::gate(&plan).map_err(|e| e.to_string())?;

    let result = transient(&rx.circuit, &opts).map_err(|e| e.to_string())?;
    // The recorded grid covers [settle, settle+window] inclusive; use
    // exactly window/h samples so the DFT window is integer cycles.
    let m_use = (window / h).round() as usize;
    if result.times.len() < m_use.max(2) {
        return Err(format!(
            "record too short: {} samples of {m_use} needed",
            result.times.len()
        ));
    }
    let v_rf = result.voltage_waveform(rx.rf);
    let i_branch: Vec<f64> = (0..result.times.len())
        .map(|i| result.branch_current_at(i, rx.rf_emf))
        .collect();
    let v = phasor(&result.times, &v_rf, f_rf, m_use);
    // Branch current flows p→n through the EMF, so the current the
    // port *delivers into* the network is its negation.
    let i = -phasor(&result.times, &i_branch, f_rf, m_use);
    if i.abs() < 1e-15 {
        return Err("port current vanished: impedance undefined".into());
    }
    Ok(v / i)
}

/// Sweeps LO frequency and extracts the synthesized bandpass input
/// impedance of an N-path mixer-first receiver.
///
/// Points run concurrently behind `pool`'s
/// [`Parallelism`](remix_exec::Parallelism) knob; per-point failures
/// are isolated as [`ZinOutcome::Failed`].
///
/// # Errors
///
/// [`TopoError`] when `params` or `cfg` are invalid — a rejected
/// configuration never launches the pool.
pub fn input_impedance_vs_lo(
    params: &MixerFirstParams,
    cfg: &ZinConfig,
    pool: &PoolOptions,
) -> Result<ZinSweep, TopoError> {
    params.validate()?;
    cfg.validate()?;
    let f_rf = cfg.rf_bin as f64 * cfg.f_grid;
    let mut bins = cfg.lo_bins.clone();
    bins.sort_unstable();
    bins.dedup();
    let todo: Vec<usize> = (0..bins.len()).collect();
    let run = run_tasks(
        &todo,
        pool,
        |ctx| {
            let f_lo = bins[ctx.index] as f64 * cfg.f_grid;
            let _span = remix_telemetry::span(remix_telemetry::names::TOPO_ZIN_POINT)
                .with_field("f_lo", f_lo);
            TaskResult::Done(zin_point(params, cfg, f_lo))
        },
        |_, _| {},
    );
    let mut slots: Vec<Option<ZinOutcome>> = vec![None; bins.len()];
    for (i, outcome) in &run.outcomes {
        slots[*i] = Some(match outcome {
            TaskOutcome::Done(Ok(z)) => ZinOutcome::Ok(*z),
            TaskOutcome::Done(Err(msg)) => ZinOutcome::Failed(msg.clone()),
            TaskOutcome::Failed(trace) => ZinOutcome::Failed(trace.clone()),
            TaskOutcome::TimedOut {
                attempts,
                budget_ms,
            } => ZinOutcome::Failed(format!(
                "timed out: {attempts} attempt(s) exhausted {budget_ms} ms"
            )),
        });
    }
    let points = bins
        .iter()
        .zip(slots)
        .map(|(&b, slot)| {
            (
                b as f64 * cfg.f_grid,
                slot.unwrap_or_else(|| {
                    ZinOutcome::Failed("interrupted before the point ran".into())
                }),
            )
        })
        .collect();
    Ok(ZinSweep { f_rf, points })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centered_config_spans_the_bin() {
        let cfg = ZinConfig::centered(1e6, 10, 4);
        assert_eq!(cfg.lo_bins, vec![6, 7, 8, 9, 10, 11, 12, 13, 14]);
        assert!(cfg.validate().is_ok());
        // Near zero the span clips at bin 1, never 0.
        let low = ZinConfig::centered(1e6, 2, 4);
        assert_eq!(low.lo_bins.first(), Some(&1));
    }

    #[test]
    fn bad_configs_rejected_before_any_simulation() {
        let mut cfg = ZinConfig::centered(1e6, 10, 2);
        cfg.steps_per_lo = 4;
        assert!(matches!(
            input_impedance_vs_lo(&MixerFirstParams::default(), &cfg, &PoolOptions::default()),
            Err(TopoError::Constraint { .. })
        ));
        let mut cfg = ZinConfig::centered(1e6, 10, 2);
        cfg.rf_amplitude = 2.0;
        assert!(
            input_impedance_vs_lo(&MixerFirstParams::default(), &cfg, &PoolOptions::default())
                .is_err()
        );
    }

    #[test]
    fn phasor_recovers_a_known_tone() {
        let f = 10e6;
        let n = 200;
        let h = 1.0 / (f * n as f64);
        let times: Vec<f64> = (0..n).map(|i| i as f64 * h).collect();
        let samples: Vec<f64> = times
            .iter()
            .map(|&t| 0.7 * (2.0 * std::f64::consts::PI * f * t + 0.3).sin())
            .collect();
        let z = phasor(&times, &samples, f, n);
        assert!((z.abs() - 0.7).abs() < 1e-9, "|z| = {}", z.abs());
    }
}
