//! # remix-topo
//!
//! Parametric topology library: template-driven generator functions
//! over typed parameter structs that compile circuit *families* to
//! [`remix_circuit::Circuit`]s (ROADMAP item 4). Until this crate,
//! every layer of the stack — lint, budgets, telemetry, the parallel
//! pool, the TCP service — exercised exactly one circuit, the paper's
//! reconfigurable mixer. A topology library multiplies every workload.
//!
//! ## Families
//!
//! | family | module | the point |
//! |---|---|---|
//! | (a) passive mixer-first receiver | [`mixer_first`] | N-path high-Q bandpass synthesis; [`zin::input_impedance_vs_lo`] sweeps LO and extracts it |
//! | (b) single-balanced mixer | [`single_balanced`] | a second spec-table family for batch studies |
//! | (c) sub-50 µW MedRadio front-end | [`medradio`] | weak-inversion stress on the MOS model |
//!
//! Every family follows the same contract: a `…Params` struct with
//! documented, validated ranges (typed [`TopoError`] on violation); a
//! `generate()` that compiles to a defect-free, lint-deny-clean
//! circuit; an `emit()` producing a SPICE deck that round-trips through
//! `import_spice`; and registration in the [`study`] drivers so
//! Monte-Carlo, corners, and `dc_sweep_parallel` run over any family
//! behind the existing `Parallelism` knob.
//!
//! ## Quick start: generate and sweep
//!
//! ```
//! use remix_topo::{input_impedance_vs_lo, MixerFirstParams, ZinConfig};
//!
//! let params = MixerFirstParams::default();        // 4-phase, f_lo 10 MHz
//! let rx = params.generate()?;                     // lint-deny-clean circuit
//! assert_eq!(rx.circuit.stats().mosfets, 4);
//!
//! // Sweep LO ±2 MHz around a 10 MHz probe: |Zin| peaks at f_lo ≈ f_rf.
//! let cfg = ZinConfig::centered(1e6, 10, 2);
//! let sweep = input_impedance_vs_lo(&params, &cfg, &remix_exec::PoolOptions::default())?;
//! assert_eq!(sweep.points.len(), 5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod medradio;
pub mod mixer_first;
pub mod single_balanced;
pub mod study;
pub mod zin;

pub use error::TopoError;
pub use medradio::{MedRadioFrontEnd, MedRadioParams};
pub use mixer_first::{LoMode, MixerFirstParams, MixerFirstRx};
pub use single_balanced::{SingleBalancedMixer, SingleBalancedParams};
pub use study::{
    bias_sweep, corner_study, mc_study, standard_corners, Corner, Family, StudyOutcome,
    TopoMismatch, TopoStudy,
};
pub use zin::{input_impedance_vs_lo, ZinConfig, ZinOutcome, ZinSweep};

/// Family name of the passive mixer-first receiver.
pub const FAMILY_MIXER_FIRST: &str = "mixer_first";
/// Family name of the single-balanced mixer.
pub const FAMILY_SINGLE_BALANCED: &str = "single_balanced";
/// Family name of the MedRadio front-end.
pub const FAMILY_MEDRADIO: &str = "medradio";
