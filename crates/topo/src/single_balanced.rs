//! Family (b): single-balanced active mixer (Mahmou & Faitah,
//! PAPERS.md).
//!
//! A common-source transconductor converts the RF voltage to a current;
//! a differential LO pair commutates that current between two resistive
//! IF loads. Single-balanced means the RF device is single-ended: the
//! LO feeds through to the IF at full strength (the price paid for the
//! lowest possible current budget), while conversion gain is
//! `(2/π)·gm·R_L` — the family's spec row in `rfkit::specs` carries the
//! published targets.

use crate::error::{in_range, TopoError};
use crate::FAMILY_SINGLE_BALANCED;
use remix_circuit::{Circuit, ElementId, MosModel, Node, Waveform};

/// Parameters of the single-balanced mixer.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleBalancedParams {
    /// Transconductor width (m), `[2 µm, 200 µm]`.
    pub w_gm: f64,
    /// Switching-pair width (m), `[2 µm, 200 µm]`.
    pub w_sw: f64,
    /// Channel length (m), `[60 nm, 1 µm]`.
    pub l: f64,
    /// IF load resistance (Ω), `[100, 20 kΩ]`.
    pub r_load: f64,
    /// IF load capacitance (F), `[10 fF, 10 pF]`.
    pub c_load: f64,
    /// Supply (V), `[1.0, 1.5]`.
    pub vdd: f64,
    /// RF gate bias (V), `[0.4, 0.8]` — strong inversion for the
    /// transconductor.
    pub vbias_rf: f64,
    /// LO common-mode (V), `[0.5, 1.1]`.
    pub vcm_lo: f64,
    /// LO amplitude per side (V), `[0.1, 0.6]`.
    pub lo_amp: f64,
    /// LO frequency (Hz), `[1 MHz, 5 GHz]`.
    pub f_lo: f64,
    /// RF frequency (Hz), `[1 MHz, 5 GHz]`; must differ from `f_lo`.
    pub f_rf: f64,
    /// RF amplitude (V), `[1 mV, 100 mV]` — small-signal drive.
    pub rf_amp: f64,
    /// Device model for all three transistors.
    pub nmos: MosModel,
}

impl Default for SingleBalancedParams {
    fn default() -> Self {
        SingleBalancedParams {
            w_gm: 8e-6,
            w_sw: 16e-6,
            l: 65e-9,
            r_load: 2e3,
            c_load: 100e-15,
            vdd: 1.2,
            vbias_rf: 0.45,
            vcm_lo: 0.85,
            lo_amp: 0.3,
            f_lo: 10e6,
            f_rf: 11e6,
            rf_amp: 10e-3,
            nmos: MosModel::nmos_65nm(),
        }
    }
}

/// A generated single-balanced mixer with its analysis handles.
#[derive(Debug, Clone)]
pub struct SingleBalancedMixer {
    /// The compiled netlist.
    pub circuit: Circuit,
    /// RF gate-drive source (`vrf`): DC bias + RF tone.
    pub rf_source: ElementId,
    /// RF gate node.
    pub rf: Node,
    /// Common-source node of the switching pair (transconductor drain).
    pub tail: Node,
    /// Positive IF output.
    pub if_p: Node,
    /// Negative IF output.
    pub if_n: Node,
}

impl SingleBalancedParams {
    /// Intermediate frequency `|f_lo − f_rf|` the mixer downconverts to.
    pub fn if_freq(&self) -> f64 {
        (self.f_lo - self.f_rf).abs()
    }

    /// Checks every parameter against its documented range.
    ///
    /// # Errors
    ///
    /// [`TopoError`] naming the offending parameter or constraint.
    pub fn validate(&self) -> Result<(), TopoError> {
        let f = FAMILY_SINGLE_BALANCED;
        in_range(f, "w_gm", self.w_gm, 2e-6, 200e-6)?;
        in_range(f, "w_sw", self.w_sw, 2e-6, 200e-6)?;
        in_range(f, "l", self.l, 60e-9, 1e-6)?;
        in_range(f, "r_load", self.r_load, 100.0, 20e3)?;
        in_range(f, "c_load", self.c_load, 10e-15, 10e-12)?;
        in_range(f, "vdd", self.vdd, 1.0, 1.5)?;
        in_range(f, "vbias_rf", self.vbias_rf, 0.4, 0.8)?;
        in_range(f, "vcm_lo", self.vcm_lo, 0.5, 1.1)?;
        in_range(f, "lo_amp", self.lo_amp, 0.1, 0.6)?;
        in_range(f, "f_lo", self.f_lo, 1e6, 5e9)?;
        in_range(f, "f_rf", self.f_rf, 1e6, 5e9)?;
        in_range(f, "rf_amp", self.rf_amp, 1e-3, 100e-3)?;
        if self.if_freq() < 1e3 {
            return Err(TopoError::Constraint {
                family: f,
                requirement: format!(
                    "f_lo = {:.3e} and f_rf = {:.3e} must differ by ≥ 1 kHz (the IF)",
                    self.f_lo, self.f_rf
                ),
            });
        }
        Ok(())
    }

    /// Compiles the parameters to a circuit.
    ///
    /// # Errors
    ///
    /// [`TopoError`] when validation fails.
    pub fn generate(&self) -> Result<SingleBalancedMixer, TopoError> {
        self.validate()?;
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let rf = ckt.node("rf");
        let lop = ckt.node("lop");
        let lon = ckt.node("lon");
        let tail = ckt.node("tail");
        let if_p = ckt.node("ifp");
        let if_n = ckt.node("ifn");
        ckt.add_vsource("vdd", vdd, Circuit::gnd(), Waveform::Dc(self.vdd));
        let rf_source = ckt.add_vsource(
            "vrf",
            rf,
            Circuit::gnd(),
            Waveform::Sin {
                offset: self.vbias_rf,
                amplitude: self.rf_amp,
                freq: self.f_rf,
                phase: 0.0,
                delay: 0.0,
            },
        );
        ckt.add_vsource(
            "vlop",
            lop,
            Circuit::gnd(),
            Waveform::Sin {
                offset: self.vcm_lo,
                amplitude: self.lo_amp,
                freq: self.f_lo,
                phase: 0.0,
                delay: 0.0,
            },
        );
        ckt.add_vsource(
            "vlon",
            lon,
            Circuit::gnd(),
            Waveform::Sin {
                offset: self.vcm_lo,
                amplitude: self.lo_amp,
                freq: self.f_lo,
                phase: std::f64::consts::PI,
                delay: 0.0,
            },
        );
        ckt.add_mosfet(
            "mgm",
            self.nmos.clone(),
            self.w_gm,
            self.l,
            tail,
            rf,
            Circuit::gnd(),
            Circuit::gnd(),
        );
        ckt.add_mosfet(
            "mswp",
            self.nmos.clone(),
            self.w_sw,
            self.l,
            if_p,
            lop,
            tail,
            Circuit::gnd(),
        );
        ckt.add_mosfet(
            "mswn",
            self.nmos.clone(),
            self.w_sw,
            self.l,
            if_n,
            lon,
            tail,
            Circuit::gnd(),
        );
        ckt.add_resistor("rlp", vdd, if_p, self.r_load);
        ckt.add_resistor("rln", vdd, if_n, self.r_load);
        ckt.add_capacitor("clp", if_p, Circuit::gnd(), self.c_load);
        ckt.add_capacitor("cln", if_n, Circuit::gnd(), self.c_load);
        Ok(SingleBalancedMixer {
            circuit: ckt,
            rf_source,
            rf,
            tail,
            if_p,
            if_n,
        })
    }

    /// Emits the generated circuit as a SPICE deck.
    ///
    /// # Errors
    ///
    /// [`TopoError`] when validation fails.
    pub fn emit(&self) -> Result<String, TopoError> {
        let m = self.generate()?;
        Ok(remix_circuit::to_spice(
            &m.circuit,
            &format!(
                "remix-topo single_balanced f_lo={:.3e} f_rf={:.3e}",
                self.f_lo, self.f_rf
            ),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remix_analysis::{dc_operating_point, OpOptions};
    use remix_lint::{lint, LintConfig};

    #[test]
    fn default_params_generate_clean_circuit() {
        let m = SingleBalancedParams::default().generate().unwrap();
        assert!(m.circuit.defects().is_empty());
        let report = lint(&m.circuit, &LintConfig::default());
        assert_eq!(report.deny_count(), 0, "{}", report.render_text());
        let s = m.circuit.stats();
        assert_eq!(s.mosfets, 3);
        assert_eq!(s.resistors, 2);
        assert_eq!(s.vsources, 4);
    }

    #[test]
    fn bias_point_is_balanced_and_active() {
        let p = SingleBalancedParams::default();
        let m = p.generate().unwrap();
        let op = dc_operating_point(&m.circuit, &OpOptions::default()).unwrap();
        // At t = 0 both LO gates sit at the common-mode, so the pair
        // splits the tail current evenly: the IF outputs match.
        let (vp, vn) = (op.voltage(m.if_p), op.voltage(m.if_n));
        assert!((vp - vn).abs() < 1e-6, "imbalance {vp} vs {vn}");
        // The loads drop real voltage: the transconductor conducts.
        assert!(vp < p.vdd - 0.01, "no tail current ({vp} V at IF)");
        assert!(op.voltage(m.tail) > 0.05, "pair not on");
    }

    #[test]
    fn if_constraint_enforced() {
        let p = SingleBalancedParams {
            f_rf: 10e6,
            f_lo: 10e6,
            ..SingleBalancedParams::default()
        };
        assert!(matches!(p.validate(), Err(TopoError::Constraint { .. })));
        assert!((SingleBalancedParams::default().if_freq() - 1e6).abs() < 1.0);
    }

    #[test]
    fn range_violations_name_the_parameter() {
        for (p, want) in [
            (
                SingleBalancedParams {
                    r_load: 1.0,
                    ..SingleBalancedParams::default()
                },
                "r_load",
            ),
            (
                SingleBalancedParams {
                    vbias_rf: 0.95,
                    ..SingleBalancedParams::default()
                },
                "vbias_rf",
            ),
        ] {
            match p.validate() {
                Err(TopoError::OutOfRange { param, .. }) => assert_eq!(param, want),
                other => panic!("expected OutOfRange({want}), got {other:?}"),
            }
        }
    }
}
