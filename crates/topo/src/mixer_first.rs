//! Family (a): passive mixer-first receiver front-end.
//!
//! An N-path switch quad driven by non-overlapping LO phases commutates
//! the RF port onto N baseband R‖C loads. Seen from the antenna the
//! baseband low-pass is frequency-translated to the LO: the input
//! impedance is high (≈ `R_sw + γ·N·R_bb`-ish) inside the synthesized
//! band around `f_lo` and collapses toward `R_sw` outside it — a
//! high-Q bandpass filter with no inductors whose centre frequency is
//! the LO (Roy & Sharad, PAPERS.md). The [`crate::zin`] driver measures
//! exactly this: `|Z_in(f_rf)|` versus swept LO.

use crate::error::{in_range, TopoError};
use crate::FAMILY_MIXER_FIRST;
use remix_circuit::{Circuit, Element, ElementId, MosModel, Node, Waveform};

/// How the LO phases are driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoMode {
    /// Rail-to-rail non-overlapping pulse trains at `f_lo` (transient
    /// operation — the N-path behaviour).
    #[default]
    Running,
    /// Phase 0 held on at `vdd`, every other phase held off — a
    /// DC-measurable configuration used by the corner/Monte-Carlo
    /// studies to extract the held-on port resistance.
    HeldOn,
}

/// Parameters of the N-path mixer-first receiver.
///
/// Documented ranges (inclusive) are enforced by
/// [`validate`](MixerFirstParams::validate); the property tests sweep
/// them end to end.
#[derive(Debug, Clone, PartialEq)]
pub struct MixerFirstParams {
    /// Number of LO phases N ∈ {2, 4, 8}.
    pub n_phases: usize,
    /// Switch width (m), `[1 µm, 200 µm]`.
    pub switch_w: f64,
    /// Switch length (m), `[60 nm, 1 µm]`.
    pub switch_l: f64,
    /// Per-path baseband resistance (Ω), `[50, 10 kΩ]`.
    pub r_bb: f64,
    /// Per-path baseband capacitance (F), `[10 pF, 100 nF]`.
    pub c_bb: f64,
    /// Source (antenna) resistance (Ω), `[10, 1 kΩ]`.
    pub rs: f64,
    /// LO frequency (Hz), `[1 MHz, 5 GHz]`.
    pub f_lo: f64,
    /// LO rail voltage (V), `[0.8, 1.5]`; must clear the switch
    /// threshold by ≥ 0.2 V.
    pub vdd: f64,
    /// LO drive mode.
    pub lo_mode: LoMode,
    /// Switch device model.
    pub nmos: MosModel,
}

impl Default for MixerFirstParams {
    fn default() -> Self {
        MixerFirstParams {
            n_phases: 4,
            switch_w: 30e-6,
            switch_l: 65e-9,
            r_bb: 500.0,
            c_bb: 3.2e-9,
            rs: 50.0,
            f_lo: 10e6,
            vdd: 1.2,
            lo_mode: LoMode::Running,
            nmos: MosModel::nmos_65nm(),
        }
    }
}

/// A generated mixer-first receiver: the circuit plus the handles the
/// analysis drivers need.
#[derive(Debug, Clone)]
pub struct MixerFirstRx {
    /// The compiled netlist.
    pub circuit: Circuit,
    /// The RF EMF source (`vrf`), DC 0 until a driver installs a probe
    /// tone; its branch current is the (negated) port current.
    pub rf_emf: ElementId,
    /// EMF-side port node (before the source resistance).
    pub rf_port: Node,
    /// Antenna node the switch quad commutates (after `rs`) — the node
    /// whose impedance the N-path synthesizes.
    pub rf: Node,
    /// Per-phase baseband nodes.
    pub basebands: Vec<Node>,
}

impl MixerFirstParams {
    /// Checks every parameter against its documented range.
    ///
    /// # Errors
    ///
    /// [`TopoError`] naming the offending parameter or constraint.
    pub fn validate(&self) -> Result<(), TopoError> {
        if !matches!(self.n_phases, 2 | 4 | 8) {
            return Err(TopoError::BadPhaseCount { n: self.n_phases });
        }
        let f = FAMILY_MIXER_FIRST;
        in_range(f, "switch_w", self.switch_w, 1e-6, 200e-6)?;
        in_range(f, "switch_l", self.switch_l, 60e-9, 1e-6)?;
        in_range(f, "r_bb", self.r_bb, 50.0, 10e3)?;
        in_range(f, "c_bb", self.c_bb, 10e-12, 100e-9)?;
        in_range(f, "rs", self.rs, 10.0, 1e3)?;
        in_range(f, "f_lo", self.f_lo, 1e6, 5e9)?;
        in_range(f, "vdd", self.vdd, 0.8, 1.5)?;
        if self.vdd < self.nmos.vt0 + 0.2 {
            return Err(TopoError::Constraint {
                family: f,
                requirement: format!(
                    "LO rail {} V must clear the switch threshold {} V by ≥ 0.2 V",
                    self.vdd, self.nmos.vt0
                ),
            });
        }
        Ok(())
    }

    /// Compiles the parameters to a circuit.
    ///
    /// The generated netlist is defect-free and lint-deny-clean for any
    /// validated parameter set (property-tested). The RF EMF is emitted
    /// at DC 0 with unit AC magnitude so the same circuit serves DC,
    /// AC, and transient drivers; transient drivers install their probe
    /// tone through [`MixerFirstRx::set_rf_tone`].
    ///
    /// # Errors
    ///
    /// [`TopoError`] when validation fails; generation itself cannot fail.
    pub fn generate(&self) -> Result<MixerFirstRx, TopoError> {
        self.validate()?;
        let mut ckt = Circuit::new();
        let rf_port = ckt.node("rfin");
        let rf = ckt.node("rf");
        let rf_emf =
            ckt.add_vsource_ac("vrf", rf_port, Circuit::gnd(), Waveform::Dc(0.0), 1.0, 0.0);
        ckt.add_resistor("rs", rf_port, rf, self.rs);
        let t_lo = 1.0 / self.f_lo;
        let slot = t_lo / self.n_phases as f64;
        let edge = 0.05 * slot;
        let mut basebands = Vec::with_capacity(self.n_phases);
        for k in 0..self.n_phases {
            let lo = ckt.node(&format!("lo{k}"));
            let bb = ckt.node(&format!("bb{k}"));
            let wave = match self.lo_mode {
                LoMode::Running => Waveform::Pulse {
                    v1: 0.0,
                    v2: self.vdd,
                    delay: k as f64 * slot,
                    rise: edge,
                    fall: edge,
                    width: 0.85 * slot,
                    period: t_lo,
                },
                LoMode::HeldOn => Waveform::Dc(if k == 0 { self.vdd } else { 0.0 }),
            };
            ckt.add_vsource(&format!("vlo{k}"), lo, Circuit::gnd(), wave);
            ckt.add_mosfet(
                &format!("msw{k}"),
                self.nmos.clone(),
                self.switch_w,
                self.switch_l,
                rf,
                lo,
                bb,
                Circuit::gnd(),
            );
            ckt.add_resistor(&format!("rbb{k}"), bb, Circuit::gnd(), self.r_bb);
            ckt.add_capacitor(&format!("cbb{k}"), bb, Circuit::gnd(), self.c_bb);
            basebands.push(bb);
        }
        Ok(MixerFirstRx {
            circuit: ckt,
            rf_emf,
            rf_port,
            rf,
            basebands,
        })
    }

    /// Emits the generated circuit as a SPICE deck (round-trips through
    /// `import_spice`).
    ///
    /// # Errors
    ///
    /// [`TopoError`] when validation fails.
    pub fn emit(&self) -> Result<String, TopoError> {
        let rx = self.generate()?;
        Ok(remix_circuit::to_spice(
            &rx.circuit,
            &format!(
                "remix-topo mixer_first N={} f_lo={:.3e}",
                self.n_phases, self.f_lo
            ),
        ))
    }
}

impl MixerFirstRx {
    /// Installs a sinusoidal probe tone on the RF EMF (amplitude in
    /// volts EMF, frequency in Hz).
    pub fn set_rf_tone(&mut self, amplitude: f64, freq: f64) {
        if let Element::VoltageSource { wave, .. } = self.circuit.element_mut(self.rf_emf) {
            *wave = Waveform::Sin {
                offset: 0.0,
                amplitude,
                freq,
                phase: 0.0,
                delay: 0.0,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remix_lint::{lint, LintConfig};

    #[test]
    fn default_params_generate_clean_circuit() {
        let p = MixerFirstParams::default();
        let rx = p.generate().unwrap();
        assert!(rx.circuit.defects().is_empty());
        let report = lint(&rx.circuit, &LintConfig::default());
        assert_eq!(report.deny_count(), 0, "{}", report.render_text());
        let s = rx.circuit.stats();
        assert_eq!(s.mosfets, 4);
        // EMF + 4 LO drives.
        assert_eq!(s.vsources, 5);
        assert_eq!(s.resistors, 1 + 4);
        assert_eq!(s.capacitors, 4);
        assert_eq!(rx.basebands.len(), 4);
    }

    #[test]
    fn phase_count_validated() {
        let p = MixerFirstParams {
            n_phases: 3,
            ..MixerFirstParams::default()
        };
        assert_eq!(p.validate(), Err(TopoError::BadPhaseCount { n: 3 }));
        for n in [2, 4, 8] {
            let p = MixerFirstParams {
                n_phases: n,
                ..MixerFirstParams::default()
            };
            assert_eq!(p.generate().unwrap().basebands.len(), n);
        }
    }

    #[test]
    fn out_of_range_rejected_with_param_name() {
        let p = MixerFirstParams {
            switch_w: 1.0,
            ..MixerFirstParams::default()
        };
        match p.validate() {
            Err(TopoError::OutOfRange { param, .. }) => assert_eq!(param, "switch_w"),
            other => panic!("expected OutOfRange, got {other:?}"),
        }
        let p = MixerFirstParams {
            vdd: 0.45,
            ..MixerFirstParams::default()
        };
        assert!(matches!(
            p.validate(),
            Err(TopoError::OutOfRange { param: "vdd", .. })
        ));
        // An in-range rail can still fail the headroom constraint when
        // the device threshold is high (slow corner, thick-oxide switch).
        let p = MixerFirstParams {
            vdd: 1.2,
            nmos: MosModel {
                vt0: 1.05,
                ..MosModel::nmos_65nm()
            },
            ..MixerFirstParams::default()
        };
        assert!(matches!(p.validate(), Err(TopoError::Constraint { .. })));
    }

    #[test]
    fn held_on_mode_is_dc_measurable() {
        let p = MixerFirstParams {
            lo_mode: LoMode::HeldOn,
            ..MixerFirstParams::default()
        };
        let rx = p.generate().unwrap();
        let op =
            remix_analysis::dc_operating_point(&rx.circuit, &remix_analysis::OpOptions::default())
                .unwrap();
        // All quiescent voltages near 0: the port floats at 0 V EMF.
        assert!(op.voltage(rx.rf).abs() < 1e-6);
    }

    #[test]
    fn rf_tone_installs_on_emf() {
        let p = MixerFirstParams::default();
        let mut rx = p.generate().unwrap();
        rx.set_rf_tone(0.05, 10e6);
        match rx.circuit.element(rx.rf_emf) {
            Element::VoltageSource { wave, .. } => {
                assert!(matches!(wave, Waveform::Sin { freq, .. } if *freq == 10e6));
            }
            other => panic!("wrong element {other:?}"),
        }
    }
}
