//! Family-generic study drivers: Monte-Carlo mismatch, process
//! corners, and parallel DC transfer sweeps over any topology family,
//! all behind the existing [`Parallelism`](remix_exec::Parallelism)
//! knob.
//!
//! The drivers in `remix-core` are welded to the paper's `MixerConfig`;
//! these operate on [`Family`] — generate the circuit, perturb every
//! MOS instance independently (Pelgrom-style σ(ΔVt), σ(Δβ/β)) or shift
//! them globally (corners), then extract one scalar metric per family:
//!
//! | family | metric |
//! |---|---|
//! | `mixer_first` | held-on port resistance (Ω) |
//! | `single_balanced` | DC supply power (µW) |
//! | `medradio` | DC supply power (µW) — the sub-50 µW headline |
//!
//! Failure isolation follows the `remix-core` contract: a sample that
//! fails to converge is a [`StudyOutcome::Failed`] record, never a dead
//! study.

use crate::error::TopoError;
use crate::medradio::MedRadioParams;
use crate::mixer_first::{LoMode, MixerFirstParams};
use crate::single_balanced::SingleBalancedParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use remix_analysis::{
    dc_operating_point, dc_sweep_parallel, supply_power, AnalysisError, DcSweepResult, OpOptions,
    Partial,
};
use remix_circuit::{Circuit, Element};
use remix_exec::{run_tasks, PoolOptions, TaskOutcome, TaskResult};

/// One topology family plus its parameters — the unit every study
/// driver operates on.
#[derive(Debug, Clone, PartialEq)]
pub enum Family {
    /// Passive N-path mixer-first receiver.
    MixerFirst(MixerFirstParams),
    /// Single-balanced active mixer.
    SingleBalanced(SingleBalancedParams),
    /// Sub-50 µW MedRadio front-end.
    MedRadio(MedRadioParams),
}

impl Family {
    /// The three families at their default parameters.
    pub fn defaults() -> Vec<Family> {
        vec![
            Family::MixerFirst(MixerFirstParams::default()),
            Family::SingleBalanced(SingleBalancedParams::default()),
            Family::MedRadio(MedRadioParams::default()),
        ]
    }

    /// Family name (matches the `TopoError` vocabulary).
    pub fn name(&self) -> &'static str {
        match self {
            Family::MixerFirst(_) => crate::FAMILY_MIXER_FIRST,
            Family::SingleBalanced(_) => crate::FAMILY_SINGLE_BALANCED,
            Family::MedRadio(_) => crate::FAMILY_MEDRADIO,
        }
    }

    /// What the study metric measures, with its unit.
    pub fn metric_name(&self) -> &'static str {
        match self {
            Family::MixerFirst(_) => "held-on port resistance (ohm)",
            Family::SingleBalanced(_) | Family::MedRadio(_) => "dc supply power (uW)",
        }
    }

    /// Compiles the family to a circuit (for the mixer-first family in
    /// the DC-measurable held-on LO mode, which every OP-based study
    /// needs).
    ///
    /// # Errors
    ///
    /// [`TopoError`] when the parameters fail validation.
    pub fn generate(&self) -> Result<Circuit, TopoError> {
        match self {
            Family::MixerFirst(p) => {
                let held = MixerFirstParams {
                    lo_mode: LoMode::HeldOn,
                    ..p.clone()
                };
                Ok(held.generate()?.circuit)
            }
            Family::SingleBalanced(p) => Ok(p.generate()?.circuit),
            Family::MedRadio(p) => Ok(p.generate()?.circuit),
        }
    }

    /// Emits the family as a SPICE deck (the serve path: topology jobs
    /// reach the service as emitted decks through the lint-gated deck
    /// lane).
    ///
    /// # Errors
    ///
    /// [`TopoError`] when the parameters fail validation.
    pub fn emit(&self) -> Result<String, TopoError> {
        match self {
            Family::MixerFirst(p) => p.emit(),
            Family::SingleBalanced(p) => p.emit(),
            Family::MedRadio(p) => p.emit(),
        }
    }

    /// The name of the swept bias source for
    /// [`bias_sweep`] (`vrf` for every family).
    pub fn sweep_source(&self) -> &'static str {
        "vrf"
    }

    /// Evaluates the family's scalar metric on an already-generated
    /// (possibly perturbed) circuit.
    fn metric_on(&self, circuit: &Circuit) -> Result<f64, AnalysisError> {
        match self {
            Family::MixerFirst(_) => {
                // Held-on port resistance: EMF step ΔV, port-current
                // step ΔI, R = ΔV/ΔI. Port current is −i_branch.
                let dv = 0.05;
                let sweep =
                    remix_analysis::dc_sweep(circuit, "vrf", &[-dv, dv], &OpOptions::default())?;
                let id =
                    circuit
                        .find_element("vrf")
                        .ok_or_else(|| AnalysisError::UnknownProbe {
                            probe: "voltage source 'vrf'".into(),
                        })?;
                let i0 = -sweep.points[0].branch_current(id);
                let i1 = -sweep.points[1].branch_current(id);
                let di = i1 - i0;
                if di.abs() < 1e-18 {
                    return Err(AnalysisError::UnknownProbe {
                        probe: "port current did not respond to the EMF step".into(),
                    });
                }
                Ok(2.0 * dv / di)
            }
            Family::SingleBalanced(_) | Family::MedRadio(_) => {
                let op = dc_operating_point(circuit, &OpOptions::default())?;
                Ok(supply_power(circuit, &op).total_mw() * 1e3)
            }
        }
    }
}

/// Mismatch magnitudes for the family-generic Monte-Carlo study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopoMismatch {
    /// Threshold-voltage mismatch σ (V), applied independently per
    /// device.
    pub sigma_vt: f64,
    /// Relative β (kp) mismatch σ, applied independently per device.
    pub sigma_kp_frac: f64,
    /// Number of samples.
    pub n_runs: usize,
    /// Study seed; sample `i` derives its own stream, so outcomes are
    /// prefix-stable in `n_runs`.
    pub seed: u64,
}

impl Default for TopoMismatch {
    fn default() -> Self {
        TopoMismatch {
            sigma_vt: 2.0e-3,
            sigma_kp_frac: 0.005,
            n_runs: 20,
            seed: 0x70B0,
        }
    }
}

/// One process corner: a global shift applied to every MOS instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corner {
    /// Corner name (`"tt"`, `"ss"`, `"ff"`).
    pub name: &'static str,
    /// Multiplier on `kp` (mobility/β shift).
    pub kp_scale: f64,
    /// Additive shift on `vt0` (V).
    pub dvt0: f64,
}

/// The standard typical/slow/fast corner set (±10 % β, ∓30 mV Vt —
/// mirroring the `remix-core` corner laws).
pub fn standard_corners() -> Vec<Corner> {
    vec![
        Corner {
            name: "tt",
            kp_scale: 1.0,
            dvt0: 0.0,
        },
        Corner {
            name: "ss",
            kp_scale: 0.9,
            dvt0: 0.03,
        },
        Corner {
            name: "ff",
            kp_scale: 1.1,
            dvt0: -0.03,
        },
    ]
}

/// Outcome of one study sample.
#[derive(Debug, Clone, PartialEq)]
pub enum StudyOutcome {
    /// The sample solved; the family metric value.
    Ok(f64),
    /// The sample failed; the rendered reason.
    Failed(String),
}

impl StudyOutcome {
    /// The metric value when the sample solved.
    pub fn value(&self) -> Option<f64> {
        match self {
            StudyOutcome::Ok(v) => Some(*v),
            StudyOutcome::Failed(_) => None,
        }
    }
}

/// A completed family study with per-sample outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoStudy {
    /// Family name.
    pub family: &'static str,
    /// Metric description (with unit).
    pub metric: &'static str,
    /// `(label, outcome)` per sample — sample indexes for Monte-Carlo,
    /// corner names for corner studies.
    pub outcomes: Vec<(String, StudyOutcome)>,
}

impl TopoStudy {
    /// Number of solved samples.
    pub fn n_ok(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, o)| matches!(o, StudyOutcome::Ok(_)))
            .count()
    }

    /// Fraction of samples that solved (1.0 for an empty study).
    pub fn yield_fraction(&self) -> f64 {
        if self.outcomes.is_empty() {
            1.0
        } else {
            self.n_ok() as f64 / self.outcomes.len() as f64
        }
    }

    /// Metric values of the solved samples, sorted ascending.
    pub fn values(&self) -> Vec<f64> {
        let mut out: Vec<f64> = self
            .outcomes
            .iter()
            .filter_map(|(_, o)| o.value())
            .collect();
        out.sort_by(f64::total_cmp);
        out
    }

    /// One-line summary, e.g.
    /// `medradio dc supply power (uW): yield 20/20, median 3.61e1`.
    pub fn summary_line(&self) -> String {
        let vals = self.values();
        let median = vals.get(vals.len() / 2).copied();
        match median {
            Some(m) => format!(
                "{} {}: yield {}/{}, median {m:.3e}",
                self.family,
                self.metric,
                self.n_ok(),
                self.outcomes.len()
            ),
            None => format!(
                "{} {}: yield 0/{}",
                self.family,
                self.metric,
                self.outcomes.len()
            ),
        }
    }
}

/// SplitMix64 mix of the study seed and sample index: independent
/// per-sample streams, prefix-stable in `n_runs`.
fn sample_seed(seed: u64, index: usize) -> u64 {
    let mut z = seed.wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Box–Muller standard normal draw.
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Applies independent Pelgrom-style perturbations to every MOS
/// instance in the circuit (the generic analogue of `remix-core`'s
/// per-half model perturbation).
fn perturb_devices(circuit: &mut Circuit, rng: &mut StdRng, mm: &TopoMismatch) {
    for idx in 0..circuit.element_count() {
        let id = remix_circuit::ElementId::from_index(idx);
        if let Element::Mos { dev, .. } = circuit.element_mut(id) {
            dev.model.vt0 += mm.sigma_vt * gauss(rng);
            dev.model.kp *= 1.0 + mm.sigma_kp_frac * gauss(rng);
        }
    }
}

/// Applies a global corner shift to every MOS instance.
fn apply_corner(circuit: &mut Circuit, corner: &Corner) {
    for idx in 0..circuit.element_count() {
        let id = remix_circuit::ElementId::from_index(idx);
        if let Element::Mos { dev, .. } = circuit.element_mut(id) {
            dev.model.kp *= corner.kp_scale;
            dev.model.vt0 += corner.dvt0;
        }
    }
}

fn pool_outcome(outcome: &TaskOutcome<StudyOutcome>) -> StudyOutcome {
    match outcome {
        TaskOutcome::Done(s) => s.clone(),
        TaskOutcome::Failed(trace) => StudyOutcome::Failed(trace.clone()),
        TaskOutcome::TimedOut {
            attempts,
            budget_ms,
        } => StudyOutcome::Failed(format!(
            "timed out: {attempts} attempt(s) exhausted {budget_ms} ms"
        )),
    }
}

fn run_study<F>(
    family: &Family,
    labels: Vec<String>,
    pool: &PoolOptions,
    sample: F,
) -> Result<TopoStudy, TopoError>
where
    F: Fn(usize) -> Result<f64, AnalysisError> + Sync,
{
    family.generate()?; // validate once before launching the pool
    let todo: Vec<usize> = (0..labels.len()).collect();
    let run = run_tasks(
        &todo,
        pool,
        |ctx| {
            let _span = remix_telemetry::span(remix_telemetry::names::TOPO_STUDY_SAMPLE)
                .with_field("index", ctx.index);
            match sample(ctx.index) {
                Ok(v) => TaskResult::Done(StudyOutcome::Ok(v)),
                Err(e) => match e.interruption() {
                    Some(intr) => TaskResult::Interrupted(intr),
                    None => TaskResult::Done(StudyOutcome::Failed(e.to_string())),
                },
            }
        },
        |_, outcome| {
            remix_telemetry::counter_add(
                match pool_outcome(outcome) {
                    StudyOutcome::Ok(_) => remix_telemetry::names::TOPO_STUDY_SAMPLES_OK,
                    StudyOutcome::Failed(_) => remix_telemetry::names::TOPO_STUDY_SAMPLES_FAILED,
                },
                1,
            );
        },
    );
    let mut slots: Vec<Option<StudyOutcome>> = vec![None; labels.len()];
    for (i, outcome) in &run.outcomes {
        slots[*i] = Some(pool_outcome(outcome));
    }
    let outcomes = labels
        .into_iter()
        .zip(slots)
        .map(|(label, slot)| {
            (
                label,
                slot.unwrap_or_else(|| {
                    StudyOutcome::Failed("interrupted before the sample ran".into())
                }),
            )
        })
        .collect();
    Ok(TopoStudy {
        family: family.name(),
        metric: family.metric_name(),
        outcomes,
    })
}

/// Family-generic Monte-Carlo mismatch study on the work-stealing pool.
///
/// Every MOS instance is perturbed independently per sample; sample `i`
/// uses its own RNG stream so outcomes are prefix-stable and identical
/// for any worker count.
///
/// # Errors
///
/// [`TopoError`] when the family parameters fail validation — a
/// rejected family never launches the pool.
pub fn mc_study(
    family: &Family,
    mm: &TopoMismatch,
    pool: &PoolOptions,
) -> Result<TopoStudy, TopoError> {
    let labels = (0..mm.n_runs).map(|i| format!("mc{i}")).collect();
    run_study(family, labels, pool, |i| {
        let mut circuit = family.generate().map_err(|e| AnalysisError::UnknownProbe {
            probe: e.to_string(),
        })?;
        let mut rng = StdRng::seed_from_u64(sample_seed(mm.seed, i));
        perturb_devices(&mut circuit, &mut rng, mm);
        family.metric_on(&circuit)
    })
}

/// Family-generic process-corner study on the work-stealing pool.
///
/// # Errors
///
/// [`TopoError`] when the family parameters fail validation.
pub fn corner_study(
    family: &Family,
    corners: &[Corner],
    pool: &PoolOptions,
) -> Result<TopoStudy, TopoError> {
    let owned: Vec<Corner> = corners.to_vec();
    let labels = owned.iter().map(|c| c.name.to_string()).collect();
    run_study(family, labels, pool, move |i| {
        let mut circuit = family.generate().map_err(|e| AnalysisError::UnknownProbe {
            probe: e.to_string(),
        })?;
        apply_corner(&mut circuit, &owned[i]);
        family.metric_on(&circuit)
    })
}

/// Parallel DC transfer sweep of a family's bias source (`vrf`) through
/// the existing [`dc_sweep_parallel`] machinery.
///
/// # Errors
///
/// [`TopoError`] on invalid parameters; [`AnalysisError`] when the
/// sweep itself fails — both boxed into the same error type the serve
/// layer reports.
pub fn bias_sweep(
    family: &Family,
    values: &[f64],
    pool: &PoolOptions,
) -> Result<Partial<DcSweepResult>, Box<dyn std::error::Error>> {
    let circuit = family.generate()?;
    let result = dc_sweep_parallel(
        &circuit,
        family.sweep_source(),
        values,
        &OpOptions::default(),
        pool,
    )?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medradio_mc_is_deterministic_and_meets_budget() {
        let family = Family::MedRadio(MedRadioParams::default());
        let mm = TopoMismatch {
            n_runs: 6,
            ..TopoMismatch::default()
        };
        let pool = PoolOptions::default();
        let a = mc_study(&family, &mm, &pool).unwrap();
        let b = mc_study(&family, &mm, &pool).unwrap();
        assert_eq!(a, b, "same seed must reproduce");
        assert_eq!(a.n_ok(), 6, "{}", a.summary_line());
        // Mismatch scatters the µA-scale bias current but the budget
        // must hold with margin at σ(ΔVt) = 2 mV.
        for v in a.values() {
            assert!(v > 0.0 && v < 50.0, "sample {v} µW outside budget");
        }
        // Prefix stability: a shorter study is a strict prefix.
        let short = mc_study(&family, &TopoMismatch { n_runs: 3, ..mm }, &pool).unwrap();
        assert_eq!(short.outcomes[..], a.outcomes[..3]);
    }

    #[test]
    fn corners_order_single_balanced_power() {
        let family = Family::SingleBalanced(SingleBalancedParams::default());
        let study = corner_study(&family, &standard_corners(), &PoolOptions::default()).unwrap();
        assert_eq!(study.n_ok(), 3, "{}", study.summary_line());
        let by_name: std::collections::HashMap<&str, f64> = study
            .outcomes
            .iter()
            .filter_map(|(n, o)| o.value().map(|v| (n.as_str(), v)))
            .collect();
        // Fast silicon (higher β, lower Vt) burns more; slow burns less.
        assert!(by_name["ff"] > by_name["tt"]);
        assert!(by_name["tt"] > by_name["ss"]);
    }

    #[test]
    fn mixer_first_port_resistance_is_physical() {
        let p = MixerFirstParams::default();
        let family = Family::MixerFirst(p.clone());
        let study = corner_study(&family, &standard_corners(), &PoolOptions::default()).unwrap();
        assert_eq!(study.n_ok(), 3, "{}", study.summary_line());
        for v in study.values() {
            // rs + ron + r_bb bracket: above the passives alone is
            // impossible to undercut, and the switch can't add more
            // than a few hundred ohms at this width.
            assert!(
                v > p.rs + p.r_bb * 0.9 && v < p.rs + p.r_bb + 500.0,
                "port resistance {v} Ω outside physical bracket"
            );
        }
    }

    #[test]
    fn bias_sweep_runs_through_parallel_pool() {
        let family = Family::MedRadio(MedRadioParams::default());
        let values: Vec<f64> = (0..5).map(|i| 0.2 + 0.02 * i as f64).collect();
        let sweep = bias_sweep(&family, &values, &PoolOptions::default()).unwrap();
        assert!(sweep.interruption.is_none());
        assert_eq!(sweep.value.points.len(), 5);
        // Supply droop at the amp node must be monotone in bias drive.
        let circuit = family.generate().unwrap();
        let amp = circuit.find_node("amp").unwrap();
        let curve: Vec<f64> = sweep.value.points.iter().map(|p| p.voltage(amp)).collect();
        for w in curve.windows(2) {
            assert!(
                w[1] < w[0],
                "amp voltage must fall as bias rises: {curve:?}"
            );
        }
    }
}
