//! Typed parameter-validation errors.

use std::error::Error;
use std::fmt;

/// A topology generator rejected its parameters.
///
/// Every generator validates before building, so a [`TopoError`] is the
/// *only* failure mode of generation: a params struct that validates
/// produces a defect-free, lint-deny-clean circuit (a property test in
/// `tests/topo_families.rs` holds the generators to this).
#[derive(Debug, Clone, PartialEq)]
pub enum TopoError {
    /// A numeric parameter fell outside its documented range.
    OutOfRange {
        /// Family name (`"mixer_first"`, `"single_balanced"`, `"medradio"`).
        family: &'static str,
        /// Parameter name as it appears on the params struct.
        param: &'static str,
        /// The offending value.
        value: f64,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// The N-path phase count is unsupported (must be 2, 4, or 8).
    BadPhaseCount {
        /// The requested phase count.
        n: usize,
    },
    /// A derived constraint between parameters failed (e.g. LO must
    /// clear the RF probe grid, or the subthreshold bias must actually
    /// sit below threshold).
    Constraint {
        /// Family name.
        family: &'static str,
        /// What the constraint requires, rendered for humans.
        requirement: String,
    },
}

impl fmt::Display for TopoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopoError::OutOfRange {
                family,
                param,
                value,
                min,
                max,
            } => write!(
                f,
                "{family}: parameter '{param}' = {value:e} outside documented range \
                 [{min:e}, {max:e}]"
            ),
            TopoError::BadPhaseCount { n } => {
                write!(
                    f,
                    "mixer_first: phase count {n} unsupported (use 2, 4, or 8)"
                )
            }
            TopoError::Constraint {
                family,
                requirement,
            } => write!(f, "{family}: constraint violated: {requirement}"),
        }
    }
}

impl Error for TopoError {}

/// Checks one numeric parameter against its inclusive documented range.
///
/// # Errors
///
/// [`TopoError::OutOfRange`] when `value` is non-finite or outside
/// `[min, max]`.
pub(crate) fn in_range(
    family: &'static str,
    param: &'static str,
    value: f64,
    min: f64,
    max: f64,
) -> Result<(), TopoError> {
    if value.is_finite() && (min..=max).contains(&value) {
        Ok(())
    } else {
        Err(TopoError::OutOfRange {
            family,
            param,
            value,
            min,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_legibly() {
        let e = TopoError::OutOfRange {
            family: "mixer_first",
            param: "switch_w",
            value: 1.0,
            min: 5e-6,
            max: 100e-6,
        };
        let s = e.to_string();
        assert!(s.contains("mixer_first") && s.contains("switch_w"));
        assert!(TopoError::BadPhaseCount { n: 3 }.to_string().contains('3'));
        let c = TopoError::Constraint {
            family: "medradio",
            requirement: "vbias below threshold".into(),
        };
        assert!(c.to_string().contains("vbias"));
    }

    #[test]
    fn in_range_accepts_bounds_rejects_outside() {
        assert!(in_range("f", "p", 1.0, 1.0, 2.0).is_ok());
        assert!(in_range("f", "p", 2.0, 1.0, 2.0).is_ok());
        assert!(in_range("f", "p", 0.999, 1.0, 2.0).is_err());
        assert!(in_range("f", "p", f64::NAN, 1.0, 2.0).is_err());
        assert!(in_range("f", "p", f64::INFINITY, 1.0, 2.0).is_err());
    }
}
