//! Family (c): sub-50 µW MedRadio (401–406 MHz) front-end (Chang et
//! al., PAPERS.md).
//!
//! Implantable MedRadio budgets force every device into weak inversion:
//! a subthreshold-biased common-source transconductor (gate bias
//! *below* `vt0`) drives a large resistive load, AC-couples into a
//! single passive mixing switch, and lands on a baseband R‖C. Total
//! supply power must stay under 50 µW — the generator exposes
//! [`MedRadioFrontEnd::supply_power_uw`] so studies check the headline
//! number directly from the operating point.
//!
//! This family exists to stress the MOS model's weak-inversion corner:
//! the subthreshold/saturation boundary must be smooth (no Jacobian
//! kink) for these bias points to converge at all — see the
//! `weak_inversion_gm_finite_and_monotone` test in `remix-circuit`.

use crate::error::{in_range, TopoError};
use crate::FAMILY_MEDRADIO;
use remix_analysis::{dc_operating_point, supply_power, AnalysisError, OpOptions};
use remix_circuit::{Circuit, ElementId, MosModel, Node, Waveform};

/// Parameters of the MedRadio front-end.
#[derive(Debug, Clone, PartialEq)]
pub struct MedRadioParams {
    /// Transconductor width (m), `[5 µm, 200 µm]`.
    pub w_gm: f64,
    /// Transconductor length (m), `[100 nm, 2 µm]` — longer than
    /// minimum for subthreshold matching.
    pub l_gm: f64,
    /// Load resistance (Ω), `[20 kΩ, 500 kΩ]` — micro-amp currents need
    /// large loads for gain.
    pub r_load: f64,
    /// Gate bias (V), `[0.15, 0.4]`; constrained below `vt0 − 20 mV`
    /// (weak inversion).
    pub vbias: f64,
    /// Mixer switch width (m), `[2 µm, 100 µm]`.
    pub w_sw: f64,
    /// Baseband resistance (Ω), `[1 kΩ, 100 kΩ]`.
    pub r_bb: f64,
    /// Baseband capacitance (F), `[1 pF, 10 nF]`.
    pub c_bb: f64,
    /// Coupling capacitance into the mixer (F), `[100 fF, 100 pF]`.
    pub c_couple: f64,
    /// DC-return resistance at the mixer input (Ω), `[100 kΩ, 10 MΩ]`.
    pub r_bias: f64,
    /// Supply (V), `[1.0, 1.3]`.
    pub vdd: f64,
    /// RF frequency (Hz), the MedRadio band `[401 MHz, 406 MHz]`.
    pub f_rf: f64,
    /// LO frequency (Hz), `[390 MHz, 406 MHz]`.
    pub f_lo: f64,
    /// RF amplitude (V), `[0.1 mV, 50 mV]`.
    pub rf_amp: f64,
    /// Device model.
    pub nmos: MosModel,
}

impl Default for MedRadioParams {
    fn default() -> Self {
        MedRadioParams {
            w_gm: 60e-6,
            l_gm: 200e-9,
            r_load: 100e3,
            vbias: 0.30,
            w_sw: 10e-6,
            r_bb: 10e3,
            c_bb: 100e-12,
            c_couple: 10e-12,
            r_bias: 1e6,
            vdd: 1.2,
            f_rf: 403e6,
            f_lo: 402e6,
            rf_amp: 1e-3,
            nmos: MosModel::nmos_65nm(),
        }
    }
}

/// A generated MedRadio front-end with its analysis handles.
#[derive(Debug, Clone)]
pub struct MedRadioFrontEnd {
    /// The compiled netlist.
    pub circuit: Circuit,
    /// RF gate-drive source.
    pub rf_source: ElementId,
    /// Supply source (its branch current is the power-budget number).
    pub vdd_source: ElementId,
    /// Amplifier output node.
    pub amp: Node,
    /// Mixer input node (after the coupling cap).
    pub mix: Node,
    /// Baseband output node.
    pub bb: Node,
}

impl MedRadioParams {
    /// Checks every parameter against its documented range, including
    /// the weak-inversion bias constraint.
    ///
    /// # Errors
    ///
    /// [`TopoError`] naming the offending parameter or constraint.
    pub fn validate(&self) -> Result<(), TopoError> {
        let f = FAMILY_MEDRADIO;
        in_range(f, "w_gm", self.w_gm, 5e-6, 200e-6)?;
        in_range(f, "l_gm", self.l_gm, 100e-9, 2e-6)?;
        in_range(f, "r_load", self.r_load, 20e3, 500e3)?;
        in_range(f, "vbias", self.vbias, 0.15, 0.4)?;
        in_range(f, "w_sw", self.w_sw, 2e-6, 100e-6)?;
        in_range(f, "r_bb", self.r_bb, 1e3, 100e3)?;
        in_range(f, "c_bb", self.c_bb, 1e-12, 10e-9)?;
        in_range(f, "c_couple", self.c_couple, 100e-15, 100e-12)?;
        in_range(f, "r_bias", self.r_bias, 100e3, 10e6)?;
        in_range(f, "vdd", self.vdd, 1.0, 1.3)?;
        in_range(f, "f_rf", self.f_rf, 401e6, 406e6)?;
        in_range(f, "f_lo", self.f_lo, 390e6, 406e6)?;
        in_range(f, "rf_amp", self.rf_amp, 0.1e-3, 50e-3)?;
        if self.vbias > self.nmos.vt0 - 0.02 {
            return Err(TopoError::Constraint {
                family: f,
                requirement: format!(
                    "gate bias {} V must sit below threshold {} V by ≥ 20 mV \
                     (weak inversion is the family's point)",
                    self.vbias, self.nmos.vt0
                ),
            });
        }
        Ok(())
    }

    /// Compiles the parameters to a circuit.
    ///
    /// # Errors
    ///
    /// [`TopoError`] when validation fails.
    pub fn generate(&self) -> Result<MedRadioFrontEnd, TopoError> {
        self.validate()?;
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let rfin = ckt.node("rfin");
        let amp = ckt.node("amp");
        let mix = ckt.node("mix");
        let lo = ckt.node("lo");
        let bb = ckt.node("bb");
        let vdd_source = ckt.add_vsource("vdd", vdd, Circuit::gnd(), Waveform::Dc(self.vdd));
        let rf_source = ckt.add_vsource(
            "vrf",
            rfin,
            Circuit::gnd(),
            Waveform::Sin {
                offset: self.vbias,
                amplitude: self.rf_amp,
                freq: self.f_rf,
                phase: 0.0,
                delay: 0.0,
            },
        );
        ckt.add_mosfet(
            "mgm",
            self.nmos.clone(),
            self.w_gm,
            self.l_gm,
            amp,
            rfin,
            Circuit::gnd(),
            Circuit::gnd(),
        );
        ckt.add_resistor("rload", vdd, amp, self.r_load);
        ckt.add_capacitor("cc", amp, mix, self.c_couple);
        ckt.add_resistor("rbias", mix, Circuit::gnd(), self.r_bias);
        let t_lo = 1.0 / self.f_lo;
        ckt.add_vsource(
            "vlo",
            lo,
            Circuit::gnd(),
            Waveform::Pulse {
                v1: 0.0,
                v2: self.vdd,
                delay: 0.0,
                rise: 0.02 * t_lo,
                fall: 0.02 * t_lo,
                width: 0.46 * t_lo,
                period: t_lo,
            },
        );
        ckt.add_mosfet(
            "msw",
            self.nmos.clone(),
            self.w_sw,
            65e-9,
            mix,
            lo,
            bb,
            Circuit::gnd(),
        );
        ckt.add_resistor("rbb", bb, Circuit::gnd(), self.r_bb);
        ckt.add_capacitor("cbb", bb, Circuit::gnd(), self.c_bb);
        Ok(MedRadioFrontEnd {
            circuit: ckt,
            rf_source,
            vdd_source,
            amp,
            mix,
            bb,
        })
    }

    /// Emits the generated circuit as a SPICE deck.
    ///
    /// # Errors
    ///
    /// [`TopoError`] when validation fails.
    pub fn emit(&self) -> Result<String, TopoError> {
        let fe = self.generate()?;
        Ok(remix_circuit::to_spice(
            &fe.circuit,
            &format!(
                "remix-topo medradio f_rf={:.4e} vbias={}",
                self.f_rf, self.vbias
            ),
        ))
    }
}

impl MedRadioFrontEnd {
    /// Total DC supply power (µW) from the operating point — the
    /// family's headline sub-50 µW budget.
    ///
    /// # Errors
    ///
    /// [`AnalysisError`] when the operating point fails to converge.
    pub fn supply_power_uw(&self) -> Result<f64, AnalysisError> {
        let op = dc_operating_point(&self.circuit, &OpOptions::default())?;
        Ok(supply_power(&self.circuit, &op).total_mw() * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remix_lint::{lint, LintConfig};

    #[test]
    fn default_params_generate_clean_circuit() {
        let fe = MedRadioParams::default().generate().unwrap();
        assert!(fe.circuit.defects().is_empty());
        let report = lint(&fe.circuit, &LintConfig::default());
        assert_eq!(report.deny_count(), 0, "{}", report.render_text());
        assert_eq!(fe.circuit.stats().mosfets, 2);
    }

    #[test]
    fn default_bias_meets_the_power_budget() {
        let fe = MedRadioParams::default().generate().unwrap();
        let uw = fe.supply_power_uw().unwrap();
        assert!(uw > 0.1, "amplifier draws no current ({uw} µW)");
        assert!(uw < 50.0, "power budget blown: {uw} µW ≥ 50 µW");
    }

    #[test]
    fn weak_inversion_constraint_enforced() {
        let p = MedRadioParams {
            vbias: 0.34,
            ..MedRadioParams::default()
        };
        assert!(matches!(p.validate(), Err(TopoError::Constraint { .. })));
    }

    #[test]
    fn band_edges_validated() {
        let p = MedRadioParams {
            f_rf: 400e6,
            ..MedRadioParams::default()
        };
        match p.validate() {
            Err(TopoError::OutOfRange { param, .. }) => assert_eq!(param, "f_rf"),
            other => panic!("expected OutOfRange(f_rf), got {other:?}"),
        }
    }

    #[test]
    fn amp_stage_has_gain_worth_of_drop() {
        // In weak inversion the µA-scale drain current across the
        // 100 kΩ load must still drop enough volts to show the stage is
        // alive, without crushing the output to the rail.
        let p = MedRadioParams::default();
        let fe = p.generate().unwrap();
        let op = dc_operating_point(&fe.circuit, &OpOptions::default()).unwrap();
        let v_amp = op.voltage(fe.amp);
        assert!(v_amp > 0.1 && v_amp < p.vdd - 0.1, "v_amp = {v_amp}");
    }
}
