//! Union-find over node ids, the workhorse of the connectivity rules.

/// Disjoint-set forest with union by rank and path halving.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets, labelled `0..n`.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets containing `a` and `b`. Returns `false` if they
    /// were already the same set (i.e. the new edge closes a cycle).
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// `true` when `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_merging() {
        let mut uf = UnionFind::new(5);
        assert!(!uf.same(0, 1));
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
        // Closing a cycle reports false.
        assert!(!uf.union(2, 0));
    }

    #[test]
    fn chain_of_unions_compresses() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        for i in 0..n {
            assert!(uf.same(0, i));
        }
    }
}
