//! Union-find over node ids plus the single parameterized edge
//! classifier behind every connectivity pass.
//!
//! The connectivity rules differ only in which element couplings count
//! as graph edges; [`edges`] is the one place that knowledge lives, and
//! both the union-find builders ([`connectivity`]) and the structural
//! incidence builder in `rank` consume it rather than re-deriving
//! per-element cases.

use remix_circuit::{Circuit, Element, Node};

/// Which element couplings count as edges for a connectivity pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Regime {
    /// Historical `validate()` semantics (`ERC002`): every element that
    /// provides a DC path unions *all* its nodes, treating a MOS as one
    /// blob (so it cannot see floating gates — that is `Carrier`'s job).
    LegacyDc,
    /// Branches that can carry a *defined* DC current (`ERC004`,
    /// `ERC006`): R, L, V, E outputs, and the MOS drain/source/bulk
    /// spine. Gates and capacitors conduct nothing; current sources
    /// force rather than carry.
    Carrier,
    /// Ideal voltage sources only (`ERC007`): nodes whose DC potential
    /// is pinned to ground through a chain of sources.
    Rail,
    /// Voltage-defined branches V/E/L (`ERC003`): a cycle here makes the
    /// MNA branch equations linearly dependent.
    VoltageDefined,
    /// Symmetric DC conductance blocks (`rank`): couplings that stamp a
    /// conductance into the KCL rows of both end nodes — resistors and
    /// the MOS channel. The structural incidence builder reuses this and
    /// layers branch/controlled-source entries on top.
    Conductance,
}

/// Appends the node pairs `e` couples under `regime` to `out`.
pub(crate) fn edges(e: &Element, regime: Regime, out: &mut Vec<(Node, Node)>) {
    match regime {
        Regime::LegacyDc => {
            if e.provides_dc_path() {
                for w in e.nodes().windows(2) {
                    out.push((w[0], w[1]));
                }
            }
        }
        Regime::Carrier => match e {
            Element::Resistor { a, b, .. } | Element::Inductor { a, b, .. } => {
                out.push((*a, *b));
            }
            Element::VoltageSource { p, n, .. } | Element::Vcvs { p, n, .. } => {
                out.push((*p, *n));
            }
            Element::Mos { dev, .. } => {
                out.push((dev.d, dev.s));
                out.push((dev.s, dev.b));
            }
            Element::Capacitor { .. } | Element::CurrentSource { .. } | Element::Vccs { .. } => {}
        },
        Regime::Rail => {
            if let Element::VoltageSource { p, n, .. } = e {
                out.push((*p, *n));
            }
        }
        Regime::VoltageDefined => match e {
            Element::VoltageSource { p, n, .. } | Element::Vcvs { p, n, .. } => {
                out.push((*p, *n));
            }
            Element::Inductor { a, b, .. } => out.push((*a, *b)),
            _ => {}
        },
        Regime::Conductance => match e {
            Element::Resistor { a, b, .. } => out.push((*a, *b)),
            Element::Mos { dev, .. } => out.push((dev.d, dev.s)),
            _ => {}
        },
    }
}

/// Builds the union-find of `circuit`'s nodes under one regime.
pub(crate) fn connectivity(circuit: &Circuit, regime: Regime) -> UnionFind {
    let mut uf = UnionFind::new(circuit.node_count());
    let mut buf = Vec::new();
    for e in circuit.elements() {
        buf.clear();
        edges(e, regime, &mut buf);
        for &(a, b) in &buf {
            uf.union(a.id(), b.id());
        }
    }
    uf
}

/// Disjoint-set forest with union by rank and path halving.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets, labelled `0..n`.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets containing `a` and `b`. Returns `false` if they
    /// were already the same set (i.e. the new edge closes a cycle).
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// `true` when `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_merging() {
        let mut uf = UnionFind::new(5);
        assert!(!uf.same(0, 1));
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
        // Closing a cycle reports false.
        assert!(!uf.union(2, 0));
    }

    #[test]
    fn regimes_classify_couplings_differently() {
        use remix_circuit::{Circuit, MosModel, Waveform};
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let g = c.node("g");
        let d = c.node("d");
        c.add_vsource("v1", vdd, Circuit::gnd(), Waveform::Dc(1.2));
        c.add_resistor("rg", vdd, g, 1e5);
        c.add_capacitor("cc", vdd, d, 1e-12);
        c.add_mosfet(
            "m1",
            MosModel::nmos_65nm(),
            10e-6,
            65e-9,
            d,
            g,
            Circuit::gnd(),
            Circuit::gnd(),
        );

        // Carrier: the gate hangs off the channel spine only through rg.
        let mut carrier = connectivity(&c, Regime::Carrier);
        assert!(carrier.same(g.id(), 0));
        assert!(carrier.same(d.id(), 0)); // d—s channel
                                          // Rail: only v1 pins anything; the gate is not a rail node.
        let mut rail = connectivity(&c, Regime::Rail);
        assert!(rail.same(vdd.id(), 0));
        assert!(!rail.same(g.id(), 0));
        // Conductance: rg couples vdd—g, channel couples d—gnd; the cap
        // contributes nothing.
        let mut cond = connectivity(&c, Regime::Conductance);
        assert!(cond.same(vdd.id(), g.id()));
        assert!(cond.same(d.id(), 0));
        assert!(!cond.same(vdd.id(), 0));
        // LegacyDc blobs the MOS, so everything except nothing is merged.
        let mut legacy = connectivity(&c, Regime::LegacyDc);
        assert!(legacy.same(vdd.id(), d.id()));
    }

    #[test]
    fn chain_of_unions_compresses() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        for i in 0..n {
            assert!(uf.same(0, i));
        }
    }
}
