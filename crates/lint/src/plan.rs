//! Simulation-plan lint: `SIM001`–`SIM008`.
//!
//! A structurally sound netlist can still produce plausible-but-wrong
//! numbers when the *analysis plan* is numerically unsound — a two-tone
//! IIP3 sweep with non-coherent FFT bins leaks skirt energy onto the IM3
//! bin, a transient step near the LO period aliases the LO into the IF
//! band, and no solver error tells you. [`SimPlan`] is a neutral,
//! engine-independent description of one analysis run; [`lint_plan`]
//! applies the `SIM` rules to it under the same [`LintConfig`] /
//! severity machinery as the circuit rules.
//!
//! Every field is optional: a rule fires only when the data it judges is
//! actually declared, so generic engine entry points lint whatever they
//! know (timestep, stimulus frequency) while the paper's bench binaries
//! attach the full measurement intent ([`PlanTargets::paper`]: 5 MHz IF,
//! 100 kHz flicker corner, 0.5–5.5 GHz RF band).

use crate::config::LintConfig;
use crate::diag::{Diagnostic, LintReport, RuleId, Severity};
use crate::fix::Fix;

/// Paper-level measurement targets a plan is judged against.
///
/// These are intent, not engine parameters: a noise sweep is only wrong
/// about the flicker corner if it *claims* to measure one.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlanTargets {
    /// IF output frequency the measurement reads (Hz).
    pub if_freq: Option<f64>,
    /// Flicker corner the noise band must reach down to (Hz).
    pub flicker_corner: Option<f64>,
    /// RF band the sweep must cover (Hz, lo ≤ hi).
    pub rf_band: Option<(f64, f64)>,
}

impl PlanTargets {
    /// The source paper's targets: 5 MHz IF, sub-100 kHz flicker corner,
    /// 0.5–5.5 GHz RF band.
    pub fn paper() -> Self {
        PlanTargets {
            if_freq: Some(5e6),
            flicker_corner: Some(100e3),
            rf_band: Some((0.5e9, 5.5e9)),
        }
    }

    /// Targets for the MedRadio front-end family (`remix-topo`):
    /// 401–406 MHz RF band, ~1 MHz IF. No flicker-corner claim — the
    /// family's studies measure power, not noise.
    pub fn medradio() -> Self {
        PlanTargets {
            if_freq: Some(1e6),
            flicker_corner: None,
            rf_band: Some((401e6, 406e6)),
        }
    }
}

/// Engine-independent description of one analysis run.
///
/// Built by the analysis entry points (`remix-analysis` derives what it
/// can from its option structs and the circuit's stimulus) and by the
/// bench binaries (which also know the measurement intent). Only the
/// declared fields are linted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimPlan {
    /// Human-readable plan name (appears in diagnostics).
    pub name: String,
    /// Transient/PSS timestep (s).
    pub timestep: Option<f64>,
    /// Total simulated duration (s).
    pub duration: Option<f64>,
    /// Fastest periodic stimulus the run must resolve (Hz) — the LO for
    /// mixer runs, or the highest source frequency generally.
    pub lo_freq: Option<f64>,
    /// FFT record sample rate (Hz).
    pub sample_rate: Option<f64>,
    /// FFT record length (samples).
    pub fft_len: Option<usize>,
    /// Tones the FFT readout must resolve exactly (Hz) — fundamentals
    /// and intermod products.
    pub tones: Vec<f64>,
    /// Harmonics retained by a PSS/harmonic-balance representation.
    pub pss_harmonics: Option<usize>,
    /// Highest intermod order the measurement reads (3 for IIP3).
    pub intermod_order: Option<usize>,
    /// Noise analysis band (Hz, lo ≤ hi).
    pub noise_band: Option<(f64, f64)>,
    /// Frequency sweep span (Hz, lo ≤ hi).
    pub sweep_band: Option<(f64, f64)>,
    /// Slowest circuit time constant the transient must out-run (s).
    pub slowest_tau: Option<f64>,
    /// Simulated time between checkpoint writes (s), when the driver
    /// persists resumable state. Declaring one tells `SIM007` that an
    /// interrupted run resumes instead of restarting from zero.
    pub checkpoint_interval: Option<f64>,
    /// Path of the JSON-lines event log the driver writes, when one is
    /// declared. Declaring one tells `SIM008` that a stalled or killed
    /// long run leaves a diagnosable trail.
    pub event_log: Option<String>,
    /// Measurement intent the plan is judged against.
    pub targets: PlanTargets,
}

impl SimPlan {
    /// New empty plan with a name; populate with the `with_*` builders.
    pub fn new(name: &str) -> Self {
        SimPlan {
            name: name.to_string(),
            ..SimPlan::default()
        }
    }

    /// Sets the timestep (s).
    pub fn with_timestep(mut self, h: f64) -> Self {
        self.timestep = Some(h);
        self
    }

    /// Sets the duration (s).
    pub fn with_duration(mut self, t: f64) -> Self {
        self.duration = Some(t);
        self
    }

    /// Sets the fastest stimulus frequency (Hz).
    pub fn with_lo(mut self, f: f64) -> Self {
        self.lo_freq = Some(f);
        self
    }

    /// Sets the FFT record (sample rate in Hz, length in samples).
    pub fn with_fft(mut self, fs: f64, n: usize) -> Self {
        self.sample_rate = Some(fs);
        self.fft_len = Some(n);
        self
    }

    /// Sets the readout tones (Hz).
    pub fn with_tones(mut self, tones: &[f64]) -> Self {
        self.tones = tones.to_vec();
        self
    }

    /// Sets PSS harmonic count and the intermod order to resolve.
    pub fn with_harmonics(mut self, harmonics: usize, intermod_order: usize) -> Self {
        self.pss_harmonics = Some(harmonics);
        self.intermod_order = Some(intermod_order);
        self
    }

    /// Sets the noise band (Hz).
    pub fn with_noise_band(mut self, lo: f64, hi: f64) -> Self {
        self.noise_band = Some((lo, hi));
        self
    }

    /// Sets the sweep span (Hz).
    pub fn with_sweep(mut self, lo: f64, hi: f64) -> Self {
        self.sweep_band = Some((lo, hi));
        self
    }

    /// Sets the slowest time constant (s).
    pub fn with_slowest_tau(mut self, tau: f64) -> Self {
        self.slowest_tau = Some(tau);
        self
    }

    /// Sets the checkpoint interval (s of simulated time between
    /// checkpoint writes).
    pub fn with_checkpoint_interval(mut self, interval: f64) -> Self {
        self.checkpoint_interval = Some(interval);
        self
    }

    /// Declares the JSON-lines event log path the driver writes.
    pub fn with_event_log(mut self, path: &str) -> Self {
        self.event_log = Some(path.to_string());
        self
    }

    /// Attaches measurement targets.
    pub fn with_targets(mut self, targets: PlanTargets) -> Self {
        self.targets = targets;
        self
    }
}

/// Smallest coherent FFT grid that carries every tone: the integer-Hz
/// GCD of the tones as bin spacing, record length grown (power of two)
/// until the highest tone sits at or below Nyquist. `None` when the
/// tones are not integer-Hz commensurate or the record would explode.
pub(crate) fn coherent_fix(tones: &[f64], n: usize) -> Option<(f64, usize)> {
    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    let mut g = 0u64;
    let mut f_max = 0f64;
    for &t in tones {
        let r = t.round();
        if !r.is_finite() || r < 1.0 || (t - r).abs() > 1e-3 {
            return None;
        }
        g = gcd(g, r as u64);
        f_max = f_max.max(t);
    }
    if g == 0 {
        return None;
    }
    let mut n2 = n.max(2).next_power_of_two();
    while f_max / g as f64 > (n2 / 2) as f64 {
        n2 = n2.checked_mul(2)?;
        if n2 > 1 << 24 {
            return None;
        }
    }
    Some((g as f64 * n2 as f64, n2))
}

/// Runs the `SIM` rules over one plan under `config`.
///
/// Like [`crate::lint`], never stops early: the report carries every
/// finding from every enabled rule.
pub fn lint_plan(plan: &SimPlan, config: &LintConfig) -> LintReport {
    let mut out = Vec::new();
    let mut emit = |rule: RuleId, severity: Severity, message: String, fix: Option<Fix>| {
        out.push(Diagnostic {
            rule,
            severity,
            message,
            nodes: vec![],
            elements: vec![plan.name.clone()],
            line: None,
            fix,
        });
    };
    let sev = |rule: RuleId| match config.severity_of(rule) {
        Severity::Allow => None,
        s => Some(s),
    };

    // SIM001: timestep vs stimulus-period Nyquist.
    if let (Some(s), Some(h), Some(f)) = (sev(RuleId::TimestepVsLo), plan.timestep, plan.lo_freq) {
        if h > 0.0 && f > 0.0 {
            let spp = 1.0 / (h * f);
            if spp < 2.0 {
                emit(
                    RuleId::TimestepVsLo,
                    s,
                    format!(
                        "timestep {h:.3e} s gives {spp:.2} samples per period of the \
                         {f:.3e} Hz stimulus (< 2): the drive aliases into the record"
                    ),
                    Some(Fix::SetTimestep {
                        seconds: 1.0 / (16.0 * f),
                    }),
                );
            }
        }
    }

    // SIM002: non-coherent (or aliased) FFT readout.
    if let (Some(s), Some(fs), Some(n)) =
        (sev(RuleId::NoncoherentFft), plan.sample_rate, plan.fft_len)
    {
        if fs > 0.0 && n >= 2 && !plan.tones.is_empty() {
            let f_res = fs / n as f64;
            let mut off_grid = Vec::new();
            let mut aliased = Vec::new();
            for &t in &plan.tones {
                let k = t / f_res;
                if (k - k.round()).abs() > 1e-6 * k.max(1.0) {
                    off_grid.push(t);
                } else if k.round() as usize > n / 2 {
                    aliased.push(t);
                }
            }
            if !off_grid.is_empty() || !aliased.is_empty() {
                let mut parts = Vec::new();
                if !off_grid.is_empty() {
                    parts.push(format!(
                        "tones {} Hz are off the {f_res:.3e} Hz bin grid (spectral \
                         leakage corrupts the product bins)",
                        join_hz(&off_grid)
                    ));
                }
                if !aliased.is_empty() {
                    parts.push(format!(
                        "tones {} Hz lie beyond Nyquist ({:.3e} Hz) and fold onto \
                         wrong bins",
                        join_hz(&aliased),
                        fs / 2.0
                    ));
                }
                let fix = coherent_fix(&plan.tones, n).map(|(fs, n)| Fix::SnapCoherent {
                    sample_rate: fs,
                    fft_len: n,
                });
                emit(RuleId::NoncoherentFft, s, parts.join("; "), fix);
            }
        }
    }

    // SIM003: PSS harmonic truncation below the intermod order.
    if let (Some(s), Some(h), Some(order)) = (
        sev(RuleId::PssHarmonics),
        plan.pss_harmonics,
        plan.intermod_order,
    ) {
        if h < order {
            emit(
                RuleId::PssHarmonics,
                s,
                format!(
                    "{h} PSS harmonics retained but the measurement reads order-{order} \
                     intermod products: the product is absent from the basis"
                ),
                Some(Fix::RaiseHarmonics {
                    harmonics: order + 2,
                }),
            );
        }
    }

    // SIM004: noise band vs IF / flicker-corner targets.
    if let (Some(s), Some((lo, hi))) = (sev(RuleId::NoiseBand), plan.noise_band) {
        let mut need_lo = lo;
        let mut need_hi = hi;
        let mut misses = Vec::new();
        if let Some(corner) = plan.targets.flicker_corner {
            if lo > corner {
                misses.push(format!(
                    "band starts at {lo:.3e} Hz, above the {corner:.3e} Hz flicker-corner \
                     target"
                ));
                need_lo = need_lo.min(corner);
            }
        }
        if let Some(f_if) = plan.targets.if_freq {
            if hi < f_if {
                misses.push(format!(
                    "band stops at {hi:.3e} Hz, below the {f_if:.3e} Hz IF target"
                ));
                need_hi = need_hi.max(f_if);
            }
        }
        if !misses.is_empty() {
            emit(
                RuleId::NoiseBand,
                s,
                misses.join("; "),
                Some(Fix::WidenNoiseBand {
                    min_hz: need_lo,
                    max_hz: need_hi,
                }),
            );
        }
    }

    // SIM005: sweep coverage of the declared RF band.
    if let (Some(s), Some((lo, hi)), Some((b_lo, b_hi))) = (
        sev(RuleId::SweepRange),
        plan.sweep_band,
        plan.targets.rf_band,
    ) {
        if lo > b_lo || hi < b_hi {
            emit(
                RuleId::SweepRange,
                s,
                format!(
                    "sweep {lo:.3e}–{hi:.3e} Hz does not cover the declared \
                     {b_lo:.3e}–{b_hi:.3e} Hz RF band: band-edge numbers cannot be \
                     reproduced from this run"
                ),
                Some(Fix::WidenSweep {
                    min_hz: lo.min(b_lo),
                    max_hz: hi.max(b_hi),
                }),
            );
        }
    }

    // SIM006: duration vs the slowest time constant.
    if let (Some(s), Some(t), Some(tau)) =
        (sev(RuleId::TranDuration), plan.duration, plan.slowest_tau)
    {
        if tau > 0.0 && t < tau {
            emit(
                RuleId::TranDuration,
                s,
                format!(
                    "duration {t:.3e} s is shorter than the slowest time constant \
                     {tau:.3e} s: the record is dominated by settling"
                ),
                Some(Fix::ExtendDuration { seconds: 5.0 * tau }),
            );
        }
    }

    // SIM007: implied step count vs the default run budget.
    if let (Some(s), Some(h), Some(t)) =
        (sev(RuleId::UncheckpointedRun), plan.timestep, plan.duration)
    {
        let budget = remix_exec::DEFAULT_TIMESTEP_BUDGET as f64;
        if h > 0.0 && t / h > budget && plan.checkpoint_interval.is_none() {
            emit(
                RuleId::UncheckpointedRun,
                s,
                format!(
                    "duration {t:.3e} s at timestep {h:.3e} s implies {:.3e} steps, above \
                     the default run budget of {budget:.0e}: an interrupted run restarts \
                     from zero — declare a checkpoint interval or split the sweep",
                    t / h
                ),
                None,
            );
        }
    }

    // SIM008: long run with no observability declared. A run a tenth the
    // size of the default timestep budget is long enough that a stall or
    // kill without an event log (and without an armed observing
    // telemetry sink) leaves nothing to diagnose from.
    if let (Some(s), Some(h), Some(t)) =
        (sev(RuleId::UnobservedLongRun), plan.timestep, plan.duration)
    {
        let threshold = remix_exec::DEFAULT_TIMESTEP_BUDGET as f64 / 10.0;
        if h > 0.0
            && t / h > threshold
            && plan.event_log.is_none()
            && !remix_telemetry::is_observing()
        {
            let log = format!("{}.events.jsonl", slug(&plan.name));
            emit(
                RuleId::UnobservedLongRun,
                s,
                format!(
                    "duration {t:.3e} s at timestep {h:.3e} s implies {:.3e} steps with no \
                     event log declared and no telemetry sink armed: if the run stalls or \
                     dies there is nothing to diagnose from — declare a JSON-lines event \
                     log or arm an observing sink",
                    t / h
                ),
                Some(Fix::DeclareEventLog { path: log }),
            );
        }
    }

    LintReport { diagnostics: out }
}

/// Filesystem-safe slug of a plan name for the suggested event-log path.
fn slug(name: &str) -> String {
    let s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect();
    if s.is_empty() {
        "plan".to_string()
    } else {
        s
    }
}

fn join_hz(v: &[f64]) -> String {
    v.iter()
        .map(|f| format!("{f:.6e}"))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fired(plan: &SimPlan, rule: RuleId) -> usize {
        lint_plan(plan, &LintConfig::default()).by_rule(rule).len()
    }

    #[test]
    fn empty_plan_is_clean() {
        let report = lint_plan(&SimPlan::new("nothing declared"), &LintConfig::default());
        assert!(report.is_empty(), "{report}");
    }

    #[test]
    fn sim007_step_count_vs_default_budget() {
        // 10 ms at 1 ns: 10⁷ steps, an order above the default budget.
        let runaway = SimPlan::new("marathon tran")
            .with_timestep(1e-9)
            .with_duration(10e-3);
        let report = lint_plan(&runaway, &LintConfig::default());
        let diags = report.by_rule(RuleId::UncheckpointedRun);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warn);
        assert!(diags[0].fix.is_none());
        assert!(diags[0].message.contains("checkpoint"));

        // Declaring a checkpoint interval silences the rule: the run
        // resumes instead of restarting.
        let resumable = runaway.clone().with_checkpoint_interval(1e-4);
        assert_eq!(fired(&resumable, RuleId::UncheckpointedRun), 0);

        // A plan inside the budget never fires.
        let short = SimPlan::new("short tran")
            .with_timestep(1e-9)
            .with_duration(1e-5);
        assert_eq!(fired(&short, RuleId::UncheckpointedRun), 0);
    }

    #[test]
    fn sim008_long_run_without_observability() {
        // 1 ms at 1 ns: 10⁶ steps, an order above a tenth of the default
        // budget — long enough that a silent death is undiagnosable.
        let blind = SimPlan::new("marathon tran")
            .with_timestep(1e-9)
            .with_duration(1e-3);
        let report = lint_plan(&blind, &LintConfig::default());
        let diags = report.by_rule(RuleId::UnobservedLongRun);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warn);
        let fix = diags[0].fix.clone().expect("machine-applicable fix");
        assert_eq!(
            fix,
            Fix::DeclareEventLog {
                path: "marathon_tran.events.jsonl".to_string()
            }
        );

        // The fix silences the rule.
        let mut fixed = blind.clone();
        assert!(fix.apply_to_plan(&mut fixed));
        assert_eq!(fired(&fixed, RuleId::UnobservedLongRun), 0);

        // Declaring an event log up front also silences it.
        let logged = blind.clone().with_event_log("run.events.jsonl");
        assert_eq!(fired(&logged, RuleId::UnobservedLongRun), 0);

        // As does arming an observing telemetry sink on this thread.
        let t = remix_telemetry::Telemetry::with_sink(std::sync::Arc::new(
            remix_telemetry::MemorySink::new(),
        ));
        let _g = t.arm();
        assert_eq!(fired(&blind, RuleId::UnobservedLongRun), 0);
        drop(_g);

        // A short plan never fires.
        let short = SimPlan::new("short tran")
            .with_timestep(1e-9)
            .with_duration(1e-5);
        assert_eq!(fired(&short, RuleId::UnobservedLongRun), 0);
    }

    #[test]
    fn sim001_timestep_vs_lo() {
        // 2.4 GHz LO sampled at 1 ns: 0.42 samples per period.
        let bad = SimPlan::new("coarse tran")
            .with_timestep(1e-9)
            .with_lo(2.4e9);
        let report = lint_plan(&bad, &LintConfig::default());
        let diags = report.by_rule(RuleId::TimestepVsLo);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Deny);
        assert!(matches!(diags[0].fix, Some(Fix::SetTimestep { .. })));

        let ok = SimPlan::new("fine tran")
            .with_timestep(10e-12)
            .with_lo(2.4e9);
        assert_eq!(fired(&ok, RuleId::TimestepVsLo), 0);
    }

    #[test]
    fn sim002_noncoherent_and_aliased_tones() {
        // 5/6 MHz tones on a 0.5 MHz grid: coherent.
        let ok = SimPlan::new("coherent")
            .with_fft(0.5e6 * 32768.0, 32768)
            .with_tones(&[4e6, 5e6, 6e6, 7e6, 1e6]);
        assert_eq!(fired(&ok, RuleId::NoncoherentFft), 0);

        // Off-grid tone.
        let off = SimPlan::new("off-grid")
            .with_fft(0.5e6 * 32768.0, 32768)
            .with_tones(&[5.3e6]);
        let report = lint_plan(&off, &LintConfig::default());
        assert_eq!(report.by_rule(RuleId::NoncoherentFft).len(), 1);
        assert!(!report.is_clean());

        // Aliased: tone beyond fs/2.
        let aliased = SimPlan::new("aliased")
            .with_fft(8e6, 1024)
            .with_tones(&[5e6]);
        let report = lint_plan(&aliased, &LintConfig::default());
        let diags = report.by_rule(RuleId::NoncoherentFft);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("Nyquist"));
        // The snapped plan must be coherent and alias-free.
        let Some(Fix::SnapCoherent {
            sample_rate,
            fft_len,
        }) = diags[0].fix
        else {
            panic!("expected SnapCoherent, got {:?}", diags[0].fix);
        };
        let fixed = SimPlan::new("snapped")
            .with_fft(sample_rate, fft_len)
            .with_tones(&[5e6]);
        assert_eq!(fired(&fixed, RuleId::NoncoherentFft), 0);
    }

    #[test]
    fn sim003_harmonic_truncation() {
        let bad = SimPlan::new("pss").with_harmonics(2, 3);
        let report = lint_plan(&bad, &LintConfig::default());
        let diags = report.by_rule(RuleId::PssHarmonics);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Deny);
        assert_eq!(
            fired(
                &SimPlan::new("ok").with_harmonics(8, 3),
                RuleId::PssHarmonics
            ),
            0
        );
    }

    #[test]
    fn sim004_noise_band_targets() {
        let bad = SimPlan::new("noise")
            .with_noise_band(1e6, 2e6)
            .with_targets(PlanTargets::paper());
        let report = lint_plan(&bad, &LintConfig::default());
        let diags = report.by_rule(RuleId::NoiseBand);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warn);
        let Some(Fix::WidenNoiseBand { min_hz, max_hz }) = diags[0].fix else {
            panic!("no fix");
        };
        assert!(min_hz <= 100e3 && max_hz >= 5e6);

        // Without targets the same band is fine.
        assert_eq!(
            fired(
                &SimPlan::new("noise").with_noise_band(1e6, 2e6),
                RuleId::NoiseBand
            ),
            0
        );
    }

    #[test]
    fn medradio_targets_judge_band_coverage() {
        // A sweep across the full MedRadio band satisfies SIM005…
        let ok = SimPlan::new("medradio_band")
            .with_sweep(400e6, 410e6)
            .with_targets(PlanTargets::medradio());
        assert_eq!(fired(&ok, RuleId::SweepRange), 0);
        // …while one that stops short of 406 MHz is flagged.
        let bad = SimPlan::new("medradio_narrow")
            .with_sweep(401e6, 403e6)
            .with_targets(PlanTargets::medradio());
        assert_eq!(fired(&bad, RuleId::SweepRange), 1);
        // The preset makes no flicker-corner claim.
        assert_eq!(PlanTargets::medradio().flicker_corner, None);
    }

    #[test]
    fn sim005_sweep_coverage() {
        // Fig. 8 style sweep 0.25–7 GHz covers the 0.5–5.5 GHz band.
        let ok = SimPlan::new("fig8")
            .with_sweep(0.25e9, 7e9)
            .with_targets(PlanTargets::paper());
        assert_eq!(fired(&ok, RuleId::SweepRange), 0);

        let bad = SimPlan::new("narrow")
            .with_sweep(1e9, 3e9)
            .with_targets(PlanTargets::paper());
        let report = lint_plan(&bad, &LintConfig::default());
        assert_eq!(report.by_rule(RuleId::SweepRange).len(), 1);
        assert!(report.is_clean(), "warn level must not block");
    }

    #[test]
    fn sim006_duration_vs_tau() {
        let bad = SimPlan::new("short")
            .with_duration(1e-9)
            .with_slowest_tau(1e-6);
        let report = lint_plan(&bad, &LintConfig::default());
        let diags = report.by_rule(RuleId::TranDuration);
        assert_eq!(diags.len(), 1);
        assert!(matches!(
            diags[0].fix,
            Some(Fix::ExtendDuration { seconds }) if seconds >= 4.99e-6
        ));
    }

    #[test]
    fn severity_overrides_apply_to_sim_rules() {
        let bad = SimPlan::new("coarse").with_timestep(1e-9).with_lo(2.4e9);
        let cfg = LintConfig::default().warn(RuleId::TimestepVsLo);
        let report = lint_plan(&bad, &cfg);
        assert!(report.is_clean());
        assert_eq!(report.warn_count(), 1);
        let cfg = LintConfig::default().allow(RuleId::TimestepVsLo);
        assert!(lint_plan(&bad, &cfg).is_empty());
    }

    #[test]
    fn coherent_fix_handles_edge_cases() {
        // Commensurate MHz tones: 1 MHz spacing base.
        let (fs, n) = coherent_fix(&[4e6, 5e6, 6e6, 7e6, 1e6], 1024).unwrap();
        assert_eq!(n, 1024);
        assert!((fs / n as f64 - 1e6).abs() < 1e-6);
        // Incommensurate (irrational ratio) tones: no machine fix.
        assert!(coherent_fix(&[5e6, 5e6 * std::f64::consts::SQRT_2], 1024).is_none());
        // Sub-hertz tone: no fix.
        assert!(coherent_fix(&[0.25], 1024).is_none());
    }
}
