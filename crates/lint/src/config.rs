//! Per-circuit lint configuration: severity overrides and targeted
//! suppressions.

use crate::diag::{RuleId, Severity};
use std::collections::{HashMap, HashSet};

/// Configuration for one lint pass.
///
/// The default configuration runs every rule at its
/// [built-in severity](RuleId::default_severity). Overrides follow the
/// clippy model: `allow` disables a rule, `warn` reports without
/// blocking, `deny` blocks.
///
/// # Examples
///
/// ```
/// use remix_lint::{LintConfig, RuleId, Severity};
///
/// let cfg = LintConfig::default()
///     .allow(RuleId::BulkNotRail)
///     .deny(RuleId::DeadUnderMode)
///     .allow_dead("ibleed_off");
/// assert_eq!(cfg.severity_of(RuleId::BulkNotRail), Severity::Allow);
/// assert_eq!(cfg.severity_of(RuleId::DeadUnderMode), Severity::Deny);
/// assert!(cfg.is_dead_allowed("ibleed_off"));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintConfig {
    overrides: HashMap<RuleId, Severity>,
    allowed_dead: HashSet<String>,
}

impl LintConfig {
    /// Builder form of [`Default::default`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a rule to an explicit severity.
    pub fn set(mut self, rule: RuleId, severity: Severity) -> Self {
        self.overrides.insert(rule, severity);
        self
    }

    /// Disables a rule.
    pub fn allow(self, rule: RuleId) -> Self {
        self.set(rule, Severity::Allow)
    }

    /// Demotes (or promotes) a rule to warn.
    pub fn warn(self, rule: RuleId) -> Self {
        self.set(rule, Severity::Warn)
    }

    /// Promotes a rule to deny.
    pub fn deny(self, rule: RuleId) -> Self {
        self.set(rule, Severity::Deny)
    }

    /// Exempts one element, by instance name, from
    /// [`RuleId::DeadUnderMode`] — the targeted form of suppression for
    /// mode-switched netlists where a disabled branch is intentional.
    pub fn allow_dead(mut self, element_name: &str) -> Self {
        self.allowed_dead.insert(element_name.to_string());
        self
    }

    /// Effective severity of a rule under this configuration.
    pub fn severity_of(&self, rule: RuleId) -> Severity {
        self.overrides
            .get(&rule)
            .copied()
            .unwrap_or_else(|| rule.default_severity())
    }

    /// `true` if the element is exempt from [`RuleId::DeadUnderMode`].
    pub fn is_dead_allowed(&self, element_name: &str) -> bool {
        self.allowed_dead.contains(element_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_rule_catalog() {
        let cfg = LintConfig::default();
        assert_eq!(cfg.severity_of(RuleId::DanglingNode), Severity::Deny);
        assert_eq!(cfg.severity_of(RuleId::BulkNotRail), Severity::Warn);
        assert_eq!(cfg.severity_of(RuleId::DeadUnderMode), Severity::Warn);
        assert!(!cfg.is_dead_allowed("anything"));
    }

    #[test]
    fn overrides_win() {
        let cfg = LintConfig::new()
            .allow(RuleId::NoDcPath)
            .warn(RuleId::CapOnlyNode)
            .deny(RuleId::BulkNotRail);
        assert_eq!(cfg.severity_of(RuleId::NoDcPath), Severity::Allow);
        assert_eq!(cfg.severity_of(RuleId::CapOnlyNode), Severity::Warn);
        assert_eq!(cfg.severity_of(RuleId::BulkNotRail), Severity::Deny);
        // Untouched rules keep their defaults.
        assert_eq!(cfg.severity_of(RuleId::VsourceLoop), Severity::Deny);
    }
}
