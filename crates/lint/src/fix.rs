//! Machine-applicable fixes and the `--fix` fixpoint engine.
//!
//! A [`Fix`] is the lint pass's counterpart of clippy's
//! `MachineApplicable` suggestion: a concrete, semantics-preserving-ish
//! repair attached to a [`Diagnostic`] that a tool can apply without
//! human judgement. Circuit fixes rewrite the in-memory netlist (a
//! ground-tie resistor for a floating subnet, a gmin shunt for a
//! structurally singular block, a rename for a duplicate instance);
//! plan fixes rewrite a [`SimPlan`] (snap an FFT record coherent, refine
//! a timestep, widen a band).
//!
//! [`fix_circuit`] / [`fix_plan`] drive the loop clippy users know as
//! `cargo clippy --fix`: lint, apply every attached fix once, re-lint,
//! repeat until a fixpoint (no new applicable fix) or a small round
//! cap. Findings that survive with no fix are *unfixable* and left for
//! the human; the engine never masks them.

use crate::config::LintConfig;
use crate::diag::{json_str, Diagnostic, LintReport};
use crate::plan::{lint_plan, SimPlan};
use remix_circuit::{Circuit, ElementId};

/// Upper bound on lint→apply rounds. Each round must apply at least one
/// *new* fix to continue, so this only guards against a pathological
/// rule/fix pair that keeps inventing distinct repairs.
const MAX_ROUNDS: usize = 8;

/// One machine-applicable repair.
///
/// Circuit-side fixes name nodes/elements by their string names (stable
/// across the rewrite); plan-side fixes carry the replacement values.
#[derive(Debug, Clone, PartialEq)]
pub enum Fix {
    /// Tie `node` to ground through a resistor of `ohms` — gives a
    /// floating or capacitively-isolated subnet a DC reference without
    /// disturbing the signal path (large `ohms`).
    GroundTie {
        /// Node to tie.
        node: String,
        /// Tie resistance (Ω).
        ohms: f64,
    },
    /// Shunt `node` to ground with a very large resistor (conductance
    /// `1/ohms` ≈ gmin) — the classical cure for a structurally singular
    /// KCL row.
    GminShunt {
        /// Node to shunt.
        node: String,
        /// Shunt resistance (Ω).
        ohms: f64,
    },
    /// Rename every element after the first that bears `name` to a fresh
    /// unique name, so name-based lookups become unambiguous.
    RenameDuplicates {
        /// The contested instance name.
        name: String,
    },
    /// Replace the plan's transient timestep.
    SetTimestep {
        /// New timestep (s).
        seconds: f64,
    },
    /// Replace the FFT record with a coherent one: every readout tone an
    /// integer number of bins, all below Nyquist.
    SnapCoherent {
        /// New record sample rate (Hz).
        sample_rate: f64,
        /// New record length (samples, power of two).
        fft_len: usize,
    },
    /// Raise the PSS harmonic count.
    RaiseHarmonics {
        /// New harmonic count.
        harmonics: usize,
    },
    /// Widen the noise analysis band.
    WidenNoiseBand {
        /// New band start (Hz).
        min_hz: f64,
        /// New band stop (Hz).
        max_hz: f64,
    },
    /// Widen the frequency sweep.
    WidenSweep {
        /// New sweep start (Hz).
        min_hz: f64,
        /// New sweep stop (Hz).
        max_hz: f64,
    },
    /// Extend the transient duration.
    ExtendDuration {
        /// New duration (s).
        seconds: f64,
    },
    /// Declare a JSON-lines event log so a long run leaves a
    /// diagnosable trail.
    DeclareEventLog {
        /// Suggested log file path.
        path: String,
    },
}

impl Fix {
    /// Human-readable suggestion text, rendered after `help:` in
    /// diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Fix::GroundTie { node, ohms } => {
                format!("tie node '{node}' to ground through a {ohms:.1e} Ω resistor")
            }
            Fix::GminShunt { node, ohms } => {
                format!("shunt node '{node}' to ground with a {ohms:.1e} Ω gmin resistor")
            }
            Fix::RenameDuplicates { name } => {
                format!("rename the later elements sharing the name '{name}'")
            }
            Fix::SetTimestep { seconds } => format!("set the timestep to {seconds:.3e} s"),
            Fix::SnapCoherent {
                sample_rate,
                fft_len,
            } => format!(
                "snap the FFT record to fs = {sample_rate:.6e} Hz, N = {fft_len} \
                 (coherent bins)"
            ),
            Fix::RaiseHarmonics { harmonics } => {
                format!("retain at least {harmonics} PSS harmonics")
            }
            Fix::WidenNoiseBand { min_hz, max_hz } => {
                format!("widen the noise band to {min_hz:.3e}–{max_hz:.3e} Hz")
            }
            Fix::WidenSweep { min_hz, max_hz } => {
                format!("widen the sweep to {min_hz:.3e}–{max_hz:.3e} Hz")
            }
            Fix::ExtendDuration { seconds } => {
                format!("extend the transient to {seconds:.3e} s")
            }
            Fix::DeclareEventLog { path } => {
                format!("declare the JSON-lines event log '{path}'")
            }
        }
    }

    /// JSON object form, embedded under the diagnostic's `"fix"` key.
    pub(crate) fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            format!("{v:e}")
        }
        match self {
            Fix::GroundTie { node, ohms } => format!(
                "{{\"action\":\"ground_tie\",\"node\":{},\"ohms\":{}}}",
                json_str(node),
                num(*ohms)
            ),
            Fix::GminShunt { node, ohms } => format!(
                "{{\"action\":\"gmin_shunt\",\"node\":{},\"ohms\":{}}}",
                json_str(node),
                num(*ohms)
            ),
            Fix::RenameDuplicates { name } => format!(
                "{{\"action\":\"rename_duplicates\",\"name\":{}}}",
                json_str(name)
            ),
            Fix::SetTimestep { seconds } => {
                format!(
                    "{{\"action\":\"set_timestep\",\"seconds\":{}}}",
                    num(*seconds)
                )
            }
            Fix::SnapCoherent {
                sample_rate,
                fft_len,
            } => format!(
                "{{\"action\":\"snap_coherent\",\"sample_rate\":{},\"fft_len\":{fft_len}}}",
                num(*sample_rate)
            ),
            Fix::RaiseHarmonics { harmonics } => {
                format!("{{\"action\":\"raise_harmonics\",\"harmonics\":{harmonics}}}")
            }
            Fix::WidenNoiseBand { min_hz, max_hz } => format!(
                "{{\"action\":\"widen_noise_band\",\"min_hz\":{},\"max_hz\":{}}}",
                num(*min_hz),
                num(*max_hz)
            ),
            Fix::WidenSweep { min_hz, max_hz } => format!(
                "{{\"action\":\"widen_sweep\",\"min_hz\":{},\"max_hz\":{}}}",
                num(*min_hz),
                num(*max_hz)
            ),
            Fix::ExtendDuration { seconds } => format!(
                "{{\"action\":\"extend_duration\",\"seconds\":{}}}",
                num(*seconds)
            ),
            Fix::DeclareEventLog { path } => format!(
                "{{\"action\":\"declare_event_log\",\"path\":{}}}",
                json_str(path)
            ),
        }
    }

    /// Applies a circuit-side fix to `circuit`. Returns `false` for
    /// plan-side fixes and for fixes whose target no longer exists.
    pub fn apply_to_circuit(&self, circuit: &mut Circuit) -> bool {
        match self {
            Fix::GroundTie { node, ohms } | Fix::GminShunt { node, ohms } => {
                let Some(n) = circuit.find_node(node) else {
                    return false;
                };
                if n.is_ground() {
                    return false;
                }
                let name = unique_name(circuit, &format!("rfix_{}", sanitize(node)));
                circuit.add_resistor(&name, n, Circuit::gnd(), *ohms);
                true
            }
            Fix::RenameDuplicates { name } => {
                let bearers: Vec<usize> = circuit
                    .elements()
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.name() == name.as_str())
                    .map(|(i, _)| i)
                    .collect();
                if bearers.len() < 2 {
                    return false;
                }
                let mut changed = false;
                // The first bearer keeps the name (matching the lookup
                // rule: name-based lookups resolve to the first).
                for (k, &idx) in bearers.iter().enumerate().skip(1) {
                    let fresh = unique_name(circuit, &format!("{name}_dup{}", k + 1));
                    changed |= circuit.rename_element(ElementId::from_index(idx), &fresh);
                }
                changed
            }
            _ => false,
        }
    }

    /// Applies a plan-side fix to `plan`. Returns `false` for
    /// circuit-side fixes.
    pub fn apply_to_plan(&self, plan: &mut SimPlan) -> bool {
        match self {
            Fix::SetTimestep { seconds } => {
                plan.timestep = Some(*seconds);
                true
            }
            Fix::SnapCoherent {
                sample_rate,
                fft_len,
            } => {
                plan.sample_rate = Some(*sample_rate);
                plan.fft_len = Some(*fft_len);
                true
            }
            Fix::RaiseHarmonics { harmonics } => {
                plan.pss_harmonics = Some(*harmonics);
                true
            }
            Fix::WidenNoiseBand { min_hz, max_hz } => {
                plan.noise_band = Some((*min_hz, *max_hz));
                true
            }
            Fix::WidenSweep { min_hz, max_hz } => {
                plan.sweep_band = Some((*min_hz, *max_hz));
                true
            }
            Fix::ExtendDuration { seconds } => {
                plan.duration = Some(*seconds);
                true
            }
            Fix::DeclareEventLog { path } => {
                plan.event_log = Some(path.clone());
                true
            }
            _ => false,
        }
    }
}

/// Keeps letters, digits and `_`; everything else becomes `_`. Node
/// names flow into generated element names, which the SPICE exporter
/// writes as bare tokens.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// `base`, or `base_2`, `base_3`, … — first name no element bears yet.
fn unique_name(circuit: &Circuit, base: &str) -> String {
    if circuit.find_element(base).is_none() {
        return base.to_string();
    }
    for k in 2.. {
        let cand = format!("{base}_{k}");
        if circuit.find_element(&cand).is_none() {
            return cand;
        }
    }
    unreachable!() // audit: allow(AUD002): the numbered-suffix candidate generator always yields a fresh name
}

/// Result of a [`fix_circuit`] / [`fix_plan`] run.
#[derive(Debug, Clone)]
pub struct FixOutcome {
    /// The lint report of the *final* state, after all fixes.
    pub report: LintReport,
    /// Every fix applied, in application order.
    pub applied: Vec<Fix>,
    /// Lint→apply rounds executed (1 = already at fixpoint).
    pub rounds: usize,
}

impl FixOutcome {
    /// Findings that survived fixing and carry no machine-applicable
    /// repair — the human's remaining to-do list.
    pub fn unfixable(&self) -> Vec<&Diagnostic> {
        self.report
            .diagnostics
            .iter()
            .filter(|d| d.fix.is_none())
            .collect()
    }

    /// `true` when the final report has no deny-level findings.
    pub fn is_clean(&self) -> bool {
        self.report.is_clean()
    }
}

/// Runs the lint→apply loop over a circuit until fixpoint.
///
/// Every diagnostic fix (deny *and* warn level — like `clippy --fix`,
/// which applies machine-applicable suggestions at any lint level) is
/// applied at most once; a fix equal to one already applied is skipped,
/// which guarantees termination even if a rule keeps firing.
pub fn fix_circuit(circuit: &mut Circuit, config: &LintConfig) -> FixOutcome {
    let mut applied: Vec<Fix> = Vec::new();
    let mut rounds = 0;
    loop {
        rounds += 1;
        let report = crate::lint(circuit, config);
        let mut progressed = false;
        for d in &report.diagnostics {
            let Some(fix) = &d.fix else { continue };
            if applied.contains(fix) {
                continue;
            }
            if fix.apply_to_circuit(circuit) {
                applied.push(fix.clone());
                progressed = true;
            }
        }
        if !progressed || rounds >= MAX_ROUNDS {
            let report = if progressed {
                crate::lint(circuit, config)
            } else {
                report
            };
            return FixOutcome {
                report,
                applied,
                rounds,
            };
        }
    }
}

/// Runs the lint→apply loop over a simulation plan until fixpoint.
pub fn fix_plan(plan: &mut SimPlan, config: &LintConfig) -> FixOutcome {
    let mut applied: Vec<Fix> = Vec::new();
    let mut rounds = 0;
    loop {
        rounds += 1;
        let report = lint_plan(plan, config);
        let mut progressed = false;
        for d in &report.diagnostics {
            let Some(fix) = &d.fix else { continue };
            if applied.contains(fix) {
                continue;
            }
            if fix.apply_to_plan(plan) {
                applied.push(fix.clone());
                progressed = true;
            }
        }
        if !progressed || rounds >= MAX_ROUNDS {
            let report = if progressed {
                lint_plan(plan, config)
            } else {
                report
            };
            return FixOutcome {
                report,
                applied,
                rounds,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::RuleId;
    use crate::plan::PlanTargets;
    use remix_circuit::{Circuit, Waveform};

    fn divider() -> Circuit {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let out = c.node("out");
        c.add_vsource("v1", vin, Circuit::gnd(), Waveform::Dc(1.2));
        c.add_resistor("r1", vin, out, 1e3);
        c.add_resistor("r2", out, Circuit::gnd(), 1e3);
        c
    }

    #[test]
    fn ground_tie_adds_a_uniquely_named_resistor() {
        let mut c = divider();
        let mid = c.node("mid");
        let out = c.find_node("out").unwrap();
        c.add_capacitor("ca", out, mid, 1e-12);
        c.add_capacitor("cb", mid, Circuit::gnd(), 1e-12);
        // Occupy the natural fix name to force the uniquifier.
        c.add_resistor("rfix_mid", out, Circuit::gnd(), 1e6);

        let fix = Fix::GroundTie {
            node: "mid".into(),
            ohms: 1e9,
        };
        assert!(fix.apply_to_circuit(&mut c));
        assert!(c.find_element("rfix_mid_2").is_some());
        // Unknown node: refused.
        assert!(!Fix::GroundTie {
            node: "nope".into(),
            ohms: 1e9
        }
        .apply_to_circuit(&mut c));
    }

    #[test]
    fn rename_duplicates_keeps_the_first_bearer() {
        let mut c = divider();
        let out = c.find_node("out").unwrap();
        c.add_resistor("r1", out, Circuit::gnd(), 2e3);
        c.add_resistor("r1", out, Circuit::gnd(), 3e3);
        let fix = Fix::RenameDuplicates { name: "r1".into() };
        assert!(fix.apply_to_circuit(&mut c));
        let names: Vec<&str> = c.elements().iter().map(|e| e.name()).collect();
        assert_eq!(names.iter().filter(|n| **n == "r1").count(), 1);
        assert!(names.contains(&"r1_dup2"));
        assert!(names.contains(&"r1_dup3"));
        // Already unique: nothing to do.
        assert!(!fix.apply_to_circuit(&mut c));
    }

    #[test]
    fn fix_circuit_reaches_a_deny_clean_fixpoint() {
        let mut c = divider();
        let mid = c.node("mid");
        let out = c.find_node("out").unwrap();
        c.add_capacitor("ca", out, mid, 1e-12);
        c.add_capacitor("cb", mid, Circuit::gnd(), 1e-12);
        c.add_resistor("r1", out, Circuit::gnd(), 2e3); // duplicate name

        let outcome = fix_circuit(&mut c, &LintConfig::default());
        assert!(outcome.is_clean(), "{}", outcome.report);
        assert!(outcome
            .applied
            .iter()
            .any(|f| matches!(f, Fix::GroundTie { node, .. } if node == "mid")));
        assert!(outcome
            .applied
            .iter()
            .any(|f| matches!(f, Fix::RenameDuplicates { name } if name == "r1")));
        assert!(outcome.rounds >= 2, "second round must verify the fixpoint");
    }

    #[test]
    fn unfixable_findings_survive_and_are_listed() {
        let mut c = divider();
        c.node("orphan"); // ERC001, no machine fix
        let outcome = fix_circuit(&mut c, &LintConfig::default());
        assert!(!outcome.is_clean());
        assert_eq!(outcome.applied, vec![]);
        assert_eq!(outcome.unfixable().len(), 1);
        assert_eq!(outcome.unfixable()[0].rule, RuleId::DanglingNode);
    }

    #[test]
    fn fix_plan_snaps_and_widens() {
        let mut plan = SimPlan::new("iip3")
            .with_fft(8e6, 1024) // 5 MHz tone beyond Nyquist
            .with_tones(&[5e6])
            .with_noise_band(1e6, 2e6)
            .with_targets(PlanTargets::paper());
        let outcome = fix_plan(&mut plan, &LintConfig::default());
        assert!(outcome.report.is_empty(), "{}", outcome.report);
        assert!(outcome
            .applied
            .iter()
            .any(|f| matches!(f, Fix::SnapCoherent { .. })));
        assert!(outcome
            .applied
            .iter()
            .any(|f| matches!(f, Fix::WidenNoiseBand { .. })));
        let (lo, hi) = plan.noise_band.unwrap();
        assert!(lo <= 100e3 && hi >= 5e6);
    }

    #[test]
    fn fix_json_shapes_are_stable() {
        let j = Fix::GroundTie {
            node: "mid".into(),
            ohms: 1e9,
        }
        .to_json();
        assert_eq!(
            j,
            "{\"action\":\"ground_tie\",\"node\":\"mid\",\"ohms\":1e9}"
        );
        let j = Fix::SnapCoherent {
            sample_rate: 1.6384e10,
            fft_len: 32768,
        }
        .to_json();
        assert!(j.contains("\"action\":\"snap_coherent\""));
        assert!(j.contains("\"fft_len\":32768"));
        for f in [
            Fix::GminShunt {
                node: "x".into(),
                ohms: 1e12,
            },
            Fix::RenameDuplicates { name: "r1".into() },
            Fix::SetTimestep { seconds: 1e-12 },
            Fix::RaiseHarmonics { harmonics: 5 },
            Fix::WidenNoiseBand {
                min_hz: 1e3,
                max_hz: 1e7,
            },
            Fix::WidenSweep {
                min_hz: 5e8,
                max_hz: 5.5e9,
            },
            Fix::ExtendDuration { seconds: 1e-6 },
        ] {
            let j = f.to_json();
            assert!(j.starts_with("{\"action\":\""), "{j}");
            assert!(!f.describe().is_empty());
        }
    }
}
