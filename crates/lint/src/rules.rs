//! The rule registry and rule implementations.
//!
//! Every rule is a pure function over the finished [`Circuit`]: the pass
//! never mutates the netlist and never stops at the first finding. The
//! connectivity rules are all instances of one union-find pass
//! parameterized by a [`graph::Regime`] — the single place that knows
//! which element couplings count as edges for which question (legacy DC
//! paths for `ERC002`, current-carrying branches for `ERC004`/`ERC006`,
//! ideal-source rails for `ERC007`, voltage-defined branches for
//! `ERC003`). The structural-rank pass in [`crate::rank`] reuses the
//! same classifier for its incidence builder, then runs *after* the
//! heuristic rules so it can defer to their more specific reports.

use crate::config::LintConfig;
use crate::diag::{Diagnostic, LintReport, RuleId, Severity};
use crate::fix::Fix;
use crate::graph::{self, Regime, UnionFind};
use crate::rank;
use remix_circuit::{Circuit, Element, Node, Waveform};
use std::collections::HashMap;

/// Tie resistance for repairing a floating subnet (`ERC002`, `ERC005`):
/// high enough not to load any realistic RF node.
const FLOAT_TIE_OHMS: f64 = 1e9;

/// Tie resistance for repairing a DC *bias* defect (`ERC004` return
/// path, `ERC006` gate bias): low enough to actually define the bias.
const BIAS_TIE_OHMS: f64 = 1e6;

/// Runs every rule (honouring `config` severities) and collects all
/// findings, ordered by rule code.
pub(crate) fn run(circuit: &Circuit, config: &LintConfig) -> LintReport {
    let mut pass = Pass::new(circuit, config);
    pass.dangling_node();
    pass.no_dc_path();
    pass.vsource_loop();
    pass.isource_cutset();
    pass.cap_only_node();
    pass.floating_gate();
    pass.bulk_not_rail();
    pass.invalid_value();
    pass.duplicate_name();
    pass.empty_circuit();
    pass.dead_under_mode();
    // Exact structural passes last: they see the heuristic findings and
    // suppress blocks those already denied.
    let exact = rank::run(circuit, config, &pass.out);
    pass.out.extend(exact);
    LintReport {
        diagnostics: pass.out,
    }
}

struct Pass<'a> {
    ckt: &'a Circuit,
    cfg: &'a LintConfig,
    /// Node id → indices of elements touching it (with multiplicity:
    /// an element incident twice contributes two entries).
    incidence: Vec<Vec<usize>>,
    out: Vec<Diagnostic>,
}

impl<'a> Pass<'a> {
    fn new(ckt: &'a Circuit, cfg: &'a LintConfig) -> Self {
        let mut incidence = vec![Vec::new(); ckt.node_count()];
        for (i, e) in ckt.elements().iter().enumerate() {
            for nd in e.nodes() {
                incidence[nd.id()].push(i);
            }
        }
        Pass {
            ckt,
            cfg,
            incidence,
            out: Vec::new(),
        }
    }

    fn sev(&self, rule: RuleId) -> Option<Severity> {
        match self.cfg.severity_of(rule) {
            Severity::Allow => None,
            s => Some(s),
        }
    }

    fn emit(
        &mut self,
        rule: RuleId,
        severity: Severity,
        message: String,
        nodes: Vec<Node>,
        elements: Vec<String>,
        fix: Option<Fix>,
    ) {
        self.out.push(Diagnostic {
            rule,
            severity,
            message,
            nodes: nodes
                .into_iter()
                .map(|n| self.ckt.node_name(n).to_string())
                .collect(),
            elements,
            line: None,
            fix,
        });
    }

    fn incident_element_names(&self, node_id: usize) -> Vec<String> {
        let mut names: Vec<String> = self.incidence[node_id]
            .iter()
            .map(|&i| self.ckt.elements()[i].name().to_string())
            .collect();
        names.dedup();
        names
    }

    fn is_cap(&self, idx: usize) -> bool {
        matches!(self.ckt.elements()[idx], Element::Capacitor { .. })
    }

    /// `true` for a node with at least two connections, all capacitors —
    /// the `ERC005` shape, excluded from `ERC002` so each defect is
    /// reported exactly once, by its most specific rule.
    fn cap_only(&self, node_id: usize) -> bool {
        let inc = &self.incidence[node_id];
        inc.len() >= 2 && inc.iter().all(|&i| self.is_cap(i))
    }

    // --- rules ---------------------------------------------------------

    /// `ERC001`: non-ground node touched by fewer than two terminals.
    fn dangling_node(&mut self) {
        let Some(sev) = self.sev(RuleId::DanglingNode) else {
            return;
        };
        for id in 1..self.ckt.node_count() {
            if self.incidence[id].len() >= 2 {
                continue;
            }
            let node = Node::from_id(id);
            let names = self.incident_element_names(id);
            let msg = if names.is_empty() {
                format!(
                    "node '{}' is declared but never connected",
                    self.ckt.node_name(node)
                )
            } else {
                format!(
                    "node '{}' is touched by only one element terminal",
                    self.ckt.node_name(node)
                )
            };
            self.emit(RuleId::DanglingNode, sev, msg, vec![node], names, None);
        }
    }

    /// `ERC002`: node with no DC path to ground (legacy semantics).
    fn no_dc_path(&mut self) {
        let Some(sev) = self.sev(RuleId::NoDcPath) else {
            return;
        };
        let mut uf = graph::connectivity(self.ckt, Regime::LegacyDc);
        for id in 1..self.ckt.node_count() {
            // Under-connected nodes are ERC001's report; all-capacitor
            // nodes are ERC005's.
            if self.incidence[id].len() < 2 || self.cap_only(id) {
                continue;
            }
            if !uf.same(id, 0) {
                let node = Node::from_id(id);
                let names = self.incident_element_names(id);
                let node_name = self.ckt.node_name(node).to_string();
                let msg = format!("node '{node_name}' has no DC-conducting path to ground");
                let fix = Some(Fix::GroundTie {
                    node: node_name,
                    ohms: FLOAT_TIE_OHMS,
                });
                self.emit(RuleId::NoDcPath, sev, msg, vec![node], names, fix);
            }
        }
    }

    /// `ERC003`: loop of ideal voltage-defined branches.
    fn vsource_loop(&mut self) {
        let Some(sev) = self.sev(RuleId::VsourceLoop) else {
            return;
        };
        let mut uf = UnionFind::new(self.ckt.node_count());
        let mut buf = Vec::new();
        let mut findings = Vec::new();
        for e in self.ckt.elements() {
            buf.clear();
            graph::edges(e, Regime::VoltageDefined, &mut buf);
            for &(a, b) in &buf {
                if !uf.union(a.id(), b.id()) {
                    findings.push((e.name().to_string(), a, b));
                }
            }
        }
        for (name, a, b) in findings {
            let msg = format!(
                "'{name}' closes a loop of ideal voltage-defined branches (V/E/L): \
                 the MNA branch equations are linearly dependent"
            );
            self.emit(RuleId::VsourceLoop, sev, msg, vec![a, b], vec![name], None);
        }
    }

    /// `ERC004`: current source whose terminals no DC-carrying branch
    /// connects.
    fn isource_cutset(&mut self) {
        let Some(sev) = self.sev(RuleId::IsourceCutset) else {
            return;
        };
        let mut carriers = graph::connectivity(self.ckt, Regime::Carrier);
        let mut findings = Vec::new();
        for e in self.ckt.elements() {
            let (p, n) = match e {
                Element::CurrentSource { p, n, .. } | Element::Vccs { p, n, .. } => (*p, *n),
                _ => continue,
            };
            if !carriers.same(p.id(), n.id()) {
                // The repair must land on a terminal the carrier graph
                // has NOT already tied to ground — tying the grounded
                // side again would leave the cutset in place.
                let tie_at = if !carriers.same(p.id(), 0) { p } else { n };
                findings.push((e.name().to_string(), p, n, tie_at));
            }
        }
        for (name, p, n, tie_at) in findings {
            let msg = format!(
                "current source '{name}' forces current between parts of the circuit \
                 with no DC return path: KCL cannot absorb it"
            );
            let fix = Some(Fix::GroundTie {
                node: self.ckt.node_name(tie_at).to_string(),
                ohms: BIAS_TIE_OHMS,
            });
            self.emit(RuleId::IsourceCutset, sev, msg, vec![p, n], vec![name], fix);
        }
    }

    /// `ERC005`: node connected only through capacitors.
    fn cap_only_node(&mut self) {
        let Some(sev) = self.sev(RuleId::CapOnlyNode) else {
            return;
        };
        for id in 1..self.ckt.node_count() {
            if !self.cap_only(id) {
                continue;
            }
            let node = Node::from_id(id);
            let names = self.incident_element_names(id);
            let node_name = self.ckt.node_name(node).to_string();
            let msg = format!(
                "node '{node_name}' connects only to capacitors: no DC conductance, \
                 the operating point is structurally singular"
            );
            let fix = Some(Fix::GroundTie {
                node: node_name,
                ohms: FLOAT_TIE_OHMS,
            });
            self.emit(RuleId::CapOnlyNode, sev, msg, vec![node], names, fix);
        }
    }

    /// `ERC006`: MOS gate with no DC drive path.
    fn floating_gate(&mut self) {
        let Some(sev) = self.sev(RuleId::FloatingGate) else {
            return;
        };
        let mut carriers = graph::connectivity(self.ckt, Regime::Carrier);
        let mut findings = Vec::new();
        for e in self.ckt.elements() {
            if let Element::Mos { name, dev } = e {
                if !carriers.same(dev.g.id(), 0) {
                    findings.push((name.clone(), dev.g));
                }
            }
        }
        for (name, g) in findings {
            let msg = format!(
                "gate of '{}' (node '{}') has no DC drive path to ground; \
                 gates conduct nothing, so its potential is undefined",
                name,
                self.ckt.node_name(g)
            );
            let fix = Some(Fix::GroundTie {
                node: self.ckt.node_name(g).to_string(),
                ohms: BIAS_TIE_OHMS,
            });
            self.emit(RuleId::FloatingGate, sev, msg, vec![g], vec![name], fix);
        }
    }

    /// `ERC007`: MOS bulk not tied to a rail.
    fn bulk_not_rail(&mut self) {
        let Some(sev) = self.sev(RuleId::BulkNotRail) else {
            return;
        };
        let mut rails = graph::connectivity(self.ckt, Regime::Rail);
        let mut findings = Vec::new();
        for e in self.ckt.elements() {
            if let Element::Mos { name, dev } = e {
                if !rails.same(dev.b.id(), 0) {
                    findings.push((name.clone(), dev.b));
                }
            }
        }
        for (name, b) in findings {
            let msg = format!(
                "bulk of '{}' (node '{}') is not tied to a supply rail: \
                 body effect and junction bias become layout-dependent",
                name,
                self.ckt.node_name(b)
            );
            self.emit(RuleId::BulkNotRail, sev, msg, vec![b], vec![name], None);
        }
    }

    /// `ERC008`: device values outside their legal domain. This scans the
    /// element list directly (not just the builder's recorded defects) so
    /// it also catches values corrupted through `element_mut`.
    fn invalid_value(&mut self) {
        let Some(sev) = self.sev(RuleId::InvalidValue) else {
            return;
        };
        fn positive(out: &mut Vec<(String, String)>, name: &str, what: &str, v: f64) {
            if !(v.is_finite() && v > 0.0) {
                out.push((
                    name.to_string(),
                    format!("'{name}': {what} must be positive and finite, got {v}"),
                ));
            }
        }
        fn finite(out: &mut Vec<(String, String)>, name: &str, what: &str, v: f64) {
            if !v.is_finite() {
                out.push((
                    name.to_string(),
                    format!("'{name}': {what} must be finite, got {v}"),
                ));
            }
        }
        let mut findings: Vec<(String, String)> = Vec::new();
        for e in self.ckt.elements() {
            match e {
                Element::Resistor { name, r, .. } => {
                    positive(&mut findings, name, "resistance", *r)
                }
                Element::Capacitor { name, c, .. } => {
                    positive(&mut findings, name, "capacitance", *c)
                }
                Element::Inductor { name, l, .. } => {
                    positive(&mut findings, name, "inductance", *l)
                }
                Element::Mos { name, dev } => {
                    positive(&mut findings, name, "width", dev.w);
                    positive(&mut findings, name, "length", dev.l);
                }
                Element::Vccs { name, gm, .. } => {
                    finite(&mut findings, name, "transconductance", *gm)
                }
                Element::Vcvs { name, gain, .. } => finite(&mut findings, name, "gain", *gain),
                Element::VoltageSource {
                    name, wave, ac_mag, ..
                }
                | Element::CurrentSource {
                    name, wave, ac_mag, ..
                } => {
                    finite(&mut findings, name, "DC value", wave.dc_value());
                    finite(&mut findings, name, "AC magnitude", *ac_mag);
                }
            }
        }
        for (name, msg) in findings {
            self.emit(RuleId::InvalidValue, sev, msg, vec![], vec![name], None);
        }
    }

    /// `ERC009`: instance names used more than once.
    fn duplicate_name(&mut self) {
        let Some(sev) = self.sev(RuleId::DuplicateName) else {
            return;
        };
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for e in self.ckt.elements() {
            *counts.entry(e.name()).or_insert(0) += 1;
        }
        let mut dups: Vec<(String, usize)> = counts
            .into_iter()
            .filter(|&(_, c)| c > 1)
            .map(|(n, c)| (n.to_string(), c))
            .collect();
        dups.sort();
        for (name, count) in dups {
            let msg = format!(
                "instance name '{name}' is used by {count} elements; \
                 name-based lookups resolve to the first"
            );
            let fix = Some(Fix::RenameDuplicates { name: name.clone() });
            self.emit(RuleId::DuplicateName, sev, msg, vec![], vec![name], fix);
        }
    }

    /// `ERC010`: empty circuit.
    fn empty_circuit(&mut self) {
        let Some(sev) = self.sev(RuleId::EmptyCircuit) else {
            return;
        };
        if self.ckt.elements().is_empty() {
            self.emit(
                RuleId::EmptyCircuit,
                sev,
                "circuit contains no elements".to_string(),
                vec![],
                vec![],
                None,
            );
        }
    }

    /// `ERC011`: elements with no effect as configured. Suppressible per
    /// element via [`LintConfig::allow_dead`] for intentional mode-off
    /// branches.
    fn dead_under_mode(&mut self) {
        let Some(sev) = self.sev(RuleId::DeadUnderMode) else {
            return;
        };
        let mut findings: Vec<(String, String)> = Vec::new();
        for e in self.ckt.elements() {
            if self.cfg.is_dead_allowed(e.name()) {
                continue;
            }
            if let Element::CurrentSource {
                name, wave, ac_mag, ..
            } = e
            {
                if matches!(wave, Waveform::Dc(v) if *v == 0.0) && *ac_mag == 0.0 {
                    findings.push((
                        name.clone(),
                        format!(
                            "current source '{name}' is zero-valued with no AC stimulus: \
                             it cannot affect any analysis in this mode"
                        ),
                    ));
                    continue;
                }
            }
            let nodes = e.nodes();
            if nodes.len() >= 2 && nodes.iter().all(|n| *n == nodes[0]) {
                findings.push((
                    e.name().to_string(),
                    format!(
                        "'{}' has every terminal on node '{}': it is a self-loop \
                         with no effect",
                        e.name(),
                        self.ckt.node_name(nodes[0])
                    ),
                ));
            }
        }
        for (name, msg) in findings {
            self.emit(RuleId::DeadUnderMode, sev, msg, vec![], vec![name], None);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{lint, LintConfig, RuleId, Severity};
    use remix_circuit::{Circuit, MosModel, Waveform};

    /// A known-clean core: source, divider, load — reused so each rule
    /// test isolates its one defect.
    fn clean_base() -> Circuit {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let out = c.node("out");
        c.add_vsource("v1", vin, Circuit::gnd(), Waveform::Dc(1.2));
        c.add_resistor("r1", vin, out, 1e3);
        c.add_resistor("r2", out, Circuit::gnd(), 1e3);
        c
    }

    fn fired(ckt: &Circuit, rule: RuleId) -> usize {
        lint(ckt, &LintConfig::default()).by_rule(rule).len()
    }

    fn suppressed(ckt: &Circuit, rule: RuleId) -> usize {
        lint(ckt, &LintConfig::default().allow(rule))
            .by_rule(rule)
            .len()
    }

    #[test]
    fn clean_circuit_has_no_findings() {
        let c = clean_base();
        let report = lint(&c, &LintConfig::default());
        assert!(report.is_empty(), "unexpected findings:\n{report}");
    }

    #[test]
    fn erc001_dangling_node() {
        let mut c = clean_base();
        let stub = c.node("stub");
        let out = c.find_node("out").unwrap();
        c.add_resistor("r_stub", out, stub, 1e3);
        c.node("never_used");
        assert_eq!(fired(&c, RuleId::DanglingNode), 2);
        let report = lint(&c, &LintConfig::default());
        let diags = report.by_rule(RuleId::DanglingNode);
        assert!(diags.iter().any(|d| d.nodes == ["stub"]
            && d.elements == ["r_stub"]
            && d.severity == Severity::Deny));
        assert!(diags
            .iter()
            .any(|d| d.nodes == ["never_used"] && d.message.contains("never connected")));
        assert_eq!(suppressed(&c, RuleId::DanglingNode), 0);
    }

    #[test]
    fn erc002_no_dc_path() {
        let mut c = clean_base();
        let vin = c.find_node("vin").unwrap();
        let isl = c.node("island");
        let isl2 = c.node("island2");
        // An RC island reachable only through a capacitor.
        c.add_capacitor("c_couple", vin, isl, 1e-12);
        c.add_resistor("r_isl_a", isl, isl2, 1e3);
        c.add_resistor("r_isl_b", isl, isl2, 1e3);
        let report = lint(&c, &LintConfig::default());
        let diags = report.by_rule(RuleId::NoDcPath);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().any(|d| d.nodes == ["island"]));
        // ERC001 stays quiet: every island node has two connections.
        assert!(report.by_rule(RuleId::DanglingNode).is_empty());
        assert_eq!(suppressed(&c, RuleId::NoDcPath), 0);
    }

    #[test]
    fn erc003_vsource_loop() {
        let mut c = clean_base();
        let vin = c.find_node("vin").unwrap();
        // A second ideal source in parallel with v1.
        c.add_vsource("v_dup", vin, Circuit::gnd(), Waveform::Dc(1.2));
        let report = lint(&c, &LintConfig::default());
        let diags = report.by_rule(RuleId::VsourceLoop);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].elements, ["v_dup"]);
        assert_eq!(suppressed(&c, RuleId::VsourceLoop), 0);

        // Inductors are ideal at DC too: L in parallel with V is a loop.
        let mut c2 = clean_base();
        let vin2 = c2.find_node("vin").unwrap();
        c2.add_inductor("l_choke", vin2, Circuit::gnd(), 1e-9);
        assert_eq!(fired(&c2, RuleId::VsourceLoop), 1);
    }

    #[test]
    fn erc004_isource_cutset() {
        let mut c = clean_base();
        let hang = c.node("hang");
        // Current forced into a node whose only other branch is a cap:
        // no DC return path.
        c.add_isource("i_bad", hang, Circuit::gnd(), Waveform::Dc(1e-3));
        c.add_capacitor("c_hang", hang, Circuit::gnd(), 1e-12);
        let report = lint(&c, &LintConfig::default());
        let diags = report.by_rule(RuleId::IsourceCutset);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].elements, ["i_bad"]);
        assert_eq!(suppressed(&c, RuleId::IsourceCutset), 0);

        // With a bleed resistor the same source is fine.
        let mut ok = clean_base();
        let h2 = ok.node("hang");
        ok.add_isource("i_ok", h2, Circuit::gnd(), Waveform::Dc(1e-3));
        ok.add_resistor("r_bleed", h2, Circuit::gnd(), 1e6);
        assert_eq!(fired(&ok, RuleId::IsourceCutset), 0);
    }

    #[test]
    fn erc005_cap_only_node() {
        let mut c = clean_base();
        let mid = c.node("mid");
        let out = c.find_node("out").unwrap();
        // Series caps: the midpoint has no DC conductance at all.
        c.add_capacitor("c_a", out, mid, 1e-12);
        c.add_capacitor("c_b", mid, Circuit::gnd(), 1e-12);
        let report = lint(&c, &LintConfig::default());
        let diags = report.by_rule(RuleId::CapOnlyNode);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].nodes, ["mid"]);
        // The more general no-DC-path rule defers to this one.
        assert!(report.by_rule(RuleId::NoDcPath).is_empty());
        assert_eq!(suppressed(&c, RuleId::CapOnlyNode), 0);
    }

    #[test]
    fn erc006_floating_gate() {
        let mut c = clean_base();
        let vin = c.find_node("vin").unwrap();
        let g = c.node("gate");
        let d = c.node("drain");
        c.add_resistor("r_d", vin, d, 1e3);
        // Gate reachable only through a capacitor: AC-coupled, DC-floating.
        c.add_capacitor("c_ac", vin, g, 1e-12);
        c.add_mosfet(
            "m1",
            MosModel::nmos_65nm(),
            10e-6,
            65e-9,
            d,
            g,
            Circuit::gnd(),
            Circuit::gnd(),
        );
        let report = lint(&c, &LintConfig::default());
        let diags = report.by_rule(RuleId::FloatingGate);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].elements, ["m1"]);
        assert_eq!(diags[0].nodes, ["gate"]);
        assert_eq!(suppressed(&c, RuleId::FloatingGate), 0);

        // A gate bias resistor fixes it.
        c.add_resistor("r_bias", g, Circuit::gnd(), 1e6);
        assert_eq!(fired(&c, RuleId::FloatingGate), 0);
    }

    #[test]
    fn erc007_bulk_not_rail() {
        let mut c = clean_base();
        let vin = c.find_node("vin").unwrap();
        let d = c.node("drain");
        let body = c.node("body");
        c.add_resistor("r_d", vin, d, 1e3);
        // Bulk tied through a resistor, not to a rail.
        c.add_resistor("r_body", body, Circuit::gnd(), 100.0);
        c.add_mosfet(
            "m1",
            MosModel::nmos_65nm(),
            10e-6,
            65e-9,
            d,
            vin,
            Circuit::gnd(),
            body,
        );
        let report = lint(&c, &LintConfig::default());
        let diags = report.by_rule(RuleId::BulkNotRail);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warn);
        assert_eq!(diags[0].elements, ["m1"]);
        // Warn-level: the report is still clean for analysis purposes.
        assert!(report.is_clean());
        assert_eq!(suppressed(&c, RuleId::BulkNotRail), 0);
    }

    #[test]
    fn erc008_invalid_value() {
        let mut c = clean_base();
        let out = c.find_node("out").unwrap();
        c.add_resistor("r_neg", out, Circuit::gnd(), -50.0);
        c.add_capacitor("c_nan", out, Circuit::gnd(), f64::NAN);
        let report = lint(&c, &LintConfig::default());
        let diags = report.by_rule(RuleId::InvalidValue);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().any(|d| d.elements == ["r_neg"]));
        // The builder recorded the same defects for fail-fast callers.
        assert_eq!(c.defects().len(), 2);
        assert_eq!(suppressed(&c, RuleId::InvalidValue), 0);
    }

    #[test]
    fn erc008_catches_post_build_mutation() {
        let mut c = clean_base();
        let id = c.find_element("r1").unwrap();
        if let remix_circuit::Element::Resistor { r, .. } = c.element_mut(id) {
            *r = 0.0;
        }
        // Nothing recorded at build time, but the scan still sees it.
        assert!(c.defects().is_empty());
        assert_eq!(fired(&c, RuleId::InvalidValue), 1);
    }

    #[test]
    fn erc009_duplicate_name() {
        let mut c = clean_base();
        let out = c.find_node("out").unwrap();
        c.add_resistor("r1", out, Circuit::gnd(), 2e3);
        let report = lint(&c, &LintConfig::default());
        let diags = report.by_rule(RuleId::DuplicateName);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].elements, ["r1"]);
        assert!(diags[0].message.contains("2 elements"));
        assert_eq!(suppressed(&c, RuleId::DuplicateName), 0);
    }

    #[test]
    fn erc010_empty_circuit() {
        let c = Circuit::new();
        assert_eq!(fired(&c, RuleId::EmptyCircuit), 1);
        assert_eq!(suppressed(&c, RuleId::EmptyCircuit), 0);
    }

    #[test]
    fn erc011_dead_under_mode() {
        let mut c = clean_base();
        let out = c.find_node("out").unwrap();
        c.add_isource("i_off", out, Circuit::gnd(), Waveform::Dc(0.0));
        c.add_resistor("r_self", out, out, 1e3);
        let report = lint(&c, &LintConfig::default());
        let diags = report.by_rule(RuleId::DeadUnderMode);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.severity == Severity::Warn));

        // Targeted suppression by element name…
        let cfg = LintConfig::default().allow_dead("i_off");
        assert_eq!(lint(&c, &cfg).by_rule(RuleId::DeadUnderMode).len(), 1);
        // …and blanket suppression of the rule.
        assert_eq!(suppressed(&c, RuleId::DeadUnderMode), 0);
    }

    #[test]
    fn severity_overrides_flow_into_diagnostics() {
        let mut c = clean_base();
        c.node("orphan");
        let cfg = LintConfig::default().warn(RuleId::DanglingNode);
        let report = lint(&c, &cfg);
        assert_eq!(
            report.by_rule(RuleId::DanglingNode)[0].severity,
            Severity::Warn
        );
        assert!(report.is_clean());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            // Any resistor ladder from a source to ground is lint-clean:
            // the engine must not false-positive on ordinary topologies.
            fn resistor_ladders_are_clean(n in 1usize..8, r in 1.0f64..1e6) {
                let mut c = Circuit::new();
                let mut prev = c.node("n0");
                c.add_vsource("vs", prev, Circuit::gnd(), Waveform::Dc(1.0));
                for k in 1..=n {
                    let next = if k == n {
                        Circuit::gnd()
                    } else {
                        c.node(&format!("n{k}"))
                    };
                    c.add_resistor(&format!("r{k}"), prev, next, r * k as f64);
                    prev = next;
                }
                let report = lint(&c, &LintConfig::default());
                prop_assert!(report.is_empty());
            }
        }
    }
}
