//! # remix-lint
//!
//! A clippy-style electrical-rule-check (ERC) engine for `remix`
//! netlists. Where the old `Circuit::validate()` stopped at the first
//! structural problem, `remix-lint` runs **every** rule over the whole
//! circuit and returns a [`LintReport`] of all findings, each tagged
//! with a stable rule id (`ERC001_DANGLING_NODE`, …), a severity, and
//! node/element provenance.
//!
//! Severities follow the clippy model:
//!
//! * **deny** — the circuit's MNA system is structurally singular (or
//!   the deck cannot mean what was written); analyses refuse to run;
//! * **warn** — suspicious but solvable; reported and carried along;
//! * **allow** — rule disabled.
//!
//! Defaults come from [`RuleId::default_severity`] and are overridden
//! per circuit with [`LintConfig`].
//!
//! # Examples
//!
//! ```
//! use remix_circuit::{Circuit, Waveform};
//! use remix_lint::{lint, LintConfig, RuleId};
//!
//! let mut ckt = Circuit::new();
//! let a = ckt.node("a");
//! ckt.add_vsource("v1", a, Circuit::gnd(), Waveform::Dc(1.0));
//! ckt.add_resistor("r1", a, Circuit::gnd(), 1e3);
//! // A second ideal source across the same nodes: ERC003.
//! ckt.add_vsource("v2", a, Circuit::gnd(), Waveform::Dc(1.0));
//!
//! let report = lint(&ckt, &LintConfig::default());
//! assert!(!report.is_clean());
//! assert_eq!(report.by_rule(RuleId::VsourceLoop).len(), 1);
//! println!("{}", report.render_text());
//! ```
//!
//! Beyond the shape-based heuristics, the [`rank`](crate::diag::RuleId::StructuralSingular)
//! pass proves structural MNA singularity exactly (`ERC012`) via maximum
//! matching on the incidence bipartite graph, the [`plan`] module lints
//! *simulation plans* (`SIM001`–`SIM007`: aliasing timesteps,
//! non-coherent FFT readouts, truncated PSS harmonics, mis-scoped noise
//! bands and sweeps, uncheckpointed marathon runs), and the [`fix`] module applies machine-applicable
//! repairs to a fixpoint — the engine behind `remix-bench lint --fix`.
//!
//! The rule catalog lives in [`RuleId`]; `DESIGN.md` at the repository
//! root carries the same table with rationale.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod diag;
pub mod fix;
mod graph;
pub mod plan;
mod rank;
mod rules;
pub mod spice;

pub use config::LintConfig;
pub use diag::{Diagnostic, LintReport, RuleId, Severity, SCHEMA_VERSION};
pub use fix::{fix_circuit, fix_plan, Fix, FixOutcome};
pub use plan::{lint_plan, PlanTargets, SimPlan};
pub use spice::{import_spice, lint_deck, ImportError};

use remix_circuit::Circuit;

/// Runs the full rule set over `circuit` under `config`.
///
/// Never fails and never stops early: the report carries every finding
/// from every enabled rule, ordered by rule code.
pub fn lint(circuit: &Circuit, config: &LintConfig) -> LintReport {
    rules::run(circuit, config)
}
