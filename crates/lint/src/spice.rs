//! Linted SPICE import: parse a deck, then run the full ERC pass before
//! handing the circuit to callers.

use crate::config::LintConfig;
use crate::diag::LintReport;
use remix_circuit::{from_spice, Circuit, SpiceParseError};
use std::fmt;

/// Why a linted import failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ImportError {
    /// The deck did not parse.
    Parse(SpiceParseError),
    /// The deck parsed but has deny-level ERC findings; the full report
    /// (including warns) is attached.
    Lint(LintReport),
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::Parse(e) => write!(f, "SPICE parse error: {e}"),
            ImportError::Lint(report) => {
                write!(f, "imported deck fails electrical rule checks:\n{report}")
            }
        }
    }
}

impl std::error::Error for ImportError {}

impl From<SpiceParseError> for ImportError {
    fn from(e: SpiceParseError) -> Self {
        ImportError::Parse(e)
    }
}

/// Parses a SPICE deck and lints the result.
///
/// On success the report still carries any warn-level findings so
/// callers can surface them; a deck with deny-level findings is
/// rejected with the complete report.
///
/// # Errors
///
/// [`ImportError::Parse`] if the deck does not parse,
/// [`ImportError::Lint`] if it parses but is electrically broken.
///
/// # Examples
///
/// ```
/// use remix_lint::{import_spice, LintConfig};
///
/// let deck = "* divider\nv1 in 0 dc 1.2\nr2 in out 1k\nr3 out 0 1k\n.end\n";
/// let (ckt, report) = import_spice(deck, &LintConfig::default()).unwrap();
/// assert_eq!(ckt.element_count(), 3);
/// assert!(report.is_empty());
/// ```
pub fn import_spice(deck: &str, config: &LintConfig) -> Result<(Circuit, LintReport), ImportError> {
    let circuit = from_spice(deck)?;
    let report = crate::lint(&circuit, config);
    if report.is_clean() {
        Ok((circuit, report))
    } else {
        Err(ImportError::Lint(report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RuleId;

    #[test]
    fn clean_deck_imports() {
        let deck = "* rc\nv1 in 0 dc 1.0\nr2 in out 1k\nc3 out 0 1p\nr4 out 0 10k\n.end\n";
        let (ckt, report) = import_spice(deck, &LintConfig::default()).unwrap();
        assert_eq!(ckt.element_count(), 4);
        assert!(report.is_clean());
    }

    #[test]
    fn broken_deck_is_rejected_with_full_report() {
        // 'mid' sits between two capacitors: ERC005.
        let deck = "* broken\nv1 in 0 dc 1.0\nr2 in 0 1k\nc3 in mid 1p\nc4 mid 0 1p\n.end\n";
        match import_spice(deck, &LintConfig::default()) {
            Err(ImportError::Lint(report)) => {
                assert_eq!(report.by_rule(RuleId::CapOnlyNode).len(), 1);
                assert!(report.render_text().contains("mid"));
            }
            other => panic!("expected lint rejection, got {other:?}"),
        }
    }

    #[test]
    fn config_can_admit_a_flagged_deck() {
        let deck = "* broken\nv1 in 0 dc 1.0\nr2 in 0 1k\nc3 in mid 1p\nc4 mid 0 1p\n.end\n";
        let cfg = LintConfig::default().warn(RuleId::CapOnlyNode);
        let (_, report) = import_spice(deck, &cfg).unwrap();
        assert_eq!(report.warn_count(), 1);
    }

    #[test]
    fn parse_errors_pass_through() {
        assert!(matches!(
            import_spice("r1 a\n", &LintConfig::default()),
            Err(ImportError::Parse(_))
        ));
    }
}
