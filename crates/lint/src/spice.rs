//! Linted SPICE import: parse a deck, then run the full ERC pass — both
//! the circuit-shape rules and the deck-structure rules (ERC014–ERC016)
//! — before handing the circuit to callers.

use crate::config::LintConfig;
use crate::diag::{Diagnostic, LintReport, RuleId, Severity};
use remix_circuit::{parse_spice, Circuit, DeckFindingKind, SpiceDeck, SpiceParseError};
use std::fmt;

/// Why a linted import failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ImportError {
    /// The deck did not parse.
    Parse(SpiceParseError),
    /// The deck parsed but has deny-level ERC findings; the full report
    /// (including warns) is attached.
    Lint(LintReport),
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::Parse(e) => write!(f, "SPICE parse error: {e}"),
            ImportError::Lint(report) => {
                write!(f, "imported deck fails electrical rule checks:\n{report}")
            }
        }
    }
}

impl std::error::Error for ImportError {}

impl From<SpiceParseError> for ImportError {
    fn from(e: SpiceParseError) -> Self {
        ImportError::Parse(e)
    }
}

/// Lints a parsed deck: the circuit-shape rules over the flattened
/// circuit, plus the deck-structure rules over the parser's
/// [`DeckFinding`]s — ERC014 (`.param` hygiene), ERC015 (subckt
/// instantiation), ERC016 (`.param` cycle). Deck diagnostics carry the
/// 1-based source line; the combined report is ordered by rule code.
///
/// Deck rules have no machine-applicable `fix`: the `--fix` rewrite
/// emits the flattened circuit, which by construction contains no
/// `.param` or `X` cards, so applying any circuit fix clears them.
///
/// [`DeckFinding`]: remix_circuit::DeckFinding
pub fn lint_deck(deck: &SpiceDeck, config: &LintConfig) -> LintReport {
    let mut report = crate::lint(&deck.circuit, config);
    for f in &deck.findings {
        let rule = match f.kind {
            DeckFindingKind::UnusedParam | DeckFindingKind::UndefinedParam => RuleId::ParamHygiene,
            DeckFindingKind::UnknownSubckt | DeckFindingKind::SubcktArity => RuleId::SubcktInstance,
            DeckFindingKind::ParamCycle => RuleId::ParamCycle,
        };
        let severity = config.severity_of(rule);
        if severity == Severity::Allow {
            continue;
        }
        report.diagnostics.push(Diagnostic {
            rule,
            severity,
            message: f.detail.clone(),
            nodes: vec![],
            elements: vec![f.subject.clone()],
            line: Some(f.line),
            fix: None,
        });
    }
    report
        .diagnostics
        .sort_by(|a, b| (a.rule.code(), a.line).cmp(&(b.rule.code(), b.line)));
    report
}

/// Parses a SPICE deck and lints the result — deck-structure rules
/// included.
///
/// On success the report still carries any warn-level findings so
/// callers can surface them; a deck with deny-level findings is
/// rejected with the complete report.
///
/// # Errors
///
/// [`ImportError::Parse`] if the deck does not parse,
/// [`ImportError::Lint`] if it parses but is electrically broken.
///
/// # Examples
///
/// ```
/// use remix_lint::{import_spice, LintConfig};
///
/// let deck = "* divider\nv1 in 0 dc 1.2\nr2 in out 1k\nr3 out 0 1k\n.end\n";
/// let (ckt, report) = import_spice(deck, &LintConfig::default()).unwrap();
/// assert_eq!(ckt.element_count(), 3);
/// assert!(report.is_empty());
/// ```
pub fn import_spice(deck: &str, config: &LintConfig) -> Result<(Circuit, LintReport), ImportError> {
    let parsed = parse_spice(deck)?;
    let report = lint_deck(&parsed, config);
    if report.is_clean() {
        Ok((parsed.circuit, report))
    } else {
        Err(ImportError::Lint(report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RuleId;

    #[test]
    fn clean_deck_imports() {
        let deck = "* rc\nv1 in 0 dc 1.0\nr2 in out 1k\nc3 out 0 1p\nr4 out 0 10k\n.end\n";
        let (ckt, report) = import_spice(deck, &LintConfig::default()).unwrap();
        assert_eq!(ckt.element_count(), 4);
        assert!(report.is_clean());
    }

    #[test]
    fn broken_deck_is_rejected_with_full_report() {
        // 'mid' sits between two capacitors: ERC005.
        let deck = "* broken\nv1 in 0 dc 1.0\nr2 in 0 1k\nc3 in mid 1p\nc4 mid 0 1p\n.end\n";
        match import_spice(deck, &LintConfig::default()) {
            Err(ImportError::Lint(report)) => {
                assert_eq!(report.by_rule(RuleId::CapOnlyNode).len(), 1);
                assert!(report.render_text().contains("mid"));
            }
            other => panic!("expected lint rejection, got {other:?}"),
        }
    }

    #[test]
    fn config_can_admit_a_flagged_deck() {
        let deck = "* broken\nv1 in 0 dc 1.0\nr2 in 0 1k\nc3 in mid 1p\nc4 mid 0 1p\n.end\n";
        let cfg = LintConfig::default().warn(RuleId::CapOnlyNode);
        let (_, report) = import_spice(deck, &cfg).unwrap();
        assert_eq!(report.warn_count(), 1);
    }

    #[test]
    fn parse_errors_pass_through() {
        assert!(matches!(
            import_spice("r1 a\n", &LintConfig::default()),
            Err(ImportError::Parse(_))
        ));
    }

    const UNUSED_PARAM_DECK: &str = "* one warn\n\
        .param lonely=3\n\
        v1 in 0 dc 1.0\nr2 in 0 1k\n.end\n";

    #[test]
    fn warn_level_finding_surfaces_but_circuit_still_returns() {
        // The deck parses and trips exactly one warn-level rule (ERC014):
        // the circuit must come back along with the surfaced report.
        let (ckt, report) = import_spice(UNUSED_PARAM_DECK, &LintConfig::default()).unwrap();
        assert_eq!(ckt.element_count(), 2);
        assert_eq!(report.warn_count(), 1);
        assert_eq!(report.deny_count(), 0);
        let diags = report.by_rule(RuleId::ParamHygiene);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, Some(2));
        assert!(diags[0].message.contains("lonely"));
    }

    #[test]
    fn warn_level_finding_denies_under_override() {
        let cfg = LintConfig::default().deny(RuleId::ParamHygiene);
        match import_spice(UNUSED_PARAM_DECK, &cfg) {
            Err(ImportError::Lint(report)) => {
                assert_eq!(report.deny_count(), 1);
            }
            other => panic!("expected lint rejection, got {other:?}"),
        }
    }

    #[test]
    fn erc014_fires_and_suppresses() {
        let parsed = remix_circuit::parse_spice(UNUSED_PARAM_DECK).unwrap();
        let fired = lint_deck(&parsed, &LintConfig::default());
        assert_eq!(fired.by_rule(RuleId::ParamHygiene).len(), 1);
        let quiet = lint_deck(&parsed, &LintConfig::default().allow(RuleId::ParamHygiene));
        assert!(quiet.by_rule(RuleId::ParamHygiene).is_empty());
        assert!(quiet.is_clean());
    }

    #[test]
    fn erc015_fires_and_suppresses() {
        let deck = "v1 in 0 dc 1.0\nr2 in 0 1k\nx1 in 0 nosuch\n.end\n";
        let parsed = remix_circuit::parse_spice(deck).unwrap();
        let fired = lint_deck(&parsed, &LintConfig::default());
        let diags = fired.by_rule(RuleId::SubcktInstance);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Deny);
        assert_eq!(diags[0].line, Some(3));
        let quiet = lint_deck(
            &parsed,
            &LintConfig::default().allow(RuleId::SubcktInstance),
        );
        assert!(quiet.by_rule(RuleId::SubcktInstance).is_empty());
    }

    #[test]
    fn erc016_fires_and_suppresses() {
        let deck = ".param a={b*2} b={a/2}\nv1 in 0 dc 1.0\nr2 in 0 1k\n.end\n";
        let parsed = remix_circuit::parse_spice(deck).unwrap();
        let fired = lint_deck(&parsed, &LintConfig::default());
        let diags = fired.by_rule(RuleId::ParamCycle);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Deny);
        assert!(diags[0].message.contains("cycle"));
        let quiet = lint_deck(&parsed, &LintConfig::default().allow(RuleId::ParamCycle));
        assert!(quiet.by_rule(RuleId::ParamCycle).is_empty());
    }

    #[test]
    fn deck_diagnostics_sort_into_rule_code_order() {
        // ERC005 (circuit) + ERC014 (deck) + ERC015 (deck): the merged
        // report stays ordered by code, with lines rendered.
        let deck = ".param lonely=1\n\
                    v1 in 0 dc 1.0\nr2 in 0 1k\n\
                    c3 in mid 1p\nc4 mid 0 1p\n\
                    x1 in 0 nosuch\n.end\n";
        let parsed = remix_circuit::parse_spice(deck).unwrap();
        let report = lint_deck(&parsed, &LintConfig::default());
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.rule.code()).collect();
        let mut sorted = codes.clone();
        sorted.sort();
        assert_eq!(codes, sorted, "{codes:?}");
        assert!(report.render_text().contains("line 6"));
    }
}
