//! Diagnostic types: rule identifiers, severities, findings, reports.

use crate::fix::Fix;
use std::fmt;

/// Version of the JSON report layout produced by
/// [`LintReport::render_json`]. Bumped whenever the shape of the emitted
/// object changes so downstream consumers of `remix-bench lint --json`
/// can detect drift. History: 1 = PR 1 (`deny`/`warn`/`diagnostics`),
/// 2 = this field plus per-diagnostic `fix` objects, 3 = optional
/// per-diagnostic `line` (deck source line for frontend rules
/// ERC014–ERC016).
pub const SCHEMA_VERSION: u32 = 3;

/// How seriously a finding is treated.
///
/// Mirrors the clippy lint levels: `Deny` findings make analyses refuse
/// the circuit, `Warn` findings are reported but non-fatal, `Allow`
/// disables the rule entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Rule disabled; no diagnostics are emitted.
    Allow,
    /// Reported, but does not block analyses.
    Warn,
    /// Reported and blocks analyses (structural MNA singularity or a
    /// deck that cannot mean what was written).
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// Stable identifier of an electrical-rule check.
///
/// The `ERCnnn_*` codes are part of the public interface: they appear in
/// rendered diagnostics, JSON output, and [`LintConfig`] overrides, and
/// existing codes are never renumbered.
///
/// [`LintConfig`]: crate::LintConfig
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// `ERC001` — a non-ground node touched by fewer than two element
    /// terminals.
    DanglingNode,
    /// `ERC002` — a node with no DC-conducting path to ground.
    NoDcPath,
    /// `ERC003` — a loop of ideal voltage-defined branches (V, E, L):
    /// the MNA branch equations become linearly dependent.
    VsourceLoop,
    /// `ERC004` — a current source bridging parts of the circuit that no
    /// DC-current-carrying branch connects: KCL cannot absorb the forced
    /// current.
    IsourceCutset,
    /// `ERC005` — a node whose every connection is a capacitor: no DC
    /// conductance, structurally singular operating point.
    CapOnlyNode,
    /// `ERC006` — a MOS gate with no DC drive path to ground (gates
    /// conduct nothing, so a gate reachable only through other gates or
    /// capacitors floats).
    FloatingGate,
    /// `ERC007` — a MOS bulk not tied to a supply-rail node (a node
    /// pinned to ground through ideal voltage sources).
    BulkNotRail,
    /// `ERC008` — a device value outside its legal domain (zero,
    /// negative, or non-finite where positive-finite is required).
    InvalidValue,
    /// `ERC009` — an instance name used by more than one element.
    DuplicateName,
    /// `ERC010` — a circuit with no elements.
    EmptyCircuit,
    /// `ERC011` — an element that cannot affect any analysis as
    /// configured (zero-valued stimulus, or all terminals shorted to one
    /// node); usually a leftover from mode switching.
    DeadUnderMode,
    /// `ERC012` — the MNA system is *provably* structurally singular in
    /// some regime: maximum matching on the incidence bipartite graph
    /// leaves equations unmatched (Dulmage–Mendelsohn under-determined
    /// block). Exact where `ERC001`–`ERC006` are heuristic.
    StructuralSingular,
    /// `ERC013` — element values span enough decades that LU pivots of
    /// the assembled MNA matrix risk catastrophic cancellation.
    IllScaled,
    /// `ERC014` — a `.param` in the source deck that is defined but never
    /// referenced, or whose definition references a name that is never
    /// defined (deck-frontend hygiene; reported via `lint_deck`).
    ParamHygiene,
    /// `ERC015` — an `X` card referencing an undefined subckt, or one
    /// whose node count does not match the subckt's declared port arity
    /// (the parser skips the instance; this rule decides whether the deck
    /// is still acceptable).
    SubcktInstance,
    /// `ERC016` — `.param` definitions forming (or depending on) a
    /// dependency cycle: the members can never resolve to values.
    ParamCycle,
    /// `SIM001` — transient timestep at or beyond the Nyquist limit of
    /// the fastest declared stimulus (LO aliases into the record).
    TimestepVsLo,
    /// `SIM002` — FFT readout tones off the coherent bin grid or beyond
    /// Nyquist: two-tone products leak or fold onto wrong bins.
    NoncoherentFft,
    /// `SIM003` — PSS harmonic truncation below the intermod order being
    /// measured: the product simply does not exist in the basis.
    PssHarmonics,
    /// `SIM004` — noise analysis band fails to cover the declared IF /
    /// flicker-corner targets.
    NoiseBand,
    /// `SIM005` — an RF sweep that does not cover the declared RF band
    /// (band-edge numbers cannot be reproduced from the run).
    SweepRange,
    /// `SIM006` — transient duration shorter than the slowest circuit
    /// time constant: the record is dominated by settling.
    TranDuration,
    /// `SIM007` — the plan's horizon/timestep imply more steps than the
    /// default run budget admits and no checkpoint interval is declared:
    /// an interrupted run would restart from zero.
    UncheckpointedRun,
    /// `SIM008` — a long run (implied step count above a tenth of the
    /// default timestep budget) with no event log declared and no
    /// observing telemetry sink armed: if it stalls or dies there is
    /// nothing to diagnose from.
    UnobservedLongRun,
}

impl RuleId {
    /// Every rule, in code order (`ERC` first, then `SIM`).
    pub const ALL: [RuleId; 24] = [
        RuleId::DanglingNode,
        RuleId::NoDcPath,
        RuleId::VsourceLoop,
        RuleId::IsourceCutset,
        RuleId::CapOnlyNode,
        RuleId::FloatingGate,
        RuleId::BulkNotRail,
        RuleId::InvalidValue,
        RuleId::DuplicateName,
        RuleId::EmptyCircuit,
        RuleId::DeadUnderMode,
        RuleId::StructuralSingular,
        RuleId::IllScaled,
        RuleId::ParamHygiene,
        RuleId::SubcktInstance,
        RuleId::ParamCycle,
        RuleId::TimestepVsLo,
        RuleId::NoncoherentFft,
        RuleId::PssHarmonics,
        RuleId::NoiseBand,
        RuleId::SweepRange,
        RuleId::TranDuration,
        RuleId::UncheckpointedRun,
        RuleId::UnobservedLongRun,
    ];

    /// The stable textual code (`ERC001_DANGLING_NODE`, …).
    pub fn code(self) -> &'static str {
        match self {
            RuleId::DanglingNode => "ERC001_DANGLING_NODE",
            RuleId::NoDcPath => "ERC002_NO_DC_PATH",
            RuleId::VsourceLoop => "ERC003_VSOURCE_LOOP",
            RuleId::IsourceCutset => "ERC004_ISOURCE_CUTSET",
            RuleId::CapOnlyNode => "ERC005_CAP_ONLY_NODE",
            RuleId::FloatingGate => "ERC006_FLOATING_GATE",
            RuleId::BulkNotRail => "ERC007_BULK_NOT_RAIL",
            RuleId::InvalidValue => "ERC008_INVALID_VALUE",
            RuleId::DuplicateName => "ERC009_DUPLICATE_NAME",
            RuleId::EmptyCircuit => "ERC010_EMPTY_CIRCUIT",
            RuleId::DeadUnderMode => "ERC011_DEAD_UNDER_MODE",
            RuleId::StructuralSingular => "ERC012_STRUCTURAL_SINGULAR",
            RuleId::IllScaled => "ERC013_ILL_SCALED",
            RuleId::ParamHygiene => "ERC014_PARAM_HYGIENE",
            RuleId::SubcktInstance => "ERC015_SUBCKT_INSTANCE",
            RuleId::ParamCycle => "ERC016_PARAM_CYCLE",
            RuleId::TimestepVsLo => "SIM001_TIMESTEP_VS_LO",
            RuleId::NoncoherentFft => "SIM002_NONCOHERENT_FFT",
            RuleId::PssHarmonics => "SIM003_PSS_HARMONICS",
            RuleId::NoiseBand => "SIM004_NOISE_BAND",
            RuleId::SweepRange => "SIM005_SWEEP_RANGE",
            RuleId::TranDuration => "SIM006_TRAN_DURATION",
            RuleId::UncheckpointedRun => "SIM007_UNCHECKPOINTED_RUN",
            RuleId::UnobservedLongRun => "SIM008_UNOBSERVED_LONG_RUN",
        }
    }

    /// Parses a stable code back into a rule id.
    pub fn from_code(code: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.code() == code)
    }

    /// The built-in severity, used unless a [`LintConfig`] overrides it.
    ///
    /// Every structural-singularity rule denies; style-level findings
    /// warn.
    ///
    /// [`LintConfig`]: crate::LintConfig
    pub fn default_severity(self) -> Severity {
        match self {
            RuleId::BulkNotRail
            | RuleId::DeadUnderMode
            | RuleId::IllScaled
            | RuleId::ParamHygiene
            | RuleId::NoiseBand
            | RuleId::SweepRange
            | RuleId::TranDuration
            | RuleId::UncheckpointedRun
            | RuleId::UnobservedLongRun => Severity::Warn,
            _ => Severity::Deny,
        }
    }

    /// One-line description for catalogs and `--help` output.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::DanglingNode => "node touched by fewer than two element terminals",
            RuleId::NoDcPath => "node with no DC-conducting path to ground",
            RuleId::VsourceLoop => "loop of ideal voltage-defined branches (V/E/L)",
            RuleId::IsourceCutset => "current source with no DC return path for its current",
            RuleId::CapOnlyNode => "node connected only through capacitors",
            RuleId::FloatingGate => "MOS gate with no DC drive path",
            RuleId::BulkNotRail => "MOS bulk not tied to a supply rail",
            RuleId::InvalidValue => "device value outside its legal domain",
            RuleId::DuplicateName => "instance name used more than once",
            RuleId::EmptyCircuit => "circuit contains no elements",
            RuleId::DeadUnderMode => "element with no effect as configured",
            RuleId::StructuralSingular => "MNA equations provably lack a structural full rank",
            RuleId::IllScaled => "element values span enough decades to threaten LU pivots",
            RuleId::ParamHygiene => "unused or undefined `.param` in the source deck",
            RuleId::SubcktInstance => "subckt instantiation dangling or with mismatched arity",
            RuleId::ParamCycle => "`.param` definitions form a dependency cycle",
            RuleId::TimestepVsLo => "transient timestep at/beyond the stimulus Nyquist limit",
            RuleId::NoncoherentFft => "FFT tones off the coherent bin grid or beyond Nyquist",
            RuleId::PssHarmonics => "PSS harmonics truncated below the intermod order",
            RuleId::NoiseBand => "noise band misses the IF / flicker-corner targets",
            RuleId::SweepRange => "sweep does not cover the declared RF band",
            RuleId::TranDuration => "transient shorter than the slowest time constant",
            RuleId::UncheckpointedRun => {
                "step count above the default run budget with no checkpoint interval"
            }
            RuleId::UnobservedLongRun => {
                "long run with no event log declared and no telemetry sink armed"
            }
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding: a rule violation with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Effective severity (after configuration overrides).
    pub severity: Severity,
    /// Human-readable description of this specific violation.
    pub message: String,
    /// Names of the nodes involved (may be empty).
    pub nodes: Vec<String>,
    /// Names of the elements involved (may be empty).
    pub elements: Vec<String>,
    /// 1-based source-deck line, for rules that fire on deck text rather
    /// than on the built circuit (ERC014–ERC016 via `lint_deck`).
    pub line: Option<usize>,
    /// Machine-applicable repair, when one exists (clippy's
    /// `MachineApplicable` suggestions). Applied by the `--fix` engine in
    /// [`crate::fix`].
    pub fix: Option<Fix>,
}

impl Diagnostic {
    /// Renders the single-line clippy-style form:
    /// `deny[ERC001_DANGLING_NODE]: message (nodes: x; elements: r1)`,
    /// with a trailing `help:` when a machine-applicable fix exists.
    pub fn render(&self) -> String {
        let mut s = format!("{}[{}]: {}", self.severity, self.rule, self.message);
        let mut prov = Vec::new();
        if let Some(line) = self.line {
            prov.push(format!("line {line}"));
        }
        if !self.nodes.is_empty() {
            prov.push(format!("nodes: {}", self.nodes.join(", ")));
        }
        if !self.elements.is_empty() {
            prov.push(format!("elements: {}", self.elements.join(", ")));
        }
        if !prov.is_empty() {
            s.push_str(&format!(" ({})", prov.join("; ")));
        }
        if let Some(fix) = &self.fix {
            s.push_str(&format!(" help: {}", fix.describe()));
        }
        s
    }

    fn to_json(&self) -> String {
        let fix = match &self.fix {
            Some(f) => format!(",\"fix\":{}", f.to_json()),
            None => String::new(),
        };
        let line = match self.line {
            Some(n) => format!(",\"line\":{n}"),
            None => String::new(),
        };
        format!(
            "{{\"rule\":{},\"severity\":{}{},\"message\":{},\"nodes\":[{}],\"elements\":[{}]{}}}",
            json_str(self.rule.code()),
            json_str(&self.severity.to_string()),
            line,
            json_str(&self.message),
            self.nodes
                .iter()
                .map(|n| json_str(n))
                .collect::<Vec<_>>()
                .join(","),
            self.elements
                .iter()
                .map(|e| json_str(e))
                .collect::<Vec<_>>()
                .join(","),
            fix,
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// JSON string literal with the escapes JSON requires (quote, backslash,
/// control characters). Hand-rolled because the build environment has no
/// serde.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The result of a lint pass: every finding, ordered by rule code.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    /// All findings (severity `Allow` rules emit none).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Number of deny-level findings.
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// Number of warn-level findings.
    pub fn warn_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// `true` when nothing blocks analysis (no deny findings).
    pub fn is_clean(&self) -> bool {
        self.deny_count() == 0
    }

    /// `true` when there are no findings at all.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings for one rule.
    pub fn by_rule(&self, rule: RuleId) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.rule == rule).collect()
    }

    /// Multi-line text rendering: one line per finding plus a summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "lint: {} deny, {} warn\n",
            self.deny_count(),
            self.warn_count()
        ));
        out
    }

    /// JSON rendering (no external dependencies):
    /// `{"schema_version":2,"deny":1,"warn":0,"diagnostics":[…]}`.
    pub fn render_json(&self) -> String {
        format!(
            "{{\"schema_version\":{},\"deny\":{},\"warn\":{},\"diagnostics\":[{}]}}",
            SCHEMA_VERSION,
            self.deny_count(),
            self.warn_count(),
            self.diagnostics
                .iter()
                .map(Diagnostic::to_json)
                .collect::<Vec<_>>()
                .join(","),
        )
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render_text().trim_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_reversible() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::from_code(r.code()), Some(r));
            assert!(r.code().starts_with("ERC") || r.code().starts_with("SIM"));
            assert!(!r.summary().is_empty());
        }
        assert_eq!(RuleId::from_code("ERC999_NOPE"), None);
        assert_eq!(RuleId::DanglingNode.code(), "ERC001_DANGLING_NODE");
        assert_eq!(
            RuleId::StructuralSingular.code(),
            "ERC012_STRUCTURAL_SINGULAR"
        );
        assert_eq!(RuleId::NoncoherentFft.code(), "SIM002_NONCOHERENT_FFT");
    }

    #[test]
    fn severity_ordering_and_display() {
        assert!(Severity::Deny > Severity::Warn);
        assert!(Severity::Warn > Severity::Allow);
        assert_eq!(Severity::Deny.to_string(), "deny");
    }

    fn sample() -> LintReport {
        LintReport {
            diagnostics: vec![
                Diagnostic {
                    rule: RuleId::DanglingNode,
                    severity: Severity::Deny,
                    message: "node 'x' is dangling".into(),
                    nodes: vec!["x".into()],
                    elements: vec!["r1".into()],
                    line: None,
                    fix: None,
                },
                Diagnostic {
                    rule: RuleId::BulkNotRail,
                    severity: Severity::Warn,
                    message: "bulk of 'm1' floats".into(),
                    nodes: vec![],
                    elements: vec!["m1".into()],
                    line: None,
                    fix: None,
                },
            ],
        }
    }

    #[test]
    fn counting_and_cleanliness() {
        let r = sample();
        assert_eq!(r.deny_count(), 1);
        assert_eq!(r.warn_count(), 1);
        assert!(!r.is_clean());
        assert_eq!(r.by_rule(RuleId::DanglingNode).len(), 1);
        assert!(LintReport::default().is_clean());
        assert!(LintReport::default().is_empty());
    }

    #[test]
    fn text_rendering() {
        let text = sample().render_text();
        assert!(text.contains("deny[ERC001_DANGLING_NODE]: node 'x' is dangling"));
        assert!(text.contains("(nodes: x; elements: r1)"));
        assert!(text.contains("1 deny, 1 warn"));
    }

    #[test]
    fn json_rendering_escapes() {
        let r = LintReport {
            diagnostics: vec![Diagnostic {
                rule: RuleId::InvalidValue,
                severity: Severity::Deny,
                message: "bad \"quote\"\nline".into(),
                nodes: vec![],
                elements: vec!["r\\1".into()],
                line: None,
                fix: None,
            }],
        };
        let json = r.render_json();
        assert!(json.contains("\\\"quote\\\"\\nline"));
        assert!(json.contains("r\\\\1"));
        assert!(json.starts_with(&format!(
            "{{\"schema_version\":{SCHEMA_VERSION},\"deny\":1,\"warn\":0,"
        )));
        assert!(json.contains("\"rule\":\"ERC008_INVALID_VALUE\""));
        // No fix → no "fix" key for this diagnostic.
        assert!(!json.contains("\"fix\""));
    }

    #[test]
    fn fixes_render_in_text_and_json() {
        let d = Diagnostic {
            rule: RuleId::CapOnlyNode,
            severity: Severity::Deny,
            message: "node 'mid' connects only to capacitors".into(),
            nodes: vec!["mid".into()],
            elements: vec![],
            line: None,
            fix: Some(Fix::GroundTie {
                node: "mid".into(),
                ohms: 1e9,
            }),
        };
        let text = d.render();
        assert!(text.contains("help:"), "{text}");
        assert!(text.contains("mid"), "{text}");
        let json = LintReport {
            diagnostics: vec![d],
        }
        .render_json();
        assert!(
            json.contains("\"fix\":{\"action\":\"ground_tie\""),
            "{json}"
        );
    }

    #[test]
    fn deck_lines_render_in_text_and_json() {
        let d = Diagnostic {
            rule: RuleId::ParamHygiene,
            severity: Severity::Warn,
            message: ".param 'lonely' is defined but never referenced".into(),
            nodes: vec![],
            elements: vec!["lonely".into()],
            line: Some(3),
            fix: None,
        };
        let text = d.render();
        assert!(text.contains("(line 3;"), "{text}");
        let json = LintReport {
            diagnostics: vec![d],
        }
        .render_json();
        assert!(
            json.contains("\"severity\":\"warn\",\"line\":3,\"message\""),
            "{json}"
        );
    }
}
