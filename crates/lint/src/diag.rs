//! Diagnostic types: rule identifiers, severities, findings, reports.

use std::fmt;

/// How seriously a finding is treated.
///
/// Mirrors the clippy lint levels: `Deny` findings make analyses refuse
/// the circuit, `Warn` findings are reported but non-fatal, `Allow`
/// disables the rule entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Rule disabled; no diagnostics are emitted.
    Allow,
    /// Reported, but does not block analyses.
    Warn,
    /// Reported and blocks analyses (structural MNA singularity or a
    /// deck that cannot mean what was written).
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// Stable identifier of an electrical-rule check.
///
/// The `ERCnnn_*` codes are part of the public interface: they appear in
/// rendered diagnostics, JSON output, and [`LintConfig`] overrides, and
/// existing codes are never renumbered.
///
/// [`LintConfig`]: crate::LintConfig
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// `ERC001` — a non-ground node touched by fewer than two element
    /// terminals.
    DanglingNode,
    /// `ERC002` — a node with no DC-conducting path to ground.
    NoDcPath,
    /// `ERC003` — a loop of ideal voltage-defined branches (V, E, L):
    /// the MNA branch equations become linearly dependent.
    VsourceLoop,
    /// `ERC004` — a current source bridging parts of the circuit that no
    /// DC-current-carrying branch connects: KCL cannot absorb the forced
    /// current.
    IsourceCutset,
    /// `ERC005` — a node whose every connection is a capacitor: no DC
    /// conductance, structurally singular operating point.
    CapOnlyNode,
    /// `ERC006` — a MOS gate with no DC drive path to ground (gates
    /// conduct nothing, so a gate reachable only through other gates or
    /// capacitors floats).
    FloatingGate,
    /// `ERC007` — a MOS bulk not tied to a supply-rail node (a node
    /// pinned to ground through ideal voltage sources).
    BulkNotRail,
    /// `ERC008` — a device value outside its legal domain (zero,
    /// negative, or non-finite where positive-finite is required).
    InvalidValue,
    /// `ERC009` — an instance name used by more than one element.
    DuplicateName,
    /// `ERC010` — a circuit with no elements.
    EmptyCircuit,
    /// `ERC011` — an element that cannot affect any analysis as
    /// configured (zero-valued stimulus, or all terminals shorted to one
    /// node); usually a leftover from mode switching.
    DeadUnderMode,
}

impl RuleId {
    /// Every rule, in code order.
    pub const ALL: [RuleId; 11] = [
        RuleId::DanglingNode,
        RuleId::NoDcPath,
        RuleId::VsourceLoop,
        RuleId::IsourceCutset,
        RuleId::CapOnlyNode,
        RuleId::FloatingGate,
        RuleId::BulkNotRail,
        RuleId::InvalidValue,
        RuleId::DuplicateName,
        RuleId::EmptyCircuit,
        RuleId::DeadUnderMode,
    ];

    /// The stable textual code (`ERC001_DANGLING_NODE`, …).
    pub fn code(self) -> &'static str {
        match self {
            RuleId::DanglingNode => "ERC001_DANGLING_NODE",
            RuleId::NoDcPath => "ERC002_NO_DC_PATH",
            RuleId::VsourceLoop => "ERC003_VSOURCE_LOOP",
            RuleId::IsourceCutset => "ERC004_ISOURCE_CUTSET",
            RuleId::CapOnlyNode => "ERC005_CAP_ONLY_NODE",
            RuleId::FloatingGate => "ERC006_FLOATING_GATE",
            RuleId::BulkNotRail => "ERC007_BULK_NOT_RAIL",
            RuleId::InvalidValue => "ERC008_INVALID_VALUE",
            RuleId::DuplicateName => "ERC009_DUPLICATE_NAME",
            RuleId::EmptyCircuit => "ERC010_EMPTY_CIRCUIT",
            RuleId::DeadUnderMode => "ERC011_DEAD_UNDER_MODE",
        }
    }

    /// Parses a stable code back into a rule id.
    pub fn from_code(code: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.code() == code)
    }

    /// The built-in severity, used unless a [`LintConfig`] overrides it.
    ///
    /// Every structural-singularity rule denies; style-level findings
    /// warn.
    ///
    /// [`LintConfig`]: crate::LintConfig
    pub fn default_severity(self) -> Severity {
        match self {
            RuleId::BulkNotRail | RuleId::DeadUnderMode => Severity::Warn,
            _ => Severity::Deny,
        }
    }

    /// One-line description for catalogs and `--help` output.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::DanglingNode => "node touched by fewer than two element terminals",
            RuleId::NoDcPath => "node with no DC-conducting path to ground",
            RuleId::VsourceLoop => "loop of ideal voltage-defined branches (V/E/L)",
            RuleId::IsourceCutset => "current source with no DC return path for its current",
            RuleId::CapOnlyNode => "node connected only through capacitors",
            RuleId::FloatingGate => "MOS gate with no DC drive path",
            RuleId::BulkNotRail => "MOS bulk not tied to a supply rail",
            RuleId::InvalidValue => "device value outside its legal domain",
            RuleId::DuplicateName => "instance name used more than once",
            RuleId::EmptyCircuit => "circuit contains no elements",
            RuleId::DeadUnderMode => "element with no effect as configured",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding: a rule violation with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Effective severity (after configuration overrides).
    pub severity: Severity,
    /// Human-readable description of this specific violation.
    pub message: String,
    /// Names of the nodes involved (may be empty).
    pub nodes: Vec<String>,
    /// Names of the elements involved (may be empty).
    pub elements: Vec<String>,
}

impl Diagnostic {
    /// Renders the single-line clippy-style form:
    /// `deny[ERC001_DANGLING_NODE]: message (nodes: x; elements: r1)`.
    pub fn render(&self) -> String {
        let mut s = format!("{}[{}]: {}", self.severity, self.rule, self.message);
        let mut prov = Vec::new();
        if !self.nodes.is_empty() {
            prov.push(format!("nodes: {}", self.nodes.join(", ")));
        }
        if !self.elements.is_empty() {
            prov.push(format!("elements: {}", self.elements.join(", ")));
        }
        if !prov.is_empty() {
            s.push_str(&format!(" ({})", prov.join("; ")));
        }
        s
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"rule\":{},\"severity\":{},\"message\":{},\"nodes\":[{}],\"elements\":[{}]}}",
            json_str(self.rule.code()),
            json_str(&self.severity.to_string()),
            json_str(&self.message),
            self.nodes
                .iter()
                .map(|n| json_str(n))
                .collect::<Vec<_>>()
                .join(","),
            self.elements
                .iter()
                .map(|e| json_str(e))
                .collect::<Vec<_>>()
                .join(","),
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// JSON string literal with the escapes JSON requires (quote, backslash,
/// control characters). Hand-rolled because the build environment has no
/// serde.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The result of a lint pass: every finding, ordered by rule code.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    /// All findings (severity `Allow` rules emit none).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Number of deny-level findings.
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// Number of warn-level findings.
    pub fn warn_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// `true` when nothing blocks analysis (no deny findings).
    pub fn is_clean(&self) -> bool {
        self.deny_count() == 0
    }

    /// `true` when there are no findings at all.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings for one rule.
    pub fn by_rule(&self, rule: RuleId) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.rule == rule).collect()
    }

    /// Multi-line text rendering: one line per finding plus a summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "lint: {} deny, {} warn\n",
            self.deny_count(),
            self.warn_count()
        ));
        out
    }

    /// JSON rendering (no external dependencies):
    /// `{"deny":1,"warn":0,"diagnostics":[…]}`.
    pub fn render_json(&self) -> String {
        format!(
            "{{\"deny\":{},\"warn\":{},\"diagnostics\":[{}]}}",
            self.deny_count(),
            self.warn_count(),
            self.diagnostics
                .iter()
                .map(Diagnostic::to_json)
                .collect::<Vec<_>>()
                .join(","),
        )
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render_text().trim_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_reversible() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::from_code(r.code()), Some(r));
            assert!(r.code().starts_with("ERC"));
            assert!(!r.summary().is_empty());
        }
        assert_eq!(RuleId::from_code("ERC999_NOPE"), None);
        assert_eq!(RuleId::DanglingNode.code(), "ERC001_DANGLING_NODE");
    }

    #[test]
    fn severity_ordering_and_display() {
        assert!(Severity::Deny > Severity::Warn);
        assert!(Severity::Warn > Severity::Allow);
        assert_eq!(Severity::Deny.to_string(), "deny");
    }

    fn sample() -> LintReport {
        LintReport {
            diagnostics: vec![
                Diagnostic {
                    rule: RuleId::DanglingNode,
                    severity: Severity::Deny,
                    message: "node 'x' is dangling".into(),
                    nodes: vec!["x".into()],
                    elements: vec!["r1".into()],
                },
                Diagnostic {
                    rule: RuleId::BulkNotRail,
                    severity: Severity::Warn,
                    message: "bulk of 'm1' floats".into(),
                    nodes: vec![],
                    elements: vec!["m1".into()],
                },
            ],
        }
    }

    #[test]
    fn counting_and_cleanliness() {
        let r = sample();
        assert_eq!(r.deny_count(), 1);
        assert_eq!(r.warn_count(), 1);
        assert!(!r.is_clean());
        assert_eq!(r.by_rule(RuleId::DanglingNode).len(), 1);
        assert!(LintReport::default().is_clean());
        assert!(LintReport::default().is_empty());
    }

    #[test]
    fn text_rendering() {
        let text = sample().render_text();
        assert!(text.contains("deny[ERC001_DANGLING_NODE]: node 'x' is dangling"));
        assert!(text.contains("(nodes: x; elements: r1)"));
        assert!(text.contains("1 deny, 1 warn"));
    }

    #[test]
    fn json_rendering_escapes() {
        let r = LintReport {
            diagnostics: vec![Diagnostic {
                rule: RuleId::InvalidValue,
                severity: Severity::Deny,
                message: "bad \"quote\"\nline".into(),
                nodes: vec![],
                elements: vec!["r\\1".into()],
            }],
        };
        let json = r.render_json();
        assert!(json.contains("\\\"quote\\\"\\nline"));
        assert!(json.contains("r\\\\1"));
        assert!(json.starts_with("{\"deny\":1,\"warn\":0,"));
        assert!(json.contains("\"rule\":\"ERC008_INVALID_VALUE\""));
    }
}
