//! Structural-rank analysis of the MNA system (`ERC012`, `ERC013`).
//!
//! The heuristic rules `ERC001`–`ERC006` each recognise one *shape* of
//! singular netlist. This pass is the exact complement: it builds the
//! structural incidence of the actual MNA matrix the solver will
//! assemble — one KCL row per non-ground node, one branch row per
//! voltage-defined element, matching columns — and runs a maximum
//! bipartite matching. A perfect matching is necessary for the matrix to
//! be numerically nonsingular for *generic* element values; if rows are
//! left unmatched the system is **provably** singular no matter what
//! values the elements take, and the alternating-path component reached
//! from an unmatched row is exactly the Dulmage–Mendelsohn
//! under/over-determined block — the smallest set of equations and
//! unknowns the defect lives in, which is what the diagnostic names.
//!
//! Findings whose block intersects a node or element already named by an
//! earlier deny-level finding are suppressed: `ERC005` saying "series-cap
//! node" *and* `ERC012` saying "empty KCL row at the same node" would be
//! one defect reported twice. What remains is the class the heuristics
//! cannot see — e.g. a node touched only by controlled-source *control*
//! pins, which carries two element terminals and a legacy-DC path yet
//! has an empty KCL row.
//!
//! `ERC013` rides along on the same per-element sweep: a warn when the
//! DC conductances the elements stamp span more decades than double
//! precision can keep apart in an LU pivot.

use crate::config::LintConfig;
use crate::diag::{Diagnostic, RuleId, Severity};
use crate::fix::Fix;
use crate::graph;
use remix_circuit::{Circuit, Element};
use std::collections::HashSet;

/// Resistance of the gmin shunt suggested for an empty/deficient KCL
/// row: large enough to be invisible at RF impedances, small enough to
/// pin the DC operating point.
const GMIN_SHUNT_OHMS: f64 = 1e12;

/// Decades of DC-conductance span beyond which `ERC013` warns. Double
/// precision carries ~15.9 decades; 12 leaves headroom for fill-in
/// growth during factorization.
const ILL_SCALED_DECADES: f64 = 12.0;

/// Which analysis's matrix the incidence describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RankRegime {
    /// DC operating point: capacitors stamp nothing, inductor branch
    /// rows pin `v_a − v_b` only.
    Dc,
    /// Small-signal AC at nonzero frequency: capacitor and MOS-cap
    /// susceptances appear, inductor branch rows gain the `jωL` term.
    /// Every DC entry is also an AC entry, so AC findings are a subset —
    /// checked anyway as a belt-and-braces invariant.
    Ac,
}

/// One equation of the structural system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Row {
    /// KCL at a non-ground node (node id).
    Kcl(usize),
    /// Branch equation of a voltage-defined element (element index).
    Branch(usize),
}

/// Structural incidence of the MNA matrix under one regime.
struct Incidence {
    /// `rows[r]` = column indices with a structural entry in row `r`.
    rows: Vec<Vec<usize>>,
    /// What each row index means.
    row_of: Vec<Row>,
    /// What each column index means (same `Row` encoding: `Kcl(id)` is
    /// the node-voltage column, `Branch(i)` the branch-current column).
    col_of: Vec<Row>,
}

impl Incidence {
    fn build(ckt: &Circuit, regime: RankRegime) -> Incidence {
        let n = ckt.node_count();
        // Node id → row/col index (ground has neither).
        let node_idx = |id: usize| id.checked_sub(1);
        let mut row_of: Vec<Row> = (1..n).map(Row::Kcl).collect();
        let mut col_of = row_of.clone();
        let mut branch_idx = Vec::with_capacity(ckt.element_count());
        for (i, e) in ckt.elements().iter().enumerate() {
            if e.needs_branch_current() {
                branch_idx.push(Some(row_of.len()));
                row_of.push(Row::Branch(i));
                col_of.push(Row::Branch(i));
            } else {
                branch_idx.push(None);
            }
        }
        let mut rows = vec![Vec::new(); row_of.len()];
        let add = |r: Option<usize>, c: Option<usize>, rows: &mut Vec<Vec<usize>>| {
            if let (Some(r), Some(c)) = (r, c) {
                if !rows[r].contains(&c) {
                    rows[r].push(c);
                }
            }
        };
        // Symmetric two-terminal conductance block (R and MOS channel
        // via the shared classifier; C at AC).
        let conduct = |a: usize, b: usize, rows: &mut Vec<Vec<usize>>| {
            for &r in &[a, b] {
                for &c in &[a, b] {
                    add(node_idx(r), node_idx(c), rows);
                }
            }
        };
        let mut buf = Vec::new();
        for (i, e) in ckt.elements().iter().enumerate() {
            // The symmetric conductance couplings come from the same
            // edge classifier the union-find rules use; the remaining
            // entries (branch equations, controlled sources, the MOS
            // gate/bulk columns) are layered on below.
            buf.clear();
            graph::edges(e, graph::Regime::Conductance, &mut buf);
            for &(a, b) in &buf {
                conduct(a.id(), b.id(), &mut rows);
            }
            match e {
                Element::Resistor { .. } => {} // classifier covers it
                Element::Capacitor { a, b, .. } => {
                    if regime == RankRegime::Ac {
                        conduct(a.id(), b.id(), &mut rows);
                    }
                }
                Element::Inductor { a, b, .. } => {
                    let bc = branch_idx[i];
                    // KCL at both terminals sees the branch current.
                    add(node_idx(a.id()), bc, &mut rows);
                    add(node_idx(b.id()), bc, &mut rows);
                    // Branch equation: v_a − v_b (− jωL·i at AC) = 0.
                    add(bc, node_idx(a.id()), &mut rows);
                    add(bc, node_idx(b.id()), &mut rows);
                    if regime == RankRegime::Ac {
                        add(bc, bc, &mut rows);
                    }
                }
                Element::VoltageSource { p, n, .. } => {
                    let bc = branch_idx[i];
                    add(node_idx(p.id()), bc, &mut rows);
                    add(node_idx(n.id()), bc, &mut rows);
                    add(bc, node_idx(p.id()), &mut rows);
                    add(bc, node_idx(n.id()), &mut rows);
                }
                // Current sources are pure RHS: no matrix entries.
                Element::CurrentSource { .. } => {}
                Element::Vccs { p, n, cp, cn, .. } => {
                    for &r in &[p.id(), n.id()] {
                        for &c in &[cp.id(), cn.id()] {
                            add(node_idx(r), node_idx(c), &mut rows);
                        }
                    }
                }
                Element::Vcvs { p, n, cp, cn, .. } => {
                    let bc = branch_idx[i];
                    add(node_idx(p.id()), bc, &mut rows);
                    add(node_idx(n.id()), bc, &mut rows);
                    for c in [p.id(), n.id(), cp.id(), cn.id()] {
                        add(bc, node_idx(c), &mut rows);
                    }
                }
                Element::Mos { dev, .. } => {
                    // The classifier contributed the symmetric d–s
                    // channel block; the channel current id(vd, vg, vs,
                    // vb) additionally stamps the drain and source KCL
                    // rows against the gate and bulk voltages. Gate and
                    // bulk rows get nothing at DC: that is precisely why
                    // a control-only gate node can be structurally
                    // singular.
                    for &r in &[dev.d.id(), dev.s.id()] {
                        for c in [dev.g.id(), dev.b.id()] {
                            add(node_idx(r), node_idx(c), &mut rows);
                        }
                    }
                    if regime == RankRegime::Ac {
                        // Gate capacitances couple the gate (and bulk)
                        // rows symmetrically.
                        for pair in [
                            (dev.g.id(), dev.s.id()),
                            (dev.g.id(), dev.d.id()),
                            (dev.g.id(), dev.b.id()),
                            (dev.s.id(), dev.b.id()),
                            (dev.d.id(), dev.b.id()),
                        ] {
                            conduct(pair.0, pair.1, &mut rows);
                        }
                    }
                }
            }
        }
        Incidence {
            rows,
            row_of,
            col_of,
        }
    }

    /// Kuhn maximum matching. Returns `match_of_row[r] = Some(col)`.
    fn max_matching(&self) -> Vec<Option<usize>> {
        let n = self.rows.len();
        let mut row_match: Vec<Option<usize>> = vec![None; n];
        let mut col_match: Vec<Option<usize>> = vec![None; n];
        fn augment(
            r: usize,
            rows: &[Vec<usize>],
            row_match: &mut [Option<usize>],
            col_match: &mut [Option<usize>],
            seen: &mut [bool],
        ) -> bool {
            for &c in &rows[r] {
                if seen[c] {
                    continue;
                }
                seen[c] = true;
                let free = match col_match[c] {
                    None => true,
                    Some(r2) => augment(r2, rows, row_match, col_match, seen),
                };
                if free {
                    row_match[r] = Some(c);
                    col_match[c] = Some(r);
                    return true;
                }
            }
            false
        }
        for r in 0..n {
            let mut seen = vec![false; n];
            augment(r, &self.rows, &mut row_match, &mut col_match, &mut seen);
        }
        row_match
    }

    /// Alternating-path component reached from `start` (an unmatched
    /// row): row → any incident column, column → its matched row. The
    /// rows and columns visited form the deficient DM block.
    fn deficient_component(
        &self,
        start: usize,
        row_match: &[Option<usize>],
    ) -> (Vec<usize>, Vec<usize>) {
        let n = self.rows.len();
        let mut col_match: Vec<Option<usize>> = vec![None; n];
        for (r, m) in row_match.iter().enumerate() {
            if let Some(c) = m {
                col_match[*c] = Some(r);
            }
        }
        let mut rows_seen = vec![false; n];
        let mut cols_seen = vec![false; n];
        let mut queue = vec![start];
        rows_seen[start] = true;
        while let Some(r) = queue.pop() {
            for &c in &self.rows[r] {
                if cols_seen[c] {
                    continue;
                }
                cols_seen[c] = true;
                if let Some(r2) = col_match[c] {
                    if !rows_seen[r2] {
                        rows_seen[r2] = true;
                        queue.push(r2);
                    }
                }
            }
        }
        (
            (0..n).filter(|&r| rows_seen[r]).collect(),
            (0..n).filter(|&c| cols_seen[c]).collect(),
        )
    }
}

/// Runs the structural-rank pass (`ERC012`) and the scaling pass
/// (`ERC013`). `prior` is every diagnostic emitted so far; deficient
/// blocks overlapping a prior deny finding are suppressed as already
/// reported.
pub(crate) fn run(ckt: &Circuit, cfg: &LintConfig, prior: &[Diagnostic]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    structural_singular(ckt, cfg, prior, &mut out);
    ill_scaled(ckt, cfg, &mut out);
    out
}

fn structural_singular(
    ckt: &Circuit,
    cfg: &LintConfig,
    prior: &[Diagnostic],
    out: &mut Vec<Diagnostic>,
) {
    let sev = match cfg.severity_of(RuleId::StructuralSingular) {
        Severity::Allow => return,
        s => s,
    };
    // Names already implicated by a heuristic finding (at any severity):
    // those rules own their defects, and a user who downgraded one to
    // warn has made a decision this pass must not re-deny.
    let mut prior_nodes: HashSet<&str> = HashSet::new();
    let mut prior_elems: HashSet<&str> = HashSet::new();
    for d in prior {
        prior_nodes.extend(d.nodes.iter().map(String::as_str));
        prior_elems.extend(d.elements.iter().map(String::as_str));
    }
    for regime in [RankRegime::Dc, RankRegime::Ac] {
        let inc = Incidence::build(ckt, regime);
        let row_match = inc.max_matching();
        let mut claimed = vec![false; inc.rows.len()];
        for r in 0..inc.rows.len() {
            if row_match[r].is_some() || claimed[r] {
                continue;
            }
            let (rows, cols) = inc.deficient_component(r, &row_match);
            for &r2 in &rows {
                claimed[r2] = true;
            }
            // Collect the block's nodes and elements.
            let mut nodes: Vec<String> = Vec::new();
            let mut elems: Vec<String> = Vec::new();
            let push_item = |item: Row, nodes: &mut Vec<String>, elems: &mut Vec<String>| match item
            {
                Row::Kcl(id) => {
                    let name = ckt.node_name(remix_circuit::Node::from_id(id)).to_string();
                    if !nodes.contains(&name) {
                        nodes.push(name);
                    }
                }
                Row::Branch(i) => {
                    let name = ckt.elements()[i].name().to_string();
                    if !elems.contains(&name) {
                        elems.push(name);
                    }
                }
            };
            for &r2 in &rows {
                push_item(inc.row_of[r2], &mut nodes, &mut elems);
            }
            for &c2 in &cols {
                push_item(inc.col_of[c2], &mut nodes, &mut elems);
            }
            // Suppress blocks the heuristic rules already denied.
            if nodes.iter().any(|n| prior_nodes.contains(n.as_str()))
                || elems.iter().any(|e| prior_elems.contains(e.as_str()))
            {
                continue;
            }
            // Dedup across regimes (AC entries ⊇ DC entries, so an AC
            // block repeats a DC one).
            if out.iter().any(|d: &Diagnostic| {
                d.rule == RuleId::StructuralSingular && d.nodes == nodes && d.elements == elems
            }) {
                continue;
            }
            let deficit = rows.len() - cols.len();
            let regime_name = match regime {
                RankRegime::Dc => "DC",
                RankRegime::Ac => "AC",
            };
            let fix = nodes.first().map(|n| Fix::GminShunt {
                node: n.clone(),
                ohms: GMIN_SHUNT_OHMS,
            });
            out.push(Diagnostic {
                rule: RuleId::StructuralSingular,
                severity: sev,
                message: format!(
                    "the {regime_name} MNA system is structurally singular: a block of \
                     {} equations covers only {} unknowns (structural deficit {deficit}); \
                     no element values can make this solvable",
                    rows.len(),
                    cols.len(),
                ),
                nodes,
                elements: elems,
                line: None,
                fix,
            });
        }
    }
}

fn ill_scaled(ckt: &Circuit, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    let sev = match cfg.severity_of(RuleId::IllScaled) {
        Severity::Allow => return,
        s => s,
    };
    // Representative DC conductance each element stamps.
    let mut extremes: Vec<(f64, &str)> = Vec::new();
    for e in ckt.elements() {
        let g = match e {
            Element::Resistor { r, .. } if r.is_finite() && *r > 0.0 => 1.0 / r,
            Element::Vccs { gm, .. } if gm.is_finite() && gm.abs() > 0.0 => gm.abs(),
            Element::Mos { dev, .. } => {
                let beta = dev.model.kp * dev.aspect();
                if beta.is_finite() && beta > 0.0 {
                    beta
                } else {
                    continue;
                }
            }
            _ => continue,
        };
        extremes.push((g, e.name()));
    }
    let Some(&(g_min, min_name)) = extremes
        .iter()
        // audit: allow(AUD001): margins are checked finite before ranking
        .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
    else {
        return;
    };
    let &(g_max, max_name) = extremes
        .iter()
        .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap()) // audit: allow(AUD001): margins are checked finite before ranking
        .unwrap(); // audit: allow(AUD001): extremes is non-empty: the min_by above already matched
    let decades = (g_max / g_min).log10();
    if decades > ILL_SCALED_DECADES {
        out.push(Diagnostic {
            rule: RuleId::IllScaled,
            severity: sev,
            message: format!(
                "DC conductances span {decades:.1} decades ('{max_name}' at {g_max:.2e} S \
                 vs '{min_name}' at {g_min:.2e} S): LU pivots risk catastrophic \
                 cancellation in double precision"
            ),
            nodes: vec![],
            elements: vec![max_name.to_string(), min_name.to_string()],
            line: None,
            fix: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fix::fix_circuit;
    use crate::{lint, LintConfig, RuleId};
    use remix_circuit::{Circuit, MosModel, Waveform};

    fn divider() -> Circuit {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let out = c.node("out");
        c.add_vsource("v1", vin, Circuit::gnd(), Waveform::Dc(1.2));
        c.add_resistor("r1", vin, out, 1e3);
        c.add_resistor("r2", out, Circuit::gnd(), 1e3);
        c
    }

    /// The defect class only the rank pass can see: a node whose every
    /// terminal is a controlled-source *control* pin. Two element
    /// terminals (ERC001 quiet), a legacy-DC path through the VCVS blob
    /// (ERC002 quiet) — yet its KCL row is structurally empty.
    fn control_only_node() -> Circuit {
        let mut c = divider();
        let out = c.find_node("out").unwrap();
        let out2 = c.node("out2");
        let ctrl = c.node("ctrl");
        c.add_vcvs("e1", out2, Circuit::gnd(), ctrl, Circuit::gnd(), 2.0);
        c.add_resistor("r_load", out2, Circuit::gnd(), 1e3);
        c.add_vccs("g1", out, Circuit::gnd(), ctrl, Circuit::gnd(), 1e-3);
        c
    }

    #[test]
    fn clean_divider_has_full_structural_rank() {
        let report = lint(&divider(), &LintConfig::default());
        assert!(report.by_rule(RuleId::StructuralSingular).is_empty());
        assert!(report.by_rule(RuleId::IllScaled).is_empty());
    }

    #[test]
    fn erc012_control_only_node_fires_only_here() {
        let c = control_only_node();
        let report = lint(&c, &LintConfig::default());
        let diags = report.by_rule(RuleId::StructuralSingular);
        assert_eq!(diags.len(), 1, "{report}");
        assert!(diags[0].nodes.contains(&"ctrl".to_string()));
        assert!(matches!(
            &diags[0].fix,
            Some(Fix::GminShunt { node, .. }) if node == "ctrl"
        ));
        // Every heuristic singularity rule stays quiet: this shape is
        // invisible to them.
        for rule in [
            RuleId::DanglingNode,
            RuleId::NoDcPath,
            RuleId::CapOnlyNode,
            RuleId::IsourceCutset,
        ] {
            assert!(report.by_rule(rule).is_empty(), "{rule} fired:\n{report}");
        }
    }

    #[test]
    fn erc012_fix_converges_via_gmin_shunt() {
        let mut c = control_only_node();
        let outcome = fix_circuit(&mut c, &LintConfig::default());
        assert!(outcome.is_clean(), "{}", outcome.report);
        assert!(outcome
            .applied
            .iter()
            .any(|f| matches!(f, Fix::GminShunt { node, .. } if node == "ctrl")));
    }

    #[test]
    fn erc012_defers_to_heuristic_rules_on_shared_defects() {
        // A vsource loop is singular, but ERC003 owns the report.
        let mut c = divider();
        let vin = c.find_node("vin").unwrap();
        c.add_vsource("v_dup", vin, Circuit::gnd(), Waveform::Dc(1.2));
        let report = lint(&c, &LintConfig::default());
        assert_eq!(report.by_rule(RuleId::VsourceLoop).len(), 1);
        assert!(report.by_rule(RuleId::StructuralSingular).is_empty());

        // Series caps: ERC005 owns the empty KCL row at 'mid'.
        let mut c2 = divider();
        let mid = c2.node("mid");
        let out = c2.find_node("out").unwrap();
        c2.add_capacitor("ca", out, mid, 1e-12);
        c2.add_capacitor("cb", mid, Circuit::gnd(), 1e-12);
        let report = lint(&c2, &LintConfig::default());
        assert_eq!(report.by_rule(RuleId::CapOnlyNode).len(), 1);
        assert!(report.by_rule(RuleId::StructuralSingular).is_empty());
    }

    #[test]
    fn erc012_surfaces_when_heuristics_are_allowed_off() {
        // With ERC005 disabled, the rank pass still proves the series-cap
        // node singular — the exact check backstops the heuristics.
        let mut c = divider();
        let mid = c.node("mid");
        let out = c.find_node("out").unwrap();
        c.add_capacitor("ca", out, mid, 1e-12);
        c.add_capacitor("cb", mid, Circuit::gnd(), 1e-12);
        let cfg = LintConfig::default().allow(RuleId::CapOnlyNode);
        let report = lint(&c, &cfg);
        let diags = report.by_rule(RuleId::StructuralSingular);
        assert_eq!(diags.len(), 1, "{report}");
        assert!(diags[0].nodes.contains(&"mid".to_string()));
        // At AC the cap conducts: the block is DC-only, reported once.
        assert!(diags[0].message.contains("DC"));
    }

    #[test]
    fn mos_circuits_have_full_rank_with_biased_gates() {
        let mut c = divider();
        let vin = c.find_node("vin").unwrap();
        let out = c.find_node("out").unwrap();
        let d = c.node("drain");
        c.add_resistor("r_d", vin, d, 1e3);
        c.add_mosfet(
            "m1",
            MosModel::nmos_65nm(),
            10e-6,
            65e-9,
            d,
            out,
            Circuit::gnd(),
            Circuit::gnd(),
        );
        let report = lint(&c, &LintConfig::default());
        assert!(report.is_empty(), "{report}");
    }

    #[test]
    fn erc013_wide_conductance_span_warns() {
        let mut c = divider();
        let out = c.find_node("out").unwrap();
        c.add_resistor("r_tiny", out, Circuit::gnd(), 1e-3);
        c.add_resistor("r_huge", out, Circuit::gnd(), 1e12);
        let report = lint(&c, &LintConfig::default());
        let diags = report.by_rule(RuleId::IllScaled);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warn);
        assert!(diags[0].elements.contains(&"r_tiny".to_string()));
        assert!(diags[0].elements.contains(&"r_huge".to_string()));
        assert!(report.is_clean(), "warn level must not block analyses");
    }

    #[test]
    fn incidence_is_square_and_matches_unknown_count() {
        let c = control_only_node();
        let inc = Incidence::build(&c, RankRegime::Dc);
        assert_eq!(inc.rows.len(), inc.col_of.len());
        assert_eq!(inc.row_of.len(), inc.col_of.len());
        // Unknowns: non-ground nodes + one branch current per V/E/L.
        let branches = c
            .elements()
            .iter()
            .filter(|e| e.needs_branch_current())
            .count();
        assert_eq!(inc.rows.len(), c.node_count() - 1 + branches);
    }
}
