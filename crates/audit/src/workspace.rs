//! Workspace source discovery: which files the audit covers.
//!
//! The audit certifies *library* code — the code pool workers execute.
//! It walks `src/` and `crates/*/src/` recursively and skips:
//!
//! * `shims/` — offline stand-ins for external crates, not our code;
//! * `tests/`, `benches/`, `examples/` — not shipped to workers
//!   (in-file `#[cfg(test)]` modules are instead exempted per-line by
//!   the scanner);
//! * `target/` and hidden directories.
//!
//! Paths come back workspace-relative with forward slashes, sorted, so
//! reports are deterministic across machines.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Recursively collects the `.rs` files under `root` that the audit
/// covers, as sorted workspace-relative forward-slash paths.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut found = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        collect(&src, &mut found)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            let member_src = member.join("src");
            if member_src.is_dir() {
                collect(&member_src, &mut found)?;
            }
        }
    }
    let mut rel: Vec<String> = found
        .iter()
        .filter_map(|p| p.strip_prefix(root).ok())
        .map(|p| {
            p.components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect();
    rel.sort();
    rel.dedup();
    Ok(rel)
}

const SKIP_DIRS: &[&str] = &[
    "tests", "benches", "examples", "target", "shims", "fixtures",
];

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_default();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            collect(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_this_workspace() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = workspace_sources(&root).expect("walk");
        assert!(files.iter().any(|f| f == "src/lib.rs"), "root lib");
        assert!(
            files.iter().any(|f| f == "crates/audit/src/workspace.rs"),
            "this very file"
        );
        assert!(
            files.iter().all(|f| !f.starts_with("shims/")),
            "shims excluded"
        );
        assert!(
            files.iter().all(|f| !f.contains("/tests/")),
            "tests dirs excluded"
        );
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "deterministic order");
    }
}
