//! The audit rules: pattern checks over [`ScannedFile`]s.
//!
//! Every rule matches against [`ScannedLine::masked`] (comments
//! stripped, literal contents blanked), so the patterns below cannot
//! be triggered by their own spelling inside strings or docs. The
//! inline escape hatch is the justification protocol:
//!
//! * `// audit: allow(AUDnnn): <why>` — suppresses that rule on the
//!   line it trails (or the line(s) directly below a comment block);
//! * `// audit: relaxed-ok: <why>` — the AUD009-specific marker for
//!   `Ordering::Relaxed` sites.
//!
//! `AUD005_STATIC_MUT` honours no marker: there is no justification
//! for unsynchronized shared mutable state in a stack being certified
//! for parallel scale-out.
//!
//! [`ScannedLine::masked`]: crate::scan::ScannedLine::masked

use crate::catalog;
use crate::diag::{AuditConfig, AuditReport, AuditRule, Finding, Severity};
use crate::scan::{scan_source, ScannedFile};
use crate::workspace::workspace_sources;
use std::fs;
use std::io;
use std::path::Path;

/// Module allowed to call `process::exit`: `remix_bench::run_bin`'s
/// home, where a CLI's exit status is the contract.
const PROCESS_EXIT_ALLOW: &[&str] = &["crates/bench/src/lib.rs"];

/// Crates allowed to read wall clocks directly: the budget/watchdog
/// machinery, the telemetry span layer, and the serve frontier (frame
/// deadlines, admission latency, load-shed estimates are wall-clock by
/// nature); everything else is required to go through them.
const TIMING_ALLOW_PREFIXES: &[&str] = &[
    "crates/telemetry/src/",
    "crates/exec/src/",
    "crates/serve/src/",
];

/// Crates allowed to spawn threads: the supervised executor, and the
/// serve crate's accept/connection/worker loops (each worker still
/// runs jobs through `Supervisor::run`, so budgets and telemetry are
/// re-armed per job).
const SPAWN_ALLOW_PREFIXES: &[&str] = &["crates/exec/src/", "crates/serve/src/"];

/// The metric-name catalog module (`remix_telemetry::names`), the one
/// place `"remix.*"` literals are the point.
const NAMES_CATALOG: &str = "crates/telemetry/src/names.rs";

/// Audits one scanned file under `config`.
pub fn audit_file(file: &ScannedFile, config: &AuditConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut emit = |rule: AuditRule, index: usize, message: String, f: &ScannedFile| {
        let severity = config.severity(rule);
        if severity == Severity::Allow {
            return;
        }
        if rule.suppressible() {
            let marker = format!("audit: allow({})", short_code(rule));
            if f.has_marker(index, &marker) {
                return;
            }
        }
        findings.push(Finding {
            rule,
            severity,
            file: f.path.clone(),
            line: f.lines[index].number,
            message,
            snippet: f.lines[index].raw.trim().to_string(),
        });
    };

    for (i, line) in file.lines.iter().enumerate() {
        let m = line.masked.as_str();

        // AUD005 applies everywhere, test code included.
        if find_token(m, "static mut").is_some() {
            emit(
                AuditRule::StaticMut,
                i,
                "`static mut` is unsynchronized shared state; use an atomic, \
                 a `Mutex`, or a `thread_local!` registered in the catalog"
                    .to_string(),
                file,
            );
        }

        if line.in_test {
            continue; // every remaining rule certifies lib code only
        }

        if find_token(m, ".unwrap()").is_some() || find_token(m, ".expect(").is_some() {
            emit(
                AuditRule::UnwrapInLib,
                i,
                "`.unwrap()`/`.expect(..)` in library code panics the worker \
                 thread that hits it; return an error, or justify with \
                 `// audit: allow(AUD001): <why>`"
                    .to_string(),
                file,
            );
        }

        for pat in ["panic!(", "unreachable!(", "todo!(", "unimplemented!("] {
            if find_token(m, pat).is_some() {
                emit(
                    AuditRule::PanicInLib,
                    i,
                    format!(
                        "`{}` in library code tears down the calling worker; return \
                         an error, or justify with `// audit: allow(AUD002): <why>`",
                        pat.trim_end_matches('(')
                    ),
                    file,
                );
                break; // one finding per line is enough
            }
        }

        if find_token(m, "process::exit").is_some()
            && !PROCESS_EXIT_ALLOW.contains(&file.path.as_str())
        {
            emit(
                AuditRule::ProcessExit,
                i,
                "`process::exit` skips every RAII guard on every other thread \
                 (checkpoints unflushed, sinks undrained); only \
                 `remix_bench::run_bin` may translate results into an exit status"
                    .to_string(),
                file,
            );
        }

        if (find_token(m, "Instant::now").is_some() || find_token(m, "SystemTime::now").is_some())
            && !TIMING_ALLOW_PREFIXES
                .iter()
                .any(|p| file.path.starts_with(p))
        {
            emit(
                AuditRule::AdHocTiming,
                i,
                "ad-hoc wall-clock reads bypass the budget/span machinery; time \
                 through `remix_telemetry::span` or `remix-exec` budgets instead"
                    .to_string(),
                file,
            );
        }

        if find_token(m, "thread::spawn").is_some()
            && !SPAWN_ALLOW_PREFIXES
                .iter()
                .any(|p| file.path.starts_with(p))
        {
            emit(
                AuditRule::ThreadSpawn,
                i,
                "raw `thread::spawn` escapes the supervised pool: no budget, \
                 telemetry or fault plan is armed on the new thread; go through \
                 `remix-exec`"
                    .to_string(),
                file,
            );
        }

        if find_token(m, "thread_local!").is_some() {
            match find_thread_local_static(file, i) {
                Some(name) => {
                    if catalog::lookup(&file.path, &name).is_none() {
                        emit(
                            AuditRule::UnregisteredThreadLocal,
                            i,
                            format!(
                                "thread-local `{name}` is not in \
                                 `remix_audit::catalog::THREAD_LOCALS`; register it \
                                 with its RAII guard and re-arm method so pool \
                                 workers know to arm it"
                            ),
                            file,
                        );
                    }
                }
                None => emit(
                    AuditRule::UnregisteredThreadLocal,
                    i,
                    "`thread_local!` whose static the audit could not name; \
                     declare it as `static NAME: ...` and register it in the \
                     catalog"
                        .to_string(),
                    file,
                ),
            }
        }

        if file.path != NAMES_CATALOG {
            for s in &line.strings {
                if s.starts_with("remix.") && s.len() > "remix.".len() {
                    emit(
                        AuditRule::UnknownMetricName,
                        i,
                        format!(
                            "metric/span name literal \"{s}\" outside the catalog; \
                             use the `remix_telemetry::names` constant so typos \
                             cannot fork metrics into never-read twins"
                        ),
                        file,
                    );
                }
            }
        }

        if m.contains("Ordering::Relaxed") && !file.has_marker(i, "audit: relaxed-ok:") {
            emit(
                AuditRule::UnjustifiedRelaxed,
                i,
                "`Ordering::Relaxed` without a `// audit: relaxed-ok: <why>` \
                 justification; argue why no happens-before edge is needed, or \
                 upgrade the ordering"
                    .to_string(),
                file,
            );
        }
    }

    findings
}

/// Audits in-memory sources: `(workspace-relative path, text)` pairs.
pub fn audit_sources<'a, I>(sources: I, config: &AuditConfig) -> AuditReport
where
    I: IntoIterator<Item = (&'a str, &'a str)>,
{
    let mut report = AuditReport::default();
    for (path, text) in sources {
        let scanned = scan_source(path, text);
        report.findings.extend(audit_file(&scanned, config));
        report.files_scanned += 1;
    }
    report.sort();
    report
}

/// Audits the workspace rooted at `root`: walks the covered sources
/// (see [`workspace_sources`]) and runs every rule.
pub fn audit_workspace(root: &Path, config: &AuditConfig) -> io::Result<AuditReport> {
    let paths = workspace_sources(root)?;
    let mut report = AuditReport::default();
    for rel in &paths {
        let text = fs::read_to_string(root.join(rel))?;
        let scanned = scan_source(rel, &text);
        report.findings.extend(audit_file(&scanned, config));
        report.files_scanned += 1;
    }
    report.sort();
    Ok(report)
}

/// The short `AUDnnn` prefix of a rule code, used by the suppression
/// marker syntax.
fn short_code(rule: AuditRule) -> &'static str {
    &rule.code()[..6]
}

/// Finds `pat` in `haystack` requiring the preceding character to not
/// be part of an identifier, so `my_panic!(` does not match `panic!(`.
fn find_token(haystack: &str, pat: &str) -> Option<usize> {
    // A leading-ident boundary only matters when the pattern itself
    // starts with an identifier char (`panic!(` yes, `.unwrap()` no —
    // the dot is its own boundary).
    let needs_boundary = pat
        .chars()
        .next()
        .map(|c| c.is_alphanumeric() || c == '_')
        .unwrap_or(false);
    let mut from = 0;
    while let Some(off) = haystack[from..].find(pat) {
        let at = from + off;
        let boundary = !needs_boundary
            || haystack[..at]
                .chars()
                .next_back()
                .map(|c| !c.is_alphanumeric() && c != '_')
                .unwrap_or(true);
        if boundary {
            return Some(at);
        }
        from = at + pat.len();
    }
    None
}

/// Extracts the static's name from a `thread_local!` block starting at
/// line `start`: the first `static <ident>` within the next few lines.
fn find_thread_local_static(file: &ScannedFile, start: usize) -> Option<String> {
    for line in file.lines.iter().skip(start).take(8) {
        let m = &line.masked;
        if let Some(at) = find_token(m, "static ") {
            let rest = &m[at + "static ".len()..];
            let name: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                return Some(name);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit_one(path: &str, src: &str) -> Vec<Finding> {
        audit_file(&scan_source(path, src), &AuditConfig::new())
    }

    fn rules_of(findings: &[Finding]) -> Vec<AuditRule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unwrap_fires_in_lib_not_in_tests() {
        let src = "\
fn lib() { value.unwrap(); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { value.unwrap(); }
}
";
        let f = audit_one("crates/x/src/a.rs", src);
        assert_eq!(rules_of(&f), vec![AuditRule::UnwrapInLib]);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn unwrap_suppressed_by_justification() {
        let src = "fn lib() { value.unwrap(); } // audit: allow(AUD001): infallible here\n";
        assert!(audit_one("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn expect_fires_but_expect_err_does_not() {
        let f = audit_one("crates/x/src/a.rs", "fn lib() { v.expect(\"m\"); }\n");
        assert_eq!(rules_of(&f), vec![AuditRule::UnwrapInLib]);
        let f = audit_one("crates/x/src/a.rs", "fn lib() { let _ = v.expect_err; }\n");
        assert!(f.is_empty());
    }

    #[test]
    fn panic_family_fires_once_per_line() {
        let f = audit_one("crates/x/src/a.rs", "fn lib() { panic!(\"x\"); todo!() }\n");
        assert_eq!(rules_of(&f), vec![AuditRule::PanicInLib]);
        let f = audit_one("crates/x/src/a.rs", "fn lib() { unreachable!() }\n");
        assert_eq!(rules_of(&f), vec![AuditRule::PanicInLib]);
    }

    #[test]
    fn panic_in_doc_comment_is_fine() {
        let f = audit_one(
            "crates/x/src/a.rs",
            "/// This would panic!(boom) if…\nfn lib() {}\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn process_exit_allowed_only_in_bench_lib() {
        let src = "fn die() { std::process::exit(1); }\n";
        assert_eq!(
            rules_of(&audit_one("crates/x/src/a.rs", src)),
            vec![AuditRule::ProcessExit]
        );
        assert!(audit_one("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn timing_allowed_in_telemetry_and_exec() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(
            rules_of(&audit_one("crates/numerics/src/lu.rs", src)),
            vec![AuditRule::AdHocTiming]
        );
        assert!(audit_one("crates/exec/src/budget.rs", src).is_empty());
        assert!(audit_one("crates/telemetry/src/span.rs", src).is_empty());
    }

    #[test]
    fn static_mut_fires_even_in_tests_and_cannot_be_suppressed() {
        let src = "\
#[cfg(test)]
mod tests {
    // audit: allow(AUD005): please?
    static mut COUNTER: u32 = 0;
}
";
        let f = audit_one("crates/x/src/a.rs", src);
        assert_eq!(rules_of(&f), vec![AuditRule::StaticMut]);
    }

    #[test]
    fn thread_spawn_allowed_only_in_exec() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(
            rules_of(&audit_one("crates/core/src/montecarlo.rs", src)),
            vec![AuditRule::ThreadSpawn]
        );
        assert!(audit_one("crates/exec/src/supervisor.rs", src).is_empty());
    }

    #[test]
    fn unregistered_thread_local_fires() {
        let src = "\
thread_local! {
    static ROGUE: std::cell::RefCell<u32> = const { std::cell::RefCell::new(0) };
}
";
        let f = audit_one("crates/x/src/a.rs", src);
        assert_eq!(rules_of(&f), vec![AuditRule::UnregisteredThreadLocal]);
        assert!(f[0].message.contains("ROGUE"));
    }

    #[test]
    fn registered_thread_local_is_clean() {
        let src = "\
thread_local! {
    static ACTIVE: RefCell<Option<Telemetry>> = const { RefCell::new(None) };
}
";
        assert!(audit_one("crates/telemetry/src/lib.rs", src).is_empty());
    }

    #[test]
    fn metric_name_literal_fires_outside_catalog() {
        let src = "fn f() { remix_telemetry::counter_add(\"remix.x.widgets\", 1); }\n";
        let f = audit_one("crates/x/src/a.rs", src);
        assert_eq!(rules_of(&f), vec![AuditRule::UnknownMetricName]);
        assert!(f[0].message.contains("remix.x.widgets"));
        // The catalog module itself is the one place they belong.
        assert!(audit_one("crates/telemetry/src/names.rs", src).is_empty());
        // The bare prefix used for validation is not a name.
        let src = "fn f(n: &str) -> bool { n.starts_with(\"remix.\") }\n";
        assert!(audit_one("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn relaxed_requires_justification() {
        let src = "fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) }\n";
        assert_eq!(
            rules_of(&audit_one("crates/x/src/a.rs", src)),
            vec![AuditRule::UnjustifiedRelaxed]
        );
        let src = "\
// audit: relaxed-ok: single monotonic cell, exactness only post-join.
fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) }
";
        assert!(audit_one("crates/x/src/a.rs", src).is_empty());
        let src =
            "fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) } // audit: relaxed-ok: why\n";
        assert!(audit_one("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn cmp_ordering_is_not_flagged() {
        let src = "fn f(a: i32, b: i32) -> std::cmp::Ordering { a.cmp(&b) }\n";
        assert!(audit_one("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn patterns_inside_strings_do_not_fire() {
        let src = "fn f() -> &'static str { \".unwrap() panic!( thread::spawn static mut\" }\n";
        assert!(audit_one("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn severity_overrides_apply() {
        let cfg = AuditConfig::new().with_severity(AuditRule::UnwrapInLib, Severity::Warn);
        let f = audit_file(
            &scan_source("crates/x/src/a.rs", "fn l() { v.unwrap(); }\n"),
            &cfg,
        );
        assert_eq!(f[0].severity, Severity::Warn);
        let cfg = AuditConfig::new().with_severity(AuditRule::UnwrapInLib, Severity::Allow);
        let f = audit_file(
            &scan_source("crates/x/src/a.rs", "fn l() { v.unwrap(); }\n"),
            &cfg,
        );
        assert!(f.is_empty());
    }

    #[test]
    fn audit_sources_aggregates_and_sorts() {
        let report = audit_sources(
            vec![
                ("crates/b/src/z.rs", "fn l() { v.unwrap(); }\n"),
                ("crates/a/src/a.rs", "fn l() { panic!(\"x\"); }\n"),
            ],
            &AuditConfig::new(),
        );
        assert_eq!(report.files_scanned, 2);
        assert_eq!(report.deny_count(), 2);
        assert_eq!(report.findings[0].file, "crates/a/src/a.rs");
    }
}
