//! Audit diagnostics: rule identifiers, severities, findings, reports.
//!
//! Deliberately parallel to `remix-lint`'s diagnostic layer — same
//! deny/warn/allow model, same stable-code discipline, same hand-rolled
//! versioned JSON — so one mental model covers netlist lints and
//! workspace audits alike.

use std::fmt;

/// Version of the JSON report layout produced by
/// [`AuditReport::render_json`]. Bumped whenever the emitted shape
/// changes so CI artifact consumers can detect drift. History: 1 =
/// PR 6 (first release).
pub const AUDIT_SCHEMA_VERSION: u32 = 1;

/// How seriously a finding is treated. Mirrors `remix-lint`:
/// `Deny` findings fail the audit (non-zero CLI exit), `Warn` findings
/// are reported but non-fatal, `Allow` disables the rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Rule disabled; no findings are emitted.
    Allow,
    /// Reported, but does not fail the audit.
    Warn,
    /// Reported and fails the audit.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// Stable identifier of a workspace-audit rule.
///
/// The `AUDnnn_*` codes are public interface: they appear in rendered
/// findings, JSON output, [`AuditConfig`] overrides and the inline
/// suppression protocol (`// audit: allow(AUD001): <why>`). Existing
/// codes are never renumbered.
///
/// [`AuditConfig`]: crate::AuditConfig
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AuditRule {
    /// `AUD001` — `.unwrap()` / `.expect(..)` in non-test library code
    /// without an inline justification. A panic in lib code tears down
    /// the worker thread that runs it; under the parallel supervisor
    /// that converts one bad sample into a lost worker.
    UnwrapInLib,
    /// `AUD002` — `panic!` / `unreachable!` / `todo!` /
    /// `unimplemented!` in non-test library code without an inline
    /// justification.
    PanicInLib,
    /// `AUD003` — `process::exit` outside `remix_bench::run_bin`'s
    /// module. Exiting the process skips every RAII guard on every
    /// other thread: checkpoints are not flushed, sinks are not
    /// drained.
    ProcessExit,
    /// `AUD004` — `Instant::now` / `SystemTime::now` outside the
    /// telemetry and exec crates. Ad-hoc clocks bypass the budget /
    /// span machinery and make `without_timings()` determinism claims
    /// unauditable.
    AdHocTiming,
    /// `AUD005` — `static mut` anywhere, test code included. Mutable
    /// statics are unsynchronized shared state the parallel pool
    /// cannot certify; no suppression is honoured.
    StaticMut,
    /// `AUD006` — `thread::spawn` outside the exec crate. All
    /// parallelism must flow through the supervised pool so budgets,
    /// telemetry and fault plans are re-armed per worker.
    ThreadSpawn,
    /// `AUD007` — a `thread_local!` not declared in the central
    /// registry ([`crate::catalog::THREAD_LOCALS`]). The catalog is the
    /// exact inventory of per-thread RAII state the parallel
    /// supervisor must re-arm on every worker; an unlisted
    /// thread-local is state a worker would silently run without.
    UnregisteredThreadLocal,
    /// `AUD008` — a `"remix.*"` metric/span/event name literal outside
    /// the central `remix_telemetry::names` catalog. Typo'd names fork
    /// metrics into never-read twins; call sites must use the
    /// constants.
    UnknownMetricName,
    /// `AUD009` — `Ordering::Relaxed` without an adjacent
    /// `// audit: relaxed-ok: <why>` justification. Every relaxed
    /// atomic the pool will share must argue why it needs no
    /// happens-before edge — or be upgraded.
    UnjustifiedRelaxed,
}

impl AuditRule {
    /// Every rule, in code order.
    pub const ALL: [AuditRule; 9] = [
        AuditRule::UnwrapInLib,
        AuditRule::PanicInLib,
        AuditRule::ProcessExit,
        AuditRule::AdHocTiming,
        AuditRule::StaticMut,
        AuditRule::ThreadSpawn,
        AuditRule::UnregisteredThreadLocal,
        AuditRule::UnknownMetricName,
        AuditRule::UnjustifiedRelaxed,
    ];

    /// The stable textual code (`AUD001_UNWRAP_IN_LIB`, …).
    pub fn code(self) -> &'static str {
        match self {
            AuditRule::UnwrapInLib => "AUD001_UNWRAP_IN_LIB",
            AuditRule::PanicInLib => "AUD002_PANIC_IN_LIB",
            AuditRule::ProcessExit => "AUD003_PROCESS_EXIT",
            AuditRule::AdHocTiming => "AUD004_AD_HOC_TIMING",
            AuditRule::StaticMut => "AUD005_STATIC_MUT",
            AuditRule::ThreadSpawn => "AUD006_THREAD_SPAWN",
            AuditRule::UnregisteredThreadLocal => "AUD007_UNREGISTERED_THREAD_LOCAL",
            AuditRule::UnknownMetricName => "AUD008_UNKNOWN_METRIC_NAME",
            AuditRule::UnjustifiedRelaxed => "AUD009_UNJUSTIFIED_RELAXED",
        }
    }

    /// Parses a stable code back into a rule id.
    pub fn from_code(code: &str) -> Option<AuditRule> {
        AuditRule::ALL.iter().copied().find(|r| r.code() == code)
    }

    /// The built-in severity. Everything the parallel pool depends on
    /// denies; there are no warn-by-default audit rules today.
    pub fn default_severity(self) -> Severity {
        Severity::Deny
    }

    /// `true` when an inline `// audit: allow(AUDnnn): <why>`
    /// suppression is honoured. `static mut` is beyond justification.
    pub fn suppressible(self) -> bool {
        !matches!(self, AuditRule::StaticMut)
    }

    /// One-line description for catalogs and `--help` output.
    pub fn summary(self) -> &'static str {
        match self {
            AuditRule::UnwrapInLib => "unwrap/expect in lib code without justification",
            AuditRule::PanicInLib => "panic-family macro in lib code without justification",
            AuditRule::ProcessExit => "process::exit outside remix_bench::run_bin",
            AuditRule::AdHocTiming => "Instant/SystemTime::now outside telemetry/exec",
            AuditRule::StaticMut => "static mut anywhere (unsynchronized shared state)",
            AuditRule::ThreadSpawn => "thread::spawn outside the exec crate",
            AuditRule::UnregisteredThreadLocal => "thread_local! missing from the RAII catalog",
            AuditRule::UnknownMetricName => "metric name literal outside telemetry::names",
            AuditRule::UnjustifiedRelaxed => "Ordering::Relaxed without a relaxed-ok justification",
        }
    }
}

impl fmt::Display for AuditRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Per-run configuration: severity overrides, mirroring `LintConfig`.
#[derive(Debug, Clone, Default)]
pub struct AuditConfig {
    overrides: Vec<(AuditRule, Severity)>,
}

impl AuditConfig {
    /// The built-in severities with no overrides.
    pub fn new() -> Self {
        AuditConfig::default()
    }

    /// Overrides one rule's severity (`Allow` disables it).
    pub fn with_severity(mut self, rule: AuditRule, severity: Severity) -> Self {
        self.overrides.retain(|(r, _)| *r != rule);
        self.overrides.push((rule, severity));
        self
    }

    /// The effective severity of a rule under this configuration.
    pub fn severity(&self, rule: AuditRule) -> Severity {
        self.overrides
            .iter()
            .find(|(r, _)| *r == rule)
            .map(|(_, s)| *s)
            .unwrap_or_else(|| rule.default_severity())
    }
}

/// One audit finding: a rule violation with file/line provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: AuditRule,
    /// Effective severity (after configuration overrides).
    pub severity: Severity,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of this specific violation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl Finding {
    /// Single-line clippy-style rendering:
    /// `deny[AUD001_UNWRAP_IN_LIB] crates/x/src/y.rs:12: message`.
    pub fn render(&self) -> String {
        format!(
            "{}[{}] {}:{}: {}",
            self.severity, self.rule, self.file, self.line, self.message
        )
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"rule\":{},\"severity\":{},\"file\":{},\"line\":{},\"message\":{},\"snippet\":{}}}",
            json_str(self.rule.code()),
            json_str(&self.severity.to_string()),
            json_str(&self.file),
            self.line,
            json_str(&self.message),
            json_str(&self.snippet),
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// JSON string literal with the escapes JSON requires. Hand-rolled —
/// the audit engine is dependency-free like the rest of the stack.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The result of one audit pass: every finding, ordered by
/// (file, line, rule code).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// All findings (severity `Allow` rules emit none).
    pub findings: Vec<Finding>,
    /// Files scanned, for the summary line.
    pub files_scanned: usize,
}

impl AuditReport {
    /// Number of deny-level findings.
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// Number of warn-level findings.
    pub fn warn_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// `true` when nothing fails the audit (no deny findings).
    pub fn is_clean(&self) -> bool {
        self.deny_count() == 0
    }

    /// Findings for one rule.
    pub fn by_rule(&self, rule: AuditRule) -> Vec<&Finding> {
        self.findings.iter().filter(|d| d.rule == rule).collect()
    }

    /// Canonical ordering: by file, then line, then rule code.
    pub(crate) fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule.code()).cmp(&(b.file.as_str(), b.line, b.rule.code()))
        });
    }

    /// Multi-line text rendering: one line per finding plus a summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.findings {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "audit: {} files scanned, {} deny, {} warn\n",
            self.files_scanned,
            self.deny_count(),
            self.warn_count()
        ));
        out
    }

    /// JSON rendering, one finding per line (greppable by CI smoke
    /// checks, like the bench records):
    /// `{"schema_version":1,"tool":"remix-audit", …}`.
    pub fn render_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"schema_version\": {AUDIT_SCHEMA_VERSION},\n  \"tool\": \"remix-audit\",\n"
        ));
        s.push_str(&format!(
            "  \"files_scanned\": {},\n  \"deny\": {},\n  \"warn\": {},\n",
            self.files_scanned,
            self.deny_count(),
            self.warn_count()
        ));
        s.push_str("  \"findings\": [");
        for (i, d) in self.findings.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("    ");
            s.push_str(&d.to_json());
        }
        s.push_str(if self.findings.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        s.push_str("}\n");
        s
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render_text().trim_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_reversible() {
        for r in AuditRule::ALL {
            assert_eq!(AuditRule::from_code(r.code()), Some(r));
            assert!(r.code().starts_with("AUD"));
            assert!(!r.summary().is_empty());
        }
        assert_eq!(AuditRule::from_code("AUD999_NOPE"), None);
        assert_eq!(AuditRule::UnwrapInLib.code(), "AUD001_UNWRAP_IN_LIB");
        assert_eq!(
            AuditRule::UnjustifiedRelaxed.code(),
            "AUD009_UNJUSTIFIED_RELAXED"
        );
    }

    #[test]
    fn static_mut_is_beyond_justification() {
        for r in AuditRule::ALL {
            assert_eq!(r.suppressible(), r != AuditRule::StaticMut, "{r}");
        }
    }

    #[test]
    fn config_overrides_severity() {
        let cfg = AuditConfig::new().with_severity(AuditRule::UnwrapInLib, Severity::Warn);
        assert_eq!(cfg.severity(AuditRule::UnwrapInLib), Severity::Warn);
        assert_eq!(cfg.severity(AuditRule::PanicInLib), Severity::Deny);
        let cfg = cfg.with_severity(AuditRule::UnwrapInLib, Severity::Allow);
        assert_eq!(cfg.severity(AuditRule::UnwrapInLib), Severity::Allow);
    }

    fn sample() -> AuditReport {
        let mut r = AuditReport {
            findings: vec![
                Finding {
                    rule: AuditRule::UnjustifiedRelaxed,
                    severity: Severity::Deny,
                    file: "crates/x/src/b.rs".into(),
                    line: 7,
                    message: "Ordering::Relaxed without a relaxed-ok justification".into(),
                    snippet: "cell.load(Ordering::Relaxed)".into(),
                },
                Finding {
                    rule: AuditRule::UnwrapInLib,
                    severity: Severity::Warn,
                    file: "crates/x/src/a.rs".into(),
                    line: 3,
                    message: "`.unwrap()` in library code".into(),
                    snippet: "foo.unwrap()".into(),
                },
            ],
            files_scanned: 2,
        };
        r.sort();
        r
    }

    #[test]
    fn report_counts_and_ordering() {
        let r = sample();
        assert_eq!(r.deny_count(), 1);
        assert_eq!(r.warn_count(), 1);
        assert!(!r.is_clean());
        // Sorted by file first.
        assert_eq!(r.findings[0].file, "crates/x/src/a.rs");
        assert_eq!(r.by_rule(AuditRule::UnwrapInLib).len(), 1);
        assert!(AuditReport::default().is_clean());
    }

    #[test]
    fn text_and_json_render() {
        let r = sample();
        let text = r.render_text();
        assert!(text.contains("warn[AUD001_UNWRAP_IN_LIB] crates/x/src/a.rs:3:"));
        assert!(text.contains("2 files scanned, 1 deny, 1 warn"));
        let json = r.render_json();
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"tool\": \"remix-audit\""));
        assert!(json.contains("\"rule\":\"AUD009_UNJUSTIFIED_RELAXED\""));
        assert!(json.contains("\"line\":7"));
    }

    #[test]
    fn json_escapes_hostile_snippets() {
        let r = AuditReport {
            findings: vec![Finding {
                rule: AuditRule::UnknownMetricName,
                severity: Severity::Deny,
                file: "crates/x/src/a.rs".into(),
                line: 1,
                message: "bad \"name\"".into(),
                snippet: "tab\there".into(),
            }],
            files_scanned: 1,
        };
        let json = r.render_json();
        assert!(json.contains("bad \\\"name\\\""));
        assert!(json.contains("tab\\there"));
    }
}
