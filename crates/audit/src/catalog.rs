//! Central registry of every `thread_local!` in the workspace.
//!
//! The parallel supervisor (ROADMAP item 1) runs solver work on pool
//! threads. Every piece of per-thread RAII state — budget tokens,
//! telemetry contexts, fault plans — must be re-armed on each worker,
//! or the worker silently runs unbudgeted, unobserved and unfaulted.
//! This catalog is that inventory, machine-checked by rule
//! `AUD007_UNREGISTERED_THREAD_LOCAL`: a `thread_local!` static that
//! is not listed here fails the audit, so the inventory cannot rot.

/// One registered thread-local: where it lives and how a worker
/// thread arms it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadLocalEntry {
    /// Workspace-relative file (forward slashes) declaring the static.
    pub file: &'static str,
    /// The `thread_local!` static's name.
    pub static_name: &'static str,
    /// The RAII guard type that arms/disarms it.
    pub guard: &'static str,
    /// The method a pool worker calls to re-arm it.
    pub rearm: &'static str,
}

/// Every known `thread_local!` in the workspace. Adding a new
/// thread-local requires adding it here — that is the point: the
/// supervisor's per-worker arming sequence is derived from this list.
pub const THREAD_LOCALS: &[ThreadLocalEntry] = &[
    ThreadLocalEntry {
        file: "crates/exec/src/budget.rs",
        static_name: "ACTIVE",
        guard: "BudgetGuard",
        rearm: "CancelToken::arm",
    },
    ThreadLocalEntry {
        file: "crates/telemetry/src/lib.rs",
        static_name: "ACTIVE",
        guard: "TelemetryGuard",
        rearm: "Telemetry::arm",
    },
    ThreadLocalEntry {
        file: "crates/analysis/src/fault.rs",
        static_name: "ACTIVE",
        guard: "FaultGuard",
        rearm: "FaultPlan::arm",
    },
    ThreadLocalEntry {
        file: "crates/exec/src/pool.rs",
        static_name: "WORKER",
        guard: "WorkerGuard",
        rearm: "WorkerContext::arm",
    },
];

/// Looks up the catalog entry for a static declared in `file`.
pub fn lookup(file: &str, static_name: &str) -> Option<&'static ThreadLocalEntry> {
    THREAD_LOCALS
        .iter()
        .find(|e| e.file == file && e.static_name == static_name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_are_unique_and_well_formed() {
        for (i, a) in THREAD_LOCALS.iter().enumerate() {
            assert!(a.file.ends_with(".rs"));
            assert!(!a.file.contains('\\'), "forward slashes only: {}", a.file);
            assert!(!a.static_name.is_empty());
            assert!(!a.guard.is_empty());
            assert!(a.rearm.contains("::arm"), "rearm is an arm method");
            for b in &THREAD_LOCALS[i + 1..] {
                assert!(
                    (a.file, a.static_name) != (b.file, b.static_name),
                    "duplicate catalog entry {}:{}",
                    a.file,
                    a.static_name
                );
            }
        }
    }

    #[test]
    fn lookup_finds_registered_entries() {
        let e = lookup("crates/exec/src/budget.rs", "ACTIVE").expect("registered");
        assert_eq!(e.guard, "BudgetGuard");
        assert!(lookup("crates/exec/src/budget.rs", "OTHER").is_none());
        assert!(lookup("crates/nope/src/x.rs", "ACTIVE").is_none());
    }
}
