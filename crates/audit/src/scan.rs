//! Line/token scanner for the audit rules.
//!
//! Not a Rust parser: a character-level state machine that classifies
//! every byte of a source file as code, string-literal content, or
//! comment, then exposes per-line views the rules match against.
//!
//! The load-bearing design point is that rules never see raw text.
//! They see [`ScannedLine::masked`] — the line with comments stripped
//! and string/char-literal *contents* blanked — so the audit engine's
//! own pattern tables (`".unwrap()"` and friends) cannot self-trigger,
//! and a doc comment mentioning `panic!` is not a panic. String
//! contents are collected separately in [`ScannedLine::strings`] for
//! the metric-name rule, and comment text in [`ScannedLine::comment`]
//! for the justification protocol.
//!
//! `#[cfg(test)]` regions are tracked by brace depth so lib-code rules
//! can exempt test modules without a syntax tree.

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct ScannedLine {
    /// 1-based line number.
    pub number: usize,
    /// The raw source line (without the trailing newline).
    pub raw: String,
    /// The line with comments removed and every string/char literal's
    /// contents replaced by spaces (delimiters kept). Rules match here.
    pub masked: String,
    /// Contents of every string literal that *starts* on this line.
    pub strings: Vec<String>,
    /// Comment text on this line (both `//` and `/* */` forms), with
    /// comment markers stripped, joined by spaces.
    pub comment: String,
    /// `true` when the line sits inside a `#[cfg(test)]` module or
    /// item, or inside a `#[test]` function.
    pub in_test: bool,
}

impl ScannedLine {
    /// `true` when the masked line holds no code (blank or
    /// comment-only line).
    pub fn is_code_free(&self) -> bool {
        self.masked.trim().is_empty()
    }
}

/// A whole scanned file.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Every line, in order.
    pub lines: Vec<ScannedLine>,
}

impl ScannedFile {
    /// `true` when the line *before* `index` (0-based into `lines`)
    /// chains upward through comment-only lines to one whose comment
    /// contains `marker`, or when line `index` itself carries it.
    ///
    /// This is the justification lookup: a marker comment may trail
    /// the flagged line or sit on its own line(s) directly above.
    pub fn has_marker(&self, index: usize, marker: &str) -> bool {
        if self.lines[index].comment.contains(marker) {
            return true;
        }
        let mut i = index;
        while i > 0 {
            i -= 1;
            let line = &self.lines[i];
            if line.is_code_free() && !line.comment.is_empty() {
                if line.comment.contains(marker) {
                    return true;
                }
                continue; // keep walking up a comment block
            }
            if line.raw.trim().is_empty() {
                continue; // blank line inside a justification block
            }
            break; // hit code: stop
        }
        false
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Code,
    Str,
    RawStr(usize),
    Char,
    LineComment,
    BlockComment(usize),
}

/// Test-region tracking: `#[cfg(test)]` / `#[test]` arms a pending
/// flag; the next `{` at item level opens a test region that closes
/// when brace depth returns to its opening level.
#[derive(Debug, Default)]
struct TestTracker {
    depth: usize,
    pending: bool,
    /// Brace depth at which each active test region was opened.
    regions: Vec<usize>,
}

impl TestTracker {
    fn in_test(&self) -> bool {
        !self.regions.is_empty()
    }

    fn observe_attr(&mut self, masked: &str) {
        let t = masked.trim();
        if t.starts_with("#[cfg(test)]")
            || t.starts_with("#[cfg(all(test")
            || t.starts_with("#[cfg(any(test")
            || t.starts_with("#[test]")
            || t.starts_with("#[tokio::test")
        {
            self.pending = true;
        }
    }

    fn open_brace(&mut self) {
        if self.pending {
            self.regions.push(self.depth);
            self.pending = false;
        }
        self.depth += 1;
    }

    fn close_brace(&mut self) {
        self.depth = self.depth.saturating_sub(1);
        if let Some(&open) = self.regions.last() {
            if self.depth == open {
                self.regions.pop();
            }
        }
    }
}

/// Scans one file's source text.
pub fn scan_source(path: &str, source: &str) -> ScannedFile {
    let mut lines = Vec::new();
    let mut mode = Mode::Code;
    let mut tracker = TestTracker::default();

    for (idx, raw) in source.lines().enumerate() {
        let chars: Vec<char> = raw.chars().collect();
        let mut masked = String::with_capacity(raw.len());
        let mut comment = String::new();
        let mut strings = Vec::new();
        let mut current_string = String::new();
        let mut i = 0usize;

        // A line that starts inside a block comment or multi-line
        // string continues that mode; line comments never continue.
        if mode == Mode::LineComment {
            mode = Mode::Code;
        }
        let started_in_test = tracker.in_test();

        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match mode {
                Mode::Code => match c {
                    '/' if next == Some('/') => {
                        comment.push_str(raw[byte_at(raw, i)..].trim_start_matches('/').trim());
                        mode = Mode::LineComment;
                        i = chars.len();
                    }
                    '/' if next == Some('*') => {
                        mode = Mode::BlockComment(1);
                        i += 2;
                    }
                    '"' => {
                        masked.push('"');
                        mode = Mode::Str;
                        current_string.clear();
                        i += 1;
                    }
                    'r' if is_raw_string_start(&chars, i) => {
                        let hashes = count_hashes(&chars, i + 1);
                        masked.push('r');
                        for _ in 0..hashes {
                            masked.push('#');
                        }
                        masked.push('"');
                        mode = Mode::RawStr(hashes);
                        current_string.clear();
                        i += hashes + 2;
                    }
                    'b' if next == Some('"') => {
                        masked.push_str("b\"");
                        mode = Mode::Str;
                        current_string.clear();
                        i += 2;
                    }
                    '\'' if is_char_literal(&chars, i) => {
                        masked.push('\'');
                        mode = Mode::Char;
                        i += 1;
                    }
                    '{' => {
                        tracker.open_brace();
                        masked.push('{');
                        i += 1;
                    }
                    '}' => {
                        tracker.close_brace();
                        masked.push('}');
                        i += 1;
                    }
                    c => {
                        masked.push(c);
                        i += 1;
                    }
                },
                Mode::Str => match c {
                    '\\' => {
                        if let Some(n) = next {
                            current_string.push('\\');
                            current_string.push(n);
                        }
                        masked.push_str("  ");
                        i += 2;
                    }
                    '"' => {
                        masked.push('"');
                        strings.push(std::mem::take(&mut current_string));
                        mode = Mode::Code;
                        i += 1;
                    }
                    c => {
                        current_string.push(c);
                        masked.push(' ');
                        i += 1;
                    }
                },
                Mode::RawStr(hashes) => {
                    if c == '"' && has_hashes(&chars, i + 1, hashes) {
                        masked.push('"');
                        for _ in 0..hashes {
                            masked.push('#');
                        }
                        strings.push(std::mem::take(&mut current_string));
                        mode = Mode::Code;
                        i += hashes + 1;
                    } else {
                        current_string.push(c);
                        masked.push(' ');
                        i += 1;
                    }
                }
                Mode::Char => match c {
                    '\\' => {
                        masked.push_str("  ");
                        i += 2;
                    }
                    '\'' => {
                        masked.push('\'');
                        mode = Mode::Code;
                        i += 1;
                    }
                    _ => {
                        masked.push(' ');
                        i += 1;
                    }
                },
                Mode::LineComment => unreachable!("line comments consume the rest of the line"), // audit: allow(AUD002): line comments consume the rest of the line, so the mode cannot survive into the next iteration
                Mode::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        if depth == 1 {
                            mode = Mode::Code;
                        } else {
                            mode = Mode::BlockComment(depth - 1);
                        }
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        mode = Mode::BlockComment(depth + 1);
                        i += 2;
                    } else {
                        if !comment.ends_with(' ') && !comment.is_empty() || c != ' ' {
                            comment.push(c);
                        }
                        i += 1;
                    }
                }
            }
        }

        // Multi-line strings / chars spill into the next line; close
        // out per-line bookkeeping without ending the literal.
        if mode == Mode::Str || matches!(mode, Mode::RawStr(_)) {
            strings.push(std::mem::take(&mut current_string));
        }

        tracker.observe_attr(&masked);
        let in_test = started_in_test || tracker.in_test() || tracker.pending;
        lines.push(ScannedLine {
            number: idx + 1,
            raw: raw.to_string(),
            masked,
            strings,
            comment: comment.trim().to_string(),
            in_test,
        });
    }

    ScannedFile {
        path: path.to_string(),
        lines,
    }
}

fn byte_at(s: &str, char_index: usize) -> usize {
    s.char_indices()
        .nth(char_index)
        .map(|(b, _)| b)
        .unwrap_or(s.len())
}

fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // `r"` or `r#...#"`; reject identifiers like `for` ending in r.
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn count_hashes(chars: &[char], mut i: usize) -> usize {
    let mut n = 0;
    while chars.get(i) == Some(&'#') {
        n += 1;
        i += 1;
    }
    n
}

fn has_hashes(chars: &[char], i: usize, n: usize) -> bool {
    (0..n).all(|k| chars.get(i + k) == Some(&'#'))
}

fn is_char_literal(chars: &[char], i: usize) -> bool {
    // Distinguish 'a' / '\n' from lifetimes ('a in `&'a str`) and
    // labeled loops. A char literal closes with a quote shortly after.
    match (chars.get(i + 1), chars.get(i + 2)) {
        (Some('\\'), _) => true, // escape: '\n', '\'', '\u{..}'
        (Some(_), Some('\'')) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_stripped_from_masked() {
        let f = scan_source("t.rs", "let x = 1; // audit: relaxed-ok: test\n");
        assert_eq!(f.lines[0].masked.trim(), "let x = 1;");
        assert!(f.lines[0].comment.contains("audit: relaxed-ok: test"));
    }

    #[test]
    fn string_contents_are_blanked_and_collected() {
        let f = scan_source("t.rs", "let s = \"a.unwrap()\";\n");
        assert!(!f.lines[0].masked.contains("unwrap"));
        assert_eq!(f.lines[0].strings, vec!["a.unwrap()".to_string()]);
    }

    #[test]
    fn raw_strings_and_escapes() {
        let f = scan_source(
            "t.rs",
            "let s = r#\"panic!(\"x\")\"#; let t = \"\\\"q\\\"\";\n",
        );
        assert!(!f.lines[0].masked.contains("panic"));
        assert_eq!(f.lines[0].strings[0], "panic!(\"x\")");
        assert_eq!(f.lines[0].strings[1], "\\\"q\\\"");
    }

    #[test]
    fn char_literals_do_not_eat_lifetimes() {
        let f = scan_source("t.rs", "fn f<'a>(x: &'a str) -> char { 'x' }\n");
        assert!(f.lines[0].masked.contains("&'a str"));
        assert!(!f.lines[0].masked.contains("'x'") || f.lines[0].masked.contains("' '"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = scan_source("t.rs", "/* a\n b */ let x = 1;\n");
        assert!(f.lines[0].is_code_free());
        assert_eq!(f.lines[1].masked.trim(), "let x = 1;");
    }

    #[test]
    fn nested_block_comments() {
        let f = scan_source("t.rs", "/* outer /* inner */ still */ let y = 2;\n");
        assert_eq!(f.lines[0].masked.trim(), "let y = 2;");
    }

    #[test]
    fn cfg_test_regions_are_tracked() {
        let src = "\
fn lib_code() {}
#[cfg(test)]
mod tests {
    fn helper() {}
    #[test]
    fn case() {
        value.unwrap();
    }
}
fn more_lib_code() {}
";
        let f = scan_source("t.rs", src);
        assert!(!f.lines[0].in_test, "lib fn");
        assert!(f.lines[1].in_test, "the attr itself");
        assert!(f.lines[3].in_test, "helper inside test mod");
        assert!(f.lines[6].in_test, "unwrap inside #[test] fn");
        assert!(!f.lines[9].in_test, "code after the test mod");
    }

    #[test]
    fn test_fn_without_mod_is_tracked() {
        let src = "\
fn lib_code() {}
#[test]
fn case() {
    value.unwrap();
}
fn after() {}
";
        let f = scan_source("t.rs", src);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn marker_walkup() {
        let src = "\
let a = 1;
// audit: relaxed-ok: single cell.
// second comment line.
x.load(Ordering::Relaxed);
y.load(Ordering::Relaxed);
";
        let f = scan_source("t.rs", src);
        assert!(f.has_marker(3, "audit: relaxed-ok:"), "walk-up finds it");
        assert!(
            !f.has_marker(4, "audit: relaxed-ok:"),
            "code line above stops the walk"
        );
        assert!(!f.has_marker(0, "audit: relaxed-ok:"));
    }

    #[test]
    fn marker_on_same_line() {
        let f = scan_source(
            "t.rs",
            "x.load(Ordering::Relaxed); // audit: relaxed-ok: why\n",
        );
        assert!(f.has_marker(0, "audit: relaxed-ok:"));
    }

    #[test]
    fn multi_line_strings_stay_masked() {
        let src = "let s = \"first\nsecond.unwrap()\";\nlet x = 1;\n";
        let f = scan_source("t.rs", src);
        assert!(!f.lines[1].masked.contains("unwrap"));
        assert_eq!(f.lines[2].masked.trim(), "let x = 1;");
    }
}
