//! # remix-audit
//!
//! Concurrency-soundness and workspace-conformance static analysis
//! for the remix stack — the compile-adjacent half of certifying the
//! solver pipeline for parallel scale-out (ROADMAP item 1).
//!
//! Where `remix-lint` audits *netlists and simulation plans* before a
//! run, `remix-audit` audits the *workspace source itself* before a
//! merge: a dependency-free rule engine over a line/token scanner (no
//! full Rust parser) that denies the patterns a thread pool cannot
//! tolerate and enforces the catalogs the pool depends on.
//!
//! ## Rule catalog
//!
//! | Code | Denies |
//! |------|--------|
//! | `AUD001_UNWRAP_IN_LIB` | `.unwrap()`/`.expect(..)` in non-test lib code without `// audit: allow(AUD001): <why>` |
//! | `AUD002_PANIC_IN_LIB` | `panic!`/`unreachable!`/`todo!`/`unimplemented!` in non-test lib code without justification |
//! | `AUD003_PROCESS_EXIT` | `process::exit` outside `remix_bench::run_bin`'s module |
//! | `AUD004_AD_HOC_TIMING` | `Instant::now`/`SystemTime::now` outside `crates/telemetry`, `crates/exec` |
//! | `AUD005_STATIC_MUT` | `static mut` anywhere, tests included; no suppression |
//! | `AUD006_THREAD_SPAWN` | `thread::spawn` outside `crates/exec` |
//! | `AUD007_UNREGISTERED_THREAD_LOCAL` | a `thread_local!` missing from [`catalog::THREAD_LOCALS`] |
//! | `AUD008_UNKNOWN_METRIC_NAME` | a `"remix.*"` name literal outside `remix_telemetry::names` |
//! | `AUD009_UNJUSTIFIED_RELAXED` | `Ordering::Relaxed` without `// audit: relaxed-ok: <why>` |
//!
//! ## Example
//!
//! ```
//! use remix_audit::{audit_sources, AuditConfig, AuditRule};
//!
//! let report = audit_sources(
//!     vec![("crates/demo/src/lib.rs", "fn f() { value.unwrap(); }\n")],
//!     &AuditConfig::new(),
//! );
//! assert!(!report.is_clean());
//! assert_eq!(report.findings[0].rule, AuditRule::UnwrapInLib);
//! ```
//!
//! The `audit` binary (root package) walks the real workspace and
//! exits non-zero on any deny finding; CI runs it next to the netlist
//! lint gate and uploads the versioned JSON report as an artifact.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
mod diag;
mod rules;
pub mod scan;
mod workspace;

pub use diag::{AuditConfig, AuditReport, AuditRule, Finding, Severity, AUDIT_SCHEMA_VERSION};
pub use rules::{audit_file, audit_sources, audit_workspace};
pub use workspace::workspace_sources;
