//! Every AUD rule fires on its seeded violation fixture.
//!
//! The fixtures under `tests/fixtures/` are one-violation-each `.rs`
//! sources; this test proves the engine convicts each of them with
//! exactly the intended rule, and that the conviction is at deny
//! severity under the default configuration. A fixture that stops
//! firing means a rule regressed — the workspace-clean test alone
//! cannot distinguish "no violations" from "rule gone blind".

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code: panicking on setup failure is the point

use remix_audit::{audit_sources, AuditConfig, AuditRule, Severity};

/// Audits one fixture under a path that triggers no allowlist.
fn convict(fixture: &str) -> Vec<(AuditRule, Severity)> {
    let path = format!("crates/audit/tests/fixtures/{fixture}");
    let text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("tests/fixtures/{fixture}")),
    )
    .expect("fixture readable");
    // Present the fixture to the engine as if it were lib code.
    let lib_path = path.replace("tests/fixtures/", "src/");
    let report = audit_sources(
        vec![(lib_path.as_str(), text.as_str())],
        &AuditConfig::new(),
    );
    report
        .findings
        .iter()
        .map(|f| (f.rule, f.severity))
        .collect()
}

#[test]
fn each_fixture_is_convicted_by_its_rule() {
    let cases = [
        ("aud001_unwrap.rs", AuditRule::UnwrapInLib),
        ("aud002_panic.rs", AuditRule::PanicInLib),
        ("aud003_exit.rs", AuditRule::ProcessExit),
        ("aud004_timing.rs", AuditRule::AdHocTiming),
        ("aud005_static_mut.rs", AuditRule::StaticMut),
        ("aud006_spawn.rs", AuditRule::ThreadSpawn),
        ("aud007_thread_local.rs", AuditRule::UnregisteredThreadLocal),
        (
            "aud007_pool_thread_local.rs",
            AuditRule::UnregisteredThreadLocal,
        ),
        ("aud008_metric_name.rs", AuditRule::UnknownMetricName),
        ("aud009_relaxed.rs", AuditRule::UnjustifiedRelaxed),
    ];
    for (fixture, rule) in cases {
        let verdicts = convict(fixture);
        assert_eq!(
            verdicts,
            vec![(rule, Severity::Deny)],
            "fixture {fixture} must be convicted by exactly {rule}"
        );
    }
}

#[test]
fn every_rule_has_a_fixture() {
    // The case table above must stay in sync with the rule catalog:
    // every rule has at least one fixture (keyed by its `aud00N_`
    // file-name prefix) and every fixture names a real rule — a rule
    // may have several fixtures (AUD007 proves both the generic and
    // the pool-lookalike conviction).
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut covered = std::collections::BTreeSet::new();
    for entry in std::fs::read_dir(dir).expect("fixtures dir") {
        let name = entry.expect("entry").file_name();
        let name = name.to_string_lossy();
        let prefix = name.split('_').next().expect("fixture prefix").to_string();
        assert!(
            prefix.starts_with("aud") && prefix.len() == 6,
            "fixture {name} must be named aud00N_<what>.rs"
        );
        covered.insert(prefix);
    }
    assert_eq!(
        covered.len(),
        AuditRule::ALL.len(),
        "one fixture prefix per rule, no orphans: {covered:?}"
    );
}
