// Fixture: AUD002_PANIC_IN_LIB — unjustified panic in lib code.
pub fn must(flag: bool) {
    if !flag {
        panic!("invariant violated");
    }
}
