// Fixture: AUD001_UNWRAP_IN_LIB — unjustified unwrap in lib code.
pub fn lookup(v: Option<u32>) -> u32 {
    v.unwrap()
}
