// Fixture: AUD004_AD_HOC_TIMING — wall clock outside telemetry/exec.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
