// Fixture: AUD007_UNREGISTERED_THREAD_LOCAL — a pool-worker lookalike.
// Registering crates/exec/src/pool.rs::WORKER in the catalog must not
// whitelist the *name* anywhere else: the catalog key is (file, name),
// so a worker-identity thread-local declared in any other file is
// still an unregistered re-arm hazard and must be convicted.
thread_local! {
    static WORKER: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}
