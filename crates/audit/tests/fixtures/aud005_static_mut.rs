// Fixture: AUD005_STATIC_MUT — unsynchronized shared state.
// audit: allow(AUD005): suppression attempts are ignored for this rule
static mut HITS: u64 = 0;
