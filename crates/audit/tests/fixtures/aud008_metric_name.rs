// Fixture: AUD008_UNKNOWN_METRIC_NAME — literal outside the catalog.
pub fn record() {
    remix_telemetry::counter_add("remix.rogue.widgets", 1);
}
