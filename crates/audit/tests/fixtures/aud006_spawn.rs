// Fixture: AUD006_THREAD_SPAWN — raw spawn outside the exec crate.
pub fn fire_and_forget() {
    std::thread::spawn(|| {});
}
