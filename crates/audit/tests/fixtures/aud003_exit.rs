// Fixture: AUD003_PROCESS_EXIT — exit outside remix_bench::run_bin.
pub fn bail() {
    std::process::exit(3);
}
