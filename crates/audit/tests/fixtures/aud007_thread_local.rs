// Fixture: AUD007_UNREGISTERED_THREAD_LOCAL — not in the catalog.
thread_local! {
    static SCRATCH: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
}
