// Fixture: AUD009_UNJUSTIFIED_RELAXED — no relaxed-ok justification.
use std::sync::atomic::{AtomicU64, Ordering};
pub fn read(cell: &AtomicU64) -> u64 {
    cell.load(Ordering::Relaxed)
}
