//! The real workspace passes its own audit.
//!
//! This is the same check CI's `cargo run --bin audit` gate performs,
//! run through the library API so `cargo test` alone certifies the
//! tree. A deny here means a banned pattern landed without its
//! justification — fix the code or argue the justification inline.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code: panicking on setup failure is the point

use remix_audit::{audit_workspace, AuditConfig};
use std::path::Path;

#[test]
fn workspace_has_no_deny_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = audit_workspace(&root, &AuditConfig::new()).expect("workspace walk");
    assert!(
        report.files_scanned > 100,
        "the walk found the real workspace ({} files)",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "workspace audit found deny-level violations:\n{}",
        report.render_text()
    );
}
