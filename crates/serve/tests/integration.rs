//! End-to-end service tests over real loopback sockets: happy path,
//! lint gating, budget partials, cache behavior, overload shedding,
//! and chaos survival. Every test boots its own server on an
//! ephemeral port and shuts it down; nothing here may panic or wedge.

use remix_serve::protocol::{JobKind, JobRequest};
use remix_serve::{call_with_retry, Client, ClientError, RetryPolicy, ServeConfig, Server, Status};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const GOOD_DECK: &str = "* divider\nv1 in 0 1\nr2 in out 1k\nr3 out 0 1k\n.end\n";

fn job(id: &str, kind: JobKind, deck: &str) -> JobRequest {
    JobRequest {
        id: id.to_string(),
        kind,
        deck: deck.to_string(),
        deadline_ms: None,
        newton_budget: None,
        timestep_budget: None,
        events: false,
    }
}

fn boot(config: ServeConfig) -> Server {
    Server::start(config).expect("bind ephemeral port")
}

fn client(server: &Server) -> Client {
    Client::connect(server.addr(), Duration::from_secs(1)).expect("connect")
}

#[test]
fn op_job_round_trips_ok() {
    let server = boot(ServeConfig::default());
    let mut c = client(&server);
    let response = c
        .submit(&job("op-1", JobKind::Op, GOOD_DECK))
        .expect("submit");
    assert_eq!(response.status, Status::Ok, "raw: {}", response.raw);
    assert!(!response.cached);
    assert!(response.result.contains("\"kind\":\"op\""));
    server.shutdown();
}

#[test]
fn ping_and_stats_work() {
    let server = boot(ServeConfig::default());
    let mut c = client(&server);
    c.ping().expect("ping");
    server.shutdown();
}

#[test]
fn identical_jobs_hit_the_cache() {
    let server = boot(ServeConfig::default());
    let mut c = client(&server);
    let first = c.submit(&job("a", JobKind::Op, GOOD_DECK)).expect("first");
    assert!(!first.cached);
    // Different id, same work: must be served from cache.
    let second = c.submit(&job("b", JobKind::Op, GOOD_DECK)).expect("second");
    assert_eq!(second.status, Status::Ok);
    assert!(second.cached, "raw: {}", second.raw);
    let snapshot = server.shutdown();
    assert_eq!(
        snapshot.counter(remix_telemetry::names::SERVE_CACHE_HITS),
        Some(1)
    );
}

#[test]
fn lint_denied_deck_is_refused_with_typed_code() {
    let server = boot(ServeConfig::default());
    let mut c = client(&server);
    // A floating node: lint denies it before any solver time is spent.
    let bad = "* floating\nv1 in 0 1\nr2 in out 1k\n.end\n";
    let response = c.submit(&job("bad", JobKind::Op, bad)).expect("submit");
    assert_eq!(response.status, Status::Error, "raw: {}", response.raw);
    assert_eq!(response.code.as_deref(), Some("lint_deny"));
    server.shutdown();
}

#[test]
fn unparseable_deck_is_refused_with_typed_code() {
    let server = boot(ServeConfig::default());
    let mut c = client(&server);
    let response = c
        .submit(&job("junk", JobKind::Op, "r1 only two\n.end\n"))
        .expect("submit");
    assert_eq!(response.status, Status::Error);
    assert_eq!(response.code.as_deref(), Some("parse"));
    server.shutdown();
}

#[test]
fn network_decks_cannot_include_files() {
    let server = boot(ServeConfig::default());
    let mut c = client(&server);
    let sneaky = "* sneaky\n.include /etc/hostname\nv1 in 0 1\n.end\n";
    let response = c.submit(&job("inc", JobKind::Op, sneaky)).expect("submit");
    assert_eq!(response.status, Status::Error);
    assert_eq!(response.code.as_deref(), Some("parse"));
    server.shutdown();
}

#[test]
fn tran_with_tiny_timestep_budget_returns_partial() {
    let server = boot(ServeConfig::default());
    let mut c = client(&server);
    let mut request = job(
        "tran-budget",
        JobKind::Tran {
            t_stop: 1e-3,
            dt: 1e-6,
        },
        GOOD_DECK,
    );
    request.timestep_budget = Some(5);
    let response = c.submit(&request).expect("submit");
    assert_eq!(response.status, Status::Partial, "raw: {}", response.raw);
    assert!(response.raw.contains("interruption"));
    // The partial must NOT be cached: a full-budget rerun completes.
    let mut full = job(
        "tran-full",
        JobKind::Tran {
            t_stop: 1e-3,
            dt: 1e-6,
        },
        GOOD_DECK,
    );
    full.deadline_ms = Some(10_000);
    let full_response = c.submit(&full).expect("full");
    assert_eq!(
        full_response.status,
        Status::Ok,
        "raw: {}",
        full_response.raw
    );
    assert!(!full_response.cached);
    server.shutdown();
}

#[test]
fn events_stream_before_terminal_line() {
    let server = boot(ServeConfig::default());
    let mut c = client(&server);
    let mut request = job("observed", JobKind::Op, GOOD_DECK);
    request.events = true;
    let response = c.submit(&request).expect("submit");
    assert_eq!(response.status, Status::Ok);
    assert!(
        !response.events.is_empty(),
        "events:true must stream at least one event line"
    );
    assert!(response
        .events
        .iter()
        .any(|e| e.contains("remix.serve.job")));
    server.shutdown();
}

#[test]
fn dc_sweep_completes() {
    let server = boot(ServeConfig::default());
    let mut c = client(&server);
    let response = c
        .submit(&job(
            "sweep",
            JobKind::DcSweep {
                source: "1".to_string(),
                start: 0.0,
                stop: 1.0,
                points: 5,
            },
            GOOD_DECK,
        ))
        .expect("submit");
    assert_eq!(response.status, Status::Ok, "raw: {}", response.raw);
    assert!(response.result.contains("\"completed\":5"));
    server.shutdown();
}

#[test]
fn overload_sheds_with_typed_response_and_server_survives() {
    let config = ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    };
    let server = boot(config);
    // Slow jobs (distinct decks defeat the cache) from many threads:
    // with depth 1, most must shed. Shed responses are typed and the
    // server keeps answering afterwards.
    let addr = server.addr();
    let handles: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let mut request = job(
                    &format!("flood-{i}"),
                    JobKind::Tran {
                        t_stop: 1e-3,
                        dt: 1e-6,
                    },
                    // Unique resistance per job: no cache dedup.
                    &format!("* f\nv1 in 0 1\nr2 in out {}k\nr3 out 0 1k\n.end\n", i + 1),
                );
                request.deadline_ms = Some(2_000);
                let mut c = Client::connect(addr, Duration::from_secs(1)).expect("connect");
                c.submit(&request).expect("submit")
            })
        })
        .collect();
    let responses: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("no client panics"))
        .collect();
    let sheds = responses
        .iter()
        .filter(|r| r.status == Status::Shed)
        .count();
    assert!(sheds > 0, "1-deep queue under 8 jobs must shed");
    for r in responses.iter().filter(|r| r.status == Status::Shed) {
        assert!(r.code.is_some(), "shed must carry a reason: {}", r.raw);
    }
    // Server still serves after the flood.
    let mut c = client(&server);
    let after = c
        .submit(&job("after", JobKind::Op, GOOD_DECK))
        .expect("after");
    assert_eq!(after.status, Status::Ok);
    let snapshot = server.shutdown();
    let counted = snapshot
        .counter(remix_telemetry::names::SERVE_SHEDS)
        .unwrap_or(0);
    assert!(counted >= sheds as u64);
}

#[test]
fn retry_helper_rides_through_sheds() {
    let config = ServeConfig {
        workers: 2,
        queue_depth: 1,
        ..ServeConfig::default()
    };
    let server = boot(config);
    let addr = server.addr();
    let policy = RetryPolicy {
        retries: 8,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
    };
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let policy = policy.clone();
            std::thread::spawn(move || {
                let request = job(
                    &format!("retry-{i}"),
                    JobKind::Op,
                    &format!("* r\nv1 in 0 1\nr2 in out {}k\nr3 out 0 1k\n.end\n", i + 1),
                );
                call_with_retry(addr, &request, &policy)
            })
        })
        .collect();
    let mut ok = 0;
    for h in handles {
        match h.join().expect("no client panics") {
            Ok(response) => {
                assert_eq!(response.status, Status::Ok, "raw: {}", response.raw);
                ok += 1;
            }
            Err(ClientError::RetriesExhausted(_)) => {}
            Err(e) => panic!("unexpected client error: {e}"),
        }
    }
    assert!(ok >= 4, "retries must land most jobs ({ok}/6 succeeded)");
    server.shutdown();
}

#[test]
fn chaos_panics_are_contained_and_typed() {
    let config = ServeConfig {
        chaos: remix_serve::ChaosConfig::parse("panic:2").expect("spec"),
        ..ServeConfig::default()
    };
    let server = boot(config);
    let mut failures = 0;
    let mut successes = 0;
    for i in 0..6 {
        let mut c = client(&server);
        let response = c
            .submit(&job(
                &format!("chaos-{i}"),
                JobKind::Op,
                &format!("* c\nv1 in 0 1\nr2 in out {}k\nr3 out 0 1k\n.end\n", i + 1),
            ))
            .expect("server must answer even when the job panicked");
        match response.status {
            Status::Ok => successes += 1,
            Status::Error => {
                assert_eq!(
                    response.code.as_deref(),
                    Some("panic"),
                    "raw: {}",
                    response.raw
                );
                failures += 1;
            }
            other => panic!("unexpected status {other:?}: {}", response.raw),
        }
    }
    assert!(successes > 0 && failures > 0, "panic:2 must split outcomes");
    // The server is intact: one more clean job.
    let mut c = client(&server);
    let after = c
        .submit(&job("after-chaos", JobKind::Op, GOOD_DECK))
        .expect("post-chaos submit");
    assert!(matches!(after.status, Status::Ok | Status::Error));
    server.shutdown();
}

#[test]
fn chaos_torn_frames_surface_as_transport_errors_not_hangs() {
    let config = ServeConfig {
        chaos: remix_serve::ChaosConfig::parse("torn:2").expect("spec"),
        ..ServeConfig::default()
    };
    let server = boot(config);
    let mut torn = 0;
    for i in 0..6 {
        let mut c = client(&server);
        match c.submit(&job(
            &format!("torn-{i}"),
            JobKind::Op,
            &format!("* t\nv1 in 0 1\nr2 in out {}k\nr3 out 0 1k\n.end\n", i + 1),
        )) {
            Ok(_) => {}
            Err(ClientError::Transport(_) | ClientError::BadResponse(_)) => torn += 1,
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    }
    assert!(torn > 0, "torn:2 must tear some responses");
    server.shutdown();
}

#[test]
fn raw_socket_garbage_gets_typed_protocol_errors() {
    let server = boot(ServeConfig::default());
    let mut s = TcpStream::connect(server.addr()).expect("connect");
    s.write_all(b"this is not json\n").expect("write");
    let mut buf = [0u8; 4096];
    let n = s.read(&mut buf).expect("read");
    let line = String::from_utf8_lossy(&buf[..n]);
    assert!(line.contains("\"status\":\"error\""), "got: {line}");
    assert!(line.contains("invalid_json"), "got: {line}");
    // Connection survives one malformed request: a valid ping works.
    s.write_all(b"{\"op\":\"ping\"}\n").expect("write ping");
    let n = s.read(&mut buf).expect("read pong");
    assert!(String::from_utf8_lossy(&buf[..n]).contains("pong"));
    server.shutdown();
}

#[test]
fn shutdown_is_prompt_with_idle_connections_open() {
    let server = boot(ServeConfig::default());
    // Park two idle connections; shutdown must not wait out the idle
    // timeout (30 s) — the stop flag unblocks the poll loop.
    let _idle1 = TcpStream::connect(server.addr()).expect("idle 1");
    let _idle2 = TcpStream::connect(server.addr()).expect("idle 2");
    std::thread::sleep(Duration::from_millis(50));
    let started = std::time::Instant::now();
    server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown took {:?}",
        started.elapsed()
    );
}

#[test]
fn cache_persists_across_a_restart_and_rejects_foreign_snapshots() {
    let dir = std::env::temp_dir().join(format!("remix_serve_persist_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("cache.json");
    let config = || ServeConfig {
        cache_file: Some(path.clone()),
        ..ServeConfig::default()
    };
    // First life: compute once, shut down gracefully.
    let server = boot(config());
    let first = c_submit(&server, "life1");
    assert!(!first.cached);
    let snapshot = server.shutdown();
    assert_eq!(
        snapshot.counter(remix_telemetry::names::SERVE_CACHE_PERSIST_SAVED),
        Some(1)
    );
    assert!(path.exists(), "snapshot must be written");
    // Second life: the very first submission is already a hit.
    let server = boot(config());
    let revived = c_submit(&server, "life2");
    assert!(revived.cached, "raw: {}", revived.raw);
    let snapshot = server.shutdown();
    assert_eq!(
        snapshot.counter(remix_telemetry::names::SERVE_CACHE_PERSIST_LOADED),
        Some(1)
    );
    // Third life with a corrupted snapshot: rejected wholesale, cold start.
    std::fs::write(
        &path,
        "{\"version\":1,\"fingerprint\":\"beef\",\"entries\":[]}",
    )
    .expect("corrupt");
    let server = boot(config());
    let cold = c_submit(&server, "life3");
    assert!(!cold.cached, "foreign snapshot must not seed the cache");
    let snapshot = server.shutdown();
    assert_eq!(
        snapshot.counter(remix_telemetry::names::SERVE_CACHE_PERSIST_REJECTED),
        Some(1)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn c_submit(server: &Server, id: &str) -> remix_serve::JobResponse {
    let mut c = client(server);
    c.submit(&job(id, JobKind::Op, GOOD_DECK)).expect("submit")
}
