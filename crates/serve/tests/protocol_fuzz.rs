//! Protocol robustness fuzzing: byte soup, oversized lines, truncated
//! frames, and interleaved half-requests must all land on a typed
//! protocol error or a shed — never a panic, never a wedged
//! connection. Mirrors the frontend fuzz suite's structure: property
//! blocks with deterministic seeding plus a pinned hostile corpus
//! that can never regress silently.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code: panicking on setup failure is the point

use proptest::prelude::*;
use remix_serve::protocol::{decode_request, encode_job, JobKind, JobRequest};
use remix_serve::{FrameError, FrameLimits, FrameReader, ServeConfig, Server};
use std::io::{Cursor, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// SplitMix64: deterministic byte-soup source (same generator the
/// exec backoff jitter and the frontend fuzz harness use).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn byte_soup(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = SplitMix64(seed);
    (0..len).map(|_| (rng.next() & 0xff) as u8).collect()
}

/// Soup biased toward JSON-looking fragments: exercises the decoder's
/// field validation, not just the tokenizer's first byte.
fn json_soup(seed: u64) -> String {
    const FRAGMENTS: &[&str] = &[
        "{",
        "}",
        "\"op\"",
        ":",
        "\"job\"",
        "\"ping\"",
        ",",
        "\"id\"",
        "\"kind\"",
        "\"deck\"",
        "\"tran\"",
        "null",
        "-1",
        "1e999",
        "0.0",
        "[",
        "]",
        "\"t_stop\"",
        "\"dt\"",
        "\"points\"",
        "\\",
        "\"",
        "{}",
        "true",
        "9999999999999999999999",
        "\"source\"",
        "\"deadline_ms\"",
    ];
    let mut rng = SplitMix64(seed);
    let n = (rng.next() % 24) as usize;
    (0..n)
        .map(|_| FRAGMENTS[(rng.next() as usize) % FRAGMENTS.len()])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::env_or(1024))]

    /// Arbitrary bytes (lossy-decoded): decode returns, never panics,
    /// and failures are typed with stable non-empty codes.
    #[test]
    fn decode_never_panics_on_byte_soup(seed in any::<u64>(), len in 0usize..300) {
        let soup = byte_soup(seed, len);
        let text = String::from_utf8_lossy(&soup);
        if let Err(e) = decode_request(&text, 4096) {
            prop_assert!(!e.code().is_empty());
        }
    }

    /// JSON-shaped soup: same contract, deeper into the decoder.
    #[test]
    fn decode_never_panics_on_json_soup(seed in any::<u64>()) {
        let text = json_soup(seed);
        if let Err(e) = decode_request(&text, 4096) {
            prop_assert!(!e.code().is_empty());
        }
    }

    /// The frame reader over arbitrary byte streams: terminates with
    /// frames or a typed error, and an oversized first line is always
    /// `TooLong`, never an allocation blowup.
    #[test]
    fn frame_reader_never_panics_on_byte_soup(seed in any::<u64>(), len in 0usize..600) {
        let soup = byte_soup(seed, len);
        let mut reader = FrameReader::new(
            Cursor::new(soup),
            FrameLimits { max_line_bytes: 128, ..FrameLimits::default() },
        );
        // Bounded pull loop: at most len+1 frames can exist.
        for _ in 0..=len {
            match reader.read_frame() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(
                    FrameError::Torn { .. }
                    | FrameError::TooLong { .. }
                    | FrameError::Utf8
                    | FrameError::Timeout { .. }
                    | FrameError::Io(_),
                ) => break,
            }
        }
    }

    /// Encode → decode is the identity on every representable job.
    #[test]
    fn encode_decode_round_trips(
        seed in any::<u64>(),
        kind_sel in 0u32..3,
        deadline_raw in 0u64..60_000,
        events in any::<bool>(),
    ) {
        // 0 doubles as "no deadline declared".
        let deadline = (deadline_raw > 0).then_some(deadline_raw);
        let mut rng = SplitMix64(seed);
        let kind = match kind_sel {
            0 => JobKind::Op,
            1 => JobKind::DcSweep {
                source: format!("s{}", rng.next() % 100),
                start: (rng.next() % 1000) as f64 / 100.0,
                stop: (rng.next() % 1000) as f64 / 100.0 + 10.0,
                points: (rng.next() % 100 + 1) as usize,
            },
            _ => JobKind::Tran {
                t_stop: 1e-3,
                dt: 1e-6,
            },
        };
        let job = JobRequest {
            id: format!("job-{seed:x}"),
            kind,
            deck: "* d\nv1 a 0 1\nr2 a 0 1k\n.end\n\"\\\u{7}".to_string(),
            deadline_ms: deadline,
            newton_budget: deadline.map(|d| d * 2),
            timestep_budget: None,
            events,
        };
        let decoded = decode_request(&encode_job(&job), 4096).expect("self-encoded jobs decode");
        match decoded {
            remix_serve::RequestFrame::Job(back) => prop_assert_eq!(*back, job),
            other => prop_assert!(false, "expected job frame, got {:?}", other),
        }
    }
}

/// Pinned hostile corpus: each entry must produce a typed error with
/// the expected stable code. New decoder failure modes get pinned
/// here so codes never drift.
#[test]
fn pinned_hostile_corpus_maps_to_stable_codes() {
    let cases: &[(&str, &str)] = &[
        ("", "invalid_json"),
        ("   ", "invalid_json"),
        ("nonsense", "invalid_json"),
        ("{\"op\":\"job\"", "invalid_json"),
        ("[1,2,3]", "not_an_object"),
        ("\"just a string\"", "not_an_object"),
        ("{\"op\":\"reboot\"}", "unknown_op"),
        ("{\"op\":\"job\",\"kind\":\"op\",\"deck\":\"x\"}", "missing_field"),
        ("{\"op\":\"job\",\"id\":\"a\",\"deck\":\"x\"}", "missing_field"),
        ("{\"op\":\"job\",\"id\":\"a\",\"kind\":\"op\"}", "missing_field"),
        ("{\"op\":\"job\",\"id\":\"a\",\"kind\":\"warp\",\"deck\":\"x\"}", "unknown_kind"),
        ("{\"op\":\"job\",\"id\":7,\"kind\":\"op\",\"deck\":\"x\"}", "bad_field"),
        (
            "{\"op\":\"job\",\"id\":\"a\",\"kind\":\"tran\",\"deck\":\"x\",\"params\":{\"t_stop\":0,\"dt\":1e-6}}",
            "bad_field",
        ),
        (
            "{\"op\":\"job\",\"id\":\"a\",\"kind\":\"tran\",\"deck\":\"x\",\"params\":{\"t_stop\":1e-6,\"dt\":1e-3}}",
            "bad_field",
        ),
        (
            "{\"op\":\"job\",\"id\":\"a\",\"kind\":\"dc_sweep\",\"deck\":\"x\",\"params\":{\"source\":\"v\",\"start\":0,\"stop\":1,\"points\":0}}",
            "bad_field",
        ),
        (
            "{\"op\":\"job\",\"id\":\"a\",\"kind\":\"tran\",\"deck\":\"x\"}",
            "missing_field",
        ),
    ];
    for (line, want) in cases {
        match decode_request(line, 4096) {
            Err(e) => assert_eq!(e.code(), *want, "input: {line}"),
            Ok(f) => panic!("hostile input decoded: {line} -> {f:?}"),
        }
    }
    // Deck size cap is enforced with its own code.
    let big = format!(
        "{{\"op\":\"job\",\"id\":\"a\",\"kind\":\"op\",\"deck\":\"{}\"}}",
        "x".repeat(200)
    );
    match decode_request(&big, 64) {
        Err(e) => assert_eq!(e.code(), "deck_too_large"),
        Ok(_) => panic!("oversized deck accepted"),
    }
}

/// Live-server property: torn half-requests, oversized lines, and
/// abrupt disconnects against a real listener. After every abuse the
/// server still answers a clean ping — no panic, no wedge.
#[test]
fn live_server_survives_truncation_interleaving_and_soup() {
    let server = Server::start(ServeConfig {
        max_line_bytes: 512,
        frame_deadline_ms: 300,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    let abuses: &[&[u8]] = &[
        b"{\"op\":\"job\",\"id\":\"half", // truncated mid-string, then close
        b"{\"op\":\"ping\"}\n{\"op\":\"jo", // complete frame then half frame
        b"\xff\xfe\x00garbage\n",         // non-UTF-8 line
        b"{}\n{}\n{}\n",                  // rapid empty objects
        b"\n\n\n\n",                      // bare newlines
    ];
    for abuse in abuses {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(abuse).expect("write abuse");
        // Half-close or abrupt drop — both paths must be survivable.
        drop(s);
    }
    // Oversized line: must get line_too_long back (or a clean close),
    // not a hang past the frame deadline.
    let mut s = TcpStream::connect(addr).expect("connect");
    let huge = vec![b'a'; 4096];
    s.write_all(&huge).expect("write oversized");
    s.write_all(b"\n").expect("newline");
    s.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut buf = Vec::new();
    let _ = s.read_to_end(&mut buf);
    let answer = String::from_utf8_lossy(&buf);
    assert!(
        answer.is_empty() || answer.contains("line_too_long"),
        "oversized line answered with: {answer}"
    );
    drop(s);
    // Deterministic soup volleys on one connection.
    let mut s = TcpStream::connect(addr).expect("connect");
    for seed in 0..16u64 {
        let mut soup = byte_soup(seed, 60);
        soup.retain(|&b| b != b'\n');
        soup.push(b'\n');
        if s.write_all(&soup).is_err() {
            break; // server already closed on us — that's a valid typed path
        }
    }
    drop(s);
    // The server is still healthy.
    let mut c = remix_serve::Client::connect(addr, Duration::from_secs(1)).expect("connect");
    c.ping().expect("server must still answer after abuse");
    server.shutdown();
}
