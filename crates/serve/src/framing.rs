//! Bounded request framing: newline-delimited frames with a byte cap,
//! a per-frame completion deadline (slow-loris defense), and an idle
//! timeout — every failure mode typed, none panicking.
//!
//! The reader is generic over [`Read`] so tests drive it from
//! in-memory cursors; on a real socket the server sets a short
//! `set_read_timeout` slice and the reader turns each `WouldBlock`/
//! `TimedOut` tick into a deadline / stop-flag check, so a peer that
//! dribbles one byte per second cannot pin a connection handler
//! beyond `frame_deadline`, and shutdown never waits for a silent
//! peer longer than one poll slice.

use crate::protocol::ProtocolError;
use std::io::Read;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Framing failure. Only some variants are answerable on the wire —
/// a torn frame means the peer is gone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Peer closed the connection mid-frame.
    Torn {
        /// Bytes of the incomplete frame received before the close.
        partial_bytes: usize,
    },
    /// The frame exceeded the byte cap before a newline.
    TooLong {
        /// The configured cap (bytes).
        limit: usize,
    },
    /// The frame was not completed within the deadline.
    Timeout {
        /// The configured deadline (ms).
        deadline_ms: u64,
    },
    /// The frame is not valid UTF-8.
    Utf8,
    /// Transport error from the underlying stream.
    Io(std::io::ErrorKind),
}

impl FrameError {
    /// The wire-answerable protocol error, when one exists (`Torn` and
    /// `Io` have no peer left to answer).
    pub fn to_protocol(&self) -> Option<ProtocolError> {
        match self {
            FrameError::TooLong { limit } => Some(ProtocolError::LineTooLong { limit: *limit }),
            FrameError::Timeout { deadline_ms } => Some(ProtocolError::Timeout {
                deadline_ms: *deadline_ms,
            }),
            FrameError::Utf8 => Some(ProtocolError::InvalidUtf8),
            FrameError::Torn { .. } | FrameError::Io(_) => None,
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Torn { partial_bytes } => {
                write!(f, "connection closed mid-frame ({partial_bytes} bytes in)")
            }
            FrameError::TooLong { limit } => write!(f, "frame exceeds {limit} bytes"),
            FrameError::Timeout { deadline_ms } => {
                write!(f, "frame not completed within {deadline_ms} ms")
            }
            FrameError::Utf8 => write!(f, "frame is not valid UTF-8"),
            FrameError::Io(kind) => write!(f, "transport error: {kind:?}"),
        }
    }
}

/// Framing limits; see field docs for defaults.
#[derive(Debug, Clone)]
pub struct FrameLimits {
    /// Byte cap per frame (default 256 KiB).
    pub max_line_bytes: usize,
    /// A started frame must complete within this window.
    pub frame_deadline: Duration,
    /// A connection with no traffic for this long reads as closed.
    pub idle_timeout: Duration,
}

impl Default for FrameLimits {
    fn default() -> Self {
        FrameLimits {
            max_line_bytes: crate::protocol::DEFAULT_MAX_LINE_BYTES,
            frame_deadline: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// Newline-delimited frame reader over any [`Read`].
pub struct FrameReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    limits: FrameLimits,
    stop: Option<Arc<AtomicBool>>,
}

impl<R: Read> FrameReader<R> {
    /// New reader with `limits`.
    pub fn new(inner: R, limits: FrameLimits) -> Self {
        FrameReader {
            inner,
            buf: Vec::new(),
            limits,
            stop: None,
        }
    }

    /// Registers a shutdown flag checked on every poll tick: once set,
    /// an idle connection reads as cleanly closed instead of waiting
    /// out the idle timeout.
    pub fn with_stop(mut self, stop: Arc<AtomicBool>) -> Self {
        self.stop = Some(stop);
        self
    }

    fn stopped(&self) -> bool {
        self.stop
            .as_ref()
            .is_some_and(|s| s.load(Ordering::Acquire))
    }

    fn take_line(&mut self, newline_at: usize) -> Result<String, FrameError> {
        let mut line: Vec<u8> = self.buf.drain(..=newline_at).collect();
        line.pop(); // the newline
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        String::from_utf8(line).map_err(|_| FrameError::Utf8)
    }

    /// Reads the next complete frame. `Ok(None)` means the peer closed
    /// cleanly between frames (or the stop flag was raised while
    /// idle); every other ending is a typed [`FrameError`].
    ///
    /// # Errors
    ///
    /// [`FrameError`] on oversized, torn, timed-out, non-UTF-8 frames
    /// or transport failure.
    pub fn read_frame(&mut self) -> Result<Option<String>, FrameError> {
        let started = Instant::now();
        let deadline_ms = self.limits.frame_deadline.as_millis() as u64;
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                if pos > self.limits.max_line_bytes {
                    return Err(FrameError::TooLong {
                        limit: self.limits.max_line_bytes,
                    });
                }
                return self.take_line(pos).map(Some);
            }
            if self.buf.len() > self.limits.max_line_bytes {
                return Err(FrameError::TooLong {
                    limit: self.limits.max_line_bytes,
                });
            }
            let mid_frame = !self.buf.is_empty();
            if mid_frame && started.elapsed() > self.limits.frame_deadline {
                return Err(FrameError::Timeout { deadline_ms });
            }
            if !mid_frame {
                if self.stopped() {
                    return Ok(None);
                }
                if started.elapsed() > self.limits.idle_timeout {
                    return Ok(None);
                }
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(FrameError::Torn {
                            partial_bytes: self.buf.len(),
                        })
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    // Poll tick: loop back to the deadline checks.
                }
                Err(e) => return Err(FrameError::Io(e.kind())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn reader(bytes: &[u8], max: usize) -> FrameReader<Cursor<Vec<u8>>> {
        FrameReader::new(
            Cursor::new(bytes.to_vec()),
            FrameLimits {
                max_line_bytes: max,
                ..FrameLimits::default()
            },
        )
    }

    #[test]
    fn splits_frames_and_strips_crlf() {
        let mut r = reader(b"one\r\ntwo\nthree", 1024);
        assert_eq!(r.read_frame(), Ok(Some("one".to_string())));
        assert_eq!(r.read_frame(), Ok(Some("two".to_string())));
        assert_eq!(r.read_frame(), Err(FrameError::Torn { partial_bytes: 5 }));
    }

    #[test]
    fn clean_eof_between_frames_is_none() {
        let mut r = reader(b"only\n", 1024);
        assert_eq!(r.read_frame(), Ok(Some("only".to_string())));
        assert_eq!(r.read_frame(), Ok(None));
    }

    #[test]
    fn oversized_frame_is_too_long_even_without_newline() {
        let mut r = reader(&[b'x'; 200], 64);
        assert_eq!(r.read_frame(), Err(FrameError::TooLong { limit: 64 }));
    }

    #[test]
    fn oversized_frame_with_newline_is_too_long() {
        let mut big = vec![b'x'; 200];
        big.push(b'\n');
        let mut r = reader(&big, 64);
        assert_eq!(r.read_frame(), Err(FrameError::TooLong { limit: 64 }));
    }

    #[test]
    fn invalid_utf8_is_typed() {
        let mut r = reader(&[0xff, 0xfe, b'\n'], 1024);
        assert_eq!(r.read_frame(), Err(FrameError::Utf8));
    }

    #[test]
    fn stop_flag_reads_as_clean_close_when_idle() {
        struct Forever;
        impl Read for Forever {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
            }
        }
        let stop = Arc::new(AtomicBool::new(true));
        let mut r = FrameReader::new(Forever, FrameLimits::default()).with_stop(Arc::clone(&stop));
        assert_eq!(r.read_frame(), Ok(None));
    }

    #[test]
    fn slow_frame_times_out() {
        struct OneByteThenBlock(bool);
        impl Read for OneByteThenBlock {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0 {
                    Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
                } else {
                    self.0 = true;
                    buf[0] = b'{';
                    Ok(1)
                }
            }
        }
        let mut r = FrameReader::new(
            OneByteThenBlock(false),
            FrameLimits {
                frame_deadline: Duration::from_millis(10),
                ..FrameLimits::default()
            },
        );
        assert_eq!(r.read_frame(), Err(FrameError::Timeout { deadline_ms: 10 }));
    }
}
