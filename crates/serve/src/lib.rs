//! remix-serve: an overload-safe batch simulation service.
//!
//! JSON-lines over TCP: one request per line, one terminal response
//! per request (optionally preceded by streamed event lines). Every
//! job is lint-gated through `remix-lint` and executed on the
//! `remix-exec` supervisor under a per-job `RunBudget`, so a hostile
//! or hopeless deck costs a bounded slice of server time and gets a
//! typed refusal — never a hung worker.
//!
//! Robustness posture, layer by layer:
//!
//! - **Framing** ([`framing`]): byte-capped, deadline-bounded frame
//!   reads; slow-loris peers time out, oversized frames are refused
//!   with the limit echoed back.
//! - **Protocol** ([`protocol`]): every way a frame can be malformed
//!   maps to a stable machine-readable error code.
//! - **Admission** ([`server`]): a bounded queue sheds by depth and by
//!   deadline-feasibility (EWMA service-time estimate), answering
//!   `shed` with reason + depth + estimated wait instead of queueing
//!   doomed work.
//! - **Caching** ([`cache`]): identical jobs dedupe through a
//!   single-flight FNV-1a-keyed result cache; only complete results
//!   publish.
//! - **Chaos** ([`chaos`]): deterministic injected faults (dropped
//!   connections, torn frames, delayed reads, worker panics) prove
//!   the above under fire — in-process, replayable, no tooling.
//! - **Client** ([`client`]): reconnect-and-retry with deterministic
//!   jittered backoff, shared by tests and the `serve_load` bench.
//!
//! Quick start:
//!
//! ```text
//! $ cargo run --release --bin serve -- --addr 127.0.0.1:7878
//! $ printf '%s\n' '{"op":"job","id":"j1","kind":"op","deck":"v1 in 0 1\nr1 in out 1k\nr2 out 0 1k\n.end"}' | nc 127.0.0.1 7878
//! {"id":"j1","status":"ok","result":{...},"cached":false,"elapsed_ms":0}
//! ```

pub mod cache;
pub mod chaos;
pub mod client;
pub mod framing;
pub mod protocol;
pub mod server;

pub use cache::{job_fingerprint, Lookup, ResultCache};
pub use chaos::{Chaos, ChaosConfig};
pub use client::{call_with_retry, Client, ClientError, JobResponse, RetryPolicy};
pub use framing::{FrameError, FrameLimits, FrameReader};
pub use protocol::{
    decode_request, encode_job, JobKind, JobRequest, ProtocolError, RequestFrame, Status,
};
pub use server::{ServeConfig, Server};
