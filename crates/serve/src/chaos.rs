//! Deterministic chaos: injected connection drops, torn response
//! frames, delayed reads, and worker panics — on fixed periodic
//! schedules, so a failing soak run replays exactly.
//!
//! The spec grammar (CLI flag `--chaos` or `REMIX_SERVE_CHAOS`):
//!
//! ```text
//! drop:<n>[,torn:<n>][,delay:<n>:<ms>][,panic:<n>]
//! ```
//!
//! `drop:7` closes every 7th accepted connection before reading;
//! `torn:11` truncates every 11th response frame mid-write and closes;
//! `delay:5:20` sleeps 20 ms before reading every 5th frame;
//! `panic:13` panics inside every 13th executed job (the supervisor's
//! `catch_unwind` must contain it). Every injection counts on
//! `remix.serve.chaos.injected`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Parsed chaos schedule; all faults off by default.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Close every Nth accepted connection unserved.
    pub drop_conn_every: Option<u64>,
    /// Truncate every Nth response frame mid-write, then close.
    pub tear_frame_every: Option<u64>,
    /// Sleep `.1` ms before reading every `.0`th frame.
    pub delay_read_every: Option<(u64, u64)>,
    /// Panic inside every Nth executed job.
    pub panic_job_every: Option<u64>,
}

impl ChaosConfig {
    /// Parses the spec grammar above. Empty input means no chaos.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed clause.
    pub fn parse(spec: &str) -> Result<ChaosConfig, String> {
        let mut config = ChaosConfig::default();
        for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
            let parts: Vec<&str> = clause.trim().split(':').collect();
            let period = |idx: usize| -> Result<u64, String> {
                let n: u64 = parts
                    .get(idx)
                    .ok_or_else(|| format!("chaos clause '{clause}': missing period"))?
                    .parse()
                    .map_err(|_| format!("chaos clause '{clause}': period must be an integer"))?;
                if n == 0 {
                    return Err(format!("chaos clause '{clause}': period must be >= 1"));
                }
                Ok(n)
            };
            match parts.first().copied() {
                Some("drop") => config.drop_conn_every = Some(period(1)?),
                Some("torn") => config.tear_frame_every = Some(period(1)?),
                Some("panic") => config.panic_job_every = Some(period(1)?),
                Some("delay") => config.delay_read_every = Some((period(1)?, period(2)?)),
                _ => return Err(format!("unknown chaos clause '{clause}'")),
            }
        }
        Ok(config)
    }

    /// `true` when any fault is scheduled.
    pub fn is_active(&self) -> bool {
        self != &ChaosConfig::default()
    }
}

/// Live chaos state: one deterministic counter per fault family.
#[derive(Debug, Default)]
pub struct Chaos {
    config: ChaosConfig,
    conns: AtomicU64,
    frames_out: AtomicU64,
    frames_in: AtomicU64,
    jobs: AtomicU64,
}

fn fires(counter: &AtomicU64, period: Option<u64>) -> bool {
    // Counters only sequence a deterministic schedule; the count must
    // be globally consistent, so keep full ordering.
    let n = counter.fetch_add(1, Ordering::SeqCst) + 1;
    let fired = period.is_some_and(|p| n.is_multiple_of(p));
    if fired {
        remix_telemetry::counter_add(remix_telemetry::names::SERVE_CHAOS_INJECTED, 1);
    }
    fired
}

impl Chaos {
    /// New chaos state for `config`.
    pub fn new(config: ChaosConfig) -> Self {
        Chaos {
            config,
            ..Chaos::default()
        }
    }

    /// Should this accepted connection be dropped unserved?
    pub fn drop_connection(&self) -> bool {
        self.config.drop_conn_every.is_some() && fires(&self.conns, self.config.drop_conn_every)
    }

    /// Should this outgoing response frame be torn mid-write?
    pub fn tear_frame(&self) -> bool {
        self.config.tear_frame_every.is_some()
            && fires(&self.frames_out, self.config.tear_frame_every)
    }

    /// Delay to apply before reading the next frame, when scheduled.
    pub fn read_delay(&self) -> Option<Duration> {
        let (period, ms) = self.config.delay_read_every?;
        if fires(&self.frames_in, Some(period)) {
            Some(Duration::from_millis(ms))
        } else {
            None
        }
    }

    /// Should this job panic mid-execution?
    pub fn panic_job(&self) -> bool {
        self.config.panic_job_every.is_some() && fires(&self.jobs, self.config.panic_job_every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let c = ChaosConfig::parse("drop:7,torn:11,delay:5:20,panic:13").expect("parse");
        assert_eq!(c.drop_conn_every, Some(7));
        assert_eq!(c.tear_frame_every, Some(11));
        assert_eq!(c.delay_read_every, Some((5, 20)));
        assert_eq!(c.panic_job_every, Some(13));
        assert!(c.is_active());
    }

    #[test]
    fn empty_spec_is_no_chaos() {
        let c = ChaosConfig::parse("").expect("parse");
        assert!(!c.is_active());
        let chaos = Chaos::new(c);
        for _ in 0..100 {
            assert!(!chaos.drop_connection());
            assert!(!chaos.tear_frame());
            assert!(!chaos.panic_job());
            assert!(chaos.read_delay().is_none());
        }
    }

    #[test]
    fn malformed_specs_are_errors() {
        for bad in ["drop", "drop:zero", "drop:0", "meteor:3", "delay:5"] {
            assert!(ChaosConfig::parse(bad).is_err(), "{bad} must fail");
        }
    }

    #[test]
    fn schedule_is_deterministic_and_periodic() {
        let chaos = Chaos::new(ChaosConfig::parse("panic:3").expect("parse"));
        let fired: Vec<bool> = (0..9).map(|_| chaos.panic_job()).collect();
        assert_eq!(
            fired,
            [false, false, true, false, false, true, false, false, true]
        );
    }
}
