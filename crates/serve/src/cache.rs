//! Result cache keyed by job fingerprint, with single-flight dedup.
//!
//! Identical jobs (same kind, parameters, and deck — budgets and ids
//! excluded) hit a bounded FIFO cache of rendered result bodies. A
//! miss makes the first caller the **leader**; concurrent callers with
//! the same fingerprint **join** and block until the leader publishes,
//! instead of redundantly re-running the same simulation. Only
//! complete `ok` results are published: a partial produced under a
//! small budget must never be served to a request that brought a
//! larger one, and failures should re-run (the failure may have been
//! a budget or chaos artifact).
//!
//! Fingerprints are FNV-1a 64 — the same scheme the bench config
//! fingerprint and the supervisor's retry jitter use.

use crate::protocol::{JobKind, JobRequest};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// FNV-1a 64 over the job's identity: kind, parameters, deck.
pub fn job_fingerprint(job: &JobRequest) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    mix(job.kind.name().as_bytes());
    match &job.kind {
        JobKind::Op => {}
        JobKind::DcSweep {
            source,
            start,
            stop,
            points,
        } => {
            mix(source.as_bytes());
            mix(&start.to_bits().to_le_bytes());
            mix(&stop.to_bits().to_le_bytes());
            mix(&(*points as u64).to_le_bytes());
        }
        JobKind::Tran { t_stop, dt } => {
            mix(&t_stop.to_bits().to_le_bytes());
            mix(&dt.to_bits().to_le_bytes());
        }
    }
    mix(job.deck.as_bytes());
    h
}

/// What a lookup decided.
pub enum Lookup {
    /// Cached body, served immediately.
    Hit(String),
    /// This caller computes; it MUST call
    /// [`ResultCache::publish`] or [`ResultCache::abandon`] when done.
    Lead(FlightGuard),
    /// A leader finished while we waited: its published body.
    Joined(String),
    /// The leader abandoned (failed / partial / panicked) or the wait
    /// timed out; the caller should run the job itself without
    /// publishing.
    JoinFailed,
}

struct Flight {
    done: Mutex<Option<Option<String>>>,
    cv: Condvar,
}

/// RAII claim on a single-flight slot. Dropping without
/// [`ResultCache::publish`] counts as abandonment, so a panicking
/// leader never wedges its joiners.
pub struct FlightGuard {
    cache: Arc<CacheInner>,
    key: u64,
    flight: Arc<Flight>,
    published: bool,
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        if !self.published {
            self.cache.finish(self.key, &self.flight, None);
        }
    }
}

struct CacheInner {
    map: Mutex<CacheMap>,
}

struct CacheMap {
    ready: HashMap<u64, String>,
    order: VecDeque<u64>,
    inflight: HashMap<u64, Arc<Flight>>,
    capacity: usize,
}

impl CacheInner {
    fn finish(&self, key: u64, flight: &Arc<Flight>, body: Option<String>) {
        {
            let mut map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
            map.inflight.remove(&key);
            if let Some(body) = body.clone() {
                if map.ready.len() >= map.capacity {
                    if let Some(evict) = map.order.pop_front() {
                        map.ready.remove(&evict);
                    }
                }
                if map.ready.insert(key, body).is_none() {
                    map.order.push_back(key);
                }
            }
        }
        let mut done = flight.done.lock().unwrap_or_else(PoisonError::into_inner);
        *done = Some(body);
        flight.cv.notify_all();
    }
}

/// Bounded single-flight result cache. See the module docs.
pub struct ResultCache {
    inner: Arc<CacheInner>,
    join_timeout: Duration,
}

impl ResultCache {
    /// New cache holding up to `capacity` rendered results; joiners
    /// wait at most `join_timeout` for a leader before going solo.
    pub fn new(capacity: usize, join_timeout: Duration) -> Self {
        ResultCache {
            inner: Arc::new(CacheInner {
                map: Mutex::new(CacheMap {
                    ready: HashMap::new(),
                    order: VecDeque::new(),
                    inflight: HashMap::new(),
                    capacity: capacity.max(1),
                }),
            }),
            join_timeout,
        }
    }

    /// Looks up `key`; counts hits / misses / joins on the serve
    /// metric names.
    pub fn lookup(&self, key: u64) -> Lookup {
        let flight = {
            let mut map = self
                .inner
                .map
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(body) = map.ready.get(&key) {
                remix_telemetry::counter_add(remix_telemetry::names::SERVE_CACHE_HITS, 1);
                return Lookup::Hit(body.clone());
            }
            if let Some(flight) = map.inflight.get(&key) {
                remix_telemetry::counter_add(remix_telemetry::names::SERVE_CACHE_JOINS, 1);
                Arc::clone(flight)
            } else {
                remix_telemetry::counter_add(remix_telemetry::names::SERVE_CACHE_MISSES, 1);
                let flight = Arc::new(Flight {
                    done: Mutex::new(None),
                    cv: Condvar::new(),
                });
                map.inflight.insert(key, Arc::clone(&flight));
                return Lookup::Lead(FlightGuard {
                    cache: Arc::clone(&self.inner),
                    key,
                    flight,
                    published: false,
                });
            }
        };
        // Joiner: wait for the leader to publish or abandon.
        let mut done = flight.done.lock().unwrap_or_else(PoisonError::into_inner);
        let deadline = std::time::Instant::now() + self.join_timeout;
        loop {
            if let Some(outcome) = done.clone() {
                return match outcome {
                    Some(body) => Lookup::Joined(body),
                    None => Lookup::JoinFailed,
                };
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Lookup::JoinFailed;
            }
            let (guard, _) = flight
                .cv
                .wait_timeout(done, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            done = guard;
        }
    }

    /// Publishes the leader's complete `ok` body to cache and joiners.
    pub fn publish(&self, mut guard: FlightGuard, body: String) {
        guard.published = true;
        self.inner.finish(guard.key, &guard.flight, Some(body));
    }

    /// Explicitly abandons the flight (failure / partial): joiners
    /// unblock and re-run solo, nothing is cached. Dropping the guard
    /// does the same — this form just documents intent at call sites.
    pub fn abandon(&self, guard: FlightGuard) {
        drop(guard);
    }

    /// Number of ready entries (for stats).
    pub fn len(&self) -> usize {
        self.inner
            .map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .ready
            .len()
    }

    /// `true` when no results are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::JobRequest;

    fn job(deck: &str, kind: JobKind) -> JobRequest {
        JobRequest {
            id: "x".to_string(),
            kind,
            deck: deck.to_string(),
            deadline_ms: None,
            newton_budget: None,
            timestep_budget: None,
            events: false,
        }
    }

    #[test]
    fn fingerprint_ignores_id_and_budgets_but_not_identity() {
        let a = job("v1 a 0 1\n.end\n", JobKind::Op);
        let mut b = a.clone();
        b.id = "different".to_string();
        b.deadline_ms = Some(5);
        b.newton_budget = Some(10);
        b.events = true;
        assert_eq!(job_fingerprint(&a), job_fingerprint(&b));
        let c = job("v1 a 0 2\n.end\n", JobKind::Op);
        assert_ne!(job_fingerprint(&a), job_fingerprint(&c));
        let d = job(
            "v1 a 0 1\n.end\n",
            JobKind::Tran {
                t_stop: 1e-6,
                dt: 1e-9,
            },
        );
        assert_ne!(job_fingerprint(&a), job_fingerprint(&d));
    }

    #[test]
    fn lead_publish_hit_cycle() {
        let cache = ResultCache::new(8, Duration::from_millis(100));
        let guard = match cache.lookup(42) {
            Lookup::Lead(g) => g,
            _ => panic!("first lookup must lead"),
        };
        cache.publish(guard, "{\"x\":1}".to_string());
        match cache.lookup(42) {
            Lookup::Hit(body) => assert_eq!(body, "{\"x\":1}"),
            _ => panic!("second lookup must hit"),
        }
    }

    #[test]
    fn joiner_receives_leaders_body() {
        let cache = Arc::new(ResultCache::new(8, Duration::from_secs(2)));
        let guard = match cache.lookup(7) {
            Lookup::Lead(g) => g,
            _ => panic!("must lead"),
        };
        let cache2 = Arc::clone(&cache);
        let joiner = std::thread::spawn(move || match cache2.lookup(7) {
            Lookup::Joined(body) => body,
            other => panic!(
                "joiner must join, got {}",
                match other {
                    Lookup::Hit(_) => "hit",
                    Lookup::Lead(_) => "lead",
                    Lookup::JoinFailed => "join-failed",
                    Lookup::Joined(_) => unreachable!(),
                }
            ),
        });
        std::thread::sleep(Duration::from_millis(20));
        cache.publish(guard, "{\"y\":2}".to_string());
        assert_eq!(joiner.join().expect("join"), "{\"y\":2}");
    }

    #[test]
    fn abandoned_flight_unblocks_joiners_without_caching() {
        let cache = Arc::new(ResultCache::new(8, Duration::from_secs(2)));
        let guard = match cache.lookup(9) {
            Lookup::Lead(g) => g,
            _ => panic!("must lead"),
        };
        let cache2 = Arc::clone(&cache);
        let joiner = std::thread::spawn(move || matches!(cache2.lookup(9), Lookup::JoinFailed));
        std::thread::sleep(Duration::from_millis(20));
        cache.abandon(guard);
        assert!(joiner.join().expect("join"), "joiner must see failure");
        assert!(cache.is_empty());
        // The key is claimable again.
        assert!(matches!(cache.lookup(9), Lookup::Lead(_)));
    }

    #[test]
    fn dropped_guard_counts_as_abandonment() {
        let cache = ResultCache::new(8, Duration::from_millis(50));
        {
            let _guard = match cache.lookup(1) {
                Lookup::Lead(g) => g,
                _ => panic!("must lead"),
            };
            // Simulated leader panic: guard dropped unpublished.
        }
        assert!(matches!(cache.lookup(1), Lookup::Lead(_)));
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let cache = ResultCache::new(2, Duration::from_millis(50));
        for key in [1u64, 2, 3] {
            match cache.lookup(key) {
                Lookup::Lead(g) => cache.publish(g, format!("{{\"k\":{key}}}")),
                _ => panic!("must lead"),
            }
        }
        assert_eq!(cache.len(), 2);
        assert!(matches!(cache.lookup(1), Lookup::Lead(_))); // evicted
        assert!(matches!(cache.lookup(3), Lookup::Hit(_)));
    }
}
