//! Result cache keyed by job fingerprint, with single-flight dedup.
//!
//! Identical jobs (same kind, parameters, and deck — budgets and ids
//! excluded) hit a bounded FIFO cache of rendered result bodies. A
//! miss makes the first caller the **leader**; concurrent callers with
//! the same fingerprint **join** and block until the leader publishes,
//! instead of redundantly re-running the same simulation. Only
//! complete `ok` results are published: a partial produced under a
//! small budget must never be served to a request that brought a
//! larger one, and failures should re-run (the failure may have been
//! a budget or chaos artifact).
//!
//! Fingerprints are FNV-1a 64 — the same scheme the bench config
//! fingerprint and the supervisor's retry jitter use.

use crate::protocol::{JobKind, JobRequest};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// FNV-1a 64 over the job's identity: kind, parameters, deck.
pub fn job_fingerprint(job: &JobRequest) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    mix(job.kind.name().as_bytes());
    match &job.kind {
        JobKind::Op => {}
        JobKind::DcSweep {
            source,
            start,
            stop,
            points,
        } => {
            mix(source.as_bytes());
            mix(&start.to_bits().to_le_bytes());
            mix(&stop.to_bits().to_le_bytes());
            mix(&(*points as u64).to_le_bytes());
        }
        JobKind::Tran { t_stop, dt } => {
            mix(&t_stop.to_bits().to_le_bytes());
            mix(&dt.to_bits().to_le_bytes());
        }
    }
    mix(job.deck.as_bytes());
    h
}

/// What a lookup decided.
pub enum Lookup {
    /// Cached body, served immediately.
    Hit(String),
    /// This caller computes; it MUST call
    /// [`ResultCache::publish`] or [`ResultCache::abandon`] when done.
    Lead(FlightGuard),
    /// A leader finished while we waited: its published body.
    Joined(String),
    /// The leader abandoned (failed / partial / panicked) or the wait
    /// timed out; the caller should run the job itself without
    /// publishing.
    JoinFailed,
}

struct Flight {
    done: Mutex<Option<Option<String>>>,
    cv: Condvar,
}

/// RAII claim on a single-flight slot. Dropping without
/// [`ResultCache::publish`] counts as abandonment, so a panicking
/// leader never wedges its joiners.
pub struct FlightGuard {
    cache: Arc<CacheInner>,
    key: u64,
    flight: Arc<Flight>,
    published: bool,
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        if !self.published {
            self.cache.finish(self.key, &self.flight, None);
        }
    }
}

struct CacheInner {
    map: Mutex<CacheMap>,
}

struct CacheMap {
    ready: HashMap<u64, String>,
    order: VecDeque<u64>,
    inflight: HashMap<u64, Arc<Flight>>,
    capacity: usize,
}

impl CacheInner {
    fn finish(&self, key: u64, flight: &Arc<Flight>, body: Option<String>) {
        {
            let mut map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
            map.inflight.remove(&key);
            if let Some(body) = body.clone() {
                if map.ready.len() >= map.capacity {
                    if let Some(evict) = map.order.pop_front() {
                        map.ready.remove(&evict);
                    }
                }
                if map.ready.insert(key, body).is_none() {
                    map.order.push_back(key);
                }
            }
        }
        let mut done = flight.done.lock().unwrap_or_else(PoisonError::into_inner);
        *done = Some(body);
        flight.cv.notify_all();
    }
}

/// Bounded single-flight result cache. See the module docs.
pub struct ResultCache {
    inner: Arc<CacheInner>,
    join_timeout: Duration,
}

impl ResultCache {
    /// New cache holding up to `capacity` rendered results; joiners
    /// wait at most `join_timeout` for a leader before going solo.
    pub fn new(capacity: usize, join_timeout: Duration) -> Self {
        ResultCache {
            inner: Arc::new(CacheInner {
                map: Mutex::new(CacheMap {
                    ready: HashMap::new(),
                    order: VecDeque::new(),
                    inflight: HashMap::new(),
                    capacity: capacity.max(1),
                }),
            }),
            join_timeout,
        }
    }

    /// Looks up `key`; counts hits / misses / joins on the serve
    /// metric names.
    pub fn lookup(&self, key: u64) -> Lookup {
        let flight = {
            let mut map = self
                .inner
                .map
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(body) = map.ready.get(&key) {
                remix_telemetry::counter_add(remix_telemetry::names::SERVE_CACHE_HITS, 1);
                return Lookup::Hit(body.clone());
            }
            if let Some(flight) = map.inflight.get(&key) {
                remix_telemetry::counter_add(remix_telemetry::names::SERVE_CACHE_JOINS, 1);
                Arc::clone(flight)
            } else {
                remix_telemetry::counter_add(remix_telemetry::names::SERVE_CACHE_MISSES, 1);
                let flight = Arc::new(Flight {
                    done: Mutex::new(None),
                    cv: Condvar::new(),
                });
                map.inflight.insert(key, Arc::clone(&flight));
                return Lookup::Lead(FlightGuard {
                    cache: Arc::clone(&self.inner),
                    key,
                    flight,
                    published: false,
                });
            }
        };
        // Joiner: wait for the leader to publish or abandon.
        let mut done = flight.done.lock().unwrap_or_else(PoisonError::into_inner);
        let deadline = std::time::Instant::now() + self.join_timeout;
        loop {
            if let Some(outcome) = done.clone() {
                return match outcome {
                    Some(body) => Lookup::Joined(body),
                    None => Lookup::JoinFailed,
                };
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Lookup::JoinFailed;
            }
            let (guard, _) = flight
                .cv
                .wait_timeout(done, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            done = guard;
        }
    }

    /// Publishes the leader's complete `ok` body to cache and joiners.
    pub fn publish(&self, mut guard: FlightGuard, body: String) {
        guard.published = true;
        self.inner.finish(guard.key, &guard.flight, Some(body));
    }

    /// Explicitly abandons the flight (failure / partial): joiners
    /// unblock and re-run solo, nothing is cached. Dropping the guard
    /// does the same — this form just documents intent at call sites.
    pub fn abandon(&self, guard: FlightGuard) {
        drop(guard);
    }

    /// Ready entries in eviction (FIFO) order, oldest first — the
    /// persistence snapshot.
    pub fn entries(&self) -> Vec<(u64, String)> {
        let map = self
            .inner
            .map
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        map.order
            .iter()
            .filter_map(|key| map.ready.get(key).map(|body| (*key, body.clone())))
            .collect()
    }

    /// Inserts a ready entry directly (no single-flight), respecting
    /// capacity FIFO eviction. Used to reload a persisted snapshot on
    /// startup; later duplicates of a key are ignored.
    pub fn seed(&self, key: u64, body: String) {
        let mut map = self
            .inner
            .map
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if map.ready.contains_key(&key) {
            return;
        }
        if map.ready.len() >= map.capacity {
            if let Some(evict) = map.order.pop_front() {
                map.ready.remove(&evict);
            }
        }
        map.ready.insert(key, body);
        map.order.push_back(key);
    }

    /// Number of ready entries (for stats).
    pub fn len(&self) -> usize {
        self.inner
            .map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .ready
            .len()
    }

    /// `true` when no results are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Version tag of the persisted-cache document.
pub const PERSIST_VERSION: u64 = 1;

/// Fingerprint a persisted cache must match to be reloaded: FNV-1a 64
/// (hex) over the crate version plus a result-schema tag. Bodies
/// rendered by a different build may differ byte-for-byte for the same
/// job, and a stale body replayed as a hit would be silently wrong —
/// so a mismatched snapshot is rejected wholesale, never merged.
pub fn persist_fingerprint() -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in concat!(env!("CARGO_PKG_VERSION"), "|result-schema-v1").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{h:016x}")
}

impl ResultCache {
    /// Renders the ready entries as a version-1 persistence document
    /// (see [`PERSIST_VERSION`]); written via the crash-safe
    /// `remix_exec::atomic_write` on graceful shutdown.
    pub fn render_persist(&self, fingerprint: &str) -> String {
        let mut entries = String::new();
        for (key, body) in self.entries() {
            if !entries.is_empty() {
                entries.push(',');
            }
            entries.push_str(&format!("[{key},{}]", crate::protocol::json_escape(&body)));
        }
        format!(
            "{{\"version\":{PERSIST_VERSION},\"fingerprint\":{},\"entries\":[{entries}]}}",
            crate::protocol::json_escape(fingerprint),
        )
    }

    /// Restores a persisted snapshot into the (empty) cache, oldest
    /// entry first so FIFO eviction order survives the round trip.
    /// Returns the number of entries seeded.
    ///
    /// # Errors
    ///
    /// A description of the defect when the document is malformed, a
    /// different version, or fingerprinted by a different build —
    /// rejection is wholesale; nothing is seeded.
    pub fn load_persist(&self, text: &str, fingerprint: &str) -> Result<usize, String> {
        let doc = remix_telemetry::parse_json(text).map_err(|e| e.to_string())?;
        match doc
            .get("version")
            .and_then(remix_telemetry::JsonValue::as_u64)
        {
            Some(PERSIST_VERSION) => {}
            other => return Err(format!("unsupported cache version {other:?}")),
        }
        match doc
            .get("fingerprint")
            .and_then(remix_telemetry::JsonValue::as_str)
        {
            Some(found) if found == fingerprint => {}
            Some(found) => {
                return Err(format!(
                    "fingerprint mismatch: snapshot {found}, this build {fingerprint}"
                ))
            }
            None => return Err("missing fingerprint".to_string()),
        }
        let entries = doc
            .get("entries")
            .and_then(remix_telemetry::JsonValue::as_arr)
            .ok_or("missing entries array")?;
        let mut parsed = Vec::with_capacity(entries.len());
        for (i, entry) in entries.iter().enumerate() {
            let pair = entry
                .as_arr()
                .ok_or_else(|| format!("entry {i} not a pair"))?;
            match pair {
                [key, body] => {
                    let key = key
                        .as_u64()
                        .ok_or_else(|| format!("entry {i} key not a u64"))?;
                    let body = body
                        .as_str()
                        .ok_or_else(|| format!("entry {i} body not a string"))?;
                    parsed.push((key, body.to_string()));
                }
                _ => return Err(format!("entry {i} not a [key, body] pair")),
            }
        }
        let n = parsed.len();
        for (key, body) in parsed {
            self.seed(key, body);
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::JobRequest;

    fn job(deck: &str, kind: JobKind) -> JobRequest {
        JobRequest {
            id: "x".to_string(),
            kind,
            deck: deck.to_string(),
            deadline_ms: None,
            newton_budget: None,
            timestep_budget: None,
            events: false,
        }
    }

    #[test]
    fn fingerprint_ignores_id_and_budgets_but_not_identity() {
        let a = job("v1 a 0 1\n.end\n", JobKind::Op);
        let mut b = a.clone();
        b.id = "different".to_string();
        b.deadline_ms = Some(5);
        b.newton_budget = Some(10);
        b.events = true;
        assert_eq!(job_fingerprint(&a), job_fingerprint(&b));
        let c = job("v1 a 0 2\n.end\n", JobKind::Op);
        assert_ne!(job_fingerprint(&a), job_fingerprint(&c));
        let d = job(
            "v1 a 0 1\n.end\n",
            JobKind::Tran {
                t_stop: 1e-6,
                dt: 1e-9,
            },
        );
        assert_ne!(job_fingerprint(&a), job_fingerprint(&d));
    }

    #[test]
    fn lead_publish_hit_cycle() {
        let cache = ResultCache::new(8, Duration::from_millis(100));
        let guard = match cache.lookup(42) {
            Lookup::Lead(g) => g,
            _ => panic!("first lookup must lead"),
        };
        cache.publish(guard, "{\"x\":1}".to_string());
        match cache.lookup(42) {
            Lookup::Hit(body) => assert_eq!(body, "{\"x\":1}"),
            _ => panic!("second lookup must hit"),
        }
    }

    #[test]
    fn joiner_receives_leaders_body() {
        let cache = Arc::new(ResultCache::new(8, Duration::from_secs(2)));
        let guard = match cache.lookup(7) {
            Lookup::Lead(g) => g,
            _ => panic!("must lead"),
        };
        let cache2 = Arc::clone(&cache);
        let joiner = std::thread::spawn(move || match cache2.lookup(7) {
            Lookup::Joined(body) => body,
            other => panic!(
                "joiner must join, got {}",
                match other {
                    Lookup::Hit(_) => "hit",
                    Lookup::Lead(_) => "lead",
                    Lookup::JoinFailed => "join-failed",
                    Lookup::Joined(_) => unreachable!(),
                }
            ),
        });
        std::thread::sleep(Duration::from_millis(20));
        cache.publish(guard, "{\"y\":2}".to_string());
        assert_eq!(joiner.join().expect("join"), "{\"y\":2}");
    }

    #[test]
    fn abandoned_flight_unblocks_joiners_without_caching() {
        let cache = Arc::new(ResultCache::new(8, Duration::from_secs(2)));
        let guard = match cache.lookup(9) {
            Lookup::Lead(g) => g,
            _ => panic!("must lead"),
        };
        let cache2 = Arc::clone(&cache);
        let joiner = std::thread::spawn(move || matches!(cache2.lookup(9), Lookup::JoinFailed));
        std::thread::sleep(Duration::from_millis(20));
        cache.abandon(guard);
        assert!(joiner.join().expect("join"), "joiner must see failure");
        assert!(cache.is_empty());
        // The key is claimable again.
        assert!(matches!(cache.lookup(9), Lookup::Lead(_)));
    }

    #[test]
    fn dropped_guard_counts_as_abandonment() {
        let cache = ResultCache::new(8, Duration::from_millis(50));
        {
            let _guard = match cache.lookup(1) {
                Lookup::Lead(g) => g,
                _ => panic!("must lead"),
            };
            // Simulated leader panic: guard dropped unpublished.
        }
        assert!(matches!(cache.lookup(1), Lookup::Lead(_)));
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let cache = ResultCache::new(2, Duration::from_millis(50));
        for key in [1u64, 2, 3] {
            match cache.lookup(key) {
                Lookup::Lead(g) => cache.publish(g, format!("{{\"k\":{key}}}")),
                _ => panic!("must lead"),
            }
        }
        assert_eq!(cache.len(), 2);
        assert!(matches!(cache.lookup(1), Lookup::Lead(_))); // evicted
        assert!(matches!(cache.lookup(3), Lookup::Hit(_)));
    }

    #[test]
    fn persist_round_trips_entries_in_eviction_order() {
        let cache = ResultCache::new(8, Duration::from_millis(50));
        for key in [5u64, u64::MAX, 1] {
            match cache.lookup(key) {
                Lookup::Lead(g) => cache.publish(g, format!("{{\"k\":\"{key}\",\"s\":\"a\\nb\"}}")),
                _ => panic!("must lead"),
            }
        }
        let fp = persist_fingerprint();
        let doc = cache.render_persist(&fp);
        let restored = ResultCache::new(8, Duration::from_millis(50));
        assert_eq!(restored.load_persist(&doc, &fp), Ok(3));
        assert_eq!(restored.entries(), cache.entries());
        // u64::MAX survives bit-exact (the parser keeps large ints).
        match restored.lookup(u64::MAX) {
            Lookup::Hit(body) => assert!(body.contains(&u64::MAX.to_string())),
            _ => panic!("persisted entry must hit"),
        }
    }

    #[test]
    fn persist_rejects_mismatched_fingerprint_version_and_garbage() {
        let cache = ResultCache::new(8, Duration::from_millis(50));
        match cache.lookup(3) {
            Lookup::Lead(g) => cache.publish(g, "{}".to_string()),
            _ => panic!("must lead"),
        }
        let fp = persist_fingerprint();
        let doc = cache.render_persist(&fp);
        let restored = ResultCache::new(8, Duration::from_millis(50));
        let err = restored.load_persist(&doc, "other-build").unwrap_err();
        assert!(err.contains("fingerprint mismatch"), "{err}");
        let wrong_version = doc.replace("\"version\":1", "\"version\":9");
        let err = restored.load_persist(&wrong_version, &fp).unwrap_err();
        assert!(err.contains("version"), "{err}");
        assert!(restored.load_persist("{not json", &fp).is_err());
        // A torn write (truncated document) must also reject.
        assert!(restored.load_persist(&doc[..doc.len() / 2], &fp).is_err());
        // Wholesale rejection: nothing seeded by any failed load.
        assert!(restored.is_empty());
    }

    #[test]
    fn seed_ignores_duplicates_and_respects_capacity() {
        let cache = ResultCache::new(2, Duration::from_millis(50));
        cache.seed(1, "a".to_string());
        cache.seed(1, "b".to_string()); // ignored: first seed wins
        cache.seed(2, "c".to_string());
        cache.seed(3, "d".to_string()); // evicts 1
        assert_eq!(
            cache.entries(),
            vec![(2, "c".to_string()), (3, "d".to_string())]
        );
        match cache.lookup(2) {
            Lookup::Hit(body) => assert_eq!(body, "c"),
            _ => panic!("seeded entry must hit"),
        }
    }
}
