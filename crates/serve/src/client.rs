//! Client helper: connect, frame requests, parse responses, and retry
//! shed / transport failures with the supervisor's deterministic
//! jittered backoff. The `serve_load` generator drives the server
//! through this same code path, so the retry policy the bench measures
//! is the retry policy real callers get.

use crate::framing::{FrameError, FrameLimits, FrameReader};
use crate::protocol::{encode_job, JobRequest, Status};
use remix_exec::retry_backoff;
use remix_telemetry::{parse_json, JsonValue};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side failure. `Shed` carries the server's typed refusal so
/// callers can distinguish overload from breakage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Could not connect.
    Connect(std::io::ErrorKind),
    /// Transport or framing failure mid-exchange.
    Transport(String),
    /// The server answered, but not with parseable response JSON.
    BadResponse(String),
    /// The server shed the request (reason from the wire).
    Shed(String),
    /// Retries exhausted; the last error is boxed inside.
    RetriesExhausted(Box<ClientError>),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(kind) => write!(f, "connect failed: {kind:?}"),
            ClientError::Transport(m) => write!(f, "transport failed: {m}"),
            ClientError::BadResponse(m) => write!(f, "unparseable response: {m}"),
            ClientError::Shed(reason) => write!(f, "request shed: {reason}"),
            ClientError::RetriesExhausted(inner) => write!(f, "retries exhausted: {inner}"),
        }
    }
}

/// A parsed terminal response plus any event lines streamed before it.
#[derive(Debug, Clone)]
pub struct JobResponse {
    /// Terminal status.
    pub status: Status,
    /// `result` body rendered back to JSON text (empty when absent).
    pub result: String,
    /// Error/shed code or reason, when the status carries one.
    pub code: Option<String>,
    /// Served from the result cache?
    pub cached: bool,
    /// Server-side wall time (ms).
    pub elapsed_ms: u64,
    /// Raw event frames received before the terminal line.
    pub events: Vec<String>,
    /// The raw terminal line.
    pub raw: String,
}

/// Retry policy for [`call_with_retry`]. Backoff is the supervisor's
/// deterministic jitter: same job id + attempt → same delay.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Attempts beyond the first.
    pub retries: u32,
    /// First backoff step.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(250),
        }
    }
}

/// One connection to a serve instance.
pub struct Client {
    stream: TcpStream,
    reader: FrameReader<TcpStream>,
}

fn render_value(v: &JsonValue) -> String {
    match v {
        JsonValue::Null => "null".to_string(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Int(n) => n.to_string(),
        JsonValue::Num(x) => format!("{x:e}"),
        JsonValue::Str(s) => crate::protocol::json_escape(s),
        JsonValue::Arr(items) => {
            let inner: Vec<String> = items.iter().map(render_value).collect();
            format!("[{}]", inner.join(","))
        }
        JsonValue::Obj(map) => {
            let inner: Vec<String> = map
                .iter()
                .map(|(k, v)| format!("{}:{}", crate::protocol::json_escape(k), render_value(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

impl Client {
    /// Connects with `timeout`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Connect`] when the server is unreachable.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> Result<Client, ClientError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)
            .map_err(|e| ClientError::Connect(e.kind()))?;
        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
        let _ = stream.set_nodelay(true);
        let reader = stream
            .try_clone()
            .map_err(|e| ClientError::Connect(e.kind()))?;
        Ok(Client {
            stream,
            reader: FrameReader::new(reader, FrameLimits::default()),
        })
    }

    fn send_line(&mut self, line: &str) -> Result<(), ClientError> {
        self.stream
            .write_all(line.as_bytes())
            .and_then(|()| self.stream.write_all(b"\n"))
            .and_then(|()| self.stream.flush())
            .map_err(|e| ClientError::Transport(format!("write: {:?}", e.kind())))
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        match self.reader.read_frame() {
            Ok(Some(line)) => Ok(line),
            Ok(None) => Err(ClientError::Transport("server closed".to_string())),
            Err(FrameError::Torn { partial_bytes }) => Err(ClientError::Transport(format!(
                "torn response ({partial_bytes} bytes)"
            ))),
            Err(e) => Err(ClientError::Transport(e.to_string())),
        }
    }

    /// Round-trips a ping.
    ///
    /// # Errors
    ///
    /// Transport failure or a non-pong answer.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send_line("{\"op\":\"ping\"}")?;
        let line = self.read_line()?;
        if line.contains("\"pong\"") {
            Ok(())
        } else {
            Err(ClientError::BadResponse(line))
        }
    }

    /// Submits `job` and reads frames until the terminal line.
    ///
    /// # Errors
    ///
    /// Transport failure or unparseable response. A shed **is** a
    /// parsed response here; [`call_with_retry`] turns it into
    /// [`ClientError::Shed`] for its retry loop.
    pub fn submit(&mut self, job: &JobRequest) -> Result<JobResponse, ClientError> {
        self.send_line(&encode_job(job))?;
        let mut events = Vec::new();
        loop {
            let line = self.read_line()?;
            let value = parse_json(&line)
                .map_err(|e| ClientError::BadResponse(format!("{e:?}: {line}")))?;
            if value.get("event").is_some() {
                events.push(line);
                continue;
            }
            let status = value
                .get("status")
                .and_then(JsonValue::as_str)
                .and_then(Status::parse)
                .ok_or_else(|| ClientError::BadResponse(line.clone()))?;
            let code = value
                .get("error")
                .and_then(|e| e.get("code"))
                .or_else(|| value.get("code"))
                .or_else(|| value.get("reason"))
                .and_then(JsonValue::as_str)
                .map(str::to_string);
            return Ok(JobResponse {
                status,
                result: value.get("result").map(render_value).unwrap_or_default(),
                code,
                cached: value
                    .get("cached")
                    .and_then(JsonValue::as_bool)
                    .unwrap_or(false),
                elapsed_ms: value
                    .get("elapsed_ms")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0),
                events,
                raw: line,
            });
        }
    }
}

/// Submits `job` on a fresh connection per attempt, retrying sheds and
/// transport failures under `policy`'s deterministic jittered backoff.
/// Protocol-level rejections (`error` status) are NOT retried — a deck
/// the linter denied will be denied again.
///
/// # Errors
///
/// [`ClientError::RetriesExhausted`] wrapping the last failure.
pub fn call_with_retry(
    addr: SocketAddr,
    job: &JobRequest,
    policy: &RetryPolicy,
) -> Result<JobResponse, ClientError> {
    let mut last: Option<ClientError> = None;
    for attempt in 0..=policy.retries {
        if attempt > 0 {
            std::thread::sleep(retry_backoff(
                &job.id,
                attempt - 1,
                policy.backoff_base,
                policy.backoff_cap,
            ));
        }
        let outcome = Client::connect(addr, Duration::from_millis(500))
            .and_then(|mut client| client.submit(job));
        match outcome {
            Ok(response) if response.status == Status::Shed => {
                last = Some(ClientError::Shed(
                    response.code.unwrap_or_else(|| "unknown".to_string()),
                ));
            }
            Ok(response) => return Ok(response),
            Err(e) => last = Some(e),
        }
    }
    Err(ClientError::RetriesExhausted(Box::new(last.unwrap_or(
        ClientError::Transport("no attempts".to_string()),
    ))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_per_job() {
        let p = RetryPolicy::default();
        let a = retry_backoff("job-1", 0, p.backoff_base, p.backoff_cap);
        let b = retry_backoff("job-1", 0, p.backoff_base, p.backoff_cap);
        assert_eq!(a, b);
    }

    #[test]
    fn render_value_round_trips_nested_result() {
        let v = parse_json("{\"a\":[1,true,\"x\"],\"b\":{\"c\":null}}").expect("parse");
        let rendered = render_value(&v);
        let back = parse_json(&rendered).expect("reparse");
        assert_eq!(
            back.get("a").and_then(JsonValue::as_arr).map(<[_]>::len),
            Some(3)
        );
    }
}
