//! The serve binary: bind, print the address, run until stdin closes.
//!
//! ```text
//! serve [--addr HOST:PORT] [--workers N] [--queue-depth N] [--chaos SPEC]
//! ```
//!
//! Flags override the `REMIX_SERVE_*` environment. The bound address
//! is printed on the first stdout line (`listening on <addr>`) so
//! harnesses using `--addr 127.0.0.1:0` can discover the real port.
//! Set `REMIX_SERVE_CACHE_FILE=<path>` to persist the result cache
//! across restarts (fingerprint-checked on load, written atomically
//! on graceful shutdown).

use remix_serve::chaos::ChaosConfig;
use remix_serve::server::{ServeConfig, Server};
use std::process::ExitCode;

const USAGE: &str =
    "usage: serve [--addr HOST:PORT] [--workers N] [--queue-depth N] [--chaos SPEC]\n\
                     chaos spec: drop:<n>[,torn:<n>][,delay:<n>:<ms>][,panic:<n>]";

fn parse_args(config: &mut ServeConfig) -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => config.addr = value(&args, i, "--addr")?,
            "--workers" => match value(&args, i, "--workers")?.parse::<usize>() {
                Ok(n) if n >= 1 => config.workers = n,
                _ => return Err("--workers must be a positive integer".to_string()),
            },
            "--queue-depth" => match value(&args, i, "--queue-depth")?.parse::<usize>() {
                Ok(n) if n >= 1 => config.queue_depth = n,
                _ => return Err("--queue-depth must be a positive integer".to_string()),
            },
            "--chaos" => config.chaos = ChaosConfig::parse(&value(&args, i, "--chaos")?)?,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 2;
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut config = ServeConfig::from_env();
    if let Err(message) = parse_args(&mut config) {
        if !message.is_empty() {
            eprintln!("error: {message}");
        }
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    if config.chaos.is_active() {
        eprintln!("chaos active: {:?}", config.chaos);
    }
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.addr());
    // Run until stdin closes (harness-friendly lifecycle: the parent
    // closes the pipe or dies, and the server drains and exits 0).
    let mut sink = String::new();
    loop {
        sink.clear();
        match std::io::stdin().read_line(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    let snapshot = server.shutdown();
    let jobs_ok = snapshot
        .counter(remix_telemetry::names::SERVE_JOBS_OK)
        .unwrap_or(0);
    let sheds = snapshot
        .counter(remix_telemetry::names::SERVE_SHEDS)
        .unwrap_or(0);
    eprintln!("serve: drained; jobs_ok={jobs_ok} sheds={sheds}");
    ExitCode::SUCCESS
}
