//! Wire protocol: JSON-lines requests and responses, with a typed
//! error for every way a frame can be malformed.
//!
//! One request per line, one terminal response per request; a job that
//! asked for `"events": true` receives zero or more event lines (each
//! `{"id": …, "event": …}`) *before* its terminal response. The
//! grammar is documented in `DESIGN.md` §12; everything here is
//! hand-rolled over `remix_telemetry::parse_json` — the environment
//! has no serde, and the telemetry JSON kernel is already fuzzed.
//!
//! Decoding never panics: every malformed frame maps to a
//! [`ProtocolError`] variant with a stable `code()` the server can
//! serialize back, so a client always learns *which* rule it broke.

use remix_telemetry::{parse_json, JsonValue};

/// Hard cap on request line length (bytes) unless configured lower.
pub const DEFAULT_MAX_LINE_BYTES: usize = 256 * 1024;

/// Hard cap on deck size inside a job (bytes).
pub const DEFAULT_MAX_DECK_BYTES: usize = 128 * 1024;

/// Every way a frame can be malformed, each with a stable wire code.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The line exceeded the configured byte cap before a newline.
    LineTooLong {
        /// The configured cap (bytes).
        limit: usize,
    },
    /// The peer stopped mid-line longer than the read deadline allows
    /// (slow-loris defense) or never completed the frame.
    Timeout {
        /// The configured deadline (ms).
        deadline_ms: u64,
    },
    /// The line is not valid UTF-8.
    InvalidUtf8,
    /// The line is not valid JSON.
    InvalidJson {
        /// Parser message with byte offset.
        message: String,
    },
    /// The line parsed but is not a JSON object.
    NotAnObject,
    /// A required field is absent.
    MissingField {
        /// The field name.
        field: &'static str,
    },
    /// A field is present with the wrong type or an invalid value.
    BadField {
        /// The field name.
        field: &'static str,
        /// What the protocol expects there.
        expected: &'static str,
    },
    /// `kind` names no known analysis.
    UnknownKind {
        /// The offending kind string.
        kind: String,
    },
    /// `op` names no known control operation.
    UnknownOp {
        /// The offending op string.
        op: String,
    },
    /// The deck exceeds the configured byte cap.
    DeckTooLarge {
        /// Actual deck size (bytes).
        bytes: usize,
        /// The configured cap (bytes).
        limit: usize,
    },
}

impl ProtocolError {
    /// Stable lowercase code for the wire.
    pub fn code(&self) -> &'static str {
        match self {
            ProtocolError::LineTooLong { .. } => "line_too_long",
            ProtocolError::Timeout { .. } => "timeout",
            ProtocolError::InvalidUtf8 => "invalid_utf8",
            ProtocolError::InvalidJson { .. } => "invalid_json",
            ProtocolError::NotAnObject => "not_an_object",
            ProtocolError::MissingField { .. } => "missing_field",
            ProtocolError::BadField { .. } => "bad_field",
            ProtocolError::UnknownKind { .. } => "unknown_kind",
            ProtocolError::UnknownOp { .. } => "unknown_op",
            ProtocolError::DeckTooLarge { .. } => "deck_too_large",
        }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::LineTooLong { limit } => {
                write!(f, "request line exceeds {limit} bytes")
            }
            ProtocolError::Timeout { deadline_ms } => {
                write!(f, "frame not completed within {deadline_ms} ms")
            }
            ProtocolError::InvalidUtf8 => write!(f, "request line is not valid UTF-8"),
            ProtocolError::InvalidJson { message } => write!(f, "invalid JSON: {message}"),
            ProtocolError::NotAnObject => write!(f, "request must be a JSON object"),
            ProtocolError::MissingField { field } => write!(f, "missing field '{field}'"),
            ProtocolError::BadField { field, expected } => {
                write!(f, "field '{field}' must be {expected}")
            }
            ProtocolError::UnknownKind { kind } => write!(f, "unknown job kind '{kind}'"),
            ProtocolError::UnknownOp { op } => write!(f, "unknown op '{op}'"),
            ProtocolError::DeckTooLarge { bytes, limit } => {
                write!(f, "deck is {bytes} bytes (cap {limit})")
            }
        }
    }
}

/// The analysis a job requests, with its kind-specific parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum JobKind {
    /// DC operating point.
    Op,
    /// DC sweep of one named source over a linear grid.
    DcSweep {
        /// Source element name to sweep.
        source: String,
        /// First swept value (V).
        start: f64,
        /// Last swept value (V).
        stop: f64,
        /// Number of grid points (≥ 1).
        points: usize,
    },
    /// Transient with fixed base step.
    Tran {
        /// Stop time (s).
        t_stop: f64,
        /// Base timestep (s).
        dt: f64,
    },
}

impl JobKind {
    /// Stable wire name.
    pub fn name(&self) -> &'static str {
        match self {
            JobKind::Op => "op",
            JobKind::DcSweep { .. } => "dc_sweep",
            JobKind::Tran { .. } => "tran",
        }
    }
}

/// One simulation job, as decoded from a request line.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Client-chosen id, echoed on every line this job produces.
    pub id: String,
    /// The analysis and its parameters.
    pub kind: JobKind,
    /// Self-contained SPICE deck (`.include` is refused by the parser:
    /// network decks never touch the server's filesystem).
    pub deck: String,
    /// Wall-clock budget (ms); also the admission-control deadline.
    pub deadline_ms: Option<u64>,
    /// Newton-iteration budget.
    pub newton_budget: Option<u64>,
    /// Timestep budget.
    pub timestep_budget: Option<u64>,
    /// Stream job telemetry events back before the terminal response.
    pub events: bool,
}

/// A decoded request frame: a job, or a control operation.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestFrame {
    /// Run a simulation job.
    Job(Box<JobRequest>),
    /// Liveness probe; answered inline, never queued.
    Ping,
    /// Server counter snapshot; answered inline, never queued.
    Stats,
}

fn get_str(obj: &JsonValue, field: &'static str) -> Result<Option<String>, ProtocolError> {
    match obj.get(field) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(JsonValue::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(ProtocolError::BadField {
            field,
            expected: "a string",
        }),
    }
}

fn get_u64(obj: &JsonValue, field: &'static str) -> Result<Option<u64>, ProtocolError> {
    match obj.get(field) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or(ProtocolError::BadField {
            field,
            expected: "a non-negative integer",
        }),
    }
}

fn get_f64(obj: &JsonValue, field: &'static str) -> Result<Option<f64>, ProtocolError> {
    match obj.get(field) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => match v.as_f64() {
            Some(x) if x.is_finite() => Ok(Some(x)),
            _ => Err(ProtocolError::BadField {
                field,
                expected: "a finite number",
            }),
        },
    }
}

fn req_f64(obj: &JsonValue, field: &'static str) -> Result<f64, ProtocolError> {
    get_f64(obj, field)?.ok_or(ProtocolError::MissingField { field })
}

/// Decodes one request line. `max_deck_bytes` caps the embedded deck.
///
/// # Errors
///
/// A [`ProtocolError`] naming exactly which rule the frame broke.
pub fn decode_request(line: &str, max_deck_bytes: usize) -> Result<RequestFrame, ProtocolError> {
    let value = parse_json(line).map_err(|e| ProtocolError::InvalidJson {
        message: e.to_string(),
    })?;
    if !matches!(value, JsonValue::Obj(_)) {
        return Err(ProtocolError::NotAnObject);
    }
    if let Some(op) = get_str(&value, "op")? {
        match op.as_str() {
            "ping" => return Ok(RequestFrame::Ping),
            "stats" => return Ok(RequestFrame::Stats),
            "job" => {}
            other => {
                return Err(ProtocolError::UnknownOp {
                    op: other.to_string(),
                })
            }
        }
    }
    let id = get_str(&value, "id")?.ok_or(ProtocolError::MissingField { field: "id" })?;
    let deck = get_str(&value, "deck")?.ok_or(ProtocolError::MissingField { field: "deck" })?;
    if deck.len() > max_deck_bytes {
        return Err(ProtocolError::DeckTooLarge {
            bytes: deck.len(),
            limit: max_deck_bytes,
        });
    }
    let kind_name =
        get_str(&value, "kind")?.ok_or(ProtocolError::MissingField { field: "kind" })?;
    let params = value.get("params").cloned().unwrap_or(JsonValue::Null);
    let kind = match kind_name.as_str() {
        "op" => JobKind::Op,
        "dc_sweep" => {
            let source = get_str(&params, "source")?
                .ok_or(ProtocolError::MissingField { field: "source" })?;
            let points = get_u64(&params, "points")?
                .ok_or(ProtocolError::MissingField { field: "points" })?;
            if points == 0 || points > 100_000 {
                return Err(ProtocolError::BadField {
                    field: "points",
                    expected: "between 1 and 100000",
                });
            }
            JobKind::DcSweep {
                source,
                start: req_f64(&params, "start")?,
                stop: req_f64(&params, "stop")?,
                points: points as usize,
            }
        }
        "tran" => {
            let t_stop = req_f64(&params, "t_stop")?;
            let dt = req_f64(&params, "dt")?;
            if t_stop <= 0.0 || dt <= 0.0 || dt >= t_stop {
                return Err(ProtocolError::BadField {
                    field: "params",
                    expected: "positive t_stop and dt with dt < t_stop",
                });
            }
            JobKind::Tran { t_stop, dt }
        }
        other => {
            return Err(ProtocolError::UnknownKind {
                kind: other.to_string(),
            })
        }
    };
    Ok(RequestFrame::Job(Box::new(JobRequest {
        id,
        kind,
        deck,
        deadline_ms: get_u64(&value, "deadline_ms")?,
        newton_budget: get_u64(&value, "newton_budget")?,
        timestep_budget: get_u64(&value, "timestep_budget")?,
        events: value
            .get("events")
            .and_then(JsonValue::as_bool)
            .unwrap_or(false),
    })))
}

/// JSON string literal with required escapes (mirrors the telemetry
/// renderer so server output stays parseable by its own reader).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Encodes the request a client sends for `job` (the only frame
/// clients build programmatically; ping/stats are literals).
pub fn encode_job(job: &JobRequest) -> String {
    let mut out = String::from("{\"op\":\"job\"");
    out.push_str(&format!(",\"id\":{}", json_escape(&job.id)));
    out.push_str(&format!(",\"kind\":{}", json_escape(job.kind.name())));
    out.push_str(&format!(",\"deck\":{}", json_escape(&job.deck)));
    match &job.kind {
        JobKind::Op => {}
        JobKind::DcSweep {
            source,
            start,
            stop,
            points,
        } => {
            out.push_str(&format!(
                ",\"params\":{{\"source\":{},\"start\":{start:e},\"stop\":{stop:e},\"points\":{points}}}",
                json_escape(source)
            ));
        }
        JobKind::Tran { t_stop, dt } => {
            out.push_str(&format!(
                ",\"params\":{{\"t_stop\":{t_stop:e},\"dt\":{dt:e}}}"
            ));
        }
    }
    if let Some(ms) = job.deadline_ms {
        out.push_str(&format!(",\"deadline_ms\":{ms}"));
    }
    if let Some(n) = job.newton_budget {
        out.push_str(&format!(",\"newton_budget\":{n}"));
    }
    if let Some(n) = job.timestep_budget {
        out.push_str(&format!(",\"timestep_budget\":{n}"));
    }
    if job.events {
        out.push_str(",\"events\":true");
    }
    out.push('}');
    out
}

/// Terminal status of a response line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Complete result.
    Ok,
    /// Budget tripped; `result` holds the completed prefix.
    Partial,
    /// The job ran and failed (lint deny, parse error, solver failure,
    /// or a caught panic).
    Error,
    /// Admission control refused the job.
    Shed,
}

impl Status {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Partial => "partial",
            Status::Error => "error",
            Status::Shed => "shed",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Status> {
        match s {
            "ok" => Some(Status::Ok),
            "partial" => Some(Status::Partial),
            "error" => Some(Status::Error),
            "shed" => Some(Status::Shed),
            _ => None,
        }
    }
}

/// Server-side response rendering. `result` and `error` bodies are
/// pre-rendered JSON fragments.
pub mod render {
    use super::{json_escape, ProtocolError};

    /// `ok` / `partial` terminal line.
    pub fn result(id: &str, status: &str, body: &str, cached: bool, elapsed_ms: u64) -> String {
        format!(
            "{{\"id\":{},\"status\":{},\"result\":{body},\"cached\":{cached},\"elapsed_ms\":{elapsed_ms}}}",
            json_escape(id),
            json_escape(status),
        )
    }

    /// `partial` terminal line: a budget tripped, `body` holds the
    /// completed prefix and `interruption` says which budget.
    pub fn partial(id: &str, body: &str, interruption: &str, elapsed_ms: u64) -> String {
        format!(
            "{{\"id\":{},\"status\":\"partial\",\"result\":{body},\"interruption\":{},\"cached\":false,\"elapsed_ms\":{elapsed_ms}}}",
            json_escape(id),
            json_escape(interruption),
        )
    }

    /// `error` terminal line for a job that ran and failed.
    pub fn job_error(id: &str, code: &str, message: &str) -> String {
        format!(
            "{{\"id\":{},\"status\":\"error\",\"error\":{{\"code\":{},\"message\":{}}}}}",
            json_escape(id),
            json_escape(code),
            json_escape(message),
        )
    }

    /// `shed` terminal line (admission refusal).
    pub fn shed(id: &str, reason: &str, depth: usize, estimated_wait_ms: u64) -> String {
        format!(
            "{{\"id\":{},\"status\":\"shed\",\"reason\":{},\"depth\":{depth},\"estimated_wait_ms\":{estimated_wait_ms}}}",
            json_escape(id),
            json_escape(reason),
        )
    }

    /// Protocol-error line for a malformed frame (no job id exists).
    pub fn protocol_error(err: &ProtocolError) -> String {
        format!(
            "{{\"status\":\"error\",\"error\":{{\"code\":{},\"message\":{}}}}}",
            json_escape(err.code()),
            json_escape(&err.to_string()),
        )
    }

    /// Event line streamed before a terminal response.
    pub fn event(id: &str, event_json: &str) -> String {
        format!("{{\"id\":{},\"event\":{event_json}}}", json_escape(id))
    }

    /// `pong` line.
    pub fn pong() -> String {
        "{\"status\":\"ok\",\"result\":\"pong\"}".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_round_trips_through_encode_decode() {
        let job = JobRequest {
            id: "j-1".to_string(),
            kind: JobKind::DcSweep {
                source: "v1".to_string(),
                start: 0.0,
                stop: 1.2,
                points: 5,
            },
            deck: "v1 in 0 1.2\nr1 in 0 10k\n.end\n".to_string(),
            deadline_ms: Some(250),
            newton_budget: Some(10_000),
            timestep_budget: None,
            events: true,
        };
        let line = encode_job(&job);
        match decode_request(&line, DEFAULT_MAX_DECK_BYTES).expect("decode") {
            RequestFrame::Job(decoded) => assert_eq!(*decoded, job),
            other => panic!("expected job, got {other:?}"),
        }
    }

    #[test]
    fn control_ops_decode() {
        assert_eq!(
            decode_request("{\"op\":\"ping\"}", 1024),
            Ok(RequestFrame::Ping)
        );
        assert_eq!(
            decode_request("{\"op\":\"stats\"}", 1024),
            Ok(RequestFrame::Stats)
        );
    }

    #[test]
    fn every_malformed_shape_gets_a_typed_code() {
        let cases: &[(&str, &str)] = &[
            ("not json at all", "invalid_json"),
            ("[1,2,3]", "not_an_object"),
            ("{\"op\":\"launch_missiles\"}", "unknown_op"),
            ("{\"id\":\"a\"}", "missing_field"),
            ("{\"id\":1,\"deck\":\"x\",\"kind\":\"op\"}", "bad_field"),
            ("{\"id\":\"a\",\"deck\":\"x\",\"kind\":\"psychic\"}", "unknown_kind"),
            (
                "{\"id\":\"a\",\"deck\":\"x\",\"kind\":\"tran\",\"params\":{\"t_stop\":-1,\"dt\":1}}",
                "bad_field",
            ),
            (
                "{\"id\":\"a\",\"deck\":\"x\",\"kind\":\"dc_sweep\",\"params\":{\"source\":\"v1\",\"start\":0,\"stop\":1,\"points\":0}}",
                "bad_field",
            ),
        ];
        for (line, code) in cases {
            let err = decode_request(line, 4096).expect_err(line);
            assert_eq!(err.code(), *code, "line: {line}, got {err}");
        }
    }

    #[test]
    fn oversized_deck_is_refused() {
        let line = format!(
            "{{\"id\":\"a\",\"kind\":\"op\",\"deck\":{}}}",
            json_escape(&"x".repeat(64))
        );
        let err = decode_request(&line, 32).expect_err("must refuse");
        assert_eq!(err.code(), "deck_too_large");
    }

    #[test]
    fn rendered_responses_parse_back() {
        for line in [
            render::result("j", "ok", "{\"kind\":\"op\"}", true, 3),
            render::job_error("j", "lint_deny", "ERC001: floating node"),
            render::shed("j", "queue_full", 64, 1200),
            render::protocol_error(&ProtocolError::NotAnObject),
            render::event("j", "{\"name\":\"remix.exec.job\"}"),
            render::pong(),
        ] {
            parse_json(&line).expect(&line);
        }
    }
}
