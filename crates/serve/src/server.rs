//! The service: accept loop, bounded connection handlers, admission-
//! controlled worker pool, single-flight cache, chaos injection.
//!
//! Threading model (all spawns live here; jobs still run through
//! `Supervisor::run`, so budgets, `catch_unwind`, and watchdogs are
//! re-armed per job exactly as everywhere else in the stack):
//!
//! ```text
//! accept thread ──▶ connection threads (≤ max_connections)
//!                        │  frame → decode → cache lookup
//!                        │  miss → AdmissionQueue::try_submit ── shed? ──▶ typed refusal
//!                        ▼
//!                   worker threads (workers) ── Supervisor::run ──▶ reply channel
//! ```
//!
//! Overload sheds at two doors: the accept path refuses connections
//! beyond `max_connections` with a `shed` line, and `try_submit`
//! refuses jobs when the queue is full or the declared deadline cannot
//! survive the EWMA-estimated wait. Nothing queues unboundedly; the
//! p99 of *accepted* jobs stays bounded because hopeless work is
//! refused at the door instead of timing out in line.

use crate::cache::{job_fingerprint, FlightGuard, Lookup, ResultCache};
use crate::chaos::{Chaos, ChaosConfig};
use crate::framing::{FrameLimits, FrameReader};
use crate::protocol::{
    decode_request, render, JobKind, JobRequest, RequestFrame, DEFAULT_MAX_DECK_BYTES,
    DEFAULT_MAX_LINE_BYTES,
};
use remix_analysis::{
    dc_operating_point, dc_sweep_partial, transient_partial, AnalysisError, OpOptions, TranOptions,
};
use remix_exec::{env_u64_or_warn, AdmissionQueue, RunBudget, Supervisor, SupervisorOptions};
use remix_lint::{lint_deck, lint_plan, LintConfig, LintReport, SimPlan};
use remix_telemetry::names;
use remix_telemetry::{FieldValue, MemorySink, MetricValue, Telemetry};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Server tunables. Every knob has a `REMIX_SERVE_*` environment
/// override read through the typed env layer (malformed values warn
/// and fall back, never silently zero).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Connection handlers; further connections shed at accept.
    pub max_connections: usize,
    /// Admission queue depth bound.
    pub queue_depth: usize,
    /// Request line byte cap.
    pub max_line_bytes: usize,
    /// Deck byte cap inside a job.
    pub max_deck_bytes: usize,
    /// A started frame must complete within this (ms).
    pub frame_deadline_ms: u64,
    /// Idle connections are closed after this (ms).
    pub idle_timeout_ms: u64,
    /// Deadline applied to jobs that declare none (ms).
    pub default_deadline_ms: u64,
    /// Clamp on any declared job deadline (ms).
    pub max_deadline_ms: u64,
    /// Result-cache capacity (rendered bodies).
    pub cache_capacity: usize,
    /// Persist the result cache here: loaded (fingerprint-checked) on
    /// startup, written crash-safely on graceful shutdown. `None`
    /// keeps the cache purely in-memory.
    pub cache_file: Option<std::path::PathBuf>,
    /// Deterministic fault schedule.
    pub chaos: ChaosConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_connections: 64,
            queue_depth: 32,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            max_deck_bytes: DEFAULT_MAX_DECK_BYTES,
            frame_deadline_ms: 5_000,
            idle_timeout_ms: 30_000,
            default_deadline_ms: 2_000,
            max_deadline_ms: 30_000,
            cache_capacity: 256,
            cache_file: None,
            chaos: ChaosConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Defaults with every `REMIX_SERVE_*` environment override
    /// applied. A malformed value emits a typed
    /// `remix.exec.env.malformed` warning and keeps the default.
    pub fn from_env() -> Self {
        let mut c = ServeConfig::default();
        let get = |var: &str, default: u64| env_u64_or_warn(var, Some(default)).unwrap_or(default);
        c.workers = get("REMIX_SERVE_WORKERS", c.workers as u64).max(1) as usize;
        c.max_connections = get("REMIX_SERVE_MAX_CONNS", c.max_connections as u64).max(1) as usize;
        c.queue_depth = get("REMIX_SERVE_QUEUE_DEPTH", c.queue_depth as u64).max(1) as usize;
        c.max_line_bytes =
            get("REMIX_SERVE_MAX_LINE_BYTES", c.max_line_bytes as u64).max(64) as usize;
        c.frame_deadline_ms = get("REMIX_SERVE_FRAME_DEADLINE_MS", c.frame_deadline_ms).max(10);
        c.default_deadline_ms =
            get("REMIX_SERVE_DEFAULT_DEADLINE_MS", c.default_deadline_ms).max(1);
        c.max_deadline_ms = get("REMIX_SERVE_MAX_DEADLINE_MS", c.max_deadline_ms).max(1);
        if let Some(path) = std::env::var_os("REMIX_SERVE_CACHE_FILE") {
            if !path.is_empty() {
                c.cache_file = Some(std::path::PathBuf::from(path));
            }
        }
        if let Ok(spec) = std::env::var("REMIX_SERVE_CHAOS") {
            match ChaosConfig::parse(&spec) {
                Ok(chaos) => c.chaos = chaos,
                Err(e) => eprintln!("warning: REMIX_SERVE_CHAOS ignored: {e}"),
            }
        }
        c
    }
}

/// What a job execution produced (before rendering).
enum ExecOutcome {
    /// Complete result body (cacheable).
    Complete(String),
    /// Budget-tripped prefix body plus which budget tripped.
    Partial(String, String),
    /// Typed failure.
    Failed { code: &'static str, message: String },
}

struct QueuedJob {
    job: JobRequest,
    guard: Option<FlightGuard>,
    reply: mpsc::Sender<WorkerReply>,
}

struct WorkerReply {
    event_lines: Vec<String>,
    terminal: String,
}

struct Shared {
    config: ServeConfig,
    queue: AdmissionQueue<QueuedJob>,
    cache: ResultCache,
    chaos: Chaos,
    stop: Arc<AtomicBool>,
    active_conns: AtomicUsize,
    telemetry: Telemetry,
}

/// A running server. Dropping without [`Server::shutdown`] leaks the
/// background threads until process exit; call `shutdown` in tests.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Binds and starts accept + worker threads.
    ///
    /// # Errors
    ///
    /// The bind error, when the address is unavailable.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let max_deadline = Duration::from_millis(config.max_deadline_ms);
        let shared = Arc::new(Shared {
            queue: AdmissionQueue::new(config.queue_depth),
            cache: ResultCache::new(config.cache_capacity, max_deadline),
            chaos: Chaos::new(config.chaos.clone()),
            stop: Arc::new(AtomicBool::new(false)),
            active_conns: AtomicUsize::new(0),
            telemetry: Telemetry::new(),
            config,
        });
        load_cache_file(&shared);
        let mut workers = Vec::new();
        for i in 0..shared.config.workers {
            let shared2 = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared2))?,
            );
        }
        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let shared2 = Arc::clone(&shared);
        let conns2 = Arc::clone(&conns);
        let accept = std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &shared2, &conns2))?;
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            workers,
            conns,
        })
    }

    /// The bound address (real port, even when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counter snapshot of the server's own registry.
    pub fn snapshot(&self) -> remix_telemetry::MetricsSnapshot {
        self.shared.telemetry.snapshot()
    }

    /// Graceful stop: refuse new work, drain, join every thread, and
    /// (when configured) persist the result cache crash-safely.
    pub fn shutdown(mut self) -> remix_telemetry::MetricsSnapshot {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.queue.close();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let handles: Vec<_> = {
            let mut conns = self.conns.lock().unwrap_or_else(PoisonError::into_inner);
            conns.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        save_cache_file(&self.shared);
        self.shared.telemetry.snapshot()
    }
}

/// Seeds the result cache from [`ServeConfig::cache_file`] on startup.
/// A missing file is a cold start; a malformed, differently-versioned,
/// or foreign-fingerprint snapshot is rejected wholesale (counted and
/// logged on `remix.serve.cache.persist.rejected`) — a stale body
/// replayed as a hit would be silently wrong.
fn load_cache_file(shared: &Arc<Shared>) {
    let Some(path) = shared.config.cache_file.as_deref() else {
        return;
    };
    let _guard = shared.telemetry.arm();
    let Ok(text) = std::fs::read_to_string(path) else {
        return; // cold start: nothing persisted yet
    };
    match shared
        .cache
        .load_persist(&text, &crate::cache::persist_fingerprint())
    {
        Ok(n) => {
            remix_telemetry::counter_add(names::SERVE_CACHE_PERSIST_LOADED, n as u64);
            remix_telemetry::event(
                names::SERVE_CACHE_PERSIST_LOADED,
                vec![
                    ("entries", FieldValue::from(n as u64)),
                    ("path", FieldValue::from(path.display().to_string())),
                ],
            );
        }
        Err(why) => {
            remix_telemetry::counter_add(names::SERVE_CACHE_PERSIST_REJECTED, 1);
            remix_telemetry::event(
                names::SERVE_CACHE_PERSIST_REJECTED,
                vec![
                    ("reason", FieldValue::from(why.clone())),
                    ("path", FieldValue::from(path.display().to_string())),
                ],
            );
            eprintln!("serve: persisted cache {} rejected: {why}", path.display());
        }
    }
}

/// Writes the result cache to [`ServeConfig::cache_file`] through
/// `remix_exec::atomic_write` (tmp + rename), so a crash mid-shutdown
/// leaves the previous snapshot intact instead of a torn one.
fn save_cache_file(shared: &Arc<Shared>) {
    let Some(path) = shared.config.cache_file.as_deref() else {
        return;
    };
    let _guard = shared.telemetry.arm();
    let doc = shared
        .cache
        .render_persist(&crate::cache::persist_fingerprint());
    match remix_exec::atomic_write(path, &doc) {
        Ok(()) => {
            remix_telemetry::counter_add(
                names::SERVE_CACHE_PERSIST_SAVED,
                shared.cache.len() as u64,
            );
            remix_telemetry::event(
                names::SERVE_CACHE_PERSIST_SAVED,
                vec![
                    ("entries", FieldValue::from(shared.cache.len() as u64)),
                    ("path", FieldValue::from(path.display().to_string())),
                ],
            );
        }
        Err(e) => eprintln!("serve: cannot persist cache {}: {e}", path.display()),
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    let telemetry_guard = shared.telemetry.arm();
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        remix_telemetry::counter_add(names::SERVE_CONNECTIONS, 1);
        if shared.chaos.drop_connection() {
            drop(stream); // injected fault: connection vanishes unserved
            continue;
        }
        if shared.active_conns.load(Ordering::Acquire) >= shared.config.max_connections {
            remix_telemetry::counter_add(names::SERVE_SHEDS, 1);
            let mut s = stream;
            let _ = s.write_all(format!("{}\n", render::shed("", "connections", 0, 0)).as_bytes());
            continue;
        }
        shared.active_conns.fetch_add(1, Ordering::AcqRel);
        let shared2 = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("serve-conn".to_string())
            .spawn(move || {
                let _guard = shared2.telemetry.arm();
                connection_loop(stream, &shared2);
                shared2.active_conns.fetch_sub(1, Ordering::AcqRel);
            });
        match spawned {
            Ok(handle) => {
                let mut conns = conns.lock().unwrap_or_else(PoisonError::into_inner);
                // Reap finished handlers so the vec stays bounded.
                conns.retain(|h| !h.is_finished());
                conns.push(handle);
            }
            Err(_) => {
                shared.active_conns.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }
    drop(telemetry_guard);
}

/// Writes one response line; under chaos, tears the frame mid-write.
/// Returns `false` when the connection should close.
fn write_line(stream: &mut TcpStream, shared: &Shared, line: &str) -> bool {
    if shared.chaos.tear_frame() {
        let half = line.len() / 2;
        let _ = stream.write_all(&line.as_bytes()[..half]);
        let _ = stream.flush();
        return false; // injected fault: torn frame, drop the peer
    }
    // One write per frame: the line and its newline never straddle a
    // flush boundary, so a reader's first recv sees a whole frame.
    let mut framed = String::with_capacity(line.len() + 1);
    framed.push_str(line);
    framed.push('\n');
    stream
        .write_all(framed.as_bytes())
        .and_then(|()| stream.flush())
        .is_ok()
}

fn connection_loop(mut stream: TcpStream, shared: &Arc<Shared>) {
    remix_telemetry::counter_add(names::SERVE_CONN, 1);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(shared.config.frame_deadline_ms)));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let limits = FrameLimits {
        max_line_bytes: shared.config.max_line_bytes,
        frame_deadline: Duration::from_millis(shared.config.frame_deadline_ms),
        idle_timeout: Duration::from_millis(shared.config.idle_timeout_ms),
    };
    // The shared stop flag reaches straight into the reader, so
    // shutdown unblocks a handler parked mid-poll.
    let mut reader = FrameReader::new(read_half, limits).with_stop(Arc::clone(&shared.stop));
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        if let Some(delay) = shared.chaos.read_delay() {
            std::thread::sleep(delay); // injected fault: slow reader
        }
        let frame = match reader.read_frame() {
            Ok(Some(frame)) => frame,
            Ok(None) => return,
            Err(e) => {
                remix_telemetry::counter_add(names::SERVE_PROTOCOL_ERRORS, 1);
                if let Some(pe) = e.to_protocol() {
                    let _ = write_line(&mut stream, shared, &render::protocol_error(&pe));
                }
                return;
            }
        };
        remix_telemetry::counter_add(names::SERVE_FRAMES, 1);
        match decode_request(&frame, shared.config.max_deck_bytes) {
            Err(pe) => {
                remix_telemetry::counter_add(names::SERVE_PROTOCOL_ERRORS, 1);
                // The frame was well-delimited: answer and keep the
                // connection — one malformed request is not a torn peer.
                if !write_line(&mut stream, shared, &render::protocol_error(&pe)) {
                    return;
                }
            }
            Ok(RequestFrame::Ping) => {
                if !write_line(&mut stream, shared, &render::pong()) {
                    return;
                }
            }
            Ok(RequestFrame::Stats) => {
                if !write_line(&mut stream, shared, &render_stats(shared)) {
                    return;
                }
            }
            Ok(RequestFrame::Job(job)) => {
                if !handle_job(&mut stream, shared, *job) {
                    return;
                }
            }
        }
    }
}

fn render_stats(shared: &Shared) -> String {
    let snapshot = shared.telemetry.snapshot();
    let mut counters = String::new();
    for m in &snapshot.metrics {
        if let MetricValue::Counter(v) = m.value {
            if !counters.is_empty() {
                counters.push(',');
            }
            counters.push_str(&format!("{}:{v}", crate::protocol::json_escape(&m.name)));
        }
    }
    format!(
        "{{\"status\":\"ok\",\"result\":{{\"counters\":{{{counters}}},\"cache_entries\":{},\"queue_depth\":{}}}}}",
        shared.cache.len(),
        shared.queue.depth(),
    )
}

/// Full job path on the connection thread: cache, admission, waiting
/// on the worker, streaming events, writing the terminal line.
/// Returns `false` when the connection should close.
fn handle_job(stream: &mut TcpStream, shared: &Arc<Shared>, job: JobRequest) -> bool {
    let started = Instant::now();
    let elapsed_ms = |s: Instant| s.elapsed().as_millis() as u64;
    let fingerprint = job_fingerprint(&job);
    let guard = match shared.cache.lookup(fingerprint) {
        Lookup::Hit(body) | Lookup::Joined(body) => {
            remix_telemetry::counter_add(names::SERVE_JOBS_OK, 1);
            return write_line(
                stream,
                shared,
                &render::result(&job.id, "ok", &body, true, elapsed_ms(started)),
            );
        }
        Lookup::Lead(guard) => Some(guard),
        Lookup::JoinFailed => None,
    };
    let deadline_ms = job
        .deadline_ms
        .unwrap_or(shared.config.default_deadline_ms)
        .min(shared.config.max_deadline_ms);
    let (tx, rx) = mpsc::channel();
    let id = job.id.clone();
    let queued = QueuedJob {
        job,
        guard,
        reply: tx,
    };
    match shared.queue.try_submit(queued, Some(deadline_ms)) {
        Ok(depth) => {
            remix_telemetry::gauge_set(names::SERVE_QUEUE_DEPTH, depth as f64);
        }
        Err(shed) => {
            remix_telemetry::counter_add(names::SERVE_SHEDS, 1);
            let line = render::shed(
                &id,
                shed.reason(),
                shed.depth(),
                shared.queue.estimated_wait_ms(),
            );
            return write_line(stream, shared, &line);
        }
    }
    // Wait for the worker; poll the stop flag so shutdown can't wedge
    // a handler on a reply that will never come.
    let wait_cap = Duration::from_millis(deadline_ms.saturating_mul(4).max(10_000));
    let waiting_since = Instant::now();
    let reply = loop {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(reply) => break reply,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if waiting_since.elapsed() > wait_cap {
                    remix_telemetry::counter_add(names::SERVE_JOBS_FAILED, 1);
                    let line = render::job_error(&id, "internal", "worker reply timed out");
                    return write_line(stream, shared, &line);
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Queue closed mid-flight (shutdown): typed refusal.
                remix_telemetry::counter_add(names::SERVE_SHEDS, 1);
                let line = render::shed(&id, "closed", 0, 0);
                return write_line(stream, shared, &line);
            }
        }
    };
    for event_line in &reply.event_lines {
        if !write_line(stream, shared, event_line) {
            return false;
        }
    }
    write_line(stream, shared, &reply.terminal)
}

fn worker_loop(shared: &Arc<Shared>) {
    let _guard = shared.telemetry.arm();
    loop {
        let Some(item) = shared.queue.pop_timeout(Duration::from_millis(50)) else {
            if shared.stop.load(Ordering::Acquire) || shared.queue.is_closed() {
                return;
            }
            continue;
        };
        remix_telemetry::gauge_set(names::SERVE_QUEUE_DEPTH, shared.queue.depth() as f64);
        let started = Instant::now();
        run_job(shared, item);
        shared
            .queue
            .record_service_ms(started.elapsed().as_secs_f64() * 1e3);
    }
}

/// Executes one queued job under full supervision and replies.
fn run_job(shared: &Arc<Shared>, item: QueuedJob) {
    let QueuedJob { job, guard, reply } = item;
    let started = Instant::now();
    let deadline_ms = job
        .deadline_ms
        .unwrap_or(shared.config.default_deadline_ms)
        .min(shared.config.max_deadline_ms);
    let mut budget = RunBudget::unlimited().with_deadline(Duration::from_millis(deadline_ms));
    if let Some(n) = job.newton_budget {
        budget = budget.with_newton_iterations(n);
    }
    if let Some(n) = job.timestep_budget {
        budget = budget.with_timesteps(n);
    }
    let supervisor = Supervisor::new(SupervisorOptions {
        budget,
        max_retries: 0, // retries are the client's policy, not the server's
        ..SupervisorOptions::default()
    });
    let events_sink = job.events.then(|| Arc::new(MemorySink::new()));
    let job2 = job.clone();
    let sink2 = events_sink.clone();
    let shared2 = Arc::clone(shared);
    let report = supervisor.run(&format!("serve:{}", job.id), move |_token| {
        let nested = sink2
            .as_ref()
            .map(|s| Telemetry::with_sink(Arc::clone(s) as Arc<dyn remix_telemetry::Sink>));
        let _nested_guard = nested.as_ref().map(Telemetry::arm);
        if shared2.chaos.panic_job() {
            // audit: allow(AUD002): deterministic chaos injection — the
            // supervisor's catch_unwind containment is the subject under test.
            panic!("chaos: injected worker panic");
        }
        let outcome = execute(&job2);
        if nested.is_some() {
            remix_telemetry::event(
                names::SERVE_JOB,
                vec![
                    ("job", FieldValue::from(job2.id.clone())),
                    ("kind", FieldValue::from(job2.kind.name())),
                    (
                        "status",
                        FieldValue::from(match &outcome {
                            ExecOutcome::Complete(_) => "ok",
                            ExecOutcome::Partial(..) => "partial",
                            ExecOutcome::Failed { .. } => "error",
                        }),
                    ),
                ],
            );
        }
        Ok::<ExecOutcome, remix_exec::JobError>(outcome)
    });
    let event_lines = events_sink
        .map(|sink| {
            sink.events()
                .iter()
                .map(|e| render::event(&job.id, &e.render_json()))
                .collect()
        })
        .unwrap_or_default();
    let elapsed = started.elapsed().as_millis() as u64;
    let terminal = match report.outcome {
        remix_exec::JobOutcome::Done(ExecOutcome::Complete(body)) => {
            remix_telemetry::counter_add(names::SERVE_JOBS_OK, 1);
            if let Some(g) = guard {
                shared.cache.publish(g, body.clone());
            }
            render::result(&job.id, "ok", &body, false, elapsed)
        }
        remix_exec::JobOutcome::Done(ExecOutcome::Partial(body, interruption)) => {
            remix_telemetry::counter_add(names::SERVE_JOBS_PARTIAL, 1);
            if let Some(g) = guard {
                shared.cache.abandon(g); // a prefix must never poison the cache
            }
            render::partial(&job.id, &body, &interruption, elapsed)
        }
        remix_exec::JobOutcome::Done(ExecOutcome::Failed { code, message }) => {
            remix_telemetry::counter_add(names::SERVE_JOBS_FAILED, 1);
            if let Some(g) = guard {
                shared.cache.abandon(g);
            }
            render::job_error(&job.id, code, &message)
        }
        remix_exec::JobOutcome::Panicked(message) => {
            remix_telemetry::counter_add(names::SERVE_JOBS_FAILED, 1);
            if let Some(g) = guard {
                shared.cache.abandon(g);
            }
            render::job_error(&job.id, "panic", &message)
        }
        remix_exec::JobOutcome::Failed(message) => {
            remix_telemetry::counter_add(names::SERVE_JOBS_FAILED, 1);
            if let Some(g) = guard {
                shared.cache.abandon(g);
            }
            render::job_error(&job.id, "internal", &message)
        }
    };
    let _ = reply.send(WorkerReply {
        event_lines,
        terminal,
    });
}

fn lint_deny_summary(report: &LintReport) -> String {
    let denies: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == remix_lint::Severity::Deny)
        .map(|d| format!("[{}] {}", d.rule.code(), d.message))
        .collect();
    format!("{} deny finding(s): {}", denies.len(), denies.join("; "))
}

/// Parses, lint-gates, and runs one job on the worker thread (budget
/// already armed by the supervisor).
fn execute(job: &JobRequest) -> ExecOutcome {
    // The string parser refuses `.include`: a deck that arrived over
    // the socket can never cause a server filesystem read.
    let deck = match remix_circuit::parse_spice(&job.deck) {
        Ok(deck) => deck,
        Err(e) => {
            return ExecOutcome::Failed {
                code: "parse",
                message: e.to_string(),
            }
        }
    };
    let config = LintConfig::default();
    let report = lint_deck(&deck, &config);
    if report.deny_count() > 0 {
        return ExecOutcome::Failed {
            code: "lint_deny",
            message: lint_deny_summary(&report),
        };
    }
    if let JobKind::Tran { t_stop, dt } = job.kind {
        let plan = SimPlan::new(&job.id)
            .with_timestep(dt)
            .with_duration(t_stop);
        let plan_report = lint_plan(&plan, &config);
        if plan_report.deny_count() > 0 {
            return ExecOutcome::Failed {
                code: "lint_deny",
                message: lint_deny_summary(&plan_report),
            };
        }
    }
    let circuit = &deck.circuit;
    let result = match &job.kind {
        JobKind::Op => dc_operating_point(circuit, &OpOptions::default()).map(|op| {
            let (v_min, v_max) = op
                .solution
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                });
            let body = format!(
                "{{\"kind\":\"op\",\"unknowns\":{},\"v_min\":{v_min:e},\"v_max\":{v_max:e}}}",
                op.solution.len(),
            );
            ExecOutcome::Complete(body)
        }),
        JobKind::DcSweep {
            source,
            start,
            stop,
            points,
        } => {
            let n = *points;
            let values: Vec<f64> = (0..n)
                .map(|i| {
                    if n == 1 {
                        *start
                    } else {
                        start + (stop - start) * i as f64 / (n - 1) as f64
                    }
                })
                .collect();
            dc_sweep_partial(circuit, source, &values, &OpOptions::default()).map(|partial| {
                let body = format!(
                    "{{\"kind\":\"dc_sweep\",\"requested\":{n},\"completed\":{}}}",
                    partial.value.points.len(),
                );
                match partial.interruption {
                    None => ExecOutcome::Complete(body),
                    Some(i) => ExecOutcome::Partial(body, i.interruption.to_string()),
                }
            })
        }
        JobKind::Tran { t_stop, dt } => transient_partial(circuit, &TranOptions::new(*t_stop, *dt))
            .map(|partial| {
                let t_end = partial.value.times.last().copied().unwrap_or(0.0);
                let body = format!(
                    "{{\"kind\":\"tran\",\"steps\":{},\"t_end\":{t_end:e}}}",
                    partial.value.times.len(),
                );
                match partial.interruption {
                    None => ExecOutcome::Complete(body),
                    Some(i) => ExecOutcome::Partial(body, i.interruption.to_string()),
                }
            }),
    };
    match result {
        Ok(outcome) => outcome,
        Err(AnalysisError::Lint(report)) => ExecOutcome::Failed {
            code: "lint_deny",
            message: lint_deny_summary(&report),
        },
        Err(AnalysisError::BudgetExceeded { interruption, .. }) => ExecOutcome::Failed {
            code: "budget",
            message: interruption.to_string(),
        },
        Err(e) => ExecOutcome::Failed {
            code: "analysis",
            message: format!("{e:?}"),
        },
    }
}
