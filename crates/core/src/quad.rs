//! The switching (LO) quad — four NMOS devices shared by both modes.
//!
//! In passive mode the quad commutates the TCA's output current ("current
//! commutating passive mixer ... four switching (LO) MOS with resistive
//! degeneration"); in active mode it commutates the Gm devices' drain
//! current (double-balanced Gilbert cell). Mixing happens here in both
//! cases; only what drives the sources and what loads the drains changes.

use crate::config::MixerConfig;
use remix_circuit::{Circuit, ElementId, MosRegion, Node};

/// Handles to the four quad devices.
///
/// Connection pattern (double balanced):
///
/// ```text
///   out_p ── M1(d)      M4(d) ── out_p
///             |g=lo_p    |g=lo_n
///   in_p ─── M1(s)      M4(s) ── in_n
///   out_n ── M2(d)      M3(d) ── out_n
///             |g=lo_n    |g=lo_p
///   in_p ─── M2(s)      M3(s) ── in_n
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchQuad {
    /// in_p → out_p on LO+.
    pub m1: ElementId,
    /// in_p → out_n on LO−.
    pub m2: ElementId,
    /// in_n → out_n on LO+.
    pub m3: ElementId,
    /// in_n → out_p on LO−.
    pub m4: ElementId,
}

/// Adds the quad to a circuit.
#[allow(clippy::too_many_arguments)]
pub fn build_quad(
    ckt: &mut Circuit,
    prefix: &str,
    in_p: Node,
    in_n: Node,
    lo_p: Node,
    lo_n: Node,
    out_p: Node,
    out_n: Node,
    cfg: &MixerConfig,
) -> SwitchQuad {
    let model = cfg.nmos.clone();
    let mk = |ckt: &mut Circuit, name: String, d: Node, g: Node, s: Node| {
        ckt.add_mosfet(
            &name,
            model.clone(),
            cfg.quad_w,
            cfg.quad_l,
            d,
            g,
            s,
            Circuit::gnd(),
        )
    };
    SwitchQuad {
        m1: mk(ckt, format!("{prefix}_m1"), out_p, lo_p, in_p),
        m2: mk(ckt, format!("{prefix}_m2"), out_n, lo_n, in_p),
        m3: mk(ckt, format!("{prefix}_m3"), out_n, lo_p, in_n),
        m4: mk(ckt, format!("{prefix}_m4"), out_p, lo_n, in_n),
    }
}

/// On-resistance of one quad switch when its gate sits at the LO high
/// level and the channel passes a signal near `v_channel`.
pub fn switch_on_resistance(cfg: &MixerConfig, v_channel: f64) -> f64 {
    let model = &cfg.nmos;
    let v_gate = cfg.lo_common + cfg.lo_amplitude;
    // Evaluate at a tiny vds to read the triode conductance.
    let dv = 1e-3;
    let ev = model.evaluate(v_channel + dv, v_gate, v_channel, 0.0);
    let scaled = ev.id * (cfg.quad_w / cfg.quad_l);
    if scaled <= 0.0 {
        f64::INFINITY
    } else {
        dv / scaled
    }
}

/// `true` if the switch is hard-off at the LO low level for a channel
/// near `v_channel` (drain current below `i_off`).
pub fn switch_is_off(cfg: &MixerConfig, v_channel: f64, i_off: f64) -> bool {
    let model = &cfg.nmos;
    let v_gate = cfg.lo_common - cfg.lo_amplitude;
    let ev = model.evaluate(v_channel + 0.1, v_gate, v_channel, 0.0);
    (ev.id * cfg.quad_w / cfg.quad_l).abs() < i_off
}

/// Verifies the quad devices operate as switches (triode when on) at the
/// configured LO drive; returns the on-resistance.
pub fn validate_switch_operation(cfg: &MixerConfig, v_channel: f64) -> Result<f64, String> {
    let model = &cfg.nmos;
    let v_on = cfg.lo_common + cfg.lo_amplitude;
    let ev = model.evaluate(v_channel + 1e-3, v_on, v_channel, 0.0);
    if ev.region != MosRegion::Triode {
        return Err(format!(
            "switch not in triode when on (region {:?}, vgate {v_on})",
            ev.region
        ));
    }
    if !switch_is_off(cfg, v_channel, 1e-6) {
        return Err("switch conducts at LO low level".to_string());
    }
    Ok(switch_on_resistance(cfg, v_channel))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_builds_four_devices() {
        let mut c = Circuit::new();
        let nodes: Vec<Node> = ["ip", "in", "lp", "ln", "op", "on"]
            .iter()
            .map(|n| c.node(n))
            .collect();
        let q = build_quad(
            &mut c,
            "quad",
            nodes[0],
            nodes[1],
            nodes[2],
            nodes[3],
            nodes[4],
            nodes[5],
            &MixerConfig::default(),
        );
        assert_eq!(c.element_count(), 4);
        assert!(c.find_element("quad_m1") == Some(q.m1));
        assert!(c.find_element("quad_m4") == Some(q.m4));
    }

    #[test]
    fn on_resistance_tens_of_ohms() {
        // 12 µm / 65 nm switch with 1.2 V gate, 0.6 V channel: tens of Ω.
        let r = switch_on_resistance(&MixerConfig::default(), 0.6);
        assert!(r > 5.0 && r < 200.0, "ron = {r}");
    }

    #[test]
    fn off_state_blocks() {
        assert!(switch_is_off(&MixerConfig::default(), 0.6, 1e-6));
    }

    #[test]
    fn switch_validation_passes_default() {
        let r = validate_switch_operation(&MixerConfig::default(), 0.6).unwrap();
        assert!(r.is_finite());
    }

    #[test]
    fn weak_lo_fails_validation() {
        let cfg = MixerConfig {
            lo_amplitude: 0.05,
            lo_common: 0.3,
            ..MixerConfig::default()
        };
        assert!(validate_switch_operation(&cfg, 0.6).is_err());
    }

    #[test]
    fn wider_switch_lower_ron() {
        let base = MixerConfig::default();
        let wide = MixerConfig {
            quad_w: 2.0 * base.quad_w,
            ..base.clone()
        };
        assert!(switch_on_resistance(&wide, 0.6) < switch_on_resistance(&base, 0.6));
    }
}
