//! One-call evaluation of every metric the paper reports.
//!
//! [`MixerEvaluator`] owns one [`ExtractedParams`] (the expensive
//! transistor-level extraction) and both mode models, and exposes the
//! sweeps behind each figure:
//!
//! * Fig. 8 — [`gain_vs_rf`](MixerEvaluator::gain_vs_rf);
//! * Fig. 9 — [`nf_vs_if`](MixerEvaluator::nf_vs_if) and
//!   [`gain_vs_if`](MixerEvaluator::gain_vs_if);
//! * Fig. 10 — [`iip3_two_tone`](MixerEvaluator::iip3_two_tone), a
//!   *measured* swept two-tone test on the behavioral chain (not just the
//!   analytic formula), extracted exactly like the lab procedure;
//! * Table I — [`table1_row`](MixerEvaluator::table1_row);
//! * a transistor-level transient spot check of conversion gain
//!   ([`circuit_conv_gain_spot`](MixerEvaluator::circuit_conv_gain_spot))
//!   that validates the behavioral model against the full netlist.

use crate::config::{MixerConfig, MixerMode};
use crate::mixer::{LoDrive, ReconfigurableMixer, RfDrive};
use crate::model::{ExtractedParams, MixerModel};
use remix_analysis::{transient, AnalysisError, TranOptions};
use remix_dsp::tone::CoherentPlan;
use remix_dsp::units::{dbm_to_vpeak, vpeak_to_dbm, Z0};
use remix_rfkit::convgain::band_edges_3db;
use remix_rfkit::ip3::{extract_ip3, Ip3Result, Ip3Sweep};
use remix_rfkit::p1db::extract_p1db;
use remix_rfkit::specs::{MixerSpecRow, SpecValue};
use remix_rfkit::twotone::TwoTonePlan;

/// Evaluator holding the extraction and both mode models.
#[derive(Debug, Clone)]
pub struct MixerEvaluator {
    active: MixerModel,
    passive: MixerModel,
}

impl MixerEvaluator {
    /// Runs the extraction once and builds both models.
    ///
    /// # Errors
    ///
    /// Propagates extraction errors.
    pub fn new(cfg: &MixerConfig) -> Result<Self, AnalysisError> {
        let params = ExtractedParams::extract(cfg)?;
        Ok(MixerEvaluator {
            active: MixerModel::new(cfg.clone(), MixerMode::Active, params.clone()),
            passive: MixerModel::new(cfg.clone(), MixerMode::Passive, params),
        })
    }

    /// The model for a mode.
    pub fn model(&self, mode: MixerMode) -> &MixerModel {
        match mode {
            MixerMode::Active => &self.active,
            MixerMode::Passive => &self.passive,
        }
    }

    /// Fig. 8: conversion gain (dB) vs RF frequency at fixed IF.
    pub fn gain_vs_rf(&self, mode: MixerMode, f_rf: &[f64], f_if: f64) -> Vec<(f64, f64)> {
        let m = self.model(mode);
        f_rf.iter().map(|&f| (f, m.conv_gain_db(f, f_if))).collect()
    }

    /// Fig. 9: DSB NF (dB) vs IF frequency (RF near 2.45 GHz).
    pub fn nf_vs_if(&self, mode: MixerMode, f_if: &[f64]) -> Vec<(f64, f64)> {
        let m = self.model(mode);
        f_if.iter().map(|&f| (f, m.nf_db(f))).collect()
    }

    /// Fig. 9 companion: conversion gain (dB) vs IF at fixed RF.
    pub fn gain_vs_if(&self, mode: MixerMode, f_if: &[f64], f_rf: f64) -> Vec<(f64, f64)> {
        let m = self.model(mode);
        f_if.iter().map(|&f| (f, m.conv_gain_db(f_rf, f))).collect()
    }

    /// −3 dB band edges of the Fig. 8 curve, Hz.
    pub fn band_edges(&self, mode: MixerMode) -> (Option<f64>, Option<f64>) {
        let freqs: Vec<f64> = (1..=320).map(|k| k as f64 * 50e6).collect();
        let gains: Vec<f64> = freqs
            .iter()
            .map(|&f| self.model(mode).conv_gain_db(f, 5e6))
            .collect();
        band_edges_3db(&freqs, &gains)
    }

    /// Fig. 10: swept two-tone measurement on the behavioral chain.
    ///
    /// Tones at `LO + 5 MHz` and `LO + 6 MHz` (products read at 4/5/6/7
    /// MHz), LO at 2.4 GHz as in the paper. Returns the sweep and the
    /// extracted intercept.
    ///
    /// # Errors
    ///
    /// Returns the extraction error if the sweep is not in the
    /// small-signal regime.
    pub fn iip3_two_tone(
        &self,
        mode: MixerMode,
        pin_dbm: &[f64],
    ) -> Result<(Ip3Sweep, Ip3Result), remix_rfkit::ip3::Ip3Error> {
        let m = self.model(mode);
        let f_lo = 2.4e9;
        let plan = TwoTonePlan::new(5e6, 6e6, 1 << 15, 0.5e6).expect("two-tone plan"); // audit: allow(AUD001): constant paper plan parameters; validated by a unit test
        let fs = plan.fs();
        let n = plan.n();
        let mut sweep = Ip3Sweep::default();
        for &pin in pin_dbm {
            let a = dbm_to_vpeak(pin, Z0);
            // Two RF tones at LO+5M, LO+6M; record with settling prefix.
            let total = 2 * n;
            let mut x = Vec::with_capacity(total);
            for i in 0..total {
                let t = i as f64 / fs;
                let w = 2.0 * std::f64::consts::PI;
                x.push(a * ((w * (f_lo + 5e6) * t).cos() + (w * (f_lo + 6e6) * t).cos()));
            }
            let y = m.process(&x, fs, f_lo);
            let r = plan.readout(&y);
            sweep.push(
                pin,
                vpeak_to_dbm(r.fund().max(1e-30), Z0),
                vpeak_to_dbm(r.im3().max(1e-30), Z0),
            );
        }
        let result = extract_ip3(&sweep)?;
        Ok((sweep, result))
    }

    /// Measured 1 dB compression: single-tone power sweep on the chain
    /// (with the output-swing clamp active).
    ///
    /// # Errors
    ///
    /// Returns the extraction error when no compression is observed.
    pub fn p1db_measured(
        &self,
        mode: MixerMode,
        pin_dbm: &[f64],
    ) -> Result<f64, remix_rfkit::p1db::P1dbError> {
        let m = self.model(mode);
        let f_lo = 2.4e9;
        let f_if = 5e6;
        let plan = CoherentPlan::new(&[f_if], 1 << 15, 0.5e6).expect("plan"); // audit: allow(AUD001): constant paper plan parameters; validated by a unit test
        let mut gains = Vec::with_capacity(pin_dbm.len());
        for &pin in pin_dbm {
            let a = dbm_to_vpeak(pin, Z0);
            let x = remix_dsp::signal::tone(a, f_lo + f_if, 0.0, plan.fs, plan.n * 2);
            let y = m.process(&x, plan.fs, f_lo);
            let settled = &y[plan.n..];
            let a_if =
                remix_dsp::tone::goertzel_amplitude(settled, plan.bins[0], plan.n).max(1e-30);
            gains.push(20.0 * (a_if / a).log10());
        }
        extract_p1db(pin_dbm, &gains)
    }

    /// Full transistor-level transient spot check of conversion gain (dB)
    /// at `f_lo + f_if → f_if`. Slow (seconds) — used to validate the
    /// behavioral model, not for sweeps.
    ///
    /// # Errors
    ///
    /// Propagates transient-analysis errors.
    pub fn circuit_conv_gain_spot(
        &self,
        mode: MixerMode,
        f_lo: f64,
        f_if: f64,
    ) -> Result<f64, AnalysisError> {
        let m = self.model(mode);
        let mixer = ReconfigurableMixer::new(m.config().clone());
        let a_in = 2e-3; // small signal, well above solver noise
        let (ckt, nodes) = mixer.build(
            mode,
            &RfDrive::Tone {
                freq: f_lo + f_if,
                amplitude: a_in,
            },
            &LoDrive::sine(f_lo),
        );
        // One IF period of coherent record after one period of settling.
        let n = 8192usize;
        let t_if = 1.0 / f_if;
        let h = t_if / n as f64;
        let mut opts = TranOptions::new(2.0 * t_if, h);
        opts.record_start = t_if;
        let res = transient(&ckt, &opts)?;
        let (out_p, out_n) = nodes.if_out(mode);
        let wave = res.differential_waveform(out_p, out_n);
        let seg = &wave[wave.len() - n..];
        let a_if = remix_dsp::tone::goertzel_amplitude(seg, (f_if * n as f64 * h) as usize, n);
        Ok(20.0 * (a_if / a_in).log10())
    }

    /// Differential input reflection S11 (dB) of the RF port vs
    /// frequency, measured on the full netlist: the port impedance seen
    /// past the 50 Ω sources (coupling caps, termination, TCA gates).
    ///
    /// # Errors
    ///
    /// Propagates analysis errors.
    pub fn input_match_s11(
        &self,
        mode: MixerMode,
        freqs: &[f64],
    ) -> Result<Vec<(f64, f64)>, AnalysisError> {
        use remix_analysis::{ac_sweep, dc_operating_point, OpOptions};
        let mixer = ReconfigurableMixer::new(self.model(mode).config().clone());
        let (ckt, nodes) = mixer.build(mode, &RfDrive::Ac, &LoDrive::held(2.4e9));
        let op = dc_operating_point(&ckt, &OpOptions::default())?;
        let ac = ac_sweep(&ckt, &op, freqs)?;
        let pre_p = ckt.find_node("rfc_p").expect("pre node"); // audit: allow(AUD001): the generated mixer netlist always has the rfc_p balun node
        let pre_n = ckt.find_node("rfc_n").expect("pre node"); // audit: allow(AUD001): the generated mixer netlist always has the rfc_n balun node
        let rs = self.model(mode).config().rs;
        let z0_diff = 2.0 * rs;
        Ok(freqs
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                // Differential drive is ±0.5 V (1 V total EMF); current
                // through each 50 Ω source leg gives Zin looking past it.
                let v_emf = ac.voltage_diff(i, nodes.rf_emf_p, nodes.rf_emf_n);
                let v_pre = ac.voltage_diff(i, pre_p, pre_n);
                let i_in = (v_emf - v_pre) / (2.0 * rs);
                let zin = v_pre / i_in;
                let gamma = (zin - z0_diff) / (zin + z0_diff);
                (f, 20.0 * gamma.abs().log10())
            })
            .collect())
    }

    /// The paper's active-mode gain tuning: "The Gm of MOS Mn1 and Mn2
    /// can be changed by changing the value of bias voltage, thus varying
    /// the gain of mixer." Sweeps the Gm gate bias and returns
    /// `(bias_v, conv_gain_db)` at (2.45 GHz, 5 MHz).
    ///
    /// # Errors
    ///
    /// Propagates extraction errors at any bias point.
    pub fn active_gain_vs_bias(&self, biases: &[f64]) -> Result<Vec<(f64, f64)>, AnalysisError> {
        let base = self.model(MixerMode::Active);
        let mut out = Vec::with_capacity(biases.len());
        for &vb in biases {
            let cfg = MixerConfig {
                gm_bias: vb,
                ..base.config().clone()
            };
            let poly = crate::model::extract_gm_pair_poly(&cfg)?;
            // The front path (h_gate) is bias-independent to first order;
            // only the pair transconductance moves.
            let g = base.params.h_gate_at(2.45e9)
                * crate::model::COMMUTATION_GAIN
                * poly.a1.abs()
                * cfg.tg_load_r
                / (1.0 + (5e6 / base.if_pole_hz()).powi(2)).sqrt();
            out.push((vb, 20.0 * g.log10()));
        }
        Ok(out)
    }

    /// The paper's second knob: "The gain of the TIA can be tuned by
    /// changing the value of RF and it provides another degree of freedom
    /// to configure the gain of the downconverter." Sweeps RF (CF scaled
    /// to keep the IF corner) and returns `(rf_ohms, conv_gain_db)`.
    ///
    /// # Errors
    ///
    /// Propagates extraction errors at any point.
    pub fn passive_gain_vs_rf_feedback(
        &self,
        rf_values: &[f64],
    ) -> Result<Vec<(f64, f64)>, AnalysisError> {
        let base = self.model(MixerMode::Passive);
        let corner = base.config().tia_corner_hz();
        let mut out = Vec::with_capacity(rf_values.len());
        for &rf in rf_values {
            let cfg = MixerConfig {
                tia_rf: rf,
                tia_cf: 1.0 / (2.0 * std::f64::consts::PI * rf * corner),
                ..base.config().clone()
            };
            let tia = crate::tia::characterize_tia(&cfg)?;
            let m = base.clone();
            // Same divider path, new transimpedance.
            let g = m.conv_gain(2.45e9, 5e6) * tia.zf0 / m.params.tia.zf0;
            out.push((rf, 20.0 * g.log10()));
        }
        Ok(out)
    }

    /// Port isolation from a transistor-level transient: amplitudes of
    /// the wanted IF tone, the LO leakage and the RF feedthrough at the
    /// IF output, returned as `(cg_db, lo_rejection_dbc, rf_rejection_dbc)`.
    ///
    /// # Errors
    ///
    /// Propagates transient errors.
    pub fn port_isolation(
        &self,
        mode: MixerMode,
        f_lo: f64,
        f_if: f64,
    ) -> Result<(f64, f64, f64), AnalysisError> {
        let m = self.model(mode);
        let mixer = ReconfigurableMixer::new(m.config().clone());
        let a_in = 2e-3;
        let (ckt, nodes) = mixer.build(
            mode,
            &RfDrive::Tone {
                freq: f_lo + f_if,
                amplitude: a_in,
            },
            &LoDrive::sine(f_lo),
        );
        let n = 8192usize;
        let t_if = 1.0 / f_if;
        let h = t_if / n as f64;
        let mut opts = TranOptions::new(2.0 * t_if, h);
        opts.record_start = t_if;
        let res = transient(&ckt, &opts)?;
        let (out_p, out_n) = nodes.if_out(mode);
        let wave = res.differential_waveform(out_p, out_n);
        let seg = &wave[wave.len() - n..];
        let fs = 1.0 / h;
        let a_ifo = remix_dsp::tone::tone_amplitude(seg, f_if, fs).max(1e-15);
        let a_lo = remix_dsp::tone::tone_amplitude(seg, f_lo, fs).max(1e-15);
        let a_rf = remix_dsp::tone::tone_amplitude(seg, f_lo + f_if, fs).max(1e-15);
        Ok((
            20.0 * (a_ifo / a_in).log10(),
            20.0 * (a_ifo / a_lo).log10(),
            20.0 * (a_ifo / a_rf).log10(),
        ))
    }

    /// Live mode-switch transient: runs `first` for half the window,
    /// flips every control to `second` mid-run, and measures the IF
    /// amplitude at each mode's output in its own half. Returns
    /// `(cg_first_db, cg_second_db)`.
    ///
    /// # Errors
    ///
    /// Propagates transient errors.
    pub fn mode_switch_transient(
        &self,
        first: MixerMode,
        second: MixerMode,
        f_lo: f64,
        f_if: f64,
    ) -> Result<(f64, f64), AnalysisError> {
        let mixer = ReconfigurableMixer::new(self.model(first).config().clone());
        let a_in = 2e-3;
        let t_if = 1.0 / f_if;
        // Two IF periods per mode; switch at the half point.
        let t_switch = 2.0 * t_if;
        let (ckt, nodes) = mixer.build_mode_switch(
            first,
            second,
            t_switch,
            2e-9,
            &RfDrive::Tone {
                freq: f_lo + f_if,
                amplitude: a_in,
            },
            &LoDrive::sine(f_lo),
        );
        let n = 8192usize;
        let h = t_if / n as f64;
        let opts = TranOptions::new(4.0 * t_if, h);
        let res = transient(&ckt, &opts)?;
        let fs = 1.0 / h;
        let measure = |mode: MixerMode, lo_idx: usize| {
            let (p, q) = nodes.if_out(mode);
            let wave = res.differential_waveform(p, q);
            let seg = &wave[lo_idx..lo_idx + n];
            remix_dsp::tone::tone_amplitude(seg, f_if, fs).max(1e-15)
        };
        // Settle one IF period into each half before measuring.
        let a_first = measure(first, n);
        let a_second = measure(second, 3 * n);
        Ok((
            20.0 * (a_first / a_in).log10(),
            20.0 * (a_second / a_in).log10(),
        ))
    }

    /// Supply power (mW) from the *periodic steady state* at `f_lo` —
    /// the cycle-true average a bench supply would read, cross-checking
    /// the held-LO DC estimate used by the extraction.
    ///
    /// # Errors
    ///
    /// Propagates PSS/transient errors.
    pub fn pss_power_mw(&self, mode: MixerMode, f_lo: f64) -> Result<f64, AnalysisError> {
        use remix_analysis::{periodic_steady_state, PssOptions};
        let m = self.model(mode);
        let mixer = ReconfigurableMixer::new(m.config().clone());
        let (ckt, _) = mixer.build(mode, &RfDrive::Bias, &LoDrive::sine(f_lo));
        let mut opts = PssOptions::new(1.0 / f_lo);
        opts.steps_per_period = 48;
        opts.max_periods = 400;
        opts.v_tol = 2e-4;
        let pss = periodic_steady_state(&ckt, &opts)?;
        let vdd_src = ckt.find_element("vdd").expect("vdd source"); // audit: allow(AUD001): the generated mixer netlist always has the vdd source
        let i_avg = pss.average_branch_current(vdd_src);
        Ok(-i_avg * m.config().vdd * 1e3)
    }

    /// The "This work" column of Table I for a mode.
    pub fn table1_row(&self, mode: MixerMode) -> MixerSpecRow {
        let m = self.model(mode);
        let (lo, hi) = self.band_edges(mode);
        MixerSpecRow {
            label: format!("This work ({})", mode.label()),
            gain_db: SpecValue::Value(round1(m.conv_gain_db(2.45e9, 5e6))),
            nf_db: SpecValue::Value(round1(m.nf_db(5e6))),
            iip3_dbm: SpecValue::Value(round1(m.iip3_dbm())),
            p1db_dbm: SpecValue::Value(round1(m.p1db_dbm())),
            power_mw: SpecValue::Value(round1(m.power_mw())),
            bandwidth_ghz: match (lo, hi) {
                (Some(l), Some(h)) => SpecValue::Range(round1(l / 1e9), round1(h / 1e9)),
                _ => SpecValue::Na,
            },
            technology: "65nm (sim)".into(),
            supply_v: 1.2,
        }
    }
}

fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn eval() -> &'static MixerEvaluator {
        static CACHE: OnceLock<MixerEvaluator> = OnceLock::new();
        CACHE.get_or_init(|| MixerEvaluator::new(&MixerConfig::default()).unwrap())
    }

    #[test]
    fn fig8_shape() {
        let freqs: Vec<f64> = (1..=14).map(|k| k as f64 * 0.5e9).collect();
        let a = eval().gain_vs_rf(MixerMode::Active, &freqs, 5e6);
        let p = eval().gain_vs_rf(MixerMode::Passive, &freqs, 5e6);
        // Active above passive through the midband.
        for i in 3..10 {
            assert!(
                a[i].1 > p[i].1,
                "at {} GHz: {} vs {}",
                freqs[i] / 1e9,
                a[i].1,
                p[i].1
            );
        }
        // Midband gains near paper values.
        let ga = a.iter().map(|p| p.1).fold(f64::MIN, f64::max);
        let gp = p.iter().map(|q| q.1).fold(f64::MIN, f64::max);
        assert!((ga - 29.2).abs() < 2.0, "active peak {ga}");
        assert!((gp - 25.5).abs() < 2.0, "passive peak {gp}");
    }

    #[test]
    fn band_edges_match_paper_shape() {
        // Reproduced shape: both modes are wideband with sub-GHz low
        // edges and single-digit-GHz active top edge. Known deviation
        // (EXPERIMENTS.md): the paper's *distinctly higher* active low
        // edge (1 GHz vs 0.5 GHz) is only partially reproduced because
        // the gate-coupling high-pass is shunted by the Gm-device gate
        // capacitance in the full netlist.
        let (alo, ahi) = eval().band_edges(MixerMode::Active);
        let (plo, phi) = eval().band_edges(MixerMode::Passive);
        let alo = alo.expect("active low edge");
        let plo = plo.expect("passive low edge");
        assert!(alo > 0.25e9 && alo < 1.5e9, "active low edge {alo:.3e}");
        assert!(plo > 0.2e9 && plo < 0.8e9, "passive low edge {plo:.3e}");
        let ahi = ahi.expect("active high edge");
        assert!(ahi > 3e9 && ahi < 7e9, "active high edge {ahi:.3e}");
        // Passive top edge is above active's (wider quad-limited band).
        if let Some(ph) = phi {
            assert!(ph > ahi, "passive hi {ph:.3e} vs active hi {ahi:.3e}");
        }
    }

    #[test]
    fn fig9_nf_curves() {
        let ifs: Vec<f64> = [1e3, 1e4, 1e5, 1e6, 5e6, 2e7].to_vec();
        let a = eval().nf_vs_if(MixerMode::Active, &ifs);
        let p = eval().nf_vs_if(MixerMode::Passive, &ifs);
        // At 5 MHz: active beats passive (paper: 7.6 vs 10.2).
        assert!(a[4].1 < p[4].1, "NF@5M: {} vs {}", a[4].1, p[4].1);
        // Flicker: active rises toward low IF more than passive.
        let rise_a = a[0].1 - a[4].1;
        let rise_p = p[0].1 - p[4].1;
        assert!(
            rise_a > rise_p,
            "1/f rise: active {rise_a:.2} dB vs passive {rise_p:.2} dB"
        );
    }

    #[test]
    fn fig10_measured_iip3() {
        let pins: Vec<f64> = (0..8).map(|k| -45.0 + 3.0 * k as f64).collect();
        let (_, ra) = eval().iip3_two_tone(MixerMode::Active, &pins).unwrap();
        let pins_p: Vec<f64> = (0..8).map(|k| -30.0 + 3.0 * k as f64).collect();
        let (_, rp) = eval().iip3_two_tone(MixerMode::Passive, &pins_p).unwrap();
        // Measured intercepts close to the analytic model.
        let ia = eval().model(MixerMode::Active).iip3_dbm();
        let ip = eval().model(MixerMode::Passive).iip3_dbm();
        // The analytic cascade is a coherent-worst-case lower bound; the
        // measured chain (finite LO transition, interstage phase) lands a
        // couple of dB above it.
        assert!(
            (ra.iip3_dbm - ia).abs() < 3.5,
            "active: measured {} vs analytic {ia}",
            ra.iip3_dbm
        );
        assert!(
            (rp.iip3_dbm - ip).abs() < 2.5,
            "passive: measured {} vs analytic {ip}",
            rp.iip3_dbm
        );
        // And the paper's ordering with a wide margin.
        assert!(rp.iip3_dbm > ra.iip3_dbm + 10.0);
    }

    #[test]
    fn p1db_measured_close_to_model() {
        for mode in [MixerMode::Active, MixerMode::Passive] {
            let model_p1 = eval().model(mode).p1db_dbm();
            let pins: Vec<f64> = (0..25).map(|k| model_p1 - 15.0 + 1.25 * k as f64).collect();
            let measured = eval().p1db_measured(mode, &pins).unwrap();
            assert!(
                (measured - model_p1).abs() < 3.5,
                "{mode:?}: measured {measured} vs model {model_p1}"
            );
        }
    }

    #[test]
    fn input_match_reasonable_in_band() {
        // A 50 Ω-terminated port should sit below −8 dB return loss
        // through the midband in both modes.
        for mode in [MixerMode::Active, MixerMode::Passive] {
            let s11 = eval()
                .input_match_s11(mode, &[1.0e9, 2.45e9, 4.0e9])
                .unwrap();
            // The coupling cap's reactance degrades the match toward the
            // low band edge (no on-chip matching inductor is modeled);
            // mid/upper band must be solidly matched.
            assert!(
                s11[0].1 < -5.0,
                "{}: S11 {:.1} dB at 1 GHz",
                mode.label(),
                s11[0].1
            );
            assert!(
                s11[1].1 < -8.0,
                "{}: S11 {:.1} dB at 2.45 GHz",
                mode.label(),
                s11[1].1
            );
            assert!(
                s11[2].1 < -8.0,
                "{}: S11 {:.1} dB at 4 GHz",
                mode.label(),
                s11[2].1
            );
        }
    }

    #[test]
    fn gain_tuning_via_gm_bias() {
        // Paper: "The Gm of MOS Mn1 and Mn2 can be changed by changing
        // the value of bias voltage, thus varying the gain of mixer."
        // With the tail source setting the current, the bias moves the
        // tail device's headroom (and with it the realized current and
        // gm) — a few dB of range over a 350 mV bias window, monotone.
        let biases = [0.45, 0.52, 0.58, 0.65];
        let curve = eval().active_gain_vs_bias(&biases).unwrap();
        for w in curve.windows(2) {
            assert!(w[1].1 > w[0].1, "not monotone: {curve:?}");
        }
        let span = curve.last().unwrap().1 - curve[0].1;
        assert!(span > 3.0, "tuning range only {span:.1} dB");
        // Beyond this window the tail saturates and the gain plateaus —
        // the paper's "optimum value of bias voltage is so desired that
        // mixer consumes a minimal amount of current".
        let hi = eval().active_gain_vs_bias(&[0.8]).unwrap();
        assert!((hi[0].1 - curve[3].1).abs() < 1.0, "plateau: {hi:?}");
    }

    #[test]
    fn gain_tuning_via_tia_rf() {
        // Paper: "The gain of the TIA can be tuned by changing the value
        // of RF." Doubling RF should buy ≈6 dB.
        let base_rf = eval().model(MixerMode::Passive).config().tia_rf;
        let curve = eval()
            .passive_gain_vs_rf_feedback(&[base_rf / 2.0, base_rf, base_rf * 2.0])
            .unwrap();
        let step_up = curve[2].1 - curve[1].1;
        let step_dn = curve[1].1 - curve[0].1;
        assert!((step_up - 6.0).abs() < 1.5, "up-step {step_up:.1} dB");
        assert!((step_dn - 6.0).abs() < 1.5, "down-step {step_dn:.1} dB");
    }

    #[test]
    fn table1_rows_populate() {
        for mode in [MixerMode::Active, MixerMode::Passive] {
            let row = eval().table1_row(mode);
            assert!(row.label.contains(mode.label()));
            assert!(matches!(row.gain_db, SpecValue::Value(_)));
            assert!(matches!(row.bandwidth_ghz, SpecValue::Range(_, _)));
            assert_eq!(row.supply_v, 1.2);
        }
    }
}
