//! Mixer configuration: mode control and design parameters.
//!
//! All geometry/bias values default to the calibration that lands the
//! paper's operating points (see DESIGN.md §4): ~9.3 mW from 1.2 V with
//! the TIA's 3.3 mA only spent in passive mode.

/// Operating mode of the reconfigurable mixer (the paper's Vlogic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixerMode {
    /// Gilbert-cell mode: common-source Gm devices + tail source (switch
    /// 7 on), transmission-gate loads to VDD, TIA powered down (p3 off).
    Active,
    /// Current-commutating mode: TCA current routed through PMOS switches
    /// Mp1/Mp2 (switch 1-2 on, doubling as degeneration resistance) into
    /// the quad; TIA powered (p3 on), TG loads off (switches 3-4 off).
    Passive,
}

impl MixerMode {
    /// The control-logic level: `Vlogic` low (0 V) selects passive —
    /// PMOS Mp1/Mp2 conduct; high (VDD) selects active.
    pub fn vlogic(self, vdd: f64) -> f64 {
        match self {
            MixerMode::Active => vdd,
            MixerMode::Passive => 0.0,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            MixerMode::Active => "active",
            MixerMode::Passive => "passive",
        }
    }
}

/// Full design parameters of the reconfigurable down-converter.
#[derive(Debug, Clone, PartialEq)]
pub struct MixerConfig {
    /// NMOS process model used for every N device (swap for corner/PVT
    /// studies — see [`crate::corners`]).
    pub nmos: remix_circuit::MosModel,
    /// PMOS process model used for every P device.
    pub pmos: remix_circuit::MosModel,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Source resistance of the RF port per side (Ω) — the balun's 50 Ω.
    pub rs: f64,
    /// Input termination per side (Ω): the paper's "RF balun using 50 ohm
    /// input impedance termination". Halves the port voltage and sets the
    /// classic matched-input noise floor.
    pub input_term_r: f64,
    /// LO amplitude at the quad gates (V peak, sine before limiting).
    pub lo_amplitude: f64,
    /// LO common-mode at the quad gates (V).
    pub lo_common: f64,

    // --- TCA (Fig. 3) ---
    /// TCA NMOS width (m).
    pub tca_wn: f64,
    /// TCA PMOS width (m).
    pub tca_wp: f64,
    /// TCA channel length (m).
    pub tca_l: f64,
    /// TCA output common-mode (VDD/2 per the paper).
    pub tca_vcm: f64,
    /// TCA output load to the common-mode reference (Ω): the CMFB
    /// sensing/bias network that defines the output common mode. Sets the
    /// TCA's realized voltage gain together with `rout`.
    pub tca_rload: f64,

    // --- Gm devices Mn1/Mn2 (active mode; switch 5-6) ---
    /// Gm MOS width (m).
    pub gm_w: f64,
    /// Gm MOS length (m).
    pub gm_l: f64,
    /// Gate bias of the Gm devices in active mode (V) — the paper's gain
    /// tuning knob ("The Gm of MOS Mn1 and Mn2 can be changed by changing
    /// the value of bias voltage").
    pub gm_bias: f64,
    /// Tail current source (switch 7) value (A).
    pub tail_current: f64,
    /// Tail device (switch 7) width (m).
    pub tail_w: f64,
    /// Tail device (switch 7) length (m).
    pub tail_l: f64,
    /// Current-bleeding fraction in active mode: this share of each
    /// side's tail current is injected into the IF nodes by PMOS bleed
    /// sources so the TG load carries only the remainder at DC — the
    /// standard trick that reconciles a large load resistance with 1.2 V
    /// of headroom (without it the reported gain is unreachable; see
    /// DESIGN.md substitutions).
    pub bleed_frac: f64,

    // --- Switching quad ---
    /// Quad NMOS width (m).
    pub quad_w: f64,
    /// Quad NMOS length (m).
    pub quad_l: f64,

    // --- PMOS mode switches Mp1/Mp2 (switch 1-2) ---
    /// Width (m); chosen for the desired passive-mode degeneration
    /// resistance Rdeg.
    pub sw12_w: f64,
    /// Length (m).
    pub sw12_l: f64,

    // --- TG load (Fig. 5(b)) and Cc ---
    /// Target TG load resistance (Ω) — sets active-mode gain.
    pub tg_load_r: f64,
    /// Compensation / LPF capacitor Cc (F).
    pub cc: f64,

    // --- TIA (Fig. 7) ---
    /// Feedback resistance RF (Ω) — sets passive-mode gain (eq. 3).
    pub tia_rf: f64,
    /// Feedback capacitance CF (F) — sets the IF low-pass corner.
    pub tia_cf: f64,
    /// OTA first-stage bias current (A).
    pub ota_i1: f64,
    /// OTA second-stage bias current (A).
    pub ota_i2: f64,

    // --- Coupling / parasitics ---
    /// Series input coupling capacitance per side (F); with the ~100 Ω
    /// differential port it sets the receiver's low band edge.
    pub input_couple_c: f64,
    /// Coupling capacitance from the TCA output to the Gm-device gates
    /// (F) — with `gm_bias_r` it forms the *active-mode* extra high-pass
    /// (the reason the paper's active band starts at 1 GHz vs 0.5 GHz
    /// passive).
    pub gm_couple_c: f64,
    /// Gm-gate bias resistance (Ω).
    pub gm_bias_r: f64,
    /// Lumped layout parasitic at internal high-impedance nodes (F);
    /// dominates the upper band edge together with the TCA output
    /// resistance (the paper's C_PAR discussion, §II).
    pub node_parasitic_c: f64,
}

impl Default for MixerConfig {
    fn default() -> Self {
        MixerConfig {
            nmos: remix_circuit::MosModel::nmos_65nm(),
            pmos: remix_circuit::MosModel::pmos_65nm(),
            vdd: 1.2,
            rs: 50.0,
            input_term_r: 50.0,
            lo_amplitude: 0.6,
            lo_common: 0.6,

            // N/P ratio balances the inverter's pull-up and pull-down at
            // the VDD/2 common mode (kp and vth differ between flavours).
            tca_wn: 13e-6,
            tca_wp: 37e-6,
            tca_l: 65e-9,
            tca_vcm: 0.6,
            tca_rload: 1.35e3,

            gm_w: 40e-6,
            gm_l: 65e-9,
            gm_bias: 0.62,
            tail_current: 2.0e-3,
            tail_w: 60e-6,
            tail_l: 130e-9,
            bleed_frac: 0.7,

            quad_w: 12e-6,
            quad_l: 65e-9,

            sw12_w: 15e-6,
            sw12_l: 65e-9,

            tg_load_r: 620.0,
            cc: 17.1e-12,

            tia_rf: 3.4e3,
            tia_cf: 3.1e-12,
            ota_i1: 0.6e-3,
            ota_i2: 1.05e-3,

            input_couple_c: 3.2e-12,
            gm_couple_c: 160e-15,
            gm_bias_r: 1.0e3,
            node_parasitic_c: 10e-15,
        }
    }
}

impl MixerConfig {
    /// IF low-pass corner set by the TIA feedback: `1/(2π·RF·CF)`.
    pub fn tia_corner_hz(&self) -> f64 {
        1.0 / (2.0 * std::f64::consts::PI * self.tia_rf * self.tia_cf)
    }

    /// Validates physical plausibility of the parameter set.
    ///
    /// # Panics
    ///
    /// Panics on non-positive geometry/bias values — these are
    /// programming errors, not recoverable conditions.
    pub fn assert_valid(&self) {
        assert!(self.vdd > 0.0 && self.vdd <= 3.3, "vdd out of range");
        assert!(self.rs > 0.0);
        assert!(self.input_term_r > 0.0);
        assert!(self.lo_amplitude > 0.0 && self.lo_common >= 0.0);
        for (name, v) in [
            ("tca_wn", self.tca_wn),
            ("tca_wp", self.tca_wp),
            ("tca_l", self.tca_l),
            ("tca_rload", self.tca_rload),
            ("gm_w", self.gm_w),
            ("gm_l", self.gm_l),
            ("quad_w", self.quad_w),
            ("quad_l", self.quad_l),
            ("sw12_w", self.sw12_w),
            ("sw12_l", self.sw12_l),
            ("tg_load_r", self.tg_load_r),
            ("cc", self.cc),
            ("tia_rf", self.tia_rf),
            ("tia_cf", self.tia_cf),
            ("tail_current", self.tail_current),
            ("tail_w", self.tail_w),
            ("tail_l", self.tail_l),
            ("ota_i1", self.ota_i1),
            ("ota_i2", self.ota_i2),
            ("input_couple_c", self.input_couple_c),
            ("gm_couple_c", self.gm_couple_c),
            ("gm_bias_r", self.gm_bias_r),
            ("node_parasitic_c", self.node_parasitic_c),
        ] {
            assert!(v > 0.0 && v.is_finite(), "{name} must be positive, got {v}");
        }
        assert!(
            self.gm_bias > 0.0 && self.gm_bias < self.vdd,
            "gm_bias must sit inside the rails"
        );
        assert!(
            (0.0..0.95).contains(&self.bleed_frac),
            "bleed_frac must be in [0, 0.95)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        MixerConfig::default().assert_valid();
    }

    #[test]
    fn vlogic_levels() {
        assert_eq!(MixerMode::Active.vlogic(1.2), 1.2);
        assert_eq!(MixerMode::Passive.vlogic(1.2), 0.0);
        assert_eq!(MixerMode::Active.label(), "active");
        assert_eq!(MixerMode::Passive.label(), "passive");
    }

    #[test]
    fn tia_corner_default_near_10mhz() {
        // RF = 6 kΩ, CF = 2.65 pF → ~10 MHz: passes a 5 MHz IF while
        // anti-aliasing above (paper: "RF and CF value is set according
        // to IF frequency").
        let c = MixerConfig::default();
        let f = c.tia_corner_hz();
        assert!(f > 5e6 && f < 20e6, "corner = {f:.3e}");
    }

    #[test]
    #[should_panic(expected = "gm_bias")]
    fn bias_outside_rails_rejected() {
        let cfg = MixerConfig {
            gm_bias: 2.0,
            ..MixerConfig::default()
        };
        cfg.assert_valid();
    }
}
