//! Behavioral mixer model, extracted from the transistor-level circuits.
//!
//! Running thousands of LO cycles of transistor-level transient per sweep
//! point is how the paper's authors spent their CPU-months; the standard
//! engineering shortcut (and ours, see DESIGN.md §1) is to extract each
//! stage's parameters from the circuit level once, then evaluate the
//! composite behavioral model per sweep point:
//!
//! * TCA: gm, output resistance, C_PAR, nonlinear polynomial, noise —
//!   from [`crate::tca::characterize`];
//! * Gm pair (active mode): differential-pair polynomial from a DC sweep
//!   of the actual devices;
//! * switches: Mp1/Mp2 degeneration and quad on-resistance from
//!   triode-region device evaluation;
//! * TIA: closed-loop transimpedance, virtual-ground impedance, and an
//!   input-referred current-noise *curve* (the OTA's flicker shows up
//!   here) — from [`crate::tia::characterize_tia`] plus a noise sweep;
//! * power: DC operating points of the complete netlist in each mode.
//!
//! The conversion-gain / noise-figure / linearity formulas and their
//! derivations are documented on each method.

use crate::config::{MixerConfig, MixerMode};
use crate::mixer::{LoDrive, ReconfigurableMixer, RfDrive};
use crate::quad::switch_on_resistance;
use crate::tca::{characterize as characterize_tca, TcaParams};
use crate::tia::{build_tia, characterize_tia, TiaParams};
use remix_analysis::{
    ac_sweep, dc_operating_point, dc_sweep, log_space, output_noise, supply_power, AnalysisError,
    OpOptions,
};
use remix_circuit::consts::{BOLTZMANN, T0_NOISE};
use remix_circuit::{Circuit, Waveform};
use remix_dsp::units::{vpeak_to_dbm, Z0};
use remix_numerics::polyfit;
use remix_rfkit::blocks::{ChainProcessor, LoMixerProcessor, PolyProcessor};
use remix_rfkit::{Poly3, SampleProcessor};

/// Conversion efficiency of an ideal square-wave commutator (per
/// sideband): 2/π.
pub const COMMUTATION_GAIN: f64 = 2.0 / std::f64::consts::PI;

/// Everything extracted from the transistor level, mode-independent.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractedParams {
    /// TCA characterization.
    pub tca: TcaParams,
    /// TIA characterization (powered).
    pub tia: TiaParams,
    /// TIA input-referred current noise vs IF frequency:
    /// `(freq_hz, a2_per_hz)` on a log grid.
    pub tia_in2_curve: Vec<(f64, f64)>,
    /// Differential-pair polynomial of the Gm devices (diff current vs
    /// diff gate voltage) at the active-mode bias.
    pub poly_gm_pair: Poly3,
    /// Quad switch on-resistance (Ω) at mid-rail.
    pub ron_quad: f64,
    /// Mp1/Mp2 on-resistance = passive degeneration Rdeg (Ω).
    pub rdeg: f64,
    /// Supply power, active mode (mW) — full netlist.
    pub power_active_mw: f64,
    /// Supply power, passive mode (mW) — full netlist.
    pub power_passive_mw: f64,
    /// Per-side quad bias current in active mode (A) — sets switch
    /// flicker.
    pub i_switch_active: f64,
    /// Measured differential transfer from the RF EMF to the TCA inputs
    /// on the full active netlist: `(f_hz, |H|)`.
    pub h_in_curve: Vec<(f64, f64)>,
    /// Measured differential transfer from the RF EMF to the Gm-device
    /// gates on the full active netlist (includes the termination, input
    /// coupling, TCA with all its real loading, and the gate coupling).
    pub h_gate_curve: Vec<(f64, f64)>,
}

/// Extracts Mp1's triode resistance at the passive operating point.
fn extract_rdeg(cfg: &MixerConfig) -> f64 {
    let p = &cfg.pmos;
    let v_ch = cfg.tca_vcm;
    let dv = 1e-3;
    // Gate at 0 (Vlogic low), bulk at VDD, channel near the TCA CM.
    let ev = p.evaluate(v_ch - dv, 0.0, v_ch, cfg.vdd);
    let g = ev.id.abs() * (cfg.sw12_w / cfg.sw12_l) / dv;
    if g > 0.0 {
        1.0 / g
    } else {
        f64::INFINITY
    }
}

/// Extracts the differential-pair polynomial of Mn1/Mn2 with the real
/// tail device, by sweeping the differential gate voltage and fitting the
/// differential drain current.
/// Extracts the Gm-pair polynomial at an arbitrary gate bias (public so
/// the evaluation layer can sweep the paper's gain-tuning knob).
pub fn extract_gm_pair_poly(cfg: &MixerConfig) -> Result<Poly3, AnalysisError> {
    let mut ckt = Circuit::new();
    let gp = ckt.node("gp");
    let gn = ckt.node("gn");
    let dp = ckt.node("dp");
    let dn = ckt.node("dn");
    let tail = ckt.node("tail");
    // Drains clamped near the active-mode quad-input level to measure
    // short-circuit current.
    let probe_p = ckt.add_vsource("vdp", dp, Circuit::gnd(), Waveform::Dc(0.45));
    let probe_n = ckt.add_vsource("vdn", dn, Circuit::gnd(), Waveform::Dc(0.45));
    ckt.add_vsource("vgp", gp, Circuit::gnd(), Waveform::Dc(cfg.gm_bias));
    ckt.add_vsource("vgn", gn, Circuit::gnd(), Waveform::Dc(cfg.gm_bias));
    let nm = cfg.nmos.clone();
    ckt.add_mosfet(
        "mn1",
        nm.clone(),
        cfg.gm_w,
        cfg.gm_l,
        dp,
        gp,
        tail,
        Circuit::gnd(),
    );
    ckt.add_mosfet(
        "mn2",
        nm.clone(),
        cfg.gm_w,
        cfg.gm_l,
        dn,
        gn,
        tail,
        Circuit::gnd(),
    );
    let (w7, l7) = (cfg.tail_w, cfg.tail_l);
    let vb7 = crate::bias::nmos_vgs_for_current(&nm, w7, l7, 0.12, cfg.tail_current, cfg.vdd);
    let vb = ckt.node("vb7");
    ckt.add_vsource("vb7", vb, Circuit::gnd(), Waveform::Dc(vb7));
    ckt.add_mosfet("m7", nm, w7, l7, tail, vb, Circuit::gnd(), Circuit::gnd());

    // Sweep +v/2 on gp while holding gn at bias − v/2 requires two swept
    // sources; sweep gp only over ±dv and measure the *odd* part of the
    // differential current, which cancels the common-mode error to first
    // order (equivalent to a true differential sweep at half amplitude).
    let dv = 0.12;
    let n_pts = 21;
    let values: Vec<f64> = (0..n_pts)
        .map(|k| cfg.gm_bias - dv + 2.0 * dv * k as f64 / (n_pts - 1) as f64)
        .collect();
    let sweep = dc_sweep(&ckt, "vgp", &values, &OpOptions::default())?;
    let x: Vec<f64> = values.iter().map(|v| v - cfg.gm_bias).collect();
    let idiff: Vec<f64> = sweep
        .points
        .iter()
        .map(|p| p.branch_current(probe_p) - p.branch_current(probe_n))
        .collect();
    let c = polyfit(&x, &idiff, 3).map_err(AnalysisError::singular)?;
    Ok(Poly3 {
        a1: c[1],
        a2: c[2],
        a3: c[3],
    })
}

/// Measures the TIA's input-referred current-noise curve with a realistic
/// source impedance, subtracting the fixture resistor's own contribution.
fn tia_in2_curve(cfg: &MixerConfig, rsrc: f64) -> Result<Vec<(f64, f64)>, AnalysisError> {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let vcm = ckt.node("vcm");
    let input = ckt.node("in");
    let out = ckt.node("out");
    ckt.add_vsource("vdd", vdd, Circuit::gnd(), Waveform::Dc(cfg.vdd));
    ckt.add_vsource("vcm", vcm, Circuit::gnd(), Waveform::Dc(cfg.tca_vcm));
    ckt.add_isource_ac("iin", Circuit::gnd(), input, Waveform::Dc(0.0), 1.0);
    ckt.add_resistor("rsrc", input, vcm, rsrc);
    build_tia(&mut ckt, "tia", input, out, vcm, vdd, cfg, true);
    let op = dc_operating_point(&ckt, &OpOptions::default())?;
    let freqs = log_space(1e3, 100e6, 6);
    let ac = ac_sweep(&ckt, &op, &freqs)?;
    let nr = output_noise(&ckt, &op, out, Circuit::gnd(), &freqs)?;
    let rsrc_idx = nr
        .contributions
        .iter()
        .position(|(n, _)| n == "rsrc")
        .expect("rsrc contribution present"); // audit: allow(AUD001): the noise builder inserts the rsrc contribution unconditionally
    let mut curve = Vec::with_capacity(freqs.len());
    for (i, &f) in freqs.iter().enumerate() {
        let zt = ac.voltage(i, out).abs().max(1e-12);
        let psd = nr.total[i] - nr.contributions[rsrc_idx].1[i];
        curve.push((f, psd / (zt * zt)));
    }
    Ok(curve)
}

impl ExtractedParams {
    /// Runs all extractions for a configuration. Expensive (seconds);
    /// reuse the result across sweeps.
    ///
    /// # Errors
    ///
    /// Propagates analysis errors from any fixture.
    pub fn extract(cfg: &MixerConfig) -> Result<Self, AnalysisError> {
        cfg.assert_valid();
        let tca = characterize_tca(cfg)?;
        let tia = characterize_tia(cfg)?;
        let reff = 1.0 / (1.0 / tca.rout + 1.0 / cfg.tca_rload);
        let rdeg = extract_rdeg(cfg);
        let ron_quad = switch_on_resistance(cfg, cfg.tca_vcm);
        let rsrc_equiv = reff + rdeg + ron_quad;
        let tia_in2 = tia_in2_curve(cfg, rsrc_equiv)?;
        let poly_gm_pair = extract_gm_pair_poly(cfg)?;

        // Full-netlist power in both modes.
        let mixer = ReconfigurableMixer::new(cfg.clone());
        let lo = LoDrive::held(2.4e9);
        let mut power = [0.0; 2];
        for (i, mode) in [MixerMode::Active, MixerMode::Passive].iter().enumerate() {
            let (ckt, _) = mixer.build(*mode, &RfDrive::Bias, &lo);
            let op = dc_operating_point(&ckt, &OpOptions::default())?;
            power[i] = supply_power(&ckt, &op).total_mw();
        }

        // Front-path transfer curves measured on the active netlist (AC,
        // LO held so the quad presents its conducting-state loading).
        let (ackt, anodes) = mixer.build(MixerMode::Active, &RfDrive::Ac, &lo);
        let aop = dc_operating_point(&ackt, &OpOptions::default())?;
        let rf_grid = log_space(50e6, 20e9, 8);
        let aac = ac_sweep(&ackt, &aop, &rf_grid)?;
        let gp = ackt.find_node("gmg_p").expect("gate node"); // audit: allow(AUD001): the gm-gate fixture always has the gmg_p node
        let gn = ackt.find_node("gmg_n").expect("gate node"); // audit: allow(AUD001): the gm-gate fixture always has the gmg_n node
        let mut h_in_curve = Vec::with_capacity(rf_grid.len());
        let mut h_gate_curve = Vec::with_capacity(rf_grid.len());
        for (i, &f) in rf_grid.iter().enumerate() {
            h_in_curve.push((f, aac.voltage_diff(i, anodes.in_p, anodes.in_n).abs()));
            h_gate_curve.push((f, aac.voltage_diff(i, gp, gn).abs()));
        }

        Ok(ExtractedParams {
            tca,
            tia,
            tia_in2_curve: tia_in2,
            poly_gm_pair,
            ron_quad,
            rdeg,
            power_active_mw: power[0],
            power_passive_mw: power[1],
            i_switch_active: cfg.tail_current / 2.0,
            h_in_curve,
            h_gate_curve,
        })
    }

    /// Serializes every extracted quantity to a flat scalar vector — the
    /// success payload of version-2 study checkpoints
    /// ([`StudyOutcome::Ok`](crate::checkpoint::StudyOutcome)). Layout:
    /// 23 scalars (TCA 9, TIA 6, Gm-pair polynomial 3, then `ron_quad`,
    /// `rdeg`, `power_active_mw`, `power_passive_mw`,
    /// `i_switch_active`), followed by the three `(f, value)` curves,
    /// each length-prefixed.
    pub fn to_flat(&self) -> Vec<f64> {
        let n_curve = self.tia_in2_curve.len() + self.h_in_curve.len() + self.h_gate_curve.len();
        let mut out = Vec::with_capacity(23 + 3 + 2 * n_curve);
        out.extend([
            self.tca.gm,
            self.tca.rout,
            self.tca.cout,
            self.tca.pole_hz,
            self.tca.poly.a1,
            self.tca.poly.a2,
            self.tca.poly.a3,
            self.tca.en2_white,
            self.tca.bias_current,
            self.tia.zf0,
            self.tia.corner_hz,
            self.tia.rin_at_5mhz,
            self.tia.out_noise_5mhz,
            self.tia.in2_5mhz,
            self.tia.supply_current,
            self.poly_gm_pair.a1,
            self.poly_gm_pair.a2,
            self.poly_gm_pair.a3,
            self.ron_quad,
            self.rdeg,
            self.power_active_mw,
            self.power_passive_mw,
            self.i_switch_active,
        ]);
        for curve in [&self.tia_in2_curve, &self.h_in_curve, &self.h_gate_curve] {
            out.push(curve.len() as f64);
            for &(f, v) in curve.iter() {
                out.push(f);
                out.push(v);
            }
        }
        out
    }

    /// Rebuilds parameters from [`to_flat`](Self::to_flat) output.
    /// `None` when the vector is truncated, carries trailing data, or
    /// encodes an invalid curve length — a malformed checkpoint record
    /// then recomputes instead of deserializing garbage.
    pub fn from_flat(flat: &[f64]) -> Option<Self> {
        fn take<const N: usize>(flat: &[f64], pos: &mut usize) -> Option<[f64; N]> {
            let s = flat.get(*pos..*pos + N)?;
            *pos += N;
            s.try_into().ok()
        }
        fn take_curve(flat: &[f64], pos: &mut usize) -> Option<Vec<(f64, f64)>> {
            let n = *flat.get(*pos)?;
            *pos += 1;
            if !n.is_finite() || n < 0.0 || n.fract() != 0.0 {
                return None;
            }
            let mut curve = Vec::with_capacity(n as usize);
            for _ in 0..n as usize {
                let [f, v] = take::<2>(flat, pos)?;
                curve.push((f, v));
            }
            Some(curve)
        }
        let mut pos = 0;
        let [gm, rout, cout, pole_hz, a1, a2, a3, en2_white, bias_current] =
            take::<9>(flat, &mut pos)?;
        let [zf0, corner_hz, rin_at_5mhz, out_noise_5mhz, in2_5mhz, supply_current] =
            take::<6>(flat, &mut pos)?;
        let [g1, g2, g3] = take::<3>(flat, &mut pos)?;
        let [ron_quad, rdeg, power_active_mw, power_passive_mw, i_switch_active] =
            take::<5>(flat, &mut pos)?;
        let tia_in2_curve = take_curve(flat, &mut pos)?;
        let h_in_curve = take_curve(flat, &mut pos)?;
        let h_gate_curve = take_curve(flat, &mut pos)?;
        if pos != flat.len() {
            return None;
        }
        Some(ExtractedParams {
            tca: TcaParams {
                gm,
                rout,
                cout,
                pole_hz,
                poly: Poly3 { a1, a2, a3 },
                en2_white,
                bias_current,
            },
            tia: TiaParams {
                zf0,
                corner_hz,
                rin_at_5mhz,
                out_noise_5mhz,
                in2_5mhz,
                supply_current,
            },
            tia_in2_curve,
            poly_gm_pair: Poly3 {
                a1: g1,
                a2: g2,
                a3: g3,
            },
            ron_quad,
            rdeg,
            power_active_mw,
            power_passive_mw,
            i_switch_active,
            h_in_curve,
            h_gate_curve,
        })
    }

    /// TIA input current noise (A²/Hz) interpolated at `f`.
    pub fn tia_in2_at(&self, f: f64) -> f64 {
        let xs: Vec<f64> = self.tia_in2_curve.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = self.tia_in2_curve.iter().map(|p| p.1).collect();
        remix_numerics::interp::lerp_logx(&xs, &ys, f.max(xs[0]))
    }

    fn curve_at(curve: &[(f64, f64)], f: f64) -> f64 {
        let xs: Vec<f64> = curve.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = curve.iter().map(|p| p.1).collect();
        remix_numerics::interp::lerp_logx(&xs, &ys, f.clamp(xs[0], xs[xs.len() - 1]))
    }

    /// Measured EMF → TCA-input transfer at `f` (active netlist).
    pub fn h_in_at(&self, f: f64) -> f64 {
        Self::curve_at(&self.h_in_curve, f)
    }

    /// Measured EMF → Gm-gate transfer at `f` (active netlist).
    pub fn h_gate_at(&self, f: f64) -> f64 {
        Self::curve_at(&self.h_gate_curve, f)
    }
}

/// The behavioral model of one mode, with every paper metric as a method.
#[derive(Debug, Clone)]
pub struct MixerModel {
    /// Which mode this models.
    pub mode: MixerMode,
    cfg: MixerConfig,
    /// The extraction this model was built from.
    pub params: ExtractedParams,
}

impl MixerModel {
    /// Builds the model for a mode from a prior extraction.
    pub fn new(cfg: MixerConfig, mode: MixerMode, params: ExtractedParams) -> Self {
        MixerModel { mode, cfg, params }
    }

    /// Convenience: extract and build in one call.
    ///
    /// # Errors
    ///
    /// Propagates extraction errors.
    pub fn from_config(cfg: &MixerConfig, mode: MixerMode) -> Result<Self, AnalysisError> {
        Ok(Self::new(cfg.clone(), mode, ExtractedParams::extract(cfg)?))
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &MixerConfig {
        &self.cfg
    }

    /// Effective TCA load resistance `rout ∥ rload` (Ω).
    pub fn reff_tca(&self) -> f64 {
        1.0 / (1.0 / self.params.tca.rout + 1.0 / self.cfg.tca_rload)
    }

    /// Input termination divider: `rterm/(rs + rterm)` — 0.5 for a
    /// matched port.
    pub fn termination_divider(&self) -> f64 {
        self.cfg.input_term_r / (self.cfg.rs + self.cfg.input_term_r)
    }

    /// Input high-pass corner common to both modes: the coupling cap
    /// sits between the source and the termination, so it sees
    /// `rs + rterm` in series.
    pub fn input_hp_hz(&self) -> f64 {
        let r = self.cfg.rs + self.cfg.input_term_r;
        1.0 / (2.0 * std::f64::consts::PI * r * self.cfg.input_couple_c)
    }

    /// Active-only high-pass from the Gm-gate coupling network.
    pub fn gate_hp_hz(&self) -> f64 {
        1.0 / (2.0 * std::f64::consts::PI * self.cfg.gm_bias_r * self.cfg.gm_couple_c)
    }

    /// RF pole at the TCA output (upper band edge mechanism).
    pub fn rf_pole_hz(&self) -> f64 {
        let c_total = self.params.tca.cout + self.cfg.node_parasitic_c;
        let r = match self.mode {
            // Active: the full Reff is seen.
            MixerMode::Active => self.reff_tca(),
            // Passive: the switch path loads the node.
            MixerMode::Passive => {
                let series = self.params.rdeg + self.params.ron_quad + self.params.tia.rin_at_5mhz;
                1.0 / (1.0 / self.reff_tca() + 1.0 / series)
            }
        };
        1.0 / (2.0 * std::f64::consts::PI * r * c_total)
    }

    /// IF pole (output low-pass).
    pub fn if_pole_hz(&self) -> f64 {
        match self.mode {
            MixerMode::Active => {
                1.0 / (2.0 * std::f64::consts::PI * self.cfg.tg_load_r * self.cfg.cc)
            }
            MixerMode::Passive => self.params.tia.corner_hz,
        }
    }

    /// Active-mode Gilbert transconductance (S): `a1` of the pair.
    pub fn gm_pair(&self) -> f64 {
        self.params.poly_gm_pair.a1.abs()
    }

    /// Passive-mode effective transconductance into the TIA (S):
    /// `gm_tca · Reff/(Reff + Rdeg + ron + Rin,TIA)`.
    pub fn gm_eff_passive(&self) -> f64 {
        let reff = self.reff_tca();
        let loop_r = reff + self.params.rdeg + self.params.ron_quad + self.params.tia.rin_at_5mhz;
        self.params.tca.gm * reff / loop_r
    }

    /// Mid-band conversion gain (linear, differential V/V), from the
    /// source EMF — includes the matched-termination factor of 1/2.
    pub fn conv_gain_flat(&self) -> f64 {
        let internal = match self.mode {
            MixerMode::Active => {
                let av1 = self.params.tca.gm * self.reff_tca();
                av1 * COMMUTATION_GAIN * self.gm_pair() * self.cfg.tg_load_r
            }
            MixerMode::Passive => {
                // Eq. (3): VCG = (2/π)·gm·ZF with gm the *effective*
                // transconductance delivered to the virtual ground.
                COMMUTATION_GAIN * self.gm_eff_passive() * self.params.tia.zf0
            }
        };
        internal * self.termination_divider()
    }

    /// Conversion gain at (`f_rf`, `f_if`), linear.
    ///
    /// Active mode uses the *measured* EMF→gate transfer curve from the
    /// full netlist (which carries the termination, coupling networks and
    /// all real loading of the TCA); passive mode uses the analytic
    /// divider chain, which cross-validates against the transistor-level
    /// transient within a couple of dB.
    pub fn conv_gain(&self, f_rf: f64, f_if: f64) -> f64 {
        let hp = |f: f64, fc: f64| {
            let x = f / fc;
            x / (1.0 + x * x).sqrt()
        };
        let lp = |f: f64, fc: f64| 1.0 / (1.0 + (f / fc).powi(2)).sqrt();
        match self.mode {
            MixerMode::Active => {
                self.params.h_gate_at(f_rf)
                    * COMMUTATION_GAIN
                    * self.gm_pair()
                    * self.cfg.tg_load_r
                    * lp(f_if, self.if_pole_hz())
            }
            MixerMode::Passive => {
                let mut g = self.conv_gain_flat();
                g *= hp(f_rf, self.input_hp_hz());
                g *= lp(f_rf, self.rf_pole_hz());
                g *= lp(f_if, self.if_pole_hz());
                g
            }
        }
    }

    /// Conversion gain in dB.
    pub fn conv_gain_db(&self, f_rf: f64, f_if: f64) -> f64 {
        20.0 * self.conv_gain(f_rf, f_if).log10()
    }

    /// Noise folding factor of square-wave commutation: white noise ahead
    /// of the switches reaches the IF from *every* odd LO harmonic, a
    /// `Σ_odd 1/n² = π²/8` power penalty relative to the fundamental-only
    /// signal conversion.
    pub const FOLDING: f64 = std::f64::consts::PI * std::f64::consts::PI / 8.0;

    /// Internal noise PSD (V²/Hz, differential) referred to the *TCA
    /// input node* at the given IF, for RF near 2.45 GHz.
    ///
    /// Active budget:
    /// * 2× TCA input noise (two uncorrelated halves), folded;
    /// * Gm-pair channel thermal `2·4kTγ·gm/(gm²·av1²)`, folded;
    /// * switch flicker `2·KF·I_sw/(CoxWL·f_if)` through the load,
    ///   referred by the internal gain (the classic Gilbert-mixer 1/f
    ///   mechanism — switches carry DC bias in this mode only);
    /// * load thermal `2·4kT·R_tg` referred by the internal gain.
    ///
    /// Passive budget:
    /// * 2× TCA input noise, folded;
    /// * series-resistance thermal `2·4kT(Rdeg+ron)/(gm·Reff)²`, folded;
    /// * switch-overlap conduction noise (both switches on during LO
    ///   transitions inject current directly into the virtual ground);
    /// * 2× TIA input current noise (incl. OTA flicker) `/gm_eff²` —
    ///   this is where the passive mode's higher white noise and its
    ///   sub-100 kHz corner come from.
    pub fn internal_noise_psd(&self, f_if: f64) -> f64 {
        let four_kt = 4.0 * BOLTZMANN * 300.0;
        let tca2 = 2.0 * self.params.tca.en2_white * Self::FOLDING;
        match self.mode {
            MixerMode::Active => {
                // Effective TCA-input→pair-gate gain, from the measured
                // curves at band centre.
                let f0 = 2.45e9;
                let av1 = (self.params.h_gate_at(f0) / self.params.h_in_at(f0)).max(1e-3);
                let gm = self.gm_pair();
                let gamma = self.cfg.nmos.gamma_noise;
                let pair = 2.0 * four_kt * gamma * gm / (gm * gm * av1 * av1) * Self::FOLDING;
                // Switch flicker via the Darabi/Abidi mechanism: the
                // switch pair's gate-referred 1/f voltage modulates the
                // commutation instants, producing an output noise current
                // i_n = (4·I/(π·A_LO))·v_n that bypasses the signal gain —
                // the classic active-mixer 1/f penalty.
                let nm = &self.cfg.nmos;
                let i_sw = self.params.i_switch_active;
                let vov_sw = 0.25; // overdrive at the commutation instant
                let gm_sw = 2.0 * i_sw / vov_sw;
                let vn2 = if f_if > 0.0 {
                    nm.kf * i_sw
                        / (nm.cox * self.cfg.quad_w * self.cfg.quad_l * f_if * gm_sw * gm_sw)
                } else {
                    0.0
                };
                let slope = 4.0 * i_sw / (std::f64::consts::PI * self.cfg.lo_amplitude);
                // Two switch pairs contribute to the differential output.
                // The ×20 power excess models the cyclostationary 1/f
                // elevation of periodically switched devices (trap
                // occupancy re-randomized every LO cycle) plus the
                // triode-interval contribution the saturated-gm referral
                // underestimates.
                let flicker_out = 2.0 * slope * slope * vn2 * 20.0;
                // Internal gain from the TCA input node to the output.
                let g_int = av1 * COMMUTATION_GAIN * gm * self.cfg.tg_load_r;
                let r = self.cfg.tg_load_r;
                let load = 2.0 * four_kt * r; // 4kT/R·R² per side
                tca2 + pair + (flicker_out * r * r + load) / (g_int * g_int)
            }
            MixerMode::Passive => {
                let gm_reff = self.params.tca.gm * self.reff_tca();
                let series = 2.0 * four_kt * (self.params.rdeg + self.params.ron_quad)
                    / (gm_reff * gm_reff)
                    * Self::FOLDING;
                let gme = self.gm_eff_passive();
                let gamma = self.cfg.nmos.gamma_noise;
                // Overlap window: both switches of a pair conduct for a
                // fraction of the LO period, injecting 4kTγ·g_on into the
                // virtual ground.
                let overlap = 0.25;
                let sw = 2.0 * four_kt * gamma * overlap / self.params.ron_quad / (gme * gme);
                let tia = 2.0 * self.params.tia_in2_at(f_if) / (gme * gme);
                tca2 + series + sw + tia
            }
        }
    }

    /// DSB noise figure (dB) at the given IF (RF near 2.45 GHz).
    ///
    /// Referred to the matched, terminated differential port:
    /// the source EMF noise reaches the TCA input attenuated by the
    /// termination divider squared, and the termination itself adds an
    /// equal part — the familiar 3 dB matched-port floor:
    /// `F = 1 + (T/T0)·(rterm/rs) + en_int²/(4kT0·rs_diff·d²)`.
    pub fn nf_db(&self, f_if: f64) -> f64 {
        let d = self.termination_divider();
        let rs_diff = 2.0 * self.cfg.rs;
        let rterm_diff = 2.0 * self.cfg.input_term_r;
        let source_at_node = 4.0 * BOLTZMANN * T0_NOISE * rs_diff * d * d;
        // Termination noise sees the complementary divider rs/(rs+rterm).
        let dt = self.cfg.rs / (self.cfg.rs + self.cfg.input_term_r);
        let term_at_node = 4.0 * BOLTZMANN * 300.0 * rterm_diff * dt * dt;
        let f =
            1.0 + term_at_node / source_at_node + self.internal_noise_psd(f_if) / source_at_node;
        10.0 * f.log10()
    }

    /// Flicker corner: IF below which the NF rises 3 dB above its
    /// mid-band (1 MHz–10 MHz) value. `None` if never within [1 kHz, 10 MHz].
    pub fn flicker_corner_hz(&self) -> Option<f64> {
        let mid = self.nf_db(5e6);
        let mut f = 10e6;
        while f > 1e3 {
            if self.nf_db(f) > mid + 3.0 {
                return Some(f);
            }
            f /= 1.25;
        }
        None
    }

    /// Input-referred IIP3 peak amplitude (V, differential, at the EMF —
    /// the termination divider relaxes it by 1/d).
    ///
    /// Cascade of the TCA polynomial and (active only) the Gm-pair
    /// polynomial; the paper's passive linearity advantage appears
    /// because the TIA virtual ground removes voltage swing from the
    /// switches, leaving the (Rdeg-degenerated) TCA as the limit.
    pub fn a_iip3(&self) -> f64 {
        self.a_iip3_at(2.45e9)
    }

    /// Input-referred IIP3 peak amplitude at a specific RF frequency:
    /// the interstage poles (TCA output pole, gate-coupling high-pass)
    /// attenuate the drive reaching the Gm pair, relaxing its
    /// contribution in-band exactly as a lab measurement sees it.
    pub fn a_iip3_at(&self, f_rf: f64) -> f64 {
        let a_tca = self.params.tca.a_iip3().unwrap_or(f64::INFINITY);
        match self.mode {
            MixerMode::Active => {
                // Referred to the EMF with the *measured* drive levels:
                // the TCA sees h_in·v_emf, the pair sees h_gate·v_emf.
                let h_in = self.params.h_in_at(f_rf);
                let h_gate = self.params.h_gate_at(f_rf);
                let a_pair = self.params.poly_gm_pair.a_iip3().unwrap_or(f64::INFINITY);
                let inv = (h_in * h_in) / (a_tca * a_tca) + (h_gate * h_gate) / (a_pair * a_pair);
                (1.0 / inv).sqrt()
            }
            MixerMode::Passive => a_tca / self.termination_divider(),
        }
    }

    /// IIP3 in dBm into the 50 Ω reference.
    pub fn iip3_dbm(&self) -> f64 {
        vpeak_to_dbm(self.a_iip3(), Z0)
    }

    /// Maximum differential output swing before hard clipping (V peak).
    pub fn output_swing_limit(&self) -> f64 {
        match self.mode {
            // Each side swings only ±≈0.16 V around the TG-load common
            // mode before the quad/Gm stack runs out of headroom (the
            // load drop already spends ~0.6 V of the 1.2 V supply) —
            // ±0.32 V differential.
            MixerMode::Active => 0.32,
            // TIA outputs swing nearly rail-to-rail (the OTA's second
            // stage is "for high swing"): ±0.55 V each side → ±1.1 V
            // differential.
            MixerMode::Passive => 1.1,
        }
    }

    /// 1 dB compression point (dBm): the smaller of the polynomial
    /// (soft) compression and the output-swing (hard) limit — the paper
    /// notes "1dB-CP of the circuit is limited by the output swing".
    pub fn p1db_dbm(&self) -> f64 {
        let poly_p1db = self.a_iip3_at(2.45e9) * remix_dsp::units::db_to_amplitude(-9.64);
        let cg = self.conv_gain(2.45e9, 5e6);
        // Hard-limiter describing function: a symmetric clip at L drops
        // the fundamental gain by 1 dB when the linear output amplitude
        // reaches L/0.795 (solve (2/π)(asin r + r√(1−r²)) = 10^(−1/20)).
        let swing_p1db = self.output_swing_limit() / (0.795 * cg);
        vpeak_to_dbm(poly_p1db.min(swing_p1db), Z0)
    }

    /// IIP2 (dBm) for a given differential mismatch fraction (e.g. 0.01
    /// for 1 % device mismatch). Perfect balance → ∞; the paper reports
    /// "> 65 dBm for both cases".
    pub fn iip2_dbm(&self, mismatch: f64) -> f64 {
        assert!(mismatch > 0.0 && mismatch < 1.0);
        let p = &self.params.tca.poly;
        let a_iip2_single = (p.a1 / p.a2).abs();
        // Referred to the EMF: the termination divider relaxes the
        // even-order intercept by 1/d (IM2 scales with the node
        // amplitude squared).
        let a_emf = a_iip2_single / (mismatch * self.termination_divider());
        vpeak_to_dbm(a_emf, Z0)
    }

    /// Supply power of this mode (mW), measured on the full netlist.
    pub fn power_mw(&self) -> f64 {
        match self.mode {
            MixerMode::Active => self.params.power_active_mw,
            MixerMode::Passive => self.params.power_passive_mw,
        }
    }

    /// Builds the time-domain behavioral chain (RF samples in, IF samples
    /// out) for an LO at `f_lo`. Used by the two-tone/compression
    /// measurement harnesses; its small-signal gain matches
    /// [`conv_gain`](Self::conv_gain) by construction.
    pub fn chain(&self, f_lo: f64) -> ChainProcessor {
        // The two-tone / compression stimuli are narrowband around the
        // LO, so the RF-domain frequency shaping is applied as *scalar*
        // gains evaluated at f_lo (the discrete IIR filters would be
        // operating right at their corners otherwise); the IF low-pass
        // stays as a real filter since the products spread across the IF.
        match self.mode {
            MixerMode::Active => {
                let h_in = self.params.h_in_at(f_lo);
                let h_gate = self.params.h_gate_at(f_lo);
                // Input network up to the TCA gates.
                let front = PolyProcessor::new(Poly3::linear(h_in));
                // TCA nonlinearity normalized to the realized gate-to-gate
                // voltage gain (its polynomial is expressed at the TCA
                // input).
                let p_tca = &self.params.tca.poly;
                let av_eff = h_gate / h_in;
                let scale = av_eff / p_tca.a1.abs();
                let tca_stage = Poly3 {
                    a1: -p_tca.a1 * scale,
                    a2: -p_tca.a2 * scale,
                    a3: -p_tca.a3 * scale,
                };
                let p_pair = self.params.poly_gm_pair;
                let mixer = LoMixerProcessor::new(f_lo).with_transition(0.05);
                let load = Poly3::linear(self.cfg.tg_load_r);
                ChainProcessor::new()
                    .then(Box::new(front))
                    .then(Box::new(PolyProcessor::new(tca_stage)))
                    .then(Box::new(PolyProcessor::new(p_pair)))
                    .then(Box::new(mixer))
                    .then(Box::new(
                        PolyProcessor::new(load).with_pole(self.if_pole_hz()),
                    ))
            }
            MixerMode::Passive => {
                let x = f_lo / self.input_hp_hz();
                let hp_in = x / (1.0 + x * x).sqrt();
                let lp_rf = 1.0 / (1.0 + (f_lo / self.rf_pole_hz()).powi(2)).sqrt();
                let front =
                    PolyProcessor::new(Poly3::linear(self.termination_divider() * hp_in * lp_rf));
                // TCA V→I with its polynomial scaled by the current
                // divider, commutation, transimpedance.
                let div = self.gm_eff_passive() / self.params.tca.gm;
                let p = &self.params.tca.poly;
                let vto_i = Poly3 {
                    a1: -p.a1 * div,
                    a2: -p.a2 * div,
                    a3: -p.a3 * div,
                };
                let mixer = LoMixerProcessor::new(f_lo).with_transition(0.05);
                let zf = Poly3::linear(self.params.tia.zf0);
                ChainProcessor::new()
                    .then(Box::new(front))
                    .then(Box::new(PolyProcessor::new(vto_i)))
                    .then(Box::new(mixer))
                    .then(Box::new(
                        PolyProcessor::new(zf).with_pole(self.if_pole_hz()),
                    ))
            }
        }
    }

    /// Renders this mode as an analytic [`Cascade`](remix_rfkit::Cascade) of
    /// [`StageSpec`](remix_rfkit::blocks::StageSpec)s — the bridge to
    /// `remix_rfkit::budget`'s link-budget
    /// tables. Gains are the same factors `conv_gain` multiplies; the
    /// noise entries are the per-stage input-referred PSDs of
    /// [`internal_noise_psd`](Self::internal_noise_psd)'s budget.
    pub fn as_cascade(&self) -> remix_rfkit::Cascade {
        use remix_rfkit::blocks::{SignalDomain, StageSpec};
        let four_kt = 4.0 * remix_circuit::consts::BOLTZMANN * 300.0;
        let term = StageSpec {
            name: "termination".into(),
            gain: self.termination_divider(),
            a_iip3: None,
            // Port noise floor: the termination contributes like the
            // source (captured in nf_db's port term; representative here).
            en2_white: four_kt * (self.cfg.rs + self.cfg.input_term_r) / 2.0,
            flicker_corner: 0.0,
            pole: None,
            domain: SignalDomain::Rf,
        };
        match self.mode {
            MixerMode::Active => {
                let f0 = 2.45e9;
                let av1 = self.params.h_gate_at(f0) / self.params.h_in_at(f0);
                let tca = StageSpec {
                    name: "tca".into(),
                    gain: av1,
                    a_iip3: self.params.tca.a_iip3(),
                    en2_white: 2.0 * self.params.tca.en2_white * Self::FOLDING,
                    flicker_corner: 0.0,
                    pole: Some(self.rf_pole_hz()),
                    domain: SignalDomain::Rf,
                };
                let gm = self.gm_pair();
                let pair_quad = StageSpec {
                    name: "pair+quad".into(),
                    gain: COMMUTATION_GAIN * gm * self.cfg.tg_load_r,
                    a_iip3: self.params.poly_gm_pair.a_iip3(),
                    en2_white: 2.0 * four_kt * self.cfg.nmos.gamma_noise / gm * Self::FOLDING,
                    flicker_corner: 80e3,
                    pole: Some(self.if_pole_hz()),
                    domain: SignalDomain::If,
                };
                remix_rfkit::Cascade::new()
                    .stage(term)
                    .stage(tca)
                    .stage(pair_quad)
            }
            MixerMode::Passive => {
                let gme = self.gm_eff_passive();
                let tca = StageSpec {
                    name: "tca+switches".into(),
                    // Transconductance stage: the "gain" entry carries the
                    // V→I factor (S); the following transimpedance stage
                    // carries Ω, so the cascade product stays a voltage
                    // gain.
                    gain: gme,
                    a_iip3: self.params.tca.a_iip3(),
                    en2_white: 2.0 * self.params.tca.en2_white * Self::FOLDING,
                    flicker_corner: 0.0,
                    pole: Some(self.rf_pole_hz()),
                    domain: SignalDomain::Rf,
                };
                let tia = StageSpec {
                    name: "quad+tia".into(),
                    gain: COMMUTATION_GAIN * self.params.tia.zf0,
                    a_iip3: None,
                    // In this formalism the preceding stage's gain is a
                    // transconductance (S), so this stage's noise entry is
                    // the TIA input *current* PSD (A²/Hz): the cascade's
                    // referral divides by gme², landing at volts² again.
                    en2_white: 2.0 * self.params.tia_in2_at(5e6),
                    flicker_corner: 30e3,
                    pole: Some(self.if_pole_hz()),
                    domain: SignalDomain::If,
                };
                remix_rfkit::Cascade::new()
                    .stage(term)
                    .stage(tca)
                    .stage(tia)
            }
        }
    }

    /// Applies the hard output-swing clamp to a sample buffer (the chain
    /// itself is polynomial and does not saturate).
    pub fn clamp_output(&self, x: &mut [f64]) {
        let lim = self.output_swing_limit();
        for v in x.iter_mut() {
            *v = v.clamp(-lim, lim);
        }
    }

    /// One-call processing: run RF samples through the chain and clamp.
    pub fn process(&self, input: &[f64], fs: f64, f_lo: f64) -> Vec<f64> {
        let mut chain = self.chain(f_lo);
        let mut buf = input.to_vec();
        chain.process(&mut buf, fs);
        self.clamp_output(&mut buf);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn extraction() -> &'static ExtractedParams {
        static CACHE: OnceLock<ExtractedParams> = OnceLock::new();
        CACHE.get_or_init(|| ExtractedParams::extract(&MixerConfig::default()).unwrap())
    }

    fn model(mode: MixerMode) -> MixerModel {
        MixerModel::new(MixerConfig::default(), mode, extraction().clone())
    }

    #[test]
    fn extraction_sane() {
        let p = extraction();
        assert!(p.ron_quad > 5.0 && p.ron_quad < 300.0, "ron {}", p.ron_quad);
        assert!(p.rdeg > 5.0 && p.rdeg < 500.0, "rdeg {}", p.rdeg);
        assert!(p.power_active_mw > 2.0 && p.power_active_mw < 20.0);
        assert!(p.power_passive_mw > 2.0 && p.power_passive_mw < 20.0);
        assert!(
            p.poly_gm_pair.a1.abs() > 1e-3,
            "gm pair {:?}",
            p.poly_gm_pair
        );
        assert!(!p.tia_in2_curve.is_empty());
    }

    #[test]
    fn flat_encoding_round_trips_and_rejects_malformed() {
        let p = extraction();
        let flat = p.to_flat();
        assert_eq!(
            flat.len(),
            23 + 3 + 2 * (p.tia_in2_curve.len() + p.h_in_curve.len() + p.h_gate_curve.len())
        );
        let back = ExtractedParams::from_flat(&flat).unwrap();
        assert_eq!(&back, p);
        // Truncation, trailing data, and corrupted curve lengths all
        // refuse to deserialize.
        assert!(ExtractedParams::from_flat(&flat[..flat.len() - 1]).is_none());
        let mut longer = flat.clone();
        longer.push(0.0);
        assert!(ExtractedParams::from_flat(&longer).is_none());
        let mut bad_len = flat.clone();
        bad_len[23] = -1.0;
        assert!(ExtractedParams::from_flat(&bad_len).is_none());
        bad_len[23] = 2.5;
        assert!(ExtractedParams::from_flat(&bad_len).is_none());
        assert!(ExtractedParams::from_flat(&[]).is_none());
    }

    #[test]
    fn active_gain_higher_than_passive() {
        let a = model(MixerMode::Active);
        let p = model(MixerMode::Passive);
        let ga = a.conv_gain_db(2.45e9, 5e6);
        let gp = p.conv_gain_db(2.45e9, 5e6);
        assert!(ga > gp, "active {ga} dB vs passive {gp} dB");
        // Both in the paper's ballpark.
        assert!(ga > 20.0 && ga < 40.0, "active {ga}");
        assert!(gp > 15.0 && gp < 35.0, "passive {gp}");
    }

    #[test]
    fn band_edges_ordering() {
        let a = model(MixerMode::Active);
        let p = model(MixerMode::Passive);
        // Both modes are wideband: at 0.25 GHz each has rolled off
        // markedly from its midband value (sub-band rejection exists),
        // while at 2.45 GHz both are within 1 dB of their peaks.
        for (m, name) in [(&a, "active"), (&p, "passive")] {
            let low = m.conv_gain_db(0.25e9, 5e6);
            let mid = m.conv_gain_db(2.45e9, 5e6);
            assert!(mid - low > 2.0, "{name}: low {low:.1} vs mid {mid:.1}");
        }
        // The active gate-coupling high-pass exists (corner near 1 GHz).
        assert!(a.gate_hp_hz() > 0.4e9 && a.gate_hp_hz() < 2e9);
    }

    #[test]
    fn nf_ordering_matches_paper() {
        let a = model(MixerMode::Active);
        let p = model(MixerMode::Passive);
        let nfa = a.nf_db(5e6);
        let nfp = p.nf_db(5e6);
        assert!(nfa < nfp, "active NF {nfa} must beat passive {nfp}");
        assert!(nfa > 3.0 && nfa < 15.0, "active NF {nfa}");
        assert!(nfp > 5.0 && nfp < 18.0, "passive NF {nfp}");
    }

    #[test]
    fn iip3_ordering_matches_paper() {
        let a = model(MixerMode::Active);
        let p = model(MixerMode::Passive);
        let ia = a.iip3_dbm();
        let ip = p.iip3_dbm();
        assert!(
            ip > ia + 5.0,
            "passive IIP3 {ip} should exceed active {ia} by many dB"
        );
    }

    #[test]
    fn p1db_below_iip3() {
        for mode in [MixerMode::Active, MixerMode::Passive] {
            let m = model(mode);
            assert!(
                m.p1db_dbm() < m.iip3_dbm() - 8.0,
                "{mode:?}: p1db {} vs iip3 {}",
                m.p1db_dbm(),
                m.iip3_dbm()
            );
        }
    }

    #[test]
    fn iip2_above_65dbm_at_1pct_mismatch() {
        for mode in [MixerMode::Active, MixerMode::Passive] {
            let m = model(mode);
            assert!(m.iip2_dbm(0.01) > 65.0, "{mode:?}: {}", m.iip2_dbm(0.01));
        }
    }

    #[test]
    fn flicker_corner_passive_below_active() {
        let a = model(MixerMode::Active);
        let p = model(MixerMode::Passive);
        let ca = a.flicker_corner_hz();
        let cp = p.flicker_corner_hz();
        // Paper: passive corner < 100 kHz; active corner visibly higher.
        if let Some(cp) = cp {
            assert!(cp < 300e3, "passive corner {cp:.3e}");
        }
        if let (Some(ca), Some(cp)) = (ca, cp) {
            assert!(ca > cp, "active corner {ca:.3e} vs passive {cp:.3e}");
        }
    }

    #[test]
    fn chain_gain_matches_analytic_small_signal() {
        for mode in [MixerMode::Active, MixerMode::Passive] {
            let m = model(mode);
            // Realistic operating point: 2.4 GHz LO, 5 MHz IF, sampled
            // fast enough that the discrete filters track their analog
            // prototypes.
            let f_lo = 2.4e9;
            let f_if = 5e6;
            let f_rf = f_lo + f_if;
            let plan = remix_dsp::tone::CoherentPlan::new(&[f_if], 1 << 16, 0.5e6).unwrap();
            assert!(plan.fs > 2.2 * f_rf, "sampling too slow: {}", plan.fs);
            let a_in = 1e-4;
            let input = remix_dsp::signal::tone(a_in, f_rf, 0.0, plan.fs, plan.n * 2);
            let out = m.process(&input, plan.fs, f_lo);
            let settled = &out[plan.n..];
            let a_if = remix_dsp::tone::goertzel_amplitude(settled, plan.bins[0], plan.n);
            let measured = a_if / a_in;
            let analytic = m.conv_gain(f_rf, f_if);
            let err_db = 20.0 * (measured / analytic).log10().abs();
            assert!(
                err_db < 1.5,
                "{mode:?}: chain {measured:.2} vs analytic {analytic:.2} ({err_db:.2} dB)"
            );
        }
    }

    #[test]
    fn cascade_view_matches_conv_gain() {
        for mode in [MixerMode::Active, MixerMode::Passive] {
            let m = model(mode);
            let c = m.as_cascade();
            let dc = c.conv_gain_db(2.45e9, 5e6);
            let dm = m.conv_gain_db(2.45e9, 5e6);
            assert!(
                (dc - dm).abs() < 1.0,
                "{mode:?}: cascade {dc:.2} dB vs model {dm:.2} dB"
            );
        }
    }

    #[test]
    fn third_harmonic_conversion_is_one_third() {
        // Square-wave commutation converts RF near 3·LO with 1/3 the
        // fundamental's efficiency (the 2/(πn) Fourier series) — a classic
        // property the time-domain chain must exhibit.
        let m = model(MixerMode::Passive);
        let f_lo = 500e6;
        let f_if = 5e6;
        let plan = remix_dsp::tone::CoherentPlan::new(&[f_if], 1 << 14, 0.5e6).unwrap();
        let a_in = 1e-4;
        let measure = |f_rf: f64| {
            let x = remix_dsp::signal::tone(a_in, f_rf, 0.0, plan.fs, plan.n * 2);
            let y = m.process(&x, plan.fs, f_lo);
            remix_dsp::tone::goertzel_amplitude(&y[plan.n..], plan.bins[0], plan.n)
        };
        let fund = measure(f_lo + f_if);
        let third = measure(3.0 * f_lo + f_if);
        // The chain's front-path factors are evaluated at f_lo (narrowband
        // model), so both tones see the same front gain and the raw ratio
        // isolates the commutation physics. The 5 % LO edge transition
        // slightly suppresses the 3rd harmonic (+few % on the ratio).
        let ratio = fund / third;
        assert!(
            (2.7..=3.8).contains(&ratio),
            "harmonic conversion ratio {ratio:.2}, expected ≈3"
        );
    }

    #[test]
    fn power_close_between_modes() {
        let a = model(MixerMode::Active);
        let p = model(MixerMode::Passive);
        assert!((a.power_mw() - p.power_mw()).abs() < 3.0);
    }
}
