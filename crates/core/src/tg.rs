//! Transmission-gate load sizing (paper Fig. 5(b)).
//!
//! The active-mode load is a TG "connected between VDD and IF output ...
//! W/L of PMOS and NMOS is chosen so that some voltage drop occurs across
//! it and act as a resistance. Rtot = R_PMOS ∥ R_NMOS." Because the IF
//! node sits near VDD, the NMOS (gate at VDD) has almost no `vgs` and the
//! PMOS (gate at 0, source at VDD) dominates — sizing accounts for that.

use remix_circuit::{MosModel, TgSizing};

/// Sizes a TG *load to VDD* for the target resistance at a pass voltage
/// `v_pass` (the IF common mode, typically `vdd − I·R`).
///
/// # Panics
///
/// Panics unless `0 < v_pass < vdd` and the target is positive.
pub fn size_tg_load(
    n: &MosModel,
    p: &MosModel,
    target_r: f64,
    vdd: f64,
    v_pass: f64,
    l: f64,
) -> TgSizing {
    assert!(target_r > 0.0 && target_r.is_finite());
    assert!(v_pass > 0.0 && v_pass < vdd);
    let (vth_n, _) = n.threshold(0.0);
    let (vth_p, _) = p.threshold(0.0);
    // PMOS: source at vdd, gate at 0 → overdrive = vdd − vth_p.
    let ov_p = vdd - vth_p;
    // NMOS: gate at vdd, channel near v_pass → overdrive may be ≤ 0.
    let ov_n = (vdd - v_pass - vth_n).max(0.0);
    let g_target = 1.0 / target_r;
    if ov_n <= 0.0 {
        // PMOS carries everything (θ-corrected triode conductance).
        let wp = g_target * l * (1.0 + p.theta * ov_p) / (p.kp * ov_p);
        TgSizing {
            wn: wp / 2.0, // keep the NMOS present per the topology
            wp,
            l,
        }
    } else {
        // Split by available overdrives.
        let g_half = g_target / 2.0;
        TgSizing {
            wn: g_half * l * (1.0 + n.theta * ov_n) / (n.kp * ov_n),
            wp: g_half * l * (1.0 + p.theta * ov_p) / (p.kp * ov_p),
            l,
        }
    }
}

/// Conductance of a TG load at the given pass voltage (triode estimate).
pub fn tg_load_conductance(
    n: &MosModel,
    p: &MosModel,
    sizing: &TgSizing,
    vdd: f64,
    v_pass: f64,
) -> f64 {
    let (vth_n, _) = n.threshold(0.0);
    let (vth_p, _) = p.threshold(0.0);
    let mut g = 0.0;
    let ov_n = vdd - v_pass - vth_n;
    if ov_n > 0.0 {
        g += n.kp * (sizing.wn / sizing.l) * ov_n / (1.0 + n.theta * ov_n);
    }
    let ov_p = vdd - vth_p;
    if ov_p > 0.0 {
        g += p.kp * (sizing.wp / sizing.l) * ov_p / (1.0 + p.theta * ov_p);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nm() -> MosModel {
        MosModel::nmos_65nm()
    }
    fn pm() -> MosModel {
        MosModel::pmos_65nm()
    }

    #[test]
    fn sized_load_hits_target_near_vdd() {
        // IF common mode 0.8 V (0.4 V drop): NMOS nearly off.
        let s = size_tg_load(&nm(), &pm(), 800.0, 1.2, 0.8, 65e-9);
        let g = tg_load_conductance(&nm(), &pm(), &s, 1.2, 0.8);
        let r = 1.0 / g;
        assert!((r - 800.0).abs() < 0.15 * 800.0, "r = {r}");
    }

    #[test]
    fn lower_target_means_wider() {
        let s1 = size_tg_load(&nm(), &pm(), 1600.0, 1.2, 0.8, 65e-9);
        let s2 = size_tg_load(&nm(), &pm(), 400.0, 1.2, 0.8, 65e-9);
        assert!(s2.wp > s1.wp);
    }

    #[test]
    fn midrail_pass_uses_both_devices() {
        let s = size_tg_load(&nm(), &pm(), 500.0, 1.2, 0.5, 65e-9);
        // At v_pass = 0.5 the NMOS has overdrive and is sized meaningfully.
        assert!(s.wn > 0.0 && s.wp > 0.0);
        let g = tg_load_conductance(&nm(), &pm(), &s, 1.2, 0.5);
        assert!((1.0 / g - 500.0).abs() < 0.15 * 500.0);
    }

    #[test]
    #[should_panic(expected = "v_pass")]
    fn bad_pass_voltage_rejected() {
        let _ = size_tg_load(&nm(), &pm(), 500.0, 1.2, 1.5, 65e-9);
    }
}
