//! # remix-core
//!
//! The paper's contribution: a 1.2 V wide-band **reconfigurable
//! active/passive down-conversion mixer** (Gupta et al., SOCC 2015),
//! rebuilt at transistor level on the `remix` simulation substrate and
//! wrapped in extracted behavioral models that regenerate every figure of
//! the paper's evaluation.
//!
//! ## Architecture (paper Fig. 2–7)
//!
//! * [`tca`] — the fully differential CMOS transconductance amplifier;
//! * [`quad`] — the four-NMOS switching (LO) quad shared by both modes;
//! * [`tia`] — the two-stage Miller OTA and the RF‖CF transimpedance
//!   stage that loads the passive mode (powered down in active mode);
//! * [`tg`] — transmission-gate load sizing (the active-mode load);
//! * [`mixer`] — the complete single-circuitry netlist with all seven
//!   mode switches, buildable in either [`MixerMode`];
//! * [`model`] — behavioral models extracted from the transistor level,
//!   with conversion-gain / NF / IIP3 / P1dB formulas;
//! * [`eval`] — figure-level sweeps (Fig. 8, 9, 10, Table I);
//! * [`baseline`] — dedicated single-mode comparators;
//! * [`bias`], [`config`] — bias solvers and the design parameter set.
//!
//! ## Quick start
//!
//! ```no_run
//! use remix_core::{eval::MixerEvaluator, MixerConfig, MixerMode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let eval = MixerEvaluator::new(&MixerConfig::default())?;
//! let active = eval.model(MixerMode::Active);
//! println!("conversion gain: {:.1} dB", active.conv_gain_db(2.45e9, 5e6));
//! println!("noise figure:    {:.1} dB", active.nf_db(5e6));
//! println!("IIP3:            {:.1} dBm", active.iip3_dbm());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod bias;
pub mod checkpoint;
pub mod config;
pub mod corners;
pub mod eval;
pub mod mixer;
pub mod model;
pub mod montecarlo;
pub mod plans;
pub mod quad;
pub mod sensitivity;
pub mod tca;
pub mod tg;
pub mod tia;

pub use config::{MixerConfig, MixerMode};
pub use corners::{
    sweep_corners, sweep_corners_resumable, sweep_corners_resumable_with, Corner, CornerOutcome,
    CornerSweep, ProcessCorner,
};
pub use eval::MixerEvaluator;
pub use mixer::{LoDrive, MixerNodes, ReconfigurableMixer, RfDrive};
pub use model::{ExtractedParams, MixerModel};
