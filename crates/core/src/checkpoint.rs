//! Monte-Carlo checkpoint persistence.
//!
//! Long mismatch studies get interrupted — a laptop lid, a CI timeout, a
//! faulted sample worth inspecting before continuing. This module writes
//! every completed sample (pass *or* fail) to a small JSON file so
//! [`iip2_study`](crate::montecarlo::iip2_study) can resume without
//! recomputing. Per-sample RNG seeding makes the skip exact: sample `k`
//! draws the same mismatch whether or not samples `0..k` were replayed.
//!
//! The JSON is hand-rolled (the workspace carries no serialization
//! dependency) and deliberately small:
//!
//! ```json
//! {
//!   "version": 1,
//!   "seed": 53733,
//!   "sigma_vt": 0.002,
//!   "sigma_kp_frac": 0.005,
//!   "samples": [
//!     {"index": 0, "ok": true, "iip2_dbm": 66.2},
//!     {"index": 7, "ok": false, "trace": "dc operating point: ..."}
//!   ]
//! }
//! ```
//!
//! Failed samples persist their trace *summary* line only; the full
//! attempt table lives in the process that observed the failure. A
//! checkpoint whose mismatch configuration (seed or σ values) differs
//! from the requested study is ignored rather than trusted — resuming
//! someone else's run would silently mix distributions.
//!
//! ## Generic study checkpoints (version 2)
//!
//! The Monte-Carlo format above is pinned (version 1) and stays as-is.
//! Other interruptible sweeps — corner sweeps today, any indexed study
//! tomorrow — use the *generic* version-2 document written by
//! [`save_study`] and read back by [`load_study`]: a study label, a
//! flat `(name, value)` configuration fingerprint, and one record per
//! completed unit (a flat `f64` payload on success, a trace summary on
//! failure):
//!
//! ```json
//! {
//!   "version": 2,
//!   "study": "corners",
//!   "config": [["base.vdd", 1.2], ["corner0.temp_c", 27.0]],
//!   "records": [
//!     {"index": 0, "ok": true, "values": [1.0, 2.0]},
//!     {"index": 1, "ok": false, "trace": "dc operating point: ..."}
//!   ]
//! }
//! ```
//!
//! The same trust rule applies: a document whose study label or
//! configuration fingerprint differs from the request is ignored, never
//! merged.

use crate::montecarlo::{MismatchConfig, SampleOutcome};
use remix_analysis::ConvergenceTrace;
use std::fmt::Write as _;
use std::path::Path;

const VERSION: f64 = 1.0;

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the checkpoint document for `outcomes[i]` = sample `i`.
///
/// Non-finite IIP2 values (which should not occur — an `Ok` outcome is a
/// solved sample) are dropped rather than emitted as invalid JSON, so
/// the sample is simply recomputed on resume.
pub fn render(mm: &MismatchConfig, outcomes: &[SampleOutcome]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"version\": {VERSION:?},");
    let _ = writeln!(out, "  \"seed\": {},", mm.seed);
    let _ = writeln!(out, "  \"sigma_vt\": {:?},", mm.sigma_vt);
    let _ = writeln!(out, "  \"sigma_kp_frac\": {:?},", mm.sigma_kp_frac);
    let _ = writeln!(out, "  \"samples\": [");
    let mut first = true;
    for (i, o) in outcomes.iter().enumerate() {
        let line = match o {
            SampleOutcome::Ok(v) if v.is_finite() => {
                format!("    {{\"index\": {i}, \"ok\": true, \"iip2_dbm\": {v:?}}}")
            }
            SampleOutcome::Ok(_) => continue,
            SampleOutcome::Failed(trace) => format!(
                "    {{\"index\": {i}, \"ok\": false, \"trace\": \"{}\"}}",
                escape_json(&trace.summary())
            ),
        };
        if !first {
            let _ = writeln!(out, ",");
        }
        let _ = write!(out, "{line}");
        first = false;
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Writes the checkpoint for the completed `outcomes` to `path`,
/// atomically (see [`atomic_write`]): a crash mid-save leaves the
/// previous checkpoint intact, never a torn file.
///
/// # Errors
///
/// Propagates filesystem errors from the underlying write or rename.
pub fn save(path: &Path, mm: &MismatchConfig, outcomes: &[SampleOutcome]) -> std::io::Result<()> {
    let result = atomic_write(path, &render(mm, outcomes));
    checkpoint_event("save", path, result.is_ok(), outcomes.len());
    result
}

/// Crash-safe file replacement (tmp + fsync + rename), shared with the
/// rest of the stack through [`remix_exec::atomic_write`]: a kill at
/// any instant leaves either the old file or the new one — an in-place
/// `fs::write` could leave a torn prefix that [`load`]/[`load_study`]
/// would have to reject, losing every completed sample.
fn atomic_write(path: &Path, contents: &str) -> std::io::Result<()> {
    remix_exec::atomic_write(path, contents)
}

// ---------------------------------------------------------------------
// Minimal JSON parser (objects, arrays, strings, numbers, bools, null)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Option<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<Json> {
        self.skip_ws();
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Json::Str),
            b't' => self.eat_literal("true").map(|()| Json::Bool(true)),
            b'f' => self.eat_literal("false").map(|()| Json::Bool(false)),
            b'n' => self.eat_literal("null").map(|()| Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Option<Json> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Some(Json::Obj(pairs));
                }
                _ => return None,
            }
        }
    }

    fn array(&mut self) -> Option<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Some(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Some(Json::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one full UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                    let ch = rest.chars().next()?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse::<f64>()
            .ok()
            .map(Json::Num)
    }
}

fn parse(text: &str) -> Option<Json> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos == p.bytes.len() {
        Some(v)
    } else {
        None
    }
}

// ---------------------------------------------------------------------
// Loader
// ---------------------------------------------------------------------

/// Parses checkpoint text into `(index, outcome)` pairs, or `None` when
/// the document is malformed or was written for a different mismatch
/// configuration (seed or σ mismatch).
pub fn restore(text: &str, mm: &MismatchConfig) -> Option<Vec<(usize, SampleOutcome)>> {
    let doc = parse(text)?;
    if doc.get("version")?.as_num()? != VERSION {
        return None;
    }
    let same_config = doc.get("seed")?.as_num()? == mm.seed as f64
        && doc.get("sigma_vt")?.as_num()? == mm.sigma_vt
        && doc.get("sigma_kp_frac")?.as_num()? == mm.sigma_kp_frac;
    if !same_config {
        return None;
    }
    let samples = match doc.get("samples")? {
        Json::Arr(items) => items,
        _ => return None,
    };
    let mut out = Vec::with_capacity(samples.len());
    for s in samples {
        let index = s.get("index")?.as_num()?;
        if index < 0.0 || index.fract() != 0.0 {
            return None;
        }
        let outcome = if s.get("ok")?.as_bool()? {
            SampleOutcome::Ok(s.get("iip2_dbm")?.as_num()?)
        } else {
            SampleOutcome::Failed(ConvergenceTrace::new(s.get("trace")?.as_str()?))
        };
        out.push((index as usize, outcome));
    }
    Some(out)
}

/// Reads and validates the checkpoint at `path`; `None` when the file is
/// missing, unreadable, malformed, or from a different configuration.
pub fn load(path: &Path, mm: &MismatchConfig) -> Option<Vec<(usize, SampleOutcome)>> {
    let restored = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| restore(&text, mm));
    checkpoint_event(
        "load",
        path,
        restored.is_some(),
        restored.as_ref().map_or(0, Vec::len),
    );
    restored
}

// ---------------------------------------------------------------------
// Generic study checkpoints (version 2)
// ---------------------------------------------------------------------

const STUDY_VERSION: f64 = 2.0;

/// Outcome of one completed study unit, in the flat form the version-2
/// checkpoint persists.
#[derive(Debug, Clone, PartialEq)]
pub enum StudyOutcome {
    /// The unit solved; its result flattened to scalars (the study
    /// defines the encoding — see e.g.
    /// [`ExtractedParams::to_flat`](crate::model::ExtractedParams::to_flat)).
    Ok(Vec<f64>),
    /// The unit failed; the one-line trace summary.
    Failed(String),
}

/// Renders a version-2 study checkpoint for the completed `records`
/// (`(index, outcome)` pairs, any order).
///
/// Successful records containing non-finite values are dropped rather
/// than emitted as invalid JSON; those units simply recompute on resume.
pub fn render_study(
    study: &str,
    config: &[(String, f64)],
    records: &[(usize, StudyOutcome)],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"version\": {STUDY_VERSION:?},");
    let _ = writeln!(out, "  \"study\": \"{}\",", escape_json(study));
    let _ = writeln!(out, "  \"config\": [");
    for (i, (name, value)) in config.iter().enumerate() {
        let comma = if i + 1 == config.len() { "" } else { "," };
        let _ = writeln!(out, "    [\"{}\", {value:?}]{comma}", escape_json(name));
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"records\": [");
    let mut first = true;
    for (index, outcome) in records {
        let line = match outcome {
            StudyOutcome::Ok(values) if values.iter().all(|v| v.is_finite()) => {
                let joined = values
                    .iter()
                    .map(|v| format!("{v:?}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("    {{\"index\": {index}, \"ok\": true, \"values\": [{joined}]}}")
            }
            StudyOutcome::Ok(_) => continue,
            StudyOutcome::Failed(trace) => format!(
                "    {{\"index\": {index}, \"ok\": false, \"trace\": \"{}\"}}",
                escape_json(trace)
            ),
        };
        if !first {
            let _ = writeln!(out, ",");
        }
        let _ = write!(out, "{line}");
        first = false;
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Writes the version-2 study checkpoint to `path`, atomically (see
/// [`atomic_write`]): a kill mid-save leaves the previous checkpoint,
/// never a torn file.
///
/// # Errors
///
/// Propagates filesystem errors from the underlying write or rename.
pub fn save_study(
    path: &Path,
    study: &str,
    config: &[(String, f64)],
    records: &[(usize, StudyOutcome)],
) -> std::io::Result<()> {
    let result = atomic_write(path, &render_study(study, config, records));
    checkpoint_event("save_study", path, result.is_ok(), records.len());
    result
}

/// Parses version-2 checkpoint text into `(index, outcome)` pairs, or
/// `None` when the document is malformed or was written for a different
/// study label or configuration fingerprint.
pub fn restore_study(
    text: &str,
    study: &str,
    config: &[(String, f64)],
) -> Option<Vec<(usize, StudyOutcome)>> {
    let doc = parse(text)?;
    if doc.get("version")?.as_num()? != STUDY_VERSION {
        return None;
    }
    if doc.get("study")?.as_str()? != study {
        return None;
    }
    let stored = match doc.get("config")? {
        Json::Arr(items) => items,
        _ => return None,
    };
    if stored.len() != config.len() {
        return None;
    }
    for (item, (name, value)) in stored.iter().zip(config) {
        let pair = match item {
            Json::Arr(pair) if pair.len() == 2 => pair,
            _ => return None,
        };
        if pair[0].as_str()? != name || pair[1].as_num()? != *value {
            return None;
        }
    }
    let records = match doc.get("records")? {
        Json::Arr(items) => items,
        _ => return None,
    };
    let mut out = Vec::with_capacity(records.len());
    for r in records {
        let index = r.get("index")?.as_num()?;
        if index < 0.0 || index.fract() != 0.0 {
            return None;
        }
        let outcome = if r.get("ok")?.as_bool()? {
            let values = match r.get("values")? {
                Json::Arr(items) => items
                    .iter()
                    .map(|v| v.as_num())
                    .collect::<Option<Vec<f64>>>()?,
                _ => return None,
            };
            StudyOutcome::Ok(values)
        } else {
            StudyOutcome::Failed(r.get("trace")?.as_str()?.to_string())
        };
        out.push((index as usize, outcome));
    }
    Some(out)
}

/// Reads and validates the version-2 checkpoint at `path`; `None` when
/// the file is missing, unreadable, malformed, or from a different study
/// or configuration.
pub fn load_study(
    path: &Path,
    study: &str,
    config: &[(String, f64)],
) -> Option<Vec<(usize, StudyOutcome)>> {
    let restored = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| restore_study(&text, study, config));
    checkpoint_event(
        "load_study",
        path,
        restored.is_some(),
        restored.as_ref().map_or(0, Vec::len),
    );
    restored
}

// ---------------------------------------------------------------------
// Bitmap study checkpoints (version 3)
// ---------------------------------------------------------------------

const BITMAP_VERSION: f64 = 3.0;

/// Renders a version-3 bitmap study checkpoint.
///
/// Version 2 implicitly assumed in-order completion: a document was the
/// records written so far, and resuming trusted whatever prefix it
/// held. A work-stealing pool completes units *out of order*, so
/// version 3 makes the completed set explicit: a `total` unit count, a
/// `completed` bitmap (`'1'` per finished index), and sparse, any-order
/// records. The bitmap and the record index set must match exactly —
/// any divergence (a torn file, a partial external edit) rejects the
/// whole document rather than resuming from a lie.
///
/// Successful records containing non-finite values are dropped (bit
/// cleared) rather than emitted as invalid JSON; those units simply
/// recompute on resume. Records with `index >= total` are dropped too.
pub fn render_study_v3(
    study: &str,
    config: &[(String, f64)],
    total: usize,
    records: &[(usize, StudyOutcome)],
) -> String {
    let kept: Vec<&(usize, StudyOutcome)> = records
        .iter()
        .filter(|(index, outcome)| {
            *index < total
                && match outcome {
                    StudyOutcome::Ok(values) => values.iter().all(|v| v.is_finite()),
                    StudyOutcome::Failed(_) => true,
                }
        })
        .collect();
    let mut bitmap = vec!['0'; total];
    for (index, _) in &kept {
        bitmap[*index] = '1';
    }
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"version\": {BITMAP_VERSION:?},");
    let _ = writeln!(out, "  \"study\": \"{}\",", escape_json(study));
    let _ = writeln!(out, "  \"config\": [");
    for (i, (name, value)) in config.iter().enumerate() {
        let comma = if i + 1 == config.len() { "" } else { "," };
        let _ = writeln!(out, "    [\"{}\", {value:?}]{comma}", escape_json(name));
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"total\": {total},");
    let _ = writeln!(
        out,
        "  \"completed\": \"{}\",",
        bitmap.iter().collect::<String>()
    );
    let _ = writeln!(out, "  \"records\": [");
    for (i, (index, outcome)) in kept.iter().enumerate() {
        let comma = if i + 1 == kept.len() { "" } else { "," };
        let line = match outcome {
            StudyOutcome::Ok(values) => {
                let joined = values
                    .iter()
                    .map(|v| format!("{v:?}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("    {{\"index\": {index}, \"ok\": true, \"values\": [{joined}]}}{comma}")
            }
            StudyOutcome::Failed(trace) => format!(
                "    {{\"index\": {index}, \"ok\": false, \"trace\": \"{}\"}}{comma}",
                escape_json(trace)
            ),
        };
        let _ = writeln!(out, "{line}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Writes the version-3 bitmap checkpoint to `path`, atomically: a kill
/// between any two saves leaves one complete, self-consistent document.
///
/// # Errors
///
/// Propagates filesystem errors from the underlying write or rename.
pub fn save_study_v3(
    path: &Path,
    study: &str,
    config: &[(String, f64)],
    total: usize,
    records: &[(usize, StudyOutcome)],
) -> std::io::Result<()> {
    let result = atomic_write(path, &render_study_v3(study, config, total, records));
    checkpoint_event("save_bitmap", path, result.is_ok(), records.len());
    result
}

/// Parses version-3 checkpoint text into `(index, outcome)` pairs
/// sorted by index and clipped to `total`, or `None` when the document
/// is malformed, from a different study/configuration, or internally
/// inconsistent (bitmap and record set must agree bit-for-bit — a torn
/// or hand-edited document is rejected outright, never half-trusted).
/// A document written for a different unit count loads fine: per-index
/// seeding makes studies prefix-stable, so size changes clip or extend
/// rather than reject.
pub fn restore_study_v3(
    text: &str,
    study: &str,
    config: &[(String, f64)],
    total: usize,
) -> Option<Vec<(usize, StudyOutcome)>> {
    let doc = parse(text)?;
    if doc.get("version")?.as_num()? != BITMAP_VERSION {
        return None;
    }
    if doc.get("study")?.as_str()? != study {
        return None;
    }
    let stored = match doc.get("config")? {
        Json::Arr(items) => items,
        _ => return None,
    };
    if stored.len() != config.len() {
        return None;
    }
    for (item, (name, value)) in stored.iter().zip(config) {
        let pair = match item {
            Json::Arr(pair) if pair.len() == 2 => pair,
            _ => return None,
        };
        if pair[0].as_str()? != name || pair[1].as_num()? != *value {
            return None;
        }
    }
    // The document is validated against its *own* recorded size: a
    // study may legitimately be re-run with a different unit count
    // (per-index seeding makes a short study a strict prefix of a long
    // one), so a size difference filters rather than rejects — but any
    // internal bitmap/record divergence still rejects outright.
    let stored_total = doc.get("total")?.as_num()?;
    if stored_total < 0.0 || stored_total.fract() != 0.0 {
        return None;
    }
    let stored_total = stored_total as usize;
    let bitmap = doc.get("completed")?.as_str()?;
    if bitmap.len() != stored_total || bitmap.bytes().any(|b| b != b'0' && b != b'1') {
        return None;
    }
    let records = match doc.get("records")? {
        Json::Arr(items) => items,
        _ => return None,
    };
    let mut seen = vec![false; stored_total];
    let mut out = Vec::with_capacity(records.len());
    for r in records {
        let index = r.get("index")?.as_num()?;
        if index < 0.0 || index.fract() != 0.0 {
            return None;
        }
        let index = index as usize;
        // Every record must be inside the document, claimed by the
        // bitmap, and unique.
        if index >= stored_total || bitmap.as_bytes()[index] != b'1' || seen[index] {
            return None;
        }
        seen[index] = true;
        let outcome = if r.get("ok")?.as_bool()? {
            let values = match r.get("values")? {
                Json::Arr(items) => items
                    .iter()
                    .map(|v| v.as_num())
                    .collect::<Option<Vec<f64>>>()?,
                _ => return None,
            };
            StudyOutcome::Ok(values)
        } else {
            StudyOutcome::Failed(r.get("trace")?.as_str()?.to_string())
        };
        out.push((index, outcome));
    }
    // …and every bitmap claim must be backed by a record.
    let claimed = bitmap.bytes().filter(|&b| b == b'1').count();
    if claimed != out.len() {
        return None;
    }
    // Only now, with the document proven self-consistent, clip to the
    // requested study size.
    out.retain(|&(index, _)| index < total);
    out.sort_by_key(|&(index, _)| index);
    Some(out)
}

/// Reads and validates the version-3 checkpoint at `path`; `None` when
/// missing, unreadable, malformed, inconsistent, or from a different
/// study shape.
pub fn load_study_v3(
    path: &Path,
    study: &str,
    config: &[(String, f64)],
    total: usize,
) -> Option<Vec<(usize, StudyOutcome)>> {
    let restored = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| restore_study_v3(&text, study, config, total));
    checkpoint_event(
        "load_bitmap",
        path,
        restored.is_some(),
        restored.as_ref().map_or(0, Vec::len),
    );
    restored
}

/// Loads a study checkpoint in whatever version it was written:
/// version 3 (bitmap) first, then legacy version 2 — so a study
/// interrupted under an older binary resumes seamlessly under the
/// pooled drivers, which always *save* version 3. Legacy records with
/// `index >= total` are dropped rather than trusted.
pub fn load_study_any(
    path: &Path,
    study: &str,
    config: &[(String, f64)],
    total: usize,
) -> Option<Vec<(usize, StudyOutcome)>> {
    let restored = std::fs::read_to_string(path).ok().and_then(|text| {
        restore_study_v3(&text, study, config, total).or_else(|| {
            restore_study(&text, study, config).map(|records| {
                let mut records: Vec<(usize, StudyOutcome)> = records
                    .into_iter()
                    .filter(|(index, _)| *index < total)
                    .collect();
                records.sort_by_key(|&(index, _)| index);
                records
            })
        })
    });
    checkpoint_event(
        "load_any",
        path,
        restored.is_some(),
        restored.as_ref().map_or(0, Vec::len),
    );
    restored
}

/// The version-3 configuration fingerprint of a Monte-Carlo mismatch
/// study — the same trust boundary the version-1 format enforced
/// through its dedicated `seed`/σ fields.
pub fn mc_study_config(mm: &MismatchConfig) -> Vec<(String, f64)> {
    vec![
        ("seed".to_string(), mm.seed as f64),
        ("sigma_vt".to_string(), mm.sigma_vt),
        ("sigma_kp_frac".to_string(), mm.sigma_kp_frac),
    ]
}

/// Converts a Monte-Carlo sample outcome into the flat study record
/// version 3 persists (`Ok(iip2) → values: [iip2]`).
pub fn mc_record(outcome: &SampleOutcome) -> StudyOutcome {
    match outcome {
        SampleOutcome::Ok(v) => StudyOutcome::Ok(vec![*v]),
        SampleOutcome::Failed(trace) => StudyOutcome::Failed(trace.summary()),
    }
}

/// Loads a Monte-Carlo checkpoint in whatever version it was written —
/// version 3 (bitmap, what the pooled driver saves) first, then the
/// pinned version-1 format — as `(index, outcome)` pairs. A restored
/// failure carries its persisted trace summary, exactly as version 1
/// did.
pub fn load_mc_any(
    path: &Path,
    mm: &MismatchConfig,
    total: usize,
) -> Option<Vec<(usize, SampleOutcome)>> {
    let config = mc_study_config(mm);
    let restored = std::fs::read_to_string(path).ok().and_then(|text| {
        restore_study_v3(&text, "mc_iip2", &config, total)
            .map(|records| {
                records
                    .into_iter()
                    .filter_map(|(index, outcome)| {
                        let sample = match outcome {
                            StudyOutcome::Ok(values) => SampleOutcome::Ok(*values.first()?),
                            StudyOutcome::Failed(trace) => {
                                SampleOutcome::Failed(ConvergenceTrace::new(&trace))
                            }
                        };
                        Some((index, sample))
                    })
                    .collect::<Vec<_>>()
            })
            .or_else(|| {
                restore(&text, mm).map(|samples| {
                    let mut samples: Vec<(usize, SampleOutcome)> = samples
                        .into_iter()
                        .filter(|(index, _)| *index < total)
                        .collect();
                    samples.sort_by_key(|&(index, _)| index);
                    samples
                })
            })
    });
    checkpoint_event(
        "load_any",
        path,
        restored.is_some(),
        restored.as_ref().map_or(0, Vec::len),
    );
    restored
}

/// Counts and (when an observing sink is armed) logs one checkpoint
/// save/load. A failed load is an expected outcome — missing file on
/// first run, stale configuration — not an error, so it is recorded
/// rather than reported.
fn checkpoint_event(op: &'static str, path: &Path, ok: bool, records: usize) {
    if !remix_telemetry::is_armed() {
        return;
    }
    remix_telemetry::counter_add(
        if ok {
            remix_telemetry::names::CORE_CHECKPOINT_OPS_OK
        } else {
            remix_telemetry::names::CORE_CHECKPOINT_OPS_FAILED
        },
        1,
    );
    remix_telemetry::event(
        remix_telemetry::names::CORE_CHECKPOINT,
        vec![
            ("op", remix_telemetry::FieldValue::from(op)),
            (
                "path",
                remix_telemetry::FieldValue::from(path.display().to_string()),
            ),
            ("ok", remix_telemetry::FieldValue::from(u64::from(ok))),
            ("records", remix_telemetry::FieldValue::from(records)),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm() -> MismatchConfig {
        MismatchConfig::default()
    }

    #[test]
    fn parser_handles_scalars_and_nesting() {
        assert_eq!(parse("null"), Some(Json::Null));
        assert_eq!(parse(" true "), Some(Json::Bool(true)));
        assert_eq!(parse("-1.5e3"), Some(Json::Num(-1500.0)));
        assert_eq!(parse(r#""a\"b\nA""#), Some(Json::Str("a\"b\nA".into())));
        let doc = parse(r#"{"a": [1, {"b": false}], "c": "x"}"#).unwrap();
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        match doc.get("a") {
            Some(Json::Arr(items)) => {
                assert_eq!(items[0], Json::Num(1.0));
                assert_eq!(items[1].get("b").and_then(Json::as_bool), Some(false));
            }
            other => panic!("expected array, got {other:?}"),
        }
        // Trailing garbage and truncation must not parse.
        assert_eq!(parse("{} x"), None);
        assert_eq!(parse(r#"{"a": "#), None);
    }

    #[test]
    fn round_trips_passed_and_failed_samples() {
        let outcomes = vec![
            SampleOutcome::Ok(66.25),
            SampleOutcome::Failed(ConvergenceTrace::new("dc operating point")),
            SampleOutcome::Ok(58.0),
        ];
        let text = render(&mm(), &outcomes);
        let restored = restore(&text, &mm()).unwrap();
        assert_eq!(restored.len(), 3);
        assert_eq!(restored[0], (0, SampleOutcome::Ok(66.25)));
        assert_eq!(restored[2], (2, SampleOutcome::Ok(58.0)));
        match &restored[1] {
            (1, SampleOutcome::Failed(trace)) => {
                assert!(trace.analysis.contains("dc operating point"));
            }
            other => panic!("expected failed sample, got {other:?}"),
        }
    }

    #[test]
    fn escaping_survives_hostile_trace_text() {
        let trace = ConvergenceTrace::new("line\nwith \"quotes\" and \\slashes\\ and\ttabs");
        let text = render(&mm(), &[SampleOutcome::Failed(trace.clone())]);
        let restored = restore(&text, &mm()).unwrap();
        match &restored[0].1 {
            SampleOutcome::Failed(t) => assert!(t.analysis.contains("\"quotes\"")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mismatched_config_is_rejected() {
        let text = render(&mm(), &[SampleOutcome::Ok(70.0)]);
        let other_seed = MismatchConfig {
            seed: mm().seed + 1,
            ..mm()
        };
        assert!(restore(&text, &other_seed).is_none());
        let other_sigma = MismatchConfig {
            sigma_vt: 9e-3,
            ..mm()
        };
        assert!(restore(&text, &other_sigma).is_none());
        assert!(restore("not json at all", &mm()).is_none());
    }

    fn study_config() -> Vec<(String, f64)> {
        vec![("base.vdd".into(), 1.2), ("corner0.temp_c".into(), 27.0)]
    }

    #[test]
    fn study_round_trips_records_in_order() {
        let records = vec![
            (0, StudyOutcome::Ok(vec![1.0, -2.5e-3])),
            (
                1,
                StudyOutcome::Failed("dc operating point: gave up".into()),
            ),
            (3, StudyOutcome::Ok(vec![])),
        ];
        let text = render_study("corners", &study_config(), &records);
        let restored = restore_study(&text, "corners", &study_config()).unwrap();
        assert_eq!(restored, records);
    }

    #[test]
    fn study_rejects_wrong_label_config_or_version() {
        let records = vec![(0, StudyOutcome::Ok(vec![7.0]))];
        let text = render_study("corners", &study_config(), &records);
        assert!(restore_study(&text, "sweeps", &study_config()).is_none());
        let mut other = study_config();
        other[0].1 = 1.3;
        assert!(restore_study(&text, "corners", &other).is_none());
        other = study_config();
        other.pop();
        assert!(restore_study(&text, "corners", &other).is_none());
        // A v1 Monte-Carlo document must not load as a study and vice
        // versa.
        let v1 = render(&mm(), &[SampleOutcome::Ok(60.0)]);
        assert!(restore_study(&v1, "corners", &study_config()).is_none());
        assert!(restore(&text, &mm()).is_none());
    }

    #[test]
    fn study_drops_non_finite_payloads() {
        let records = vec![
            (0, StudyOutcome::Ok(vec![f64::NAN])),
            (1, StudyOutcome::Ok(vec![4.0])),
        ];
        let text = render_study("corners", &study_config(), &records);
        let restored = restore_study(&text, "corners", &study_config()).unwrap();
        assert_eq!(restored, vec![(1, StudyOutcome::Ok(vec![4.0]))]);
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("remix_ckpt_{}_{name}", std::process::id()))
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_files() {
        let path = temp_path("atomic.json");
        let _ = std::fs::remove_file(&path);
        save(&path, &mm(), &[SampleOutcome::Ok(66.0)]).expect("save");
        let restored = load(&path, &mm()).expect("load");
        assert_eq!(restored, vec![(0, SampleOutcome::Ok(66.0))]);
        // No .tmp siblings linger after a successful save.
        let dir = path.parent().expect("parent");
        let stem = path
            .file_name()
            .expect("name")
            .to_string_lossy()
            .into_owned();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .expect("read_dir")
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(&stem) && n.contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_checkpoint_is_rejected_then_resume_recovers() {
        // Simulates the failure mode the atomic rename prevents: a
        // writer killed mid-save leaving a truncated document. The
        // loader must reject the torn file outright (no partial trust),
        // and the next save must restore a loadable checkpoint.
        let path = temp_path("torn.json");
        let outcomes = vec![
            SampleOutcome::Ok(66.25),
            SampleOutcome::Failed(ConvergenceTrace::new("dc operating point")),
            SampleOutcome::Ok(58.0),
        ];
        save(&path, &mm(), &outcomes).expect("save");
        let full = std::fs::read_to_string(&path).expect("read");
        for cut in [1, full.len() / 2, full.len() - 2] {
            std::fs::write(&path, &full[..cut]).expect("tear");
            assert!(
                load(&path, &mm()).is_none(),
                "torn checkpoint (cut at {cut}) must be rejected, not half-trusted"
            );
        }
        // Resume path: the study recomputes and saves again; the new
        // checkpoint round-trips in full.
        save(&path, &mm(), &outcomes).expect("re-save");
        let restored = load(&path, &mm()).expect("reload");
        assert_eq!(restored.len(), 3);
        assert_eq!(restored[0], (0, SampleOutcome::Ok(66.25)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_study_checkpoint_is_rejected_then_resume_recovers() {
        let path = temp_path("torn_study.json");
        let records = vec![
            (0, StudyOutcome::Ok(vec![1.0, 2.0])),
            (2, StudyOutcome::Failed("gave up".into())),
        ];
        save_study(&path, "corners", &study_config(), &records).expect("save");
        let full = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, &full[..full.len() * 2 / 3]).expect("tear");
        assert!(load_study(&path, "corners", &study_config()).is_none());
        save_study(&path, "corners", &study_config(), &records).expect("re-save");
        assert_eq!(
            load_study(&path, "corners", &study_config()).expect("reload"),
            records
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn atomic_write_to_unwritable_dir_errors_cleanly() {
        let path = Path::new("/nonexistent-remix-dir/ckpt.json");
        assert!(save(path, &mm(), &[SampleOutcome::Ok(1.0)]).is_err());
    }

    #[test]
    fn non_finite_values_are_dropped_not_emitted() {
        let text = render(
            &mm(),
            &[SampleOutcome::Ok(f64::NAN), SampleOutcome::Ok(60.0)],
        );
        let restored = restore(&text, &mm()).unwrap();
        assert_eq!(restored, vec![(1, SampleOutcome::Ok(60.0))]);
    }

    #[test]
    fn bitmap_round_trips_out_of_order_sparse_records() {
        // A pool completes units in arbitrary order; the document must
        // come back sorted, with holes preserved as holes.
        let records = vec![
            (5, StudyOutcome::Ok(vec![5.0])),
            (0, StudyOutcome::Failed("gave up".into())),
            (3, StudyOutcome::Ok(vec![-1.0, 2.0])),
        ];
        let text = render_study_v3("corners", &study_config(), 8, &records);
        assert!(text.contains("\"completed\": \"10010100\""));
        let restored = restore_study_v3(&text, "corners", &study_config(), 8).unwrap();
        assert_eq!(
            restored,
            vec![
                (0, StudyOutcome::Failed("gave up".into())),
                (3, StudyOutcome::Ok(vec![-1.0, 2.0])),
                (5, StudyOutcome::Ok(vec![5.0])),
            ]
        );
    }

    #[test]
    fn bitmap_rejects_wrong_shape_and_inconsistency() {
        let records = vec![(1, StudyOutcome::Ok(vec![7.0]))];
        let text = render_study_v3("corners", &study_config(), 4, &records);
        // Wrong label or config: rejected.
        assert!(restore_study_v3(&text, "sweeps", &study_config(), 4).is_none());
        let mut other = study_config();
        other[0].1 = 1.3;
        assert!(restore_study_v3(&text, "corners", &other, 4).is_none());
        // A different requested size clips/extends instead of rejecting
        // (studies are prefix-stable), so the record at index 1 survives
        // both a grow and a shrink-to-2, but not a shrink-to-1.
        assert_eq!(
            restore_study_v3(&text, "corners", &study_config(), 6).unwrap(),
            vec![(1, StudyOutcome::Ok(vec![7.0]))]
        );
        assert!(restore_study_v3(&text, "corners", &study_config(), 1)
            .unwrap()
            .is_empty());
        // A v2 document is not a v3 document and vice versa.
        let v2 = render_study("corners", &study_config(), &records);
        assert!(restore_study_v3(&v2, "corners", &study_config(), 4).is_none());
        assert!(restore_study(&text, "corners", &study_config()).is_none());
        // Bitmap claiming an index with no record backing it: rejected.
        let lying = text.replace("\"0100\"", "\"0110\"");
        assert!(restore_study_v3(&lying, "corners", &study_config(), 4).is_none());
        // Record present but bitmap denies it: rejected.
        let denying = text.replace("\"0100\"", "\"0000\"");
        assert!(restore_study_v3(&denying, "corners", &study_config(), 4).is_none());
    }

    #[test]
    fn bitmap_drops_non_finite_and_out_of_range_records() {
        let records = vec![
            (0, StudyOutcome::Ok(vec![f64::INFINITY])),
            (1, StudyOutcome::Ok(vec![4.0])),
            (9, StudyOutcome::Ok(vec![1.0])), // beyond total
        ];
        let text = render_study_v3("corners", &study_config(), 3, &records);
        assert!(text.contains("\"completed\": \"010\""));
        let restored = restore_study_v3(&text, "corners", &study_config(), 3).unwrap();
        assert_eq!(restored, vec![(1, StudyOutcome::Ok(vec![4.0]))]);
    }

    #[test]
    fn torn_bitmap_checkpoint_is_rejected() {
        let path = temp_path("torn_bitmap.json");
        let records = vec![
            (0, StudyOutcome::Ok(vec![1.0])),
            (2, StudyOutcome::Failed("gave up".into())),
        ];
        save_study_v3(&path, "corners", &study_config(), 4, &records).expect("save");
        let full = std::fs::read_to_string(&path).expect("read");
        for cut in [1, full.len() / 2, full.len() - 2] {
            std::fs::write(&path, &full[..cut]).expect("tear");
            assert!(
                load_study_v3(&path, "corners", &study_config(), 4).is_none(),
                "torn bitmap checkpoint (cut at {cut}) must be rejected"
            );
        }
        save_study_v3(&path, "corners", &study_config(), 4, &records).expect("re-save");
        assert_eq!(
            load_study_v3(&path, "corners", &study_config(), 4).expect("reload"),
            records
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_study_any_reads_both_versions() {
        let path = temp_path("any_version.json");
        let records = vec![(0, StudyOutcome::Ok(vec![1.5]))];
        // Legacy v2 document on disk → still resumes.
        save_study(&path, "corners", &study_config(), &records).expect("save v2");
        assert_eq!(
            load_study_any(&path, "corners", &study_config(), 4).expect("v2 fallback"),
            records
        );
        // v3 document → preferred path.
        save_study_v3(&path, "corners", &study_config(), 4, &records).expect("save v3");
        assert_eq!(
            load_study_any(&path, "corners", &study_config(), 4).expect("v3"),
            records
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_mc_any_reads_v1_and_v3_monte_carlo_checkpoints() {
        let path = temp_path("mc_any.json");
        let outcomes = vec![
            SampleOutcome::Ok(66.25),
            SampleOutcome::Failed(ConvergenceTrace::new("dc operating point")),
        ];
        // Legacy v1 document.
        save(&path, &mm(), &outcomes).expect("save v1");
        let from_v1 = load_mc_any(&path, &mm(), 4).expect("v1 fallback");
        assert_eq!(from_v1.len(), 2);
        assert_eq!(from_v1[0], (0, SampleOutcome::Ok(66.25)));
        // v3 bitmap document written by the pooled driver.
        let records: Vec<(usize, StudyOutcome)> = outcomes
            .iter()
            .enumerate()
            .map(|(i, o)| (i, mc_record(o)))
            .collect();
        save_study_v3(&path, "mc_iip2", &mc_study_config(&mm()), 4, &records).expect("save v3");
        let from_v3 = load_mc_any(&path, &mm(), 4).expect("v3");
        assert_eq!(from_v3[0], (0, SampleOutcome::Ok(66.25)));
        match &from_v3[1].1 {
            SampleOutcome::Failed(trace) => {
                assert!(trace.analysis.contains("dc operating point"));
            }
            other => panic!("expected failure, got {other:?}"),
        }
        // A different mismatch config rejects both versions.
        let other = MismatchConfig {
            seed: mm().seed + 1,
            ..mm()
        };
        assert!(load_mc_any(&path, &other, 4).is_none());
        let _ = std::fs::remove_file(&path);
    }
}
