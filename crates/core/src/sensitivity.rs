//! Design-sensitivity analysis.
//!
//! Finite-difference sensitivities of the headline metrics to each design
//! knob: re-runs the full extraction with one parameter scaled by a small
//! factor and differences the results. This is how the calibration in
//! DESIGN.md §4 was steered, packaged as a reusable tool (and an ablation
//! companion: the ablation bin removes mechanisms, this quantifies
//! *slopes* around the chosen design point).

use crate::config::MixerConfig;
use crate::model::{ExtractedParams, MixerModel};
use crate::MixerMode;
use remix_analysis::AnalysisError;

/// A tunable design knob: a name plus how to scale it on a config.
pub struct Knob {
    /// Human-readable name.
    pub name: &'static str,
    /// Applies a multiplicative factor to the knob.
    pub apply: fn(&mut MixerConfig, f64),
}

impl std::fmt::Debug for Knob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Knob({})", self.name)
    }
}

/// The standard knob set (the parameters the paper itself calls out as
/// design freedoms).
pub fn standard_knobs() -> Vec<Knob> {
    vec![
        Knob {
            name: "tca_width",
            apply: |c, k| {
                c.tca_wn *= k;
                c.tca_wp *= k;
            },
        },
        Knob {
            name: "tca_rload",
            apply: |c, k| c.tca_rload *= k,
        },
        Knob {
            name: "tg_load_r",
            apply: |c, k| c.tg_load_r *= k,
        },
        Knob {
            name: "tail_current",
            apply: |c, k| c.tail_current *= k,
        },
        Knob {
            name: "tia_rf",
            apply: |c, k| {
                c.tia_rf *= k;
                c.tia_cf /= k; // keep the IF corner
            },
        },
        Knob {
            name: "quad_w",
            apply: |c, k| c.quad_w *= k,
        },
        Knob {
            name: "sw12_w",
            apply: |c, k| c.sw12_w *= k,
        },
        Knob {
            name: "lo_amplitude",
            apply: |c, k| c.lo_amplitude *= k,
        },
    ]
}

/// Metrics captured per evaluation point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSet {
    /// Active conversion gain (dB).
    pub cg_active_db: f64,
    /// Passive conversion gain (dB).
    pub cg_passive_db: f64,
    /// Active NF (dB).
    pub nf_active_db: f64,
    /// Passive NF (dB).
    pub nf_passive_db: f64,
    /// Active IIP3 (dBm).
    pub iip3_active_dbm: f64,
    /// Passive IIP3 (dBm).
    pub iip3_passive_dbm: f64,
}

/// Evaluates the metric set for a configuration.
///
/// # Errors
///
/// Propagates extraction errors.
pub fn metrics_for(cfg: &MixerConfig) -> Result<MetricSet, AnalysisError> {
    let params = ExtractedParams::extract(cfg)?;
    let a = MixerModel::new(cfg.clone(), MixerMode::Active, params.clone());
    let p = MixerModel::new(cfg.clone(), MixerMode::Passive, params);
    Ok(MetricSet {
        cg_active_db: a.conv_gain_db(2.45e9, 5e6),
        cg_passive_db: p.conv_gain_db(2.45e9, 5e6),
        nf_active_db: a.nf_db(5e6),
        nf_passive_db: p.nf_db(5e6),
        iip3_active_dbm: a.iip3_dbm(),
        iip3_passive_dbm: p.iip3_dbm(),
    })
}

/// Sensitivity of the metric set to one knob: metric change per +10 %
/// knob change (central difference over ±10 %).
#[derive(Debug, Clone)]
pub struct Sensitivity {
    /// Knob name.
    pub knob: &'static str,
    /// ∂metric per +10 % of the knob.
    pub delta: MetricSet,
}

/// Computes sensitivities for each knob around `base`.
///
/// # Errors
///
/// Propagates extraction errors at any perturbed point.
pub fn sensitivity_table(
    base: &MixerConfig,
    knobs: &[Knob],
) -> Result<Vec<Sensitivity>, AnalysisError> {
    let mut out = Vec::with_capacity(knobs.len());
    for knob in knobs {
        let mut up = base.clone();
        (knob.apply)(&mut up, 1.10);
        let mut dn = base.clone();
        (knob.apply)(&mut dn, 0.90);
        let mu = metrics_for(&up)?;
        let md = metrics_for(&dn)?;
        out.push(Sensitivity {
            knob: knob.name,
            delta: MetricSet {
                cg_active_db: (mu.cg_active_db - md.cg_active_db) / 2.0,
                cg_passive_db: (mu.cg_passive_db - md.cg_passive_db) / 2.0,
                nf_active_db: (mu.nf_active_db - md.nf_active_db) / 2.0,
                nf_passive_db: (mu.nf_passive_db - md.nf_passive_db) / 2.0,
                iip3_active_dbm: (mu.iip3_active_dbm - md.iip3_active_dbm) / 2.0,
                iip3_passive_dbm: (mu.iip3_passive_dbm - md.iip3_passive_dbm) / 2.0,
            },
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_slopes_have_expected_signs() {
        let base = MixerConfig::default();
        let knobs: Vec<Knob> = standard_knobs()
            .into_iter()
            .filter(|k| matches!(k.name, "tg_load_r" | "tia_rf"))
            .collect();
        let table = sensitivity_table(&base, &knobs).unwrap();
        let tg = table.iter().find(|s| s.knob == "tg_load_r").unwrap();
        // More load resistance → more active gain, passive untouched.
        assert!(tg.delta.cg_active_db > 0.2, "{:?}", tg.delta);
        assert!(tg.delta.cg_passive_db.abs() < 0.1);
        let rf = table.iter().find(|s| s.knob == "tia_rf").unwrap();
        // More feedback R → more passive gain (≈0.83 dB per 10 %).
        assert!(rf.delta.cg_passive_db > 0.4, "{:?}", rf.delta);
        assert!(rf.delta.cg_active_db.abs() < 0.1);
    }

    #[test]
    fn metrics_for_matches_direct_models() {
        let base = MixerConfig::default();
        let m = metrics_for(&base).unwrap();
        assert!(m.cg_active_db > m.cg_passive_db);
        assert!(m.iip3_passive_dbm > m.iip3_active_dbm);
        assert!(m.nf_active_db < m.nf_passive_db);
    }

    #[test]
    fn standard_knob_set_is_complete() {
        let knobs = standard_knobs();
        assert!(knobs.len() >= 8);
        let names: Vec<_> = knobs.iter().map(|k| k.name).collect();
        for expected in ["tg_load_r", "tia_rf", "tail_current", "lo_amplitude"] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        // Debug impl is informative.
        assert!(format!("{:?}", knobs[0]).contains(knobs[0].name));
    }
}
