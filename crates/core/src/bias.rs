//! Bias-point solvers.
//!
//! The paper biases its tail device (switch 7) "in saturation region to
//! provide current source" and tunes the Gm devices' gate voltage for
//! gain. These helpers invert the device equation: given a target drain
//! current, find the gate voltage.

use remix_circuit::{MosModel, MosPolarity};
use remix_numerics::brent;

/// Gate-source voltage that makes an NMOS of the given geometry carry
/// `target` amps at drain-source voltage `vds` (source and bulk at 0).
///
/// # Panics
///
/// Panics if the target is not achievable below `vgs = vdd` (i.e. the
/// device is too small), or on non-positive inputs.
pub fn nmos_vgs_for_current(
    model: &MosModel,
    w: f64,
    l: f64,
    vds: f64,
    target: f64,
    vdd: f64,
) -> f64 {
    assert_eq!(model.polarity, MosPolarity::Nmos, "expects an NMOS model");
    assert!(target > 0.0 && w > 0.0 && l > 0.0 && vds > 0.0);
    let id_at = |vgs: f64| model.evaluate(vds, vgs, 0.0, 0.0).id * (w / l) - target;
    assert!(
        id_at(vdd) > 0.0,
        "device cannot carry {target} A even at vgs = {vdd}"
    );
    brent(id_at, 0.0, vdd, 1e-9).expect("current is monotone in vgs") // audit: allow(AUD001): the bracket is asserted two lines up; Brent cannot fail on a sign-changing interval
}

/// Saturation check: `true` if an NMOS at the given bias has
/// `vds > vgs − vth` (current-source quality).
pub fn nmos_is_saturated(model: &MosModel, vgs: f64, vds: f64) -> bool {
    let (vth, _) = model.threshold(0.0);
    vds > vgs - vth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_for_known_current() {
        let m = MosModel::nmos_65nm();
        let (w, l, vds) = (20e-6, 130e-9, 0.2);
        let target = 1.0e-3;
        let vgs = nmos_vgs_for_current(&m, w, l, vds, target, 1.2);
        let got = m.evaluate(vds, vgs, 0.0, 0.0).id * (w / l);
        assert!((got - target).abs() < 1e-6, "got {got}");
        assert!(vgs > 0.3 && vgs < 0.9, "vgs = {vgs}");
    }

    #[test]
    fn larger_current_needs_larger_vgs() {
        let m = MosModel::nmos_65nm();
        let v1 = nmos_vgs_for_current(&m, 20e-6, 130e-9, 0.2, 0.5e-3, 1.2);
        let v2 = nmos_vgs_for_current(&m, 20e-6, 130e-9, 0.2, 2.0e-3, 1.2);
        assert!(v2 > v1);
    }

    #[test]
    #[should_panic(expected = "cannot carry")]
    fn impossible_target_panics() {
        let m = MosModel::nmos_65nm();
        let _ = nmos_vgs_for_current(&m, 1e-6, 130e-9, 0.2, 1.0, 1.2);
    }

    #[test]
    fn saturation_check() {
        let m = MosModel::nmos_65nm();
        assert!(nmos_is_saturated(&m, 0.5, 0.3));
        assert!(!nmos_is_saturated(&m, 0.9, 0.3));
    }
}
