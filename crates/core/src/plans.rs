//! The shipped measurement plans of the paper's figures, as lintable
//! [`SimPlan`] descriptions.
//!
//! Each function mirrors — cheaply, with no evaluator construction — the
//! exact numerical parameters its figure's bench binary uses: the fig 8
//! RF sweep grid, the fig 9 IF/noise sweep, the fig 10 two-tone FFT
//! record, the Table I single-tone compression record. The bench
//! binaries lint these before spending seconds on extraction, and the
//! test suite pins that the shipped plans stay `SIM`-clean while a
//! deliberately broken variant does not.
//!
//! All plans carry [`PlanTargets::paper`]: 5 MHz IF, 100 kHz flicker
//! corner, 0.5–5.5 GHz RF band.

use remix_dsp::tone::CoherentPlan;
use remix_lint::{PlanTargets, SimPlan};
use remix_rfkit::twotone::TwoTonePlan;

/// LO frequency of the linearity and compression measurements (Hz).
pub const F_LO: f64 = 2.4e9;

/// IF output frequency of the paper's spot measurements (Hz).
pub const F_IF: f64 = 5e6;

/// Fig. 8 conversion-gain sweep: 0.25–7 GHz in 0.25 GHz steps, judged
/// against the paper's 0.5–5.5 GHz band.
pub fn fig8_plan() -> SimPlan {
    let freqs: Vec<f64> = (1..=28).map(|k| 0.25e9 * k as f64).collect();
    SimPlan::new("fig8 conversion gain vs RF")
        .with_sweep(freqs[0], *freqs.last().unwrap()) // audit: allow(AUD001): the 1..=28 grid is non-empty by construction
        .with_targets(PlanTargets::paper())
}

/// Fig. 9 NF/gain vs IF sweep: log grid 1 kHz – 100 MHz, which doubles
/// as the noise band and must bracket both the 100 kHz flicker corner
/// and the 5 MHz IF.
pub fn fig9_plan() -> SimPlan {
    let ifs: Vec<f64> = (0..=25).map(|k| 1e3 * 10f64.powf(k as f64 / 5.0)).collect();
    SimPlan::new("fig9 NF vs IF")
        .with_noise_band(ifs[0], *ifs.last().unwrap()) // audit: allow(AUD001): the 0..=25 grid is non-empty by construction
        .with_targets(PlanTargets::paper())
}

/// Fig. 10 two-tone IIP3 record: IF tones at 5/6 MHz, all five product
/// bins coherent in a 32k record at 0.5 MHz resolution, behavioral
/// record sampled fast enough for the 2.4 GHz LO.
pub fn fig10_plan() -> SimPlan {
    let tt = TwoTonePlan::new(F_IF, 6e6, 1 << 15, 0.5e6).expect("paper two-tone plan"); // audit: allow(AUD001): constant paper plan parameters; validated by a unit test
    SimPlan::new("fig10 two-tone IIP3")
        .with_fft(tt.fs(), tt.n())
        .with_tones(&tt.plan.tones())
        .with_timestep(1.0 / tt.fs())
        .with_lo(F_LO + tt.f2)
        .with_targets(PlanTargets::paper())
}

/// Table I compression record: single IF tone in the same 32k coherent
/// record the 1 dB compression sweep uses.
pub fn table1_plan() -> SimPlan {
    let plan = CoherentPlan::new(&[F_IF], 1 << 15, 0.5e6).expect("paper compression plan"); // audit: allow(AUD001): constant paper plan parameters; validated by a unit test
    SimPlan::new("table1 compression")
        .with_fft(plan.fs, plan.n)
        .with_tones(&plan.tones())
        .with_timestep(1.0 / plan.fs)
        .with_lo(F_LO + F_IF)
        .with_targets(PlanTargets::paper())
}

/// Every shipped figure/table plan, with its short label.
pub fn shipped_plans() -> Vec<(&'static str, SimPlan)> {
    vec![
        ("fig8", fig8_plan()),
        ("fig9", fig9_plan()),
        ("fig10", fig10_plan()),
        ("table1", table1_plan()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use remix_lint::{lint_plan, LintConfig, RuleId};

    #[test]
    fn shipped_plans_are_sim_clean() {
        for (label, plan) in shipped_plans() {
            let report = lint_plan(&plan, &LintConfig::default());
            assert!(report.is_empty(), "{label} plan:\n{report}");
        }
    }

    #[test]
    fn an_aliased_two_tone_variant_fires_sim002() {
        // Same tones, but an 8 MHz record: the 6 MHz tone (and both IM3
        // products) land beyond Nyquist.
        let mut plan = fig10_plan();
        plan.sample_rate = Some(8e6);
        plan.fft_len = Some(1 << 10);
        plan.timestep = None; // isolate the FFT defect
        let report = lint_plan(&plan, &LintConfig::default());
        assert_eq!(report.by_rule(RuleId::NoncoherentFft).len(), 1, "{report}");
        assert!(!report.is_clean());
    }

    #[test]
    fn a_narrowed_fig8_sweep_fires_sim005() {
        let mut plan = fig8_plan();
        plan.sweep_band = Some((1e9, 3e9));
        let report = lint_plan(&plan, &LintConfig::default());
        assert_eq!(report.by_rule(RuleId::SweepRange).len(), 1);
    }

    #[test]
    fn record_resolves_the_lo_by_a_wide_margin() {
        let plan = fig10_plan();
        let fs = plan.sample_rate.unwrap();
        let lo = plan.lo_freq.unwrap();
        assert!(fs / lo > 2.0, "fs = {fs:.3e}, lo = {lo:.3e}");
    }
}
