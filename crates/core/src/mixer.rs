//! The reconfigurable mixer netlist (paper Fig. 4) — both modes in one
//! circuit, switched by control voltages, exactly as fabricated silicon
//! would be.
//!
//! Signal path:
//!
//! ```text
//!            ┌── Mp1 (sw1) ──┐                 (passive: current route)
//! RF ─ TCA ──┤               ├─ quad in ─ QUAD ─ quad out ─┬─ TG load ─ VDD
//!            └─ Cg ┬ Mn1 gate┘   (LO±)                     ├─ Cc
//!                  Rb → Vb       Mn1/Mn2 = Gm (sw5-6)      ├─ TIA → IF out
//!                                tail = M7 (sw7)           (passive)
//! ```
//!
//! Mode control:
//!
//! | switch | element          | active        | passive       |
//! |--------|------------------|---------------|---------------|
//! | 1-2    | PMOS Mp1/Mp2     | off (Vg=VDD)  | on (Vg=0), doubles as Rdeg |
//! | 3-4    | TG loads to VDD  | on            | off           |
//! | 5-6    | Gm MOS Mn1/Mn2   | biased (Vb)   | off (Vb=0)    |
//! | 7      | tail NMOS M7     | saturated     | off           |
//! | p3     | TIA power        | off           | on            |

use crate::bias::nmos_vgs_for_current;
use crate::config::{MixerConfig, MixerMode};
use crate::quad::build_quad;
use crate::tca::build_tca_half;
use crate::tg::size_tg_load;
use crate::tia::build_tia;
use remix_circuit::{Circuit, Element, Node, TransmissionGate, Waveform};

/// RF drive applied to the differential input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RfDrive {
    /// Bias only (operating-point / noise studies).
    Bias,
    /// Small-signal AC excitation of 1 V differential (0.5 V per side).
    Ac,
    /// A single tone of the given *differential* peak amplitude.
    Tone {
        /// RF frequency (Hz).
        freq: f64,
        /// Differential peak amplitude (V).
        amplitude: f64,
    },
    /// Two equal tones (IIP3 stimulus), each of the given differential
    /// peak amplitude.
    TwoTone {
        /// First tone (Hz).
        f1: f64,
        /// Second tone (Hz).
        f2: f64,
        /// Differential peak amplitude per tone (V).
        amplitude: f64,
    },
}

/// LO drive description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoDrive {
    /// LO frequency (Hz).
    pub freq: f64,
    /// When `true` the LO is *held* at its positive extreme (LO+ high,
    /// LO− low) instead of oscillating. At the sinusoid's DC midpoint all
    /// four switches are off, so operating-point and power measurements
    /// must be taken at an extreme — at any instant of a real LO cycle
    /// exactly one switch pair conducts, and the held state is
    /// representative of the cycle-averaged supply current.
    pub held_extreme: bool,
}

impl LoDrive {
    /// A sinusoidal LO at `freq`.
    pub fn sine(freq: f64) -> Self {
        LoDrive {
            freq,
            held_extreme: false,
        }
    }

    /// LO held at its positive extreme (for OP/power studies).
    pub fn held(freq: f64) -> Self {
        LoDrive {
            freq,
            held_extreme: true,
        }
    }
}

/// All externally interesting nodes of the built mixer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixerNodes {
    /// RF source EMF nodes (before the 50 Ω source resistances).
    pub rf_emf_p: Node,
    /// Negative-side EMF.
    pub rf_emf_n: Node,
    /// TCA input (gate) nodes.
    pub in_p: Node,
    /// Negative side.
    pub in_n: Node,
    /// TCA output nodes.
    pub tca_p: Node,
    /// Negative side.
    pub tca_n: Node,
    /// Quad source (input) nodes.
    pub qin_p: Node,
    /// Negative side.
    pub qin_n: Node,
    /// Quad drain (output) nodes — the active-mode IF output.
    pub qout_p: Node,
    /// Negative side.
    pub qout_n: Node,
    /// TIA outputs — the passive-mode IF output.
    pub tia_p: Node,
    /// Negative side.
    pub tia_n: Node,
    /// LO gate nodes.
    pub lo_p: Node,
    /// Negative side.
    pub lo_n: Node,
}

impl MixerNodes {
    /// The mode-appropriate IF output pair (paper: active output taken
    /// before the TIA, passive output at the TIA).
    pub fn if_out(&self, mode: MixerMode) -> (Node, Node) {
        match mode {
            MixerMode::Active => (self.qout_p, self.qout_n),
            MixerMode::Passive => (self.tia_p, self.tia_n),
        }
    }
}

/// The reconfigurable down-conversion mixer.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigurableMixer {
    config: MixerConfig,
}

impl ReconfigurableMixer {
    /// Creates a mixer with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`MixerConfig::assert_valid`]).
    pub fn new(config: MixerConfig) -> Self {
        config.assert_valid();
        ReconfigurableMixer { config }
    }

    /// The configuration.
    pub fn config(&self) -> &MixerConfig {
        &self.config
    }

    /// Builds the complete transistor-level netlist for `mode` with the
    /// given RF and LO drives.
    pub fn build(&self, mode: MixerMode, rf: &RfDrive, lo: &LoDrive) -> (Circuit, MixerNodes) {
        let cfg = &self.config;
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.add_vsource("vdd", vdd, Circuit::gnd(), Waveform::Dc(cfg.vdd));

        // --- RF differential input with source resistance and coupling ---
        let rf_emf_p = ckt.node("rf_emf_p");
        let rf_emf_n = ckt.node("rf_emf_n");
        let in_p = ckt.node("in_p");
        let in_n = ckt.node("in_n");
        let (wave_p, wave_n, ac): (Waveform, Waveform, f64) = match *rf {
            RfDrive::Bias => (Waveform::Dc(0.0), Waveform::Dc(0.0), 0.0),
            RfDrive::Ac => (Waveform::Dc(0.0), Waveform::Dc(0.0), 0.5),
            RfDrive::Tone { freq, amplitude } => (
                Waveform::Sin {
                    offset: 0.0,
                    amplitude: amplitude / 2.0,
                    freq,
                    phase: 0.0,
                    delay: 0.0,
                },
                Waveform::Sin {
                    offset: 0.0,
                    amplitude: -amplitude / 2.0,
                    freq,
                    phase: 0.0,
                    delay: 0.0,
                },
                0.0,
            ),
            RfDrive::TwoTone { f1, f2, amplitude } => (
                Waveform::TwoTone {
                    offset: 0.0,
                    amplitude: amplitude / 2.0,
                    f1,
                    f2,
                },
                Waveform::TwoTone {
                    offset: 0.0,
                    amplitude: -amplitude / 2.0,
                    f1,
                    f2,
                },
                0.0,
            ),
        };
        ckt.add_vsource_ac("vrf_p", rf_emf_p, Circuit::gnd(), wave_p, ac, 0.0);
        ckt.add_vsource_ac(
            "vrf_n",
            rf_emf_n,
            Circuit::gnd(),
            wave_n,
            ac,
            std::f64::consts::PI,
        );
        // 50 Ω source, series coupling cap, then the 50 Ω termination —
        // returned to the (AC-ground) bias rail so it simultaneously
        // terminates the port and biases the TCA gates. The cap ahead of
        // the termination puts the receiver's low band edge at
        // 1/(2π·(rs+rterm)·Cin) ≈ 0.5 GHz as in the paper's Fig. 8.
        let pre_p = ckt.node("rfc_p");
        let pre_n = ckt.node("rfc_n");
        ckt.add_resistor("rs_p", rf_emf_p, pre_p, cfg.rs);
        ckt.add_resistor("rs_n", rf_emf_n, pre_n, cfg.rs);
        ckt.add_capacitor("cin_p", pre_p, in_p, cfg.input_couple_c);
        ckt.add_capacitor("cin_n", pre_n, in_n, cfg.input_couple_c);
        let vbin = ckt.node("vb_in");
        ckt.add_vsource("vb_in", vbin, Circuit::gnd(), Waveform::Dc(cfg.tca_vcm));
        ckt.add_resistor("rterm_p", in_p, vbin, cfg.input_term_r);
        ckt.add_resistor("rterm_n", in_n, vbin, cfg.input_term_r);

        // --- TCA (Fig. 3) ---
        let tca_p = ckt.node("tca_p");
        let tca_n = ckt.node("tca_n");
        build_tca_half(&mut ckt, "tca_p", in_p, tca_p, vdd, cfg);
        build_tca_half(&mut ckt, "tca_n", in_n, tca_n, vdd, cfg);
        // CMFB proxy load defining the output common mode at VDD/2.
        let vcm = ckt.node("vcm");
        ckt.add_vsource("vcm", vcm, Circuit::gnd(), Waveform::Dc(cfg.tca_vcm));
        ckt.add_resistor("rcm_p", tca_p, vcm, cfg.tca_rload);
        ckt.add_resistor("rcm_n", tca_n, vcm, cfg.tca_rload);
        // Layout parasitic at the TCA output (paper's C_PAR).
        ckt.add_capacitor("cpar_p", tca_p, Circuit::gnd(), cfg.node_parasitic_c);
        ckt.add_capacitor("cpar_n", tca_n, Circuit::gnd(), cfg.node_parasitic_c);

        // --- Mode switches Mp1/Mp2 (switch 1-2) ---
        let qin_p = ckt.node("qin_p");
        let qin_n = ckt.node("qin_n");
        let vlogic = ckt.node("vlogic");
        ckt.add_vsource(
            "vlogic",
            vlogic,
            Circuit::gnd(),
            Waveform::Dc(mode.vlogic(cfg.vdd)),
        );
        ckt.add_mosfet(
            "mp1",
            cfg.pmos.clone(),
            cfg.sw12_w,
            cfg.sw12_l,
            qin_p,
            vlogic,
            tca_p,
            vdd,
        );
        ckt.add_mosfet(
            "mp2",
            cfg.pmos.clone(),
            cfg.sw12_w,
            cfg.sw12_l,
            qin_n,
            vlogic,
            tca_n,
            vdd,
        );

        // --- Gm devices Mn1/Mn2 (switch 5-6) and tail M7 (switch 7) ---
        let g_p = ckt.node("gmg_p");
        let g_n = ckt.node("gmg_n");
        ckt.add_capacitor("cg_p", tca_p, g_p, cfg.gm_couple_c);
        ckt.add_capacitor("cg_n", tca_n, g_n, cfg.gm_couple_c);
        let vb_gm = ckt.node("vb_gm");
        let gm_bias = match mode {
            MixerMode::Active => cfg.gm_bias,
            MixerMode::Passive => 0.0,
        };
        ckt.add_vsource("vb_gm", vb_gm, Circuit::gnd(), Waveform::Dc(gm_bias));
        ckt.add_resistor("rb_gm_p", vb_gm, g_p, cfg.gm_bias_r);
        ckt.add_resistor("rb_gm_n", vb_gm, g_n, cfg.gm_bias_r);
        let tail = ckt.node("tail");
        ckt.add_mosfet(
            "mn1",
            cfg.nmos.clone(),
            cfg.gm_w,
            cfg.gm_l,
            qin_p,
            g_p,
            tail,
            Circuit::gnd(),
        );
        ckt.add_mosfet(
            "mn2",
            cfg.nmos.clone(),
            cfg.gm_w,
            cfg.gm_l,
            qin_n,
            g_n,
            tail,
            Circuit::gnd(),
        );
        // Tail current source: NMOS biased in saturation (active) or off.
        let (w7, l7) = (cfg.tail_w, cfg.tail_l);
        let vb7_val = match mode {
            MixerMode::Active => {
                nmos_vgs_for_current(&cfg.nmos, w7, l7, 0.12, cfg.tail_current, cfg.vdd)
            }
            MixerMode::Passive => 0.0,
        };
        let vb7 = ckt.node("vb7");
        ckt.add_vsource("vb7", vb7, Circuit::gnd(), Waveform::Dc(vb7_val));
        ckt.add_mosfet(
            "m7",
            cfg.nmos.clone(),
            w7,
            l7,
            tail,
            vb7,
            Circuit::gnd(),
            Circuit::gnd(),
        );

        // --- LO drive and switching quad ---
        let lo_p = ckt.node("lo_p");
        let lo_n = ckt.node("lo_n");
        let (wave_lo_p, wave_lo_n) = if lo.held_extreme {
            (
                Waveform::Dc(cfg.lo_common + cfg.lo_amplitude),
                Waveform::Dc(cfg.lo_common - cfg.lo_amplitude),
            )
        } else {
            // Rail-to-rail buffered LO: the quad gates see a near-square
            // drive (every practical mixer has LO buffers; a bare sine
            // leaves the NMOS switches conducting for well under half
            // the period because the gate must exceed channel + Vth).
            let period = 1.0 / lo.freq;
            let edge = 0.05 * period;
            let square = |delay: f64| Waveform::Pulse {
                v1: cfg.lo_common - cfg.lo_amplitude,
                v2: cfg.lo_common + cfg.lo_amplitude,
                delay,
                rise: edge,
                fall: edge,
                width: 0.5 * period - edge,
                period,
            };
            (square(0.0), square(0.5 * period))
        };
        ckt.add_vsource("vlo_p", lo_p, Circuit::gnd(), wave_lo_p);
        ckt.add_vsource("vlo_n", lo_n, Circuit::gnd(), wave_lo_n);
        let qout_p = ckt.node("qout_p");
        let qout_n = ckt.node("qout_n");
        build_quad(
            &mut ckt, "quad", qin_p, qin_n, lo_p, lo_n, qout_p, qout_n, cfg,
        );

        // --- TG loads (switch 3-4) and Cc ---
        // Expected IF common mode: the TG only carries the unbled share
        // of the tail current. Sizing at the true CM keeps the TG's NMOS
        // half off there, so the realized load equals the target.
        let v_pass =
            (cfg.vdd - (1.0 - cfg.bleed_frac) * cfg.tail_current / 2.0 * cfg.tg_load_r).max(0.5);
        let tg_sizing = size_tg_load(&cfg.nmos, &cfg.pmos, cfg.tg_load_r, cfg.vdd, v_pass, 65e-9);
        let tg_ctl = ckt.node("tg_ctl");
        let tg_ctl_bar = ckt.node("tg_ctl_bar");
        let (ctl_v, ctl_bar_v) = match mode {
            MixerMode::Active => (cfg.vdd, 0.0),
            MixerMode::Passive => (0.0, cfg.vdd),
        };
        ckt.add_vsource("vtg_ctl", tg_ctl, Circuit::gnd(), Waveform::Dc(ctl_v));
        ckt.add_vsource(
            "vtg_ctlb",
            tg_ctl_bar,
            Circuit::gnd(),
            Waveform::Dc(ctl_bar_v),
        );
        TransmissionGate::add_with_models(
            &mut ckt,
            "tg3",
            vdd,
            qout_p,
            tg_ctl,
            tg_ctl_bar,
            vdd,
            tg_sizing,
            cfg.nmos.clone(),
            cfg.pmos.clone(),
        );
        TransmissionGate::add_with_models(
            &mut ckt,
            "tg4",
            vdd,
            qout_n,
            tg_ctl,
            tg_ctl_bar,
            vdd,
            tg_sizing,
            cfg.nmos.clone(),
            cfg.pmos.clone(),
        );
        // Current bleeding (active mode only): PMOS-equivalent sources
        // carry most of the load DC so the TG stays a high-value signal
        // load inside the 1.2 V headroom.
        let bleed = match mode {
            MixerMode::Active => cfg.bleed_frac * cfg.tail_current / 2.0,
            MixerMode::Passive => 0.0,
        };
        if bleed > 0.0 {
            ckt.add_isource("ibleed_p", vdd, qout_p, Waveform::Dc(bleed));
            ckt.add_isource("ibleed_n", vdd, qout_n, Waveform::Dc(bleed));
        }
        ckt.add_capacitor("cc_p", qout_p, Circuit::gnd(), cfg.cc);
        ckt.add_capacitor("cc_n", qout_n, Circuit::gnd(), cfg.cc);

        // --- TIA (powered only in passive mode; paper's p3 switch) ---
        let tia_p = ckt.node("tia_p");
        let tia_n = ckt.node("tia_n");
        let powered = mode == MixerMode::Passive;
        build_tia(&mut ckt, "tia_p", qout_p, tia_p, vcm, vdd, cfg, powered);
        build_tia(&mut ckt, "tia_n", qout_n, tia_n, vcm, vdd, cfg, powered);

        let nodes = MixerNodes {
            rf_emf_p,
            rf_emf_n,
            in_p,
            in_n,
            tca_p,
            tca_n,
            qin_p,
            qin_n,
            qout_p,
            qout_n,
            tia_p,
            tia_n,
            lo_p,
            lo_n,
        };

        // Build-time ERC: the wiring above is done by hand, so a deny
        // finding here is a bug in this module, not in the caller's use.
        #[cfg(debug_assertions)]
        {
            let report = remix_lint::lint(&ckt, &remix_lint::LintConfig::default());
            assert!(
                report.is_clean(),
                "mixer ({mode:?}) netlist fails ERC:\n{}",
                report.render_text()
            );
        }

        (ckt, nodes)
    }

    /// Runs the full ERC pass over the `mode` netlist (bias drives, LO
    /// held) and returns the report. The paper's netlists must be
    /// deny-clean in both modes; warn-level findings are surfaced for
    /// inspection (see the `lint` binary in `remix-bench`).
    pub fn lint_report(&self, mode: MixerMode) -> remix_lint::LintReport {
        let (ckt, _) = self.build(mode, &RfDrive::Bias, &LoDrive::held(2.4e9));
        remix_lint::lint(&ckt, &remix_lint::LintConfig::default())
    }
}

impl ReconfigurableMixer {
    /// Builds a netlist whose mode *switches live* at `t_switch`: every
    /// control source (Vlogic, the Gm and tail biases, the TG controls,
    /// the TIA bias currents and the bleed sources) transitions from the
    /// `first` mode's level to the `second` mode's level with `edge`-long
    /// ramps — the paper's "reconfiguration in single circuitry"
    /// exercised in one transient run.
    pub fn build_mode_switch(
        &self,
        first: MixerMode,
        second: MixerMode,
        t_switch: f64,
        edge: f64,
        rf: &RfDrive,
        lo: &LoDrive,
    ) -> (Circuit, MixerNodes) {
        assert!(t_switch > 0.0 && edge > 0.0);
        let cfg = &self.config;
        // Base build in Active mode so the bleed sources exist; every
        // mode-dependent value is overwritten below.
        let (mut ckt, nodes) = self.build(MixerMode::Active, rf, lo);

        let vb7_active = nmos_vgs_for_current(
            &cfg.nmos,
            cfg.tail_w,
            cfg.tail_l,
            0.12,
            cfg.tail_current,
            cfg.vdd,
        );
        let level = |name: &str, mode: MixerMode| -> f64 {
            match (name, mode) {
                ("vlogic", m) => m.vlogic(cfg.vdd),
                ("vb_gm", MixerMode::Active) => cfg.gm_bias,
                ("vb_gm", MixerMode::Passive) => 0.0,
                ("vb7", MixerMode::Active) => vb7_active,
                ("vb7", MixerMode::Passive) => 0.0,
                ("vtg_ctl", MixerMode::Active) => cfg.vdd,
                ("vtg_ctl", MixerMode::Passive) => 0.0,
                ("vtg_ctlb", MixerMode::Active) => 0.0,
                ("vtg_ctlb", MixerMode::Passive) => cfg.vdd,
                (n, m) if n.ends_with("_itail") => match m {
                    MixerMode::Active => cfg.ota_i1 * 1e-6,
                    MixerMode::Passive => cfg.ota_i1,
                },
                (n, m) if n.ends_with("_i2") => match m {
                    MixerMode::Active => cfg.ota_i2 * 1e-6,
                    MixerMode::Passive => cfg.ota_i2,
                },
                (n, m) if n.starts_with("ibleed") => match m {
                    MixerMode::Active => cfg.bleed_frac * cfg.tail_current / 2.0,
                    MixerMode::Passive => 0.0,
                },
                _ => unreachable!("unknown control '{name}'"), // audit: allow(AUD002): the control list two arms up names exactly these sources
            }
        };
        let controls = [
            "vlogic",
            "vb_gm",
            "vb7",
            "vtg_ctl",
            "vtg_ctlb",
            "tia_p_ota_itail",
            "tia_p_ota_i2",
            "tia_n_ota_itail",
            "tia_n_ota_i2",
            "ibleed_p",
            "ibleed_n",
        ];
        for name in controls {
            let id = ckt
                .find_element(name)
                .unwrap_or_else(|| panic!("control source '{name}' missing")); // audit: allow(AUD002): the generated netlist contains every control source it names
            let pulse = Waveform::Pulse {
                v1: level(name, first),
                v2: level(name, second),
                delay: t_switch,
                rise: edge,
                fall: edge,
                width: 1e3, // effectively one-shot
                period: f64::INFINITY,
            };
            match ckt.element_mut(id) {
                Element::VoltageSource { wave, .. } | Element::CurrentSource { wave, .. } => {
                    *wave = pulse;
                }
                _ => unreachable!("control '{name}' is not a source"), // audit: allow(AUD002): controls are built as sources by the netlist generator
            }
        }
        (ckt, nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remix_analysis::{dc_operating_point, supply_power, OpOptions};

    fn mixer() -> ReconfigurableMixer {
        ReconfigurableMixer::new(MixerConfig::default())
    }

    fn op_of(mode: MixerMode) -> (Circuit, MixerNodes, remix_analysis::OperatingPoint) {
        let m = mixer();
        let (ckt, nodes) = m.build(mode, &RfDrive::Bias, &LoDrive::held(2.4e9));
        let op = dc_operating_point(&ckt, &OpOptions::default()).unwrap();
        (ckt, nodes, op)
    }

    #[test]
    fn netlist_lints_clean_in_both_modes() {
        let m = mixer();
        for mode in [MixerMode::Active, MixerMode::Passive] {
            let report = m.lint_report(mode);
            assert!(report.is_clean(), "{mode:?}:\n{}", report.render_text());
        }
    }

    #[test]
    fn active_op_biases_gilbert() {
        let (ckt, nodes, op) = op_of(MixerMode::Active);
        // Tail device carries roughly the programmed current.
        let m7 = ckt.find_element("m7").unwrap();
        let id7 = op.mos_eval(m7).unwrap().id;
        assert!(
            (id7 - mixer().config().tail_current).abs() < 0.4 * mixer().config().tail_current,
            "tail current = {:.3} mA vs programmed {:.3} mA",
            id7 * 1e3,
            mixer().config().tail_current * 1e3
        );
        // IF common mode below VDD but with headroom. With the LO held at
        // its extreme the full tail current flows through one branch, so
        // this is the worst-case (largest) load drop.
        let vout = op.voltage(nodes.qout_p);
        assert!(vout > 0.25 && vout < 1.15, "v(qout) = {vout}");
        // TCA output near VDD/2.
        let vtca = op.voltage(nodes.tca_p);
        assert!((vtca - 0.6).abs() < 0.2, "v(tca) = {vtca}");
    }

    #[test]
    fn passive_op_routes_through_switches() {
        let (ckt, nodes, op) = op_of(MixerMode::Passive);
        // Mp1 is on: quad input follows the TCA common mode.
        let vqin = op.voltage(nodes.qin_p);
        let vtca = op.voltage(nodes.tca_p);
        assert!((vqin - vtca).abs() < 0.1, "qin {vqin} vs tca {vtca}");
        // Tail off: negligible current in M7.
        let m7 = ckt.find_element("m7").unwrap();
        assert!(op.mos_eval(m7).unwrap().id.abs() < 1e-5);
        // TIA holds the quad outputs at the virtual ground.
        let vq = op.voltage(nodes.qout_p);
        assert!((vq - 0.6).abs() < 0.15, "v(qout) = {vq}");
    }

    #[test]
    fn power_in_paper_range_both_modes() {
        // Paper: 9.36 mW active, 9.24 mW passive. Accept the right class
        // and the right *ordering mechanism* (TIA only burns in passive).
        let (ckt_a, _, op_a) = op_of(MixerMode::Active);
        let (ckt_p, _, op_p) = op_of(MixerMode::Passive);
        let pa = supply_power(&ckt_a, &op_a).total_mw();
        let pp = supply_power(&ckt_p, &op_p).total_mw();
        assert!(pa > 4.0 && pa < 16.0, "active {pa} mW");
        assert!(pp > 4.0 && pp < 16.0, "passive {pp} mW");
    }

    #[test]
    fn mode_output_selection() {
        let m = mixer();
        let (_, nodes) = m.build(MixerMode::Active, &RfDrive::Bias, &LoDrive::sine(2.4e9));
        assert_eq!(
            nodes.if_out(MixerMode::Active),
            (nodes.qout_p, nodes.qout_n)
        );
        assert_eq!(nodes.if_out(MixerMode::Passive), (nodes.tia_p, nodes.tia_n));
    }
}
