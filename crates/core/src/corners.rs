//! Process / voltage / temperature (PVT) corner analysis.
//!
//! The paper reports a single typical-corner simulation; a production
//! design review would ask how the reconfigurable mixer behaves at the
//! classic five process corners and over temperature. Corners scale the
//! device models (`kp`, `vt0`, flicker) with standard first-order laws and
//! re-run the *entire* extraction flow — nothing is special-cased.

use crate::checkpoint::StudyOutcome;
use crate::config::MixerConfig;
use crate::model::ExtractedParams;
use remix_analysis::{
    AnalysisError, ConvergenceTrace, Interrupted, Partial, StageKind, TraceStage,
};
use remix_circuit::MosModel;
use std::path::Path;

/// The five classic process corners (NMOS letter first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessCorner {
    /// Typical/typical.
    Tt,
    /// Fast/fast.
    Ff,
    /// Slow/slow.
    Ss,
    /// Fast NMOS / slow PMOS.
    Fs,
    /// Slow NMOS / fast PMOS.
    Sf,
}

impl ProcessCorner {
    /// All five corners in conventional order.
    pub fn all() -> [ProcessCorner; 5] {
        [
            ProcessCorner::Tt,
            ProcessCorner::Ff,
            ProcessCorner::Ss,
            ProcessCorner::Fs,
            ProcessCorner::Sf,
        ]
    }

    /// Label as printed in corner tables.
    pub fn label(self) -> &'static str {
        match self {
            ProcessCorner::Tt => "TT",
            ProcessCorner::Ff => "FF",
            ProcessCorner::Ss => "SS",
            ProcessCorner::Fs => "FS",
            ProcessCorner::Sf => "SF",
        }
    }

    /// `(nmos_fast, pmos_fast)` as signed speed signs (+1 fast, −1 slow,
    /// 0 typical).
    fn signs(self) -> (f64, f64) {
        match self {
            ProcessCorner::Tt => (0.0, 0.0),
            ProcessCorner::Ff => (1.0, 1.0),
            ProcessCorner::Ss => (-1.0, -1.0),
            ProcessCorner::Fs => (1.0, -1.0),
            ProcessCorner::Sf => (-1.0, 1.0),
        }
    }
}

/// A full PVT point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corner {
    /// Process corner.
    pub process: ProcessCorner,
    /// Junction temperature (°C).
    pub temp_c: f64,
    /// Supply voltage (V); `None` keeps the config's nominal.
    pub vdd: Option<f64>,
}

impl Corner {
    /// Typical corner at 27 °C, nominal supply.
    pub fn typical() -> Self {
        Corner {
            process: ProcessCorner::Tt,
            temp_c: 27.0,
            vdd: None,
        }
    }

    /// The conventional worst-speed point (SS, hot, low supply).
    pub fn slow_hot(vdd_drop: f64) -> impl Fn(&MixerConfig) -> Corner {
        move |cfg| Corner {
            process: ProcessCorner::Ss,
            temp_c: 85.0,
            vdd: Some(cfg.vdd - vdd_drop),
        }
    }

    fn scale_model(m: &MosModel, fast_sign: f64, temp_c: f64) -> MosModel {
        let t = temp_c + 273.15;
        let t0 = 300.0;
        let mut out = m.clone();
        // Process: ±10 % kp, ∓30 mV vt0 at the fast/slow extremes.
        out.kp *= 1.0 + 0.10 * fast_sign;
        out.vt0 -= 0.030 * fast_sign;
        // Temperature: mobility ∝ T^−1.5, |vt| drops ~1 mV/K.
        out.kp *= (t / t0).powf(-1.5);
        out.vt0 -= 1.0e-3 * (t - t0);
        // Hot devices flicker a little more (trap activation).
        out.kf *= 1.0 + 0.005 * (t - t0);
        out
    }

    /// Produces a configuration with corner-scaled device models (and
    /// supply, if overridden).
    pub fn apply(&self, base: &MixerConfig) -> MixerConfig {
        let (sn, sp) = self.process.signs();
        MixerConfig {
            nmos: Self::scale_model(&base.nmos, sn, self.temp_c),
            pmos: Self::scale_model(&base.pmos, sp, self.temp_c),
            vdd: self.vdd.unwrap_or(base.vdd),
            ..base.clone()
        }
    }
}

/// Outcome of one corner extraction.
#[derive(Debug, Clone)]
pub enum CornerOutcome {
    /// The full extraction flow succeeded at this corner.
    Ok(Box<ExtractedParams>),
    /// The extraction failed; the trace records what the convergence
    /// ladder tried before giving up.
    Failed(ConvergenceTrace),
}

impl CornerOutcome {
    /// `true` when the corner extracted.
    pub fn is_ok(&self) -> bool {
        matches!(self, CornerOutcome::Ok(_))
    }

    /// The extracted parameters, when the corner solved.
    pub fn params(&self) -> Option<&ExtractedParams> {
        match self {
            CornerOutcome::Ok(p) => Some(p),
            CornerOutcome::Failed(_) => None,
        }
    }

    /// The failure trace, when the corner did not solve.
    pub fn trace(&self) -> Option<&ConvergenceTrace> {
        match self {
            CornerOutcome::Ok(_) => None,
            CornerOutcome::Failed(t) => Some(t),
        }
    }
}

/// A completed corner sweep: one outcome per requested corner, in the
/// order requested.
#[derive(Debug, Clone)]
pub struct CornerSweep {
    /// `(corner, outcome)` pairs.
    pub results: Vec<(Corner, CornerOutcome)>,
    /// Corners extracted by this invocation.
    pub computed: usize,
    /// Corners restored from the checkpoint instead of recomputed.
    pub resumed: usize,
}

impl CornerSweep {
    /// Number of corners that extracted.
    pub fn n_ok(&self) -> usize {
        self.results.iter().filter(|(_, o)| o.is_ok()).count()
    }

    /// Fraction of corners that extracted (1.0 for an empty sweep).
    pub fn yield_fraction(&self) -> f64 {
        if self.results.is_empty() {
            1.0
        } else {
            self.n_ok() as f64 / self.results.len() as f64
        }
    }

    /// `(corner, trace)` for every failed corner, in order.
    pub fn failures(&self) -> impl Iterator<Item = (&Corner, &ConvergenceTrace)> {
        self.results
            .iter()
            .filter_map(|(c, o)| o.trace().map(|t| (c, t)))
    }

    /// One-line yield summary, e.g. `corner yield 4/5 (80.0 %)`.
    pub fn summary_line(&self) -> String {
        format!(
            "corner yield {}/{} ({:.1} %)",
            self.n_ok(),
            self.results.len(),
            100.0 * self.yield_fraction()
        )
    }
}

/// The study label of corner-sweep checkpoints.
const CORNER_STUDY: &str = "corners";

/// The configuration fingerprint a corner-sweep checkpoint is bound to:
/// the model/supply scalars the outcome depends on plus every requested
/// corner. A checkpoint written for a different base design or corner
/// list is rejected on load, never merged.
fn study_config(base: &MixerConfig, corners: &[Corner]) -> Vec<(String, f64)> {
    let mut cfg = vec![
        ("base.vdd".to_string(), base.vdd),
        ("base.nmos.kp".to_string(), base.nmos.kp),
        ("base.nmos.vt0".to_string(), base.nmos.vt0),
        ("base.pmos.kp".to_string(), base.pmos.kp),
        ("base.pmos.vt0".to_string(), base.pmos.vt0),
        ("base.tca_vcm".to_string(), base.tca_vcm),
        ("corners".to_string(), corners.len() as f64),
    ];
    for (i, c) in corners.iter().enumerate() {
        let (sn, sp) = c.process.signs();
        cfg.push((format!("corner{i}.nmos_sign"), sn));
        cfg.push((format!("corner{i}.pmos_sign"), sp));
        cfg.push((format!("corner{i}.temp_c"), c.temp_c));
        cfg.push((format!("corner{i}.has_vdd"), f64::from(c.vdd.is_some())));
        cfg.push((format!("corner{i}.vdd"), c.vdd.unwrap_or(0.0)));
    }
    cfg
}

fn study_record(outcome: &CornerOutcome) -> StudyOutcome {
    match outcome {
        CornerOutcome::Ok(p) => StudyOutcome::Ok(p.to_flat()),
        CornerOutcome::Failed(t) => StudyOutcome::Failed(t.summary()),
    }
}

/// Maps a pool outcome back into the sweep's vocabulary: a contained
/// panic or an exhausted per-corner deadline is a *failed corner* with
/// a one-line trace, never a dead sweep.
fn pool_corner(outcome: &remix_exec::TaskOutcome<CornerOutcome>) -> CornerOutcome {
    match outcome {
        remix_exec::TaskOutcome::Done(corner) => corner.clone(),
        remix_exec::TaskOutcome::Failed(trace) => {
            CornerOutcome::Failed(ConvergenceTrace::new(trace.clone()))
        }
        remix_exec::TaskOutcome::TimedOut {
            attempts,
            budget_ms,
        } => CornerOutcome::Failed(ConvergenceTrace::new(format!(
            "corner timed out: {attempts} attempt(s) exhausted the {budget_ms} ms per-corner budget"
        ))),
    }
}

/// Runs the full extraction flow at every requested corner, isolating
/// failures: a corner that refuses to converge is recorded with its
/// convergence trace and the sweep continues to the next corner instead
/// of aborting the design review at the first casualty.
pub fn sweep_corners(base: &MixerConfig, corners: &[Corner]) -> CornerSweep {
    sweep_corners_resumable(base, corners, None).value
}

/// [`sweep_corners`] with checkpoint/resume and run-budget awareness,
/// on the default (serial) pool.
pub fn sweep_corners_resumable(
    base: &MixerConfig,
    corners: &[Corner],
    checkpoint: Option<&Path>,
) -> Partial<CornerSweep> {
    sweep_corners_resumable_with(
        base,
        corners,
        checkpoint,
        &remix_exec::PoolOptions::default(),
    )
}

/// [`sweep_corners`] with checkpoint/resume, run-budget awareness and
/// an explicit [`remix_exec::PoolOptions`] — the parallel entry point.
///
/// When `checkpoint` names a file, every completed corner (pass *or*
/// fail) is persisted there as a version-3 bitmap study checkpoint
/// ([`crate::checkpoint::save_study_v3`]) — correct under out-of-order
/// completion — and a compatible existing checkpoint (version 3 or
/// legacy version 2) is resumed: completed corners are restored, not
/// re-run. A checkpoint written for a different base configuration or
/// corner list is ignored, as is a record whose payload no longer
/// deserializes.
///
/// When a [`RunBudget`](remix_exec::RunBudget) armed on this thread
/// trips — at a corner boundary or inside an extraction — the sweep
/// stops and returns the completed prefix as an interrupted
/// [`Partial`]; with a checkpoint, a later invocation finishes only the
/// remaining corners (including any completed out of order, which the
/// bitmap retains beyond the returned prefix).
pub fn sweep_corners_resumable_with(
    base: &MixerConfig,
    corners: &[Corner],
    checkpoint: Option<&Path>,
    pool: &remix_exec::PoolOptions,
) -> Partial<CornerSweep> {
    let config = study_config(base, corners);
    let mut slots: Vec<Option<CornerOutcome>> = vec![None; corners.len()];
    let mut records: Vec<(usize, StudyOutcome)> = Vec::new();
    if let Some(path) = checkpoint {
        for (i, rec) in
            crate::checkpoint::load_study_any(path, CORNER_STUDY, &config, corners.len())
                .unwrap_or_default()
        {
            let outcome = match rec {
                StudyOutcome::Ok(values) => {
                    ExtractedParams::from_flat(&values).map(|p| CornerOutcome::Ok(Box::new(p)))
                }
                StudyOutcome::Failed(trace) => {
                    Some(CornerOutcome::Failed(ConvergenceTrace::new(trace)))
                }
            };
            if let Some(outcome) = outcome {
                records.push((i, study_record(&outcome)));
                slots[i] = Some(outcome);
            }
        }
    }
    let resumed = records.len();
    let todo: Vec<usize> = (0..corners.len()).filter(|&i| slots[i].is_none()).collect();
    // A budget trip mid-extraction carries the analysis trace; the pool
    // reports only the typed interruption, so the first trace is handed
    // out-of-band to the Partial below.
    let first_trace: std::sync::Mutex<Option<ConvergenceTrace>> = std::sync::Mutex::new(None);
    // A fault plan armed on the caller thread must also bite on pool
    // workers: capture it here and re-arm per task (counters restart
    // per corner — the deterministic parallel semantics).
    #[cfg(feature = "fault-inject")]
    let caller_fault = remix_analysis::active_plan();
    let run = remix_exec::run_tasks(
        &todo,
        pool,
        |ctx| {
            let i = ctx.index;
            #[cfg(feature = "fault-inject")]
            let _fault = caller_fault.map(remix_analysis::FaultPlan::arm);
            let cfg = corners[i].apply(base);
            let _span = remix_telemetry::span(remix_telemetry::names::CORE_CORNERS_CORNER)
                .with_field("index", i)
                .with_field("process", corners[i].process.label());
            match ExtractedParams::extract(&cfg) {
                Ok(params) => remix_exec::TaskResult::Done(CornerOutcome::Ok(Box::new(params))),
                Err(AnalysisError::BudgetExceeded {
                    interruption,
                    trace,
                    ..
                }) => {
                    // Interrupts the *sweep* (or re-dispatches a
                    // straggler under a per-corner deadline); nothing
                    // is recorded for the corner, so a resumed run
                    // recomputes it in full.
                    if let Ok(mut slot) = first_trace.lock() {
                        if slot.is_none() {
                            *slot = Some(trace);
                        }
                    }
                    remix_exec::TaskResult::Interrupted(interruption)
                }
                Err(e) => remix_exec::TaskResult::Done(CornerOutcome::Failed(
                    crate::montecarlo::failure_trace(&e),
                )),
            }
        },
        |index, outcome| {
            records.push((index, study_record(&pool_corner(outcome))));
            if let Some(path) = checkpoint {
                // Checkpoint write failures must not kill the sweep the
                // checkpoint exists to protect; the run just loses
                // resumability.
                let _ = crate::checkpoint::save_study_v3(
                    path,
                    CORNER_STUDY,
                    &config,
                    corners.len(),
                    &records,
                );
            }
        },
    );
    let computed = run.outcomes.len();
    for (i, outcome) in &run.outcomes {
        slots[*i] = Some(pool_corner(outcome));
    }
    let mut sweep = CornerSweep {
        results: Vec::with_capacity(corners.len()),
        computed,
        resumed,
    };
    for (i, slot) in slots.iter_mut().enumerate() {
        match slot.take() {
            Some(done) => sweep.results.push((corners[i], done)),
            None => break,
        }
    }
    match run.interrupted {
        None => Partial::complete(sweep),
        Some(interruption) => {
            let trace = first_trace.lock().ok().and_then(|mut slot| slot.take());
            let interrupted = match trace {
                Some(trace) => Interrupted {
                    interruption,
                    trace,
                },
                None => Interrupted::at(
                    "corner sweep",
                    TraceStage::Dc(StageKind::Direct),
                    interruption,
                ),
            };
            Partial::interrupted(sweep, interrupted)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ExtractedParams, MixerModel};
    use crate::MixerMode;

    #[test]
    fn corner_scaling_laws() {
        let base = MixerConfig::default();
        let ff = Corner {
            process: ProcessCorner::Ff,
            temp_c: 27.0,
            vdd: None,
        }
        .apply(&base);
        assert!(ff.nmos.kp > base.nmos.kp);
        assert!(ff.nmos.vt0 < base.nmos.vt0);
        assert!(ff.pmos.kp > base.pmos.kp);

        let hot = Corner {
            process: ProcessCorner::Tt,
            temp_c: 85.0,
            vdd: None,
        }
        .apply(&base);
        assert!(hot.nmos.kp < base.nmos.kp, "mobility falls when hot");
        assert!(hot.nmos.vt0 < base.nmos.vt0, "threshold falls when hot");
        assert!(hot.nmos.kf > base.nmos.kf);

        let tt27 = Corner::typical().apply(&base);
        assert!((tt27.nmos.kp - base.nmos.kp).abs() < 1e-3 * base.nmos.kp);
    }

    #[test]
    fn cross_corner_asymmetry() {
        let base = MixerConfig::default();
        let fs = Corner {
            process: ProcessCorner::Fs,
            temp_c: 27.0,
            vdd: None,
        }
        .apply(&base);
        assert!(fs.nmos.kp > base.nmos.kp);
        assert!(fs.pmos.kp < base.pmos.kp);
    }

    /// The expensive but decisive test: the design's key orderings hold
    /// at the speed extremes, not just at TT.
    #[test]
    fn orderings_hold_at_speed_corners() {
        let base = MixerConfig::default();
        for process in [ProcessCorner::Ff, ProcessCorner::Ss] {
            let cfg = Corner {
                process,
                temp_c: 27.0,
                vdd: None,
            }
            .apply(&base);
            let params = ExtractedParams::extract(&cfg).expect("corner extraction");
            let a = MixerModel::new(cfg.clone(), MixerMode::Active, params.clone());
            let p = MixerModel::new(cfg, MixerMode::Passive, params);
            let label = process.label();
            assert!(
                a.conv_gain_db(2.45e9, 5e6) > p.conv_gain_db(2.45e9, 5e6),
                "{label}: active gain must stay above passive"
            );
            assert!(
                p.iip3_dbm() > a.iip3_dbm() + 10.0,
                "{label}: passive linearity advantage must survive"
            );
            assert!(
                a.nf_db(5e6) < p.nf_db(5e6) + 0.5,
                "{label}: active NF must not fall behind passive"
            );
        }
    }

    #[test]
    fn corner_sweep_isolates_and_summarizes() {
        let base = MixerConfig::default();
        let path =
            std::env::temp_dir().join(format!("remix_corner_resume_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let sweep = sweep_corners_resumable(&base, &[Corner::typical()], Some(&path));
        assert!(sweep.is_complete());
        let sweep = sweep.value;
        assert_eq!(sweep.results.len(), 1);
        assert_eq!(sweep.computed, 1);
        assert_eq!(sweep.resumed, 0);
        assert_eq!(sweep.n_ok(), 1);
        assert!(sweep.results[0].1.params().is_some());
        assert!(sweep.failures().next().is_none());
        assert_eq!(sweep.summary_line(), "corner yield 1/1 (100.0 %)");

        // A second invocation restores the corner from the checkpoint
        // bit-for-bit instead of re-extracting.
        let resumed = sweep_corners_resumable(&base, &[Corner::typical()], Some(&path));
        assert!(resumed.is_complete());
        let resumed = resumed.value;
        assert_eq!(resumed.computed, 0, "completed corners must not re-run");
        assert_eq!(resumed.resumed, 1);
        assert_eq!(
            resumed.results[0].1.params(),
            sweep.results[0].1.params(),
            "restored params must round-trip exactly"
        );

        // A different base design must reject the checkpoint rather
        // than resume someone else's corners.
        let other = MixerConfig {
            vdd: base.vdd + 0.1,
            ..base.clone()
        };
        let cfg = study_config(&other, &[Corner::typical()]);
        assert!(crate::checkpoint::load_study(&path, CORNER_STUDY, &cfg).is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zero_deadline_interrupts_the_sweep_before_any_extraction() {
        let base = MixerConfig::default();
        let budget = remix_exec::RunBudget::unlimited().with_deadline(std::time::Duration::ZERO);
        let token = budget.token();
        let _guard = token.arm();
        let partial = sweep_corners_resumable(&base, &[Corner::typical()], None);
        assert!(!partial.is_complete());
        assert!(partial.value.results.is_empty());
        let why = partial.interruption.as_ref().unwrap();
        assert!(matches!(
            why.interruption,
            remix_exec::Interruption::DeadlineExpired { .. }
        ));
        assert!(!why.trace.is_empty());
        assert_eq!(why.trace.analysis, "corner sweep");
    }

    #[test]
    fn budget_trip_mid_extraction_interrupts_with_the_analysis_trace() {
        // A Newton budget far too small for a full extraction trips
        // inside the first corner's flow; the sweep reports the
        // interruption with the underlying analysis trace instead of
        // recording the corner as failed.
        let base = MixerConfig::default();
        let budget = remix_exec::RunBudget::unlimited().with_newton_iterations(3);
        let token = budget.token();
        let _guard = token.arm();
        let partial = sweep_corners_resumable(&base, &[Corner::typical()], None);
        assert!(!partial.is_complete());
        assert_eq!(partial.value.computed, 0);
        let why = partial.interruption.as_ref().unwrap();
        assert_eq!(
            why.interruption,
            remix_exec::Interruption::NewtonIterations { limit: 3 }
        );
        assert!(!why.trace.is_empty());
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn corner_sweep_keeps_going_past_failing_corners() {
        use remix_analysis::FaultPlan;
        let base = MixerConfig::default();
        let corners: Vec<Corner> = [ProcessCorner::Tt, ProcessCorner::Ff, ProcessCorner::Ss]
            .into_iter()
            .map(|process| Corner {
                process,
                temp_c: 27.0,
                vdd: None,
            })
            .collect();
        // With every factorization failing, the sweep must still visit
        // every corner and report 0 yield with a trace per casualty —
        // not abort (or panic) at the first one.
        let sweep = {
            let _fault = FaultPlan::singular_pivot().arm();
            sweep_corners(&base, &corners)
        };
        assert_eq!(sweep.results.len(), corners.len());
        assert_eq!(sweep.n_ok(), 0);
        assert_eq!(sweep.summary_line(), "corner yield 0/3 (0.0 %)");
        for (corner, trace) in sweep.failures() {
            assert!(
                !trace.is_empty(),
                "{}: failed corner must carry its ladder trace",
                corner.process.label()
            );
        }
        // Disarmed, the same sweep recovers.
        let healthy = sweep_corners(&base, &corners[..1]);
        assert_eq!(healthy.n_ok(), 1);
    }

    #[test]
    fn slow_hot_supply_droop() {
        let base = MixerConfig::default();
        let worst = Corner::slow_hot(0.1)(&base).apply(&base);
        assert!((worst.vdd - 1.1).abs() < 1e-12);
        assert_eq!(Corner::slow_hot(0.1)(&base).process, ProcessCorner::Ss);
    }
}
