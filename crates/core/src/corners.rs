//! Process / voltage / temperature (PVT) corner analysis.
//!
//! The paper reports a single typical-corner simulation; a production
//! design review would ask how the reconfigurable mixer behaves at the
//! classic five process corners and over temperature. Corners scale the
//! device models (`kp`, `vt0`, flicker) with standard first-order laws and
//! re-run the *entire* extraction flow — nothing is special-cased.

use crate::config::MixerConfig;
use crate::model::ExtractedParams;
use remix_analysis::ConvergenceTrace;
use remix_circuit::MosModel;

/// The five classic process corners (NMOS letter first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessCorner {
    /// Typical/typical.
    Tt,
    /// Fast/fast.
    Ff,
    /// Slow/slow.
    Ss,
    /// Fast NMOS / slow PMOS.
    Fs,
    /// Slow NMOS / fast PMOS.
    Sf,
}

impl ProcessCorner {
    /// All five corners in conventional order.
    pub fn all() -> [ProcessCorner; 5] {
        [
            ProcessCorner::Tt,
            ProcessCorner::Ff,
            ProcessCorner::Ss,
            ProcessCorner::Fs,
            ProcessCorner::Sf,
        ]
    }

    /// Label as printed in corner tables.
    pub fn label(self) -> &'static str {
        match self {
            ProcessCorner::Tt => "TT",
            ProcessCorner::Ff => "FF",
            ProcessCorner::Ss => "SS",
            ProcessCorner::Fs => "FS",
            ProcessCorner::Sf => "SF",
        }
    }

    /// `(nmos_fast, pmos_fast)` as signed speed signs (+1 fast, −1 slow,
    /// 0 typical).
    fn signs(self) -> (f64, f64) {
        match self {
            ProcessCorner::Tt => (0.0, 0.0),
            ProcessCorner::Ff => (1.0, 1.0),
            ProcessCorner::Ss => (-1.0, -1.0),
            ProcessCorner::Fs => (1.0, -1.0),
            ProcessCorner::Sf => (-1.0, 1.0),
        }
    }
}

/// A full PVT point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corner {
    /// Process corner.
    pub process: ProcessCorner,
    /// Junction temperature (°C).
    pub temp_c: f64,
    /// Supply voltage (V); `None` keeps the config's nominal.
    pub vdd: Option<f64>,
}

impl Corner {
    /// Typical corner at 27 °C, nominal supply.
    pub fn typical() -> Self {
        Corner {
            process: ProcessCorner::Tt,
            temp_c: 27.0,
            vdd: None,
        }
    }

    /// The conventional worst-speed point (SS, hot, low supply).
    pub fn slow_hot(vdd_drop: f64) -> impl Fn(&MixerConfig) -> Corner {
        move |cfg| Corner {
            process: ProcessCorner::Ss,
            temp_c: 85.0,
            vdd: Some(cfg.vdd - vdd_drop),
        }
    }

    fn scale_model(m: &MosModel, fast_sign: f64, temp_c: f64) -> MosModel {
        let t = temp_c + 273.15;
        let t0 = 300.0;
        let mut out = m.clone();
        // Process: ±10 % kp, ∓30 mV vt0 at the fast/slow extremes.
        out.kp *= 1.0 + 0.10 * fast_sign;
        out.vt0 -= 0.030 * fast_sign;
        // Temperature: mobility ∝ T^−1.5, |vt| drops ~1 mV/K.
        out.kp *= (t / t0).powf(-1.5);
        out.vt0 -= 1.0e-3 * (t - t0);
        // Hot devices flicker a little more (trap activation).
        out.kf *= 1.0 + 0.005 * (t - t0);
        out
    }

    /// Produces a configuration with corner-scaled device models (and
    /// supply, if overridden).
    pub fn apply(&self, base: &MixerConfig) -> MixerConfig {
        let (sn, sp) = self.process.signs();
        MixerConfig {
            nmos: Self::scale_model(&base.nmos, sn, self.temp_c),
            pmos: Self::scale_model(&base.pmos, sp, self.temp_c),
            vdd: self.vdd.unwrap_or(base.vdd),
            ..base.clone()
        }
    }
}

/// Outcome of one corner extraction.
#[derive(Debug, Clone)]
pub enum CornerOutcome {
    /// The full extraction flow succeeded at this corner.
    Ok(Box<ExtractedParams>),
    /// The extraction failed; the trace records what the convergence
    /// ladder tried before giving up.
    Failed(ConvergenceTrace),
}

impl CornerOutcome {
    /// `true` when the corner extracted.
    pub fn is_ok(&self) -> bool {
        matches!(self, CornerOutcome::Ok(_))
    }

    /// The extracted parameters, when the corner solved.
    pub fn params(&self) -> Option<&ExtractedParams> {
        match self {
            CornerOutcome::Ok(p) => Some(p),
            CornerOutcome::Failed(_) => None,
        }
    }

    /// The failure trace, when the corner did not solve.
    pub fn trace(&self) -> Option<&ConvergenceTrace> {
        match self {
            CornerOutcome::Ok(_) => None,
            CornerOutcome::Failed(t) => Some(t),
        }
    }
}

/// A completed corner sweep: one outcome per requested corner, in the
/// order requested.
#[derive(Debug, Clone)]
pub struct CornerSweep {
    /// `(corner, outcome)` pairs.
    pub results: Vec<(Corner, CornerOutcome)>,
}

impl CornerSweep {
    /// Number of corners that extracted.
    pub fn n_ok(&self) -> usize {
        self.results.iter().filter(|(_, o)| o.is_ok()).count()
    }

    /// Fraction of corners that extracted (1.0 for an empty sweep).
    pub fn yield_fraction(&self) -> f64 {
        if self.results.is_empty() {
            1.0
        } else {
            self.n_ok() as f64 / self.results.len() as f64
        }
    }

    /// `(corner, trace)` for every failed corner, in order.
    pub fn failures(&self) -> impl Iterator<Item = (&Corner, &ConvergenceTrace)> {
        self.results
            .iter()
            .filter_map(|(c, o)| o.trace().map(|t| (c, t)))
    }

    /// One-line yield summary, e.g. `corner yield 4/5 (80.0 %)`.
    pub fn summary_line(&self) -> String {
        format!(
            "corner yield {}/{} ({:.1} %)",
            self.n_ok(),
            self.results.len(),
            100.0 * self.yield_fraction()
        )
    }
}

/// Runs the full extraction flow at every requested corner, isolating
/// failures: a corner that refuses to converge is recorded with its
/// convergence trace and the sweep continues to the next corner instead
/// of aborting the design review at the first casualty.
pub fn sweep_corners(base: &MixerConfig, corners: &[Corner]) -> CornerSweep {
    let results = corners
        .iter()
        .map(|corner| {
            let cfg = corner.apply(base);
            let outcome = match ExtractedParams::extract(&cfg) {
                Ok(params) => CornerOutcome::Ok(Box::new(params)),
                Err(e) => CornerOutcome::Failed(crate::montecarlo::failure_trace(&e)),
            };
            (*corner, outcome)
        })
        .collect();
    CornerSweep { results }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ExtractedParams, MixerModel};
    use crate::MixerMode;

    #[test]
    fn corner_scaling_laws() {
        let base = MixerConfig::default();
        let ff = Corner {
            process: ProcessCorner::Ff,
            temp_c: 27.0,
            vdd: None,
        }
        .apply(&base);
        assert!(ff.nmos.kp > base.nmos.kp);
        assert!(ff.nmos.vt0 < base.nmos.vt0);
        assert!(ff.pmos.kp > base.pmos.kp);

        let hot = Corner {
            process: ProcessCorner::Tt,
            temp_c: 85.0,
            vdd: None,
        }
        .apply(&base);
        assert!(hot.nmos.kp < base.nmos.kp, "mobility falls when hot");
        assert!(hot.nmos.vt0 < base.nmos.vt0, "threshold falls when hot");
        assert!(hot.nmos.kf > base.nmos.kf);

        let tt27 = Corner::typical().apply(&base);
        assert!((tt27.nmos.kp - base.nmos.kp).abs() < 1e-3 * base.nmos.kp);
    }

    #[test]
    fn cross_corner_asymmetry() {
        let base = MixerConfig::default();
        let fs = Corner {
            process: ProcessCorner::Fs,
            temp_c: 27.0,
            vdd: None,
        }
        .apply(&base);
        assert!(fs.nmos.kp > base.nmos.kp);
        assert!(fs.pmos.kp < base.pmos.kp);
    }

    /// The expensive but decisive test: the design's key orderings hold
    /// at the speed extremes, not just at TT.
    #[test]
    fn orderings_hold_at_speed_corners() {
        let base = MixerConfig::default();
        for process in [ProcessCorner::Ff, ProcessCorner::Ss] {
            let cfg = Corner {
                process,
                temp_c: 27.0,
                vdd: None,
            }
            .apply(&base);
            let params = ExtractedParams::extract(&cfg).expect("corner extraction");
            let a = MixerModel::new(cfg.clone(), MixerMode::Active, params.clone());
            let p = MixerModel::new(cfg, MixerMode::Passive, params);
            let label = process.label();
            assert!(
                a.conv_gain_db(2.45e9, 5e6) > p.conv_gain_db(2.45e9, 5e6),
                "{label}: active gain must stay above passive"
            );
            assert!(
                p.iip3_dbm() > a.iip3_dbm() + 10.0,
                "{label}: passive linearity advantage must survive"
            );
            assert!(
                a.nf_db(5e6) < p.nf_db(5e6) + 0.5,
                "{label}: active NF must not fall behind passive"
            );
        }
    }

    #[test]
    fn corner_sweep_isolates_and_summarizes() {
        let base = MixerConfig::default();
        let sweep = sweep_corners(&base, &[Corner::typical()]);
        assert_eq!(sweep.results.len(), 1);
        assert_eq!(sweep.n_ok(), 1);
        assert!(sweep.results[0].1.params().is_some());
        assert!(sweep.failures().next().is_none());
        assert_eq!(sweep.summary_line(), "corner yield 1/1 (100.0 %)");
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn corner_sweep_keeps_going_past_failing_corners() {
        use remix_analysis::FaultPlan;
        let base = MixerConfig::default();
        let corners: Vec<Corner> = [ProcessCorner::Tt, ProcessCorner::Ff, ProcessCorner::Ss]
            .into_iter()
            .map(|process| Corner {
                process,
                temp_c: 27.0,
                vdd: None,
            })
            .collect();
        // With every factorization failing, the sweep must still visit
        // every corner and report 0 yield with a trace per casualty —
        // not abort (or panic) at the first one.
        let sweep = {
            let _fault = FaultPlan::singular_pivot().arm();
            sweep_corners(&base, &corners)
        };
        assert_eq!(sweep.results.len(), corners.len());
        assert_eq!(sweep.n_ok(), 0);
        assert_eq!(sweep.summary_line(), "corner yield 0/3 (0.0 %)");
        for (corner, trace) in sweep.failures() {
            assert!(
                !trace.is_empty(),
                "{}: failed corner must carry its ladder trace",
                corner.process.label()
            );
        }
        // Disarmed, the same sweep recovers.
        let healthy = sweep_corners(&base, &corners[..1]);
        assert_eq!(healthy.n_ok(), 1);
    }

    #[test]
    fn slow_hot_supply_droop() {
        let base = MixerConfig::default();
        let worst = Corner::slow_hot(0.1)(&base).apply(&base);
        assert!((worst.vdd - 1.1).abs() < 1e-12);
        assert_eq!(Corner::slow_hot(0.1)(&base).process, ProcessCorner::Ss);
    }
}
