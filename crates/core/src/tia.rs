//! Transimpedance amplifier (paper Fig. 7): a two-stage Miller-compensated
//! OTA with `RF ∥ CF` feedback.
//!
//! The TIA is the passive-mode load: it presents a virtual ground to the
//! switching quad (eq. (4): `Zin ≈ RF/(1 + A(f))`), converts the
//! commutated current to the IF voltage (eq. (3)) and anti-alias filters
//! with its `RF·CF` corner. It draws 3.3 mA and is powered down in active
//! mode (PMOS switch p3).
//!
//! The OTA follows the paper: "A two stage miller compensated OTA topology
//! is chosen ... First stage to provide high gain and second stage for
//! high swing". The tail and second-stage bias currents are ideal sources
//! (the paper does not describe its bias generator — substitution noted
//! in DESIGN.md); all signal-path devices are MOSFETs.

use crate::config::MixerConfig;
use remix_analysis::{
    ac_sweep, dc_operating_point, log_space, output_noise, AnalysisError, OpOptions,
};
use remix_circuit::{Circuit, ElementId, Node, Waveform};

/// Device sizing of the two-stage OTA.
#[derive(Debug, Clone, PartialEq)]
pub struct OtaSizing {
    /// Input pair width (m).
    pub w_in: f64,
    /// Mirror load width (m).
    pub w_mirror: f64,
    /// Second-stage PMOS width (m).
    pub w_cs: f64,
    /// Channel length for all OTA devices (m) — longer than minimum for
    /// gain.
    pub l: f64,
    /// Miller capacitor (F).
    pub cm: f64,
    /// Nulling resistor (Ω).
    pub rz: f64,
}

impl Default for OtaSizing {
    fn default() -> Self {
        OtaSizing {
            w_in: 20e-6,
            w_mirror: 24e-6,
            w_cs: 60e-6,
            l: 130e-9,
            cm: 2e-12,
            rz: 60.0,
        }
    }
}

/// Handles to an instantiated OTA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OtaHandles {
    /// Tail current source element.
    pub tail: ElementId,
    /// Second-stage current source element.
    pub load2: ElementId,
}

/// Adds a two-stage Miller OTA: output `out = A·(v(inp) − v(inn))`.
///
/// When `powered` is false the bias sources are set to ~0, modeling the
/// p3 supply switch in the off state.
#[allow(clippy::too_many_arguments)]
pub fn build_ota(
    ckt: &mut Circuit,
    prefix: &str,
    inp: Node,
    inn: Node,
    out: Node,
    vdd: Node,
    cfg: &MixerConfig,
    sizing: &OtaSizing,
    powered: bool,
) -> OtaHandles {
    let tail = ckt.node(&format!("{prefix}_tail"));
    let x1 = ckt.node(&format!("{prefix}_x1"));
    let x2 = ckt.node(&format!("{prefix}_x2"));
    let nmos = cfg.nmos.clone();
    let pmos = cfg.pmos.clone();

    // PMOS input pair — the low-flicker choice for a TIA front end
    // (PMOS 1/f is an order of magnitude below NMOS in this node, and
    // the OTA input devices dominate the passive mode's IF noise).
    // M1 (gate = inn) sits on the diode side, M2 (gate = inp) on the
    // mirror output side, so `out` is in phase with `inp`.
    ckt.add_mosfet(
        &format!("{prefix}_m1"),
        pmos.clone(),
        sizing.w_in,
        sizing.l,
        x1,
        inn,
        tail,
        vdd,
    );
    ckt.add_mosfet(
        &format!("{prefix}_m2"),
        pmos,
        sizing.w_in,
        sizing.l,
        x2,
        inp,
        tail,
        vdd,
    );
    // NMOS mirror load: M3 diode-connected, M4 mirror output.
    ckt.add_mosfet(
        &format!("{prefix}_m3"),
        nmos.clone(),
        sizing.w_mirror,
        sizing.l,
        x1,
        x1,
        Circuit::gnd(),
        Circuit::gnd(),
    );
    ckt.add_mosfet(
        &format!("{prefix}_m4"),
        nmos.clone(),
        sizing.w_mirror,
        sizing.l,
        x2,
        x1,
        Circuit::gnd(),
        Circuit::gnd(),
    );
    // Second stage: NMOS common source from x2 (high swing).
    ckt.add_mosfet(
        &format!("{prefix}_m6"),
        nmos,
        sizing.w_cs,
        sizing.l,
        out,
        x2,
        Circuit::gnd(),
        Circuit::gnd(),
    );
    // Miller compensation with nulling resistor.
    let zm = ckt.node(&format!("{prefix}_zm"));
    ckt.add_capacitor(&format!("{prefix}_cm"), x2, zm, sizing.cm);
    ckt.add_resistor(&format!("{prefix}_rz"), zm, out, sizing.rz);

    let scale = if powered { 1.0 } else { 1e-6 };
    // Tail current sourced from the supply into the pair.
    let tail_id = ckt.add_isource(
        &format!("{prefix}_itail"),
        vdd,
        tail,
        Waveform::Dc(cfg.ota_i1 * scale),
    );
    // Second-stage load current sourced from the supply into the output.
    let load2 = ckt.add_isource(
        &format!("{prefix}_i2"),
        vdd,
        out,
        Waveform::Dc(cfg.ota_i2 * scale),
    );
    OtaHandles {
        tail: tail_id,
        load2,
    }
}

/// Adds a complete single-ended TIA: OTA with `+` at `vcm_ref`, `−` at
/// `input`, and `RF ∥ CF` feedback from `out` to `input`.
#[allow(clippy::too_many_arguments)]
pub fn build_tia(
    ckt: &mut Circuit,
    prefix: &str,
    input: Node,
    out: Node,
    vcm_ref: Node,
    vdd: Node,
    cfg: &MixerConfig,
    powered: bool,
) -> OtaHandles {
    let h = build_ota(
        ckt,
        &format!("{prefix}_ota"),
        vcm_ref,
        input,
        out,
        vdd,
        cfg,
        &OtaSizing::default(),
        powered,
    );
    ckt.add_resistor(&format!("{prefix}_rf"), out, input, cfg.tia_rf);
    ckt.add_capacitor(&format!("{prefix}_cf"), out, input, cfg.tia_cf);
    h
}

/// Extracted OTA open-loop parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OtaParams {
    /// DC open-loop gain.
    pub a0: f64,
    /// Unity-gain bandwidth (Hz).
    pub gbw_hz: f64,
    /// Supply current when powered (A).
    pub supply_current: f64,
}

/// Extracted closed-loop TIA parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TiaParams {
    /// Low-frequency transimpedance |ZF| (Ω) — ideally `tia_rf`.
    pub zf0: f64,
    /// Closed-loop −3 dB corner (Hz) — ideally `1/(2π·RF·CF)`.
    pub corner_hz: f64,
    /// Input impedance magnitude at 5 MHz (Ω) — the virtual-ground
    /// quality, eq. (4).
    pub rin_at_5mhz: f64,
    /// Output noise PSD at 5 MHz (V²/Hz), all TIA generators.
    pub out_noise_5mhz: f64,
    /// Equivalent input *current* noise at 5 MHz (A²/Hz).
    pub in2_5mhz: f64,
    /// Supply current (A) — the paper says 3.3 mA.
    pub supply_current: f64,
}

/// Characterizes the OTA in a unity-gain buffer (the open-loop response is
/// recovered from `H = A/(1+A)`).
///
/// # Errors
///
/// Propagates analysis errors.
pub fn characterize_ota(cfg: &MixerConfig) -> Result<OtaParams, AnalysisError> {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let vin = ckt.node("in");
    let out = ckt.node("out");
    let vddsrc = ckt.add_vsource("vdd", vdd, Circuit::gnd(), Waveform::Dc(cfg.vdd));
    ckt.add_vsource_ac(
        "vin",
        vin,
        Circuit::gnd(),
        Waveform::Dc(cfg.tca_vcm),
        1.0,
        0.0,
    );
    build_ota(
        &mut ckt,
        "ota",
        vin,
        out,
        out,
        vdd,
        cfg,
        &OtaSizing::default(),
        true,
    );
    let op = dc_operating_point(&ckt, &OpOptions::default())?;
    let supply_current = -op.branch_current(vddsrc);

    let freqs = log_space(1e3, 10e9, 10);
    let ac = ac_sweep(&ckt, &op, &freqs)?;
    // A = H/(1−H) at low frequency for A0.
    let h0 = ac.voltage(0, out);
    let one = remix_numerics::Complex::ONE;
    let a0 = (h0 / (one - h0)).abs();
    // GBW: frequency where |A| crosses 1 — i.e. |H| ≈ 0.5 (−6 dB).
    let mags: Vec<f64> = (0..freqs.len())
        .map(|i| {
            let h = ac.voltage(i, out);
            (h / (one - h)).abs()
        })
        .collect();
    let gbw = remix_numerics::interp::first_crossing(&freqs, &mags, 1.0).unwrap_or(10e9);
    Ok(OtaParams {
        a0,
        gbw_hz: gbw,
        supply_current,
    })
}

/// Characterizes the closed-loop TIA against its netlist.
///
/// # Errors
///
/// Propagates analysis errors.
pub fn characterize_tia(cfg: &MixerConfig) -> Result<TiaParams, AnalysisError> {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let vcm = ckt.node("vcm");
    let input = ckt.node("in");
    let out = ckt.node("out");
    let vddsrc = ckt.add_vsource("vdd", vdd, Circuit::gnd(), Waveform::Dc(cfg.vdd));
    ckt.add_vsource("vcm", vcm, Circuit::gnd(), Waveform::Dc(cfg.tca_vcm));
    // AC test current into the virtual ground.
    ckt.add_isource_ac("iin", Circuit::gnd(), input, Waveform::Dc(0.0), 1.0);
    build_tia(&mut ckt, "tia", input, out, vcm, vdd, cfg, true);

    let op = dc_operating_point(&ckt, &OpOptions::default())?;
    let supply_current = -op.branch_current(vddsrc);

    let nominal = cfg.tia_corner_hz();
    let freqs = log_space(nominal / 1e3, nominal * 100.0, 12);
    let ac = ac_sweep(&ckt, &op, &freqs)?;
    let zmag: Vec<f64> = (0..freqs.len()).map(|i| ac.voltage(i, out).abs()).collect();
    let zf0 = zmag[0];
    let corner = remix_numerics::interp::first_crossing(
        &freqs,
        &zmag,
        zf0 * std::f64::consts::FRAC_1_SQRT_2,
    )
    .unwrap_or(f64::INFINITY);

    let ac5 = ac_sweep(&ckt, &op, &[5e6])?;
    let rin = ac5.voltage(0, input).abs();
    let zf_5m = ac5.voltage(0, out).abs();

    let nr = output_noise(&ckt, &op, out, Circuit::gnd(), &[5e6])?;
    let out_noise = nr.total[0];
    let in2 = out_noise / (zf_5m * zf_5m);

    Ok(TiaParams {
        zf0,
        corner_hz: corner,
        rin_at_5mhz: rin,
        out_noise_5mhz: out_noise,
        in2_5mhz: in2,
        supply_current,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ota_has_high_gain_and_ghz_gbw() {
        let p = characterize_ota(&MixerConfig::default()).unwrap();
        assert!(p.a0 > 100.0, "A0 = {}", p.a0);
        assert!(
            p.gbw_hz > 100e6 && p.gbw_hz < 10e9,
            "GBW = {:.3e}",
            p.gbw_hz
        );
    }

    #[test]
    fn ota_supply_current_milliamp_class() {
        let p = characterize_ota(&MixerConfig::default()).unwrap();
        assert!(
            p.supply_current > 1e-3 && p.supply_current < 6e-3,
            "i = {} mA",
            p.supply_current * 1e3
        );
    }

    #[test]
    fn tia_transimpedance_equals_rf() {
        let cfg = MixerConfig::default();
        let p = characterize_tia(&cfg).unwrap();
        assert!(
            (p.zf0 - cfg.tia_rf).abs() < 0.1 * cfg.tia_rf,
            "zf0 = {} vs RF = {}",
            p.zf0,
            cfg.tia_rf
        );
    }

    #[test]
    fn tia_corner_matches_rc() {
        let cfg = MixerConfig::default();
        let p = characterize_tia(&cfg).unwrap();
        let nominal = cfg.tia_corner_hz();
        assert!(
            (p.corner_hz - nominal).abs() < 0.35 * nominal,
            "corner {:.3e} vs nominal {:.3e}",
            p.corner_hz,
            nominal
        );
    }

    #[test]
    fn tia_virtual_ground_low_impedance() {
        // Paper: "TIA is designed in such a way so that very low impedance
        // is provided at the passive mixer output."
        let cfg = MixerConfig::default();
        let p = characterize_tia(&cfg).unwrap();
        assert!(
            p.rin_at_5mhz < cfg.tia_rf / 10.0,
            "rin = {} not ≪ RF = {}",
            p.rin_at_5mhz,
            cfg.tia_rf
        );
    }

    #[test]
    fn tia_power_in_3ma_class() {
        // Paper: "The TIA draws a total of 3.3 mA from the supply."
        let p = characterize_tia(&MixerConfig::default()).unwrap();
        assert!(
            p.supply_current > 1.5e-3 && p.supply_current < 6e-3,
            "i = {} mA",
            p.supply_current * 1e3
        );
    }

    #[test]
    fn unpowered_tia_draws_nothing() {
        let cfg = MixerConfig::default();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let vcm = ckt.node("vcm");
        let input = ckt.node("in");
        let out = ckt.node("out");
        let vddsrc = ckt.add_vsource("vdd", vdd, Circuit::gnd(), Waveform::Dc(cfg.vdd));
        ckt.add_vsource("vcm", vcm, Circuit::gnd(), Waveform::Dc(cfg.tca_vcm));
        ckt.add_isource("iin", Circuit::gnd(), input, Waveform::Dc(0.0));
        build_tia(&mut ckt, "tia", input, out, vcm, vdd, &cfg, false);
        let op = dc_operating_point(&ckt, &OpOptions::default()).unwrap();
        let i = -op.branch_current(vddsrc);
        assert!(i.abs() < 50e-6, "off-state current {} A", i);
    }

    #[test]
    fn tia_noise_reasonable() {
        let p = characterize_tia(&MixerConfig::default()).unwrap();
        // Output noise of a few-kΩ TIA: nV²/Hz scale; input current noise
        // on the pA/√Hz scale.
        assert!(p.out_noise_5mhz > 0.0 && p.out_noise_5mhz < 1e-12);
        let in_pa = p.in2_5mhz.sqrt() * 1e12;
        assert!(in_pa > 0.1 && in_pa < 1000.0, "in = {in_pa} pA/√Hz");
    }
}
