//! Transconductance amplifier (paper Fig. 3).
//!
//! A fully differential CMOS (inverter-style) transconductor: each side is
//! an NMOS/PMOS pair sharing gate (input) and drain (output), converting
//! the RF voltage to a current with `gm = gm_n + gm_p` — reusing bias
//! current for both polarities, which is why this topology is preferred at
//! 1.2 V. The common mode is designed at VDD/2 for maximum swing (paper
//! §II-A).
//!
//! [`characterize`] extracts the behavioral parameters used by the
//! cascade model — gm, output resistance, parasitic output capacitance
//! (the paper's C_PAR), input-referred noise, and a cubic polynomial for
//! nonlinearity — from DC/AC/noise analyses of the transistor-level cell.

use crate::config::MixerConfig;
use remix_analysis::{
    ac_sweep, dc_operating_point, dc_sweep, output_noise, AnalysisError, OpOptions,
};
use remix_circuit::{Circuit, ElementId, Node, Waveform};
use remix_numerics::polyfit;
use remix_rfkit::Poly3;

/// Handles to one built TCA half.
#[derive(Debug, Clone)]
pub struct TcaHalf {
    /// NMOS device id.
    pub nmos: ElementId,
    /// PMOS device id.
    pub pmos: ElementId,
}

/// Adds one TCA half (inverter transconductor) to a circuit.
///
/// `input` is the gate node, `output` the shared drain node.
pub fn build_tca_half(
    ckt: &mut Circuit,
    prefix: &str,
    input: Node,
    output: Node,
    vdd: Node,
    cfg: &MixerConfig,
) -> TcaHalf {
    let nmos = ckt.add_mosfet(
        &format!("{prefix}_n"),
        cfg.nmos.clone(),
        cfg.tca_wn,
        cfg.tca_l,
        output,
        input,
        Circuit::gnd(),
        Circuit::gnd(),
    );
    let pmos = ckt.add_mosfet(
        &format!("{prefix}_p"),
        cfg.pmos.clone(),
        cfg.tca_wp,
        cfg.tca_l,
        output,
        input,
        vdd,
        vdd,
    );
    TcaHalf { nmos, pmos }
}

/// Extracted behavioral parameters of the TCA (per half; differential
/// quantities are identical for a balanced pair).
#[derive(Debug, Clone, PartialEq)]
pub struct TcaParams {
    /// Transconductance `gm_n + gm_p` (S).
    pub gm: f64,
    /// Output resistance `1/(gds_n + gds_p)` (Ω).
    pub rout: f64,
    /// Output parasitic capacitance C_PAR (F).
    pub cout: f64,
    /// Open-load voltage-gain pole `1/(2π·rout·cout)` (Hz).
    pub pole_hz: f64,
    /// Cubic large-signal transconductance polynomial: output current
    /// (A) vs input voltage deviation from bias (V). `a1 ≈ −gm` (sign
    /// from the inverting topology).
    pub poly: Poly3,
    /// Input-referred white-noise voltage PSD (V²/Hz), measured at 50 MHz
    /// (above the flicker corners).
    pub en2_white: f64,
    /// Bias current of the half (A).
    pub bias_current: f64,
}

impl TcaParams {
    /// IIP3 of the transconductor alone, as input peak amplitude (V).
    pub fn a_iip3(&self) -> Option<f64> {
        self.poly.a_iip3()
    }
}

/// Builds the standalone characterization fixture: one TCA half with its
/// gate driven by a bias source and the output clamped to `vcm` by a
/// zero-impedance probe (measuring the short-circuit output current).
fn fixture(cfg: &MixerConfig) -> (Circuit, Node, ElementId) {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.add_vsource("vdd", vdd, Circuit::gnd(), Waveform::Dc(cfg.vdd));
    ckt.add_vsource_ac(
        "vin",
        vin,
        Circuit::gnd(),
        Waveform::Dc(cfg.tca_vcm),
        1.0,
        0.0,
    );
    let probe = ckt.add_vsource("vprobe", out, Circuit::gnd(), Waveform::Dc(cfg.tca_vcm));
    build_tca_half(&mut ckt, "tca", vin, out, vdd, cfg);
    (ckt, out, probe)
}

/// Characterizes the TCA against its transistor-level netlist.
///
/// # Errors
///
/// Propagates analysis errors (non-convergence, singular systems).
pub fn characterize(cfg: &MixerConfig) -> Result<TcaParams, AnalysisError> {
    cfg.assert_valid();
    let opts = OpOptions::default();

    // --- Small-signal parameters from the OP of the clamped fixture ---
    let (ckt, _out, probe) = fixture(cfg);
    let op = dc_operating_point(&ckt, &opts)?;
    let nmos_id = ckt.find_element("tca_n").expect("nmos"); // audit: allow(AUD001): the TCA fixture always builds tca_n
    let pmos_id = ckt.find_element("tca_p").expect("pmos"); // audit: allow(AUD001): the TCA fixture always builds tca_p
    let evn = *op.mos_eval(nmos_id).expect("nmos eval"); // audit: allow(AUD001): the OP evaluated every MOS in the fixture
    let evp = *op.mos_eval(pmos_id).expect("pmos eval"); // audit: allow(AUD001): the OP evaluated every MOS in the fixture
    let gm = evn.gm + evp.gm;
    let rout = 1.0 / (evn.gds + evp.gds);
    let bias_current = evn.id.abs();

    // Output capacitance: cgd + cdb of both devices (gate is AC-driven,
    // so cgd Miller-multiplies in voltage mode; as a current-output cell
    // the plain sum is the C_PAR that loads the switching stage).
    let capsn = op.mos_caps[nmos_id.index()].expect("caps"); // audit: allow(AUD001): the OP records caps for every MOS in the fixture
    let capsp = op.mos_caps[pmos_id.index()].expect("caps"); // audit: allow(AUD001): the OP records caps for every MOS in the fixture
    let cout = capsn.cgd + capsn.cdb + capsp.cgd + capsp.cdb;
    let pole_hz = 1.0 / (2.0 * std::f64::consts::PI * rout * cout);

    // --- Large-signal polynomial from a DC input sweep ---
    // Sweep the gate ±60 mV around bias and record the probe's branch
    // current (short-circuit output current).
    let dv = 0.06;
    let n_pts = 25;
    let values: Vec<f64> = (0..n_pts)
        .map(|k| cfg.tca_vcm - dv + 2.0 * dv * k as f64 / (n_pts - 1) as f64)
        .collect();
    let sweep = dc_sweep(&ckt, "vin", &values, &opts)?;
    let x: Vec<f64> = values.iter().map(|v| v - cfg.tca_vcm).collect();
    let i_out: Vec<f64> = sweep
        .points
        .iter()
        .map(|p| p.branch_current(probe))
        .collect();
    let coeffs = polyfit(&x, &i_out, 3).map_err(AnalysisError::singular)?;
    let poly = Poly3 {
        a1: coeffs[1],
        a2: coeffs[2],
        a3: coeffs[3],
    };

    // --- Noise: output current noise → input-referred voltage noise ---
    // With the output clamped, the noise current flows into the probe;
    // measure instead with a resistive load = rout to get voltage noise,
    // then refer to input by the realized gain.
    let mut ckt_n = Circuit::new();
    let vddn = ckt_n.node("vdd");
    let vinn = ckt_n.node("in");
    let outn = ckt_n.node("out");
    ckt_n.add_vsource("vdd", vddn, Circuit::gnd(), Waveform::Dc(cfg.vdd));
    ckt_n.add_vsource_ac(
        "vin",
        vinn,
        Circuit::gnd(),
        Waveform::Dc(cfg.tca_vcm),
        1.0,
        0.0,
    );
    // Noiseless ideal load: a VCCS emulating a conductance would be
    // noiseless, but a plain resistor adds 4kT/R — subtract analytically
    // instead (simpler: use a resistor far larger than rout so its noise
    // and loading are negligible, and take the gain from AC).
    ckt_n.add_resistor("rl", outn, Circuit::gnd(), 100.0 * rout);
    build_tca_half(&mut ckt_n, "tca", vinn, outn, vddn, cfg);
    let opn = dc_operating_point(&ckt_n, &opts)?;
    // Measure above the device flicker corners: this extracts the white
    // floor (TCA low-frequency noise is commutated away from the IF).
    let f_meas = 50e6;
    let acr = ac_sweep(&ckt_n, &opn, &[f_meas])?;
    let av = acr.voltage(0, outn).abs();
    let nr = output_noise(&ckt_n, &opn, outn, Circuit::gnd(), &[f_meas])?;
    let en2_white = nr.total[0] / (av * av);

    Ok(TcaParams {
        gm,
        rout,
        cout,
        pole_hz,
        poly,
        en2_white,
        bias_current,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TcaParams {
        characterize(&MixerConfig::default()).unwrap()
    }

    #[test]
    fn gm_in_design_range() {
        let p = params();
        // Inverter gm at ~1.5-2.5 mA per half in 65 nm: several mS.
        assert!(p.gm > 5e-3 && p.gm < 80e-3, "gm = {}", p.gm);
    }

    #[test]
    fn bias_current_near_target() {
        // Power budget: TCA ≈ 4.4 mA total → ~2.2 mA per half.
        let p = params();
        assert!(
            p.bias_current > 0.5e-3 && p.bias_current < 5e-3,
            "i = {} mA",
            p.bias_current * 1e3
        );
    }

    #[test]
    fn poly_linear_term_matches_gm() {
        let p = params();
        // |a1| should equal gm closely (both are ∂i/∂v at bias).
        assert!(
            (p.poly.a1.abs() - p.gm).abs() < 0.05 * p.gm,
            "a1 {} vs gm {}",
            p.poly.a1,
            p.gm
        );
        // Inverting: NMOS pulls down when input rises.
        assert!(p.poly.a1 < 0.0);
    }

    #[test]
    fn nonlinearity_is_finite_and_compressive() {
        let p = params();
        let a = p.a_iip3().expect("cubic term present");
        // IIP3 of a bare short-channel transconductor: hundreds of mV.
        assert!(a > 0.05 && a < 10.0, "a_iip3 = {a}");
    }

    #[test]
    fn rout_and_pole() {
        let p = params();
        assert!(p.rout > 100.0 && p.rout < 100e3, "rout = {}", p.rout);
        // C_PAR minimized by design: pole well above the 5.5 GHz band
        // top is not required (it is the band-limiting pole), but it must
        // be in the GHz range.
        assert!(p.pole_hz > 0.5e9, "pole = {:.3e}", p.pole_hz);
        assert!(p.cout > 1e-15 && p.cout < 1e-12, "cout = {:.3e}", p.cout);
    }

    #[test]
    fn input_noise_density_nv_range() {
        let p = params();
        let en = p.en2_white.sqrt();
        // nV/√Hz scale for a multi-mS transconductor.
        assert!(en > 0.1e-9 && en < 10e-9, "en = {en:.3e}");
    }
}
