//! Dedicated (non-reconfigurable) baseline mixers.
//!
//! The paper's Fig. 1 motivates reconfigurability by the classic
//! active-vs-passive trade-off table, and its intro argues that two
//! separate radios ("the easiest solution") are "power hungry, costly and
//! take more area". These baselines make that comparison *executable*:
//!
//! * [`BaselineKind::DedicatedActive`] — a plain Gilbert mixer: no Mp1/Mp2
//!   switches loading the TCA output, DC-coupled Gm gates (no
//!   gate-coupling high-pass), no TIA on the die;
//! * [`BaselineKind::DedicatedPassive`] — a plain current-commutating
//!   passive mixer: wide, low-resistance routing instead of the Mp1/Mp2
//!   mode switches, no Gm devices/tail.
//!
//! Each is realized by re-configuring the same extracted device physics —
//! so the comparison isolates exactly the *cost of reconfigurability*
//! (switch parasitics, coupling networks) and the *cost of duplication*
//! (two dies' worth of area and either standby power or RF switching).

use crate::config::{MixerConfig, MixerMode};
use crate::model::{ExtractedParams, MixerModel};
use remix_analysis::AnalysisError;

/// Which dedicated design to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// Stand-alone Gilbert-cell mixer.
    DedicatedActive,
    /// Stand-alone current-commutating passive mixer with TIA.
    DedicatedPassive,
}

impl BaselineKind {
    /// The mode this baseline corresponds to.
    pub fn mode(self) -> MixerMode {
        match self {
            BaselineKind::DedicatedActive => MixerMode::Active,
            BaselineKind::DedicatedPassive => MixerMode::Passive,
        }
    }
}

/// A dedicated mixer model plus its bookkeeping.
#[derive(Debug, Clone)]
pub struct BaselineMixer {
    /// Which dedicated design.
    pub kind: BaselineKind,
    /// Behavioral model (same physics, de-reconfigured netlist).
    pub model: MixerModel,
}

/// Configuration of a dedicated active mixer: removes the passive-path
/// hardware costs from the reconfigurable design.
pub fn dedicated_active_config(base: &MixerConfig) -> MixerConfig {
    MixerConfig {
        // DC-coupled Gm gates: a large coupling cap removes the 1 GHz
        // gate high-pass that reconfigurability forced.
        gm_couple_c: 10e-12,
        // No Mp1/Mp2 junctions hanging on the TCA output.
        node_parasitic_c: base.node_parasitic_c * 0.6,
        ..base.clone()
    }
}

/// Configuration of a dedicated passive mixer: the TCA output routes
/// straight into the quad (metal, not a PMOS switch).
pub fn dedicated_passive_config(base: &MixerConfig) -> MixerConfig {
    MixerConfig {
        // "Switch" is now wide routing: negligible series resistance (and
        // no Rdeg linearization — dedicated passive designs add real
        // resistors when they want it).
        sw12_w: 600e-6,
        node_parasitic_c: base.node_parasitic_c * 0.6,
        ..base.clone()
    }
}

impl BaselineMixer {
    /// Builds a baseline from the shared base configuration.
    ///
    /// # Errors
    ///
    /// Propagates extraction errors.
    pub fn new(kind: BaselineKind, base: &MixerConfig) -> Result<Self, AnalysisError> {
        let cfg = match kind {
            BaselineKind::DedicatedActive => dedicated_active_config(base),
            BaselineKind::DedicatedPassive => dedicated_passive_config(base),
        };
        let params = ExtractedParams::extract(&cfg)?;
        Ok(BaselineMixer {
            kind,
            model: MixerModel::new(cfg, kind.mode(), params),
        })
    }

    /// Power of a *two-radio* solution covering both use cases: this
    /// dedicated design plus an idle counterpart burning `standby_frac`
    /// of the other mode's power (the paper's "only one of the mode
    /// function at a time" critique).
    pub fn two_radio_power_mw(&self, other: &BaselineMixer, standby_frac: f64) -> f64 {
        self.model.power_mw() + standby_frac * other.model.power_mw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn baselines() -> &'static (BaselineMixer, BaselineMixer) {
        static CACHE: OnceLock<(BaselineMixer, BaselineMixer)> = OnceLock::new();
        CACHE.get_or_init(|| {
            let base = MixerConfig::default();
            (
                BaselineMixer::new(BaselineKind::DedicatedActive, &base).unwrap(),
                BaselineMixer::new(BaselineKind::DedicatedPassive, &base).unwrap(),
            )
        })
    }

    fn reconfig(mode: MixerMode) -> MixerModel {
        static CACHE: OnceLock<ExtractedParams> = OnceLock::new();
        let p = CACHE
            .get_or_init(|| ExtractedParams::extract(&MixerConfig::default()).unwrap())
            .clone();
        MixerModel::new(MixerConfig::default(), mode, p)
    }

    #[test]
    fn dedicated_active_has_wider_low_band() {
        let (da, _) = baselines();
        let rec = reconfig(MixerMode::Active);
        // At 0.6 GHz the dedicated active (no gate HP) holds its gain
        // while the reconfigurable active has rolled off.
        let g_ded = da.model.conv_gain_db(0.6e9, 5e6);
        let g_rec = rec.conv_gain_db(0.6e9, 5e6);
        assert!(
            g_ded > g_rec + 1.0,
            "dedicated {g_ded:.1} dB vs reconfigurable {g_rec:.1} dB at 600 MHz"
        );
    }

    #[test]
    fn dedicated_passive_has_lower_loss() {
        let (_, dp) = baselines();
        let rec = reconfig(MixerMode::Passive);
        // No Mp series resistance: more of the TCA current reaches the
        // TIA, so the dedicated design has a little more gain.
        let g_ded = dp.model.conv_gain_db(2.45e9, 5e6);
        let g_rec = rec.conv_gain_db(2.45e9, 5e6);
        assert!(
            g_ded > g_rec,
            "dedicated {g_ded:.1} dB vs reconfigurable {g_rec:.1} dB"
        );
        // …but it also loses the Rdeg linearization.
        assert!(
            dp.model.params.rdeg < 10.0,
            "rdeg = {}",
            dp.model.params.rdeg
        );
    }

    #[test]
    fn reconfigurable_close_to_dedicated_per_mode() {
        // The paper's core claim: one circuit gives nearly both dedicated
        // performances. Require within 2.5 dB of each dedicated gain.
        let (da, dp) = baselines();
        let ra = reconfig(MixerMode::Active);
        let rp = reconfig(MixerMode::Passive);
        let d_a = da.model.conv_gain_db(2.45e9, 5e6) - ra.conv_gain_db(2.45e9, 5e6);
        let d_p = dp.model.conv_gain_db(2.45e9, 5e6) - rp.conv_gain_db(2.45e9, 5e6);
        assert!(d_a.abs() < 2.5, "active penalty {d_a:.2} dB");
        assert!(d_p.abs() < 2.5, "passive penalty {d_p:.2} dB");
    }

    #[test]
    fn two_radio_power_exceeds_reconfigurable() {
        let (da, dp) = baselines();
        // Even with only 10 % standby leakage on the idle radio, two
        // dedicated radios burn more than the reconfigurable circuit in
        // either mode.
        let two_radio = da.two_radio_power_mw(dp, 0.1);
        let rec = reconfig(MixerMode::Active).power_mw();
        assert!(
            two_radio > rec,
            "two radios {two_radio:.2} mW vs reconfigurable {rec:.2} mW"
        );
    }
}
