//! Monte-Carlo mismatch analysis.
//!
//! The paper's "IIP2 > 65 dBm for both cases" rests on differential
//! symmetry: with perfect matching, even-order products are common-mode
//! and cancel. Real dies mismatch; Pelgrom-style σ(ΔVt) and σ(Δβ/β)
//! applied to the TCA halves leave a residual second-order term whose size
//! sets the achievable IIP2. This module perturbs the *device models* of
//! the two halves, re-extracts each half's large-signal polynomial from
//! the transistor level, and reports the distribution of resulting IIP2.

use crate::config::MixerConfig;
use crate::tca::{build_tca_half, TcaHalf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use remix_analysis::{dc_sweep, AnalysisError, OpOptions};
use remix_circuit::{Circuit, MosModel, Waveform};
use remix_dsp::units::{vpeak_to_dbm, Z0};
use remix_numerics::polyfit;
use remix_rfkit::Poly3;

/// Mismatch magnitudes (1-σ) applied independently to each device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MismatchConfig {
    /// Threshold-voltage mismatch σ (V) — Pelgrom: `A_vt/√(WL)`, a few mV
    /// for µm-scale RF devices.
    pub sigma_vt: f64,
    /// Relative β (kp) mismatch σ.
    pub sigma_kp_frac: f64,
    /// Number of Monte-Carlo samples.
    pub n_runs: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for MismatchConfig {
    fn default() -> Self {
        MismatchConfig {
            sigma_vt: 2.0e-3,
            sigma_kp_frac: 0.005,
            n_runs: 30,
            seed: 0xD1E5,
        }
    }
}

fn perturb(model: &MosModel, rng: &mut StdRng, mm: &MismatchConfig) -> MosModel {
    let mut out = model.clone();
    let gauss = |rng: &mut StdRng| -> f64 {
        // Box–Muller.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    out.vt0 += mm.sigma_vt * gauss(rng);
    out.kp *= 1.0 + mm.sigma_kp_frac * gauss(rng);
    out
}

/// Extracts the large-signal polynomial of one (possibly perturbed) TCA
/// half via a DC sweep of the clamped fixture.
fn half_poly(cfg: &MixerConfig) -> Result<Poly3, AnalysisError> {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.add_vsource("vdd", vdd, Circuit::gnd(), Waveform::Dc(cfg.vdd));
    ckt.add_vsource("vin", vin, Circuit::gnd(), Waveform::Dc(cfg.tca_vcm));
    let probe = ckt.add_vsource("vprobe", out, Circuit::gnd(), Waveform::Dc(cfg.tca_vcm));
    let _: TcaHalf = build_tca_half(&mut ckt, "tca", vin, out, vdd, cfg);
    let dv = 0.05;
    let n_pts = 15;
    let values: Vec<f64> = (0..n_pts)
        .map(|k| cfg.tca_vcm - dv + 2.0 * dv * k as f64 / (n_pts - 1) as f64)
        .collect();
    let sweep = dc_sweep(&ckt, "vin", &values, &OpOptions::default())?;
    let x: Vec<f64> = values.iter().map(|v| v - cfg.tca_vcm).collect();
    let i: Vec<f64> = sweep
        .points
        .iter()
        .map(|p| p.branch_current(probe))
        .collect();
    let c = polyfit(&x, &i, 3).map_err(AnalysisError::Singular)?;
    Ok(Poly3 {
        a1: c[1],
        a2: c[2],
        a3: c[3],
    })
}

/// One Monte-Carlo IIP2 sample (dBm at the EMF).
///
/// The differential pair's residual even-order coefficient is the
/// *difference* of the halves' `a2` (their common part cancels); the
/// intercept follows as `|a1_avg/Δa2|`, referred through the termination
/// divider.
fn iip2_sample(
    base: &MixerConfig,
    rng: &mut StdRng,
    mm: &MismatchConfig,
) -> Result<f64, AnalysisError> {
    let cfg_p = MixerConfig {
        nmos: perturb(&base.nmos, rng, mm),
        pmos: perturb(&base.pmos, rng, mm),
        ..base.clone()
    };
    let cfg_n = MixerConfig {
        nmos: perturb(&base.nmos, rng, mm),
        pmos: perturb(&base.pmos, rng, mm),
        ..base.clone()
    };
    let pp = half_poly(&cfg_p)?;
    let pn = half_poly(&cfg_n)?;
    let a1 = 0.5 * (pp.a1.abs() + pn.a1.abs());
    let da2 = (pp.a2 - pn.a2).abs().max(1e-12);
    let d = base.input_term_r / (base.rs + base.input_term_r);
    let a_iip2_emf = (a1 / da2) / d;
    Ok(vpeak_to_dbm(a_iip2_emf, Z0))
}

/// Runs the Monte-Carlo IIP2 study; returns one IIP2 (dBm) per sample,
/// sorted ascending.
///
/// # Errors
///
/// Propagates analysis errors from any sample.
pub fn iip2_distribution(
    base: &MixerConfig,
    mm: &MismatchConfig,
) -> Result<Vec<f64>, AnalysisError> {
    let mut rng = StdRng::seed_from_u64(mm.seed);
    let mut out = Vec::with_capacity(mm.n_runs);
    for _ in 0..mm.n_runs {
        out.push(iip2_sample(base, &mut rng, mm)?);
    }
    out.sort_by(f64::total_cmp);
    Ok(out)
}

/// Summary statistics of a sorted distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistSummary {
    /// Smallest sample.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Largest sample.
    pub max: f64,
}

/// Summarizes a sorted sample vector.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn summarize(sorted: &[f64]) -> DistSummary {
    assert!(!sorted.is_empty());
    DistSummary {
        min: sorted[0],
        median: sorted[sorted.len() / 2],
        max: sorted[sorted.len() - 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iip2_distribution_quantifies_matching_requirement() {
        // A finding the single-simulation paper cannot show: with raw
        // Pelgrom-scale mismatch (σ_vt = 2 mV) the *median* die sits near
        // 57 dBm — the paper's "> 65 dBm" needs common-centroid-quality
        // matching (σ_vt ≲ 1 mV), where the median clears the line.
        let raw = MismatchConfig {
            n_runs: 6,
            ..MismatchConfig::default()
        };
        let dist = iip2_distribution(&MixerConfig::default(), &raw).unwrap();
        assert_eq!(dist.len(), 6);
        let s = summarize(&dist);
        assert!(s.min > 45.0, "worst sample {:.1} dBm", s.min);
        assert!(s.median > 52.0, "median {:.1} dBm", s.median);
        assert!(s.min <= s.median && s.median <= s.max);

        // 12 samples: the 6-sample median estimator sits within ±1 dB of
        // the 65 dBm line and flips with the RNG stream; doubling the
        // draw stabilizes it on the physics, not the generator.
        let matched = MismatchConfig {
            sigma_vt: 0.7e-3,
            sigma_kp_frac: 0.002,
            n_runs: 12,
            seed: raw.seed,
        };
        let dist2 = iip2_distribution(&MixerConfig::default(), &matched).unwrap();
        let s2 = summarize(&dist2);
        assert!(
            s2.median > 65.0,
            "well-matched median {:.1} dBm should clear the paper's line",
            s2.median
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mm = MismatchConfig {
            n_runs: 3,
            ..MismatchConfig::default()
        };
        let a = iip2_distribution(&MixerConfig::default(), &mm).unwrap();
        let b = iip2_distribution(&MixerConfig::default(), &mm).unwrap();
        assert_eq!(a, b);
        let mm2 = MismatchConfig { seed: 1, ..mm };
        let c = iip2_distribution(&MixerConfig::default(), &mm2).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn more_mismatch_less_iip2() {
        let tight = MismatchConfig {
            sigma_vt: 0.5e-3,
            sigma_kp_frac: 0.001,
            n_runs: 8,
            seed: 7,
        };
        let loose = MismatchConfig {
            sigma_vt: 8.0e-3,
            sigma_kp_frac: 0.02,
            n_runs: 8,
            seed: 7,
        };
        let base = MixerConfig::default();
        let dt = summarize(&iip2_distribution(&base, &tight).unwrap());
        let dl = summarize(&iip2_distribution(&base, &loose).unwrap());
        assert!(
            dt.median > dl.median,
            "tight {:.1} vs loose {:.1}",
            dt.median,
            dl.median
        );
    }
}
