//! Monte-Carlo mismatch analysis.
//!
//! The paper's "IIP2 > 65 dBm for both cases" rests on differential
//! symmetry: with perfect matching, even-order products are common-mode
//! and cancel. Real dies mismatch; Pelgrom-style σ(ΔVt) and σ(Δβ/β)
//! applied to the TCA halves leave a residual second-order term whose size
//! sets the achievable IIP2. This module perturbs the *device models* of
//! the two halves, re-extracts each half's large-signal polynomial from
//! the transistor level, and reports the distribution of resulting IIP2.
//!
//! ## Failure isolation
//!
//! A die that fails to converge is data, not a reason to abandon the
//! study: [`iip2_study`] records a [`SampleOutcome`] per sample — the
//! IIP2 value or the [`ConvergenceTrace`] explaining the failure — keeps
//! sweeping, and reports yield. Samples draw from *independently seeded*
//! RNG streams (SplitMix64 of the study seed and the sample index), so a
//! run interrupted after sample `k` resumes from a JSON checkpoint
//! without replaying samples `0..k`: see [`crate::checkpoint`].

use crate::config::MixerConfig;
use crate::tca::{build_tca_half, TcaHalf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use remix_analysis::{dc_sweep, AnalysisError, ConvergenceTrace, OpOptions};
use remix_circuit::{Circuit, MosModel, Waveform};
use remix_dsp::units::{vpeak_to_dbm, Z0};
use remix_numerics::polyfit;
use remix_rfkit::Poly3;
use std::path::Path;

/// Mismatch magnitudes (1-σ) applied independently to each device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MismatchConfig {
    /// Threshold-voltage mismatch σ (V) — Pelgrom: `A_vt/√(WL)`, a few mV
    /// for µm-scale RF devices.
    pub sigma_vt: f64,
    /// Relative β (kp) mismatch σ.
    pub sigma_kp_frac: f64,
    /// Number of Monte-Carlo samples.
    pub n_runs: usize,
    /// RNG seed for reproducibility. Each sample derives its own stream
    /// from this seed and its index, so outcomes are prefix-stable: the
    /// first `k` samples of an `n`-run study equal a `k`-run study.
    pub seed: u64,
    /// Forces the sample at this index to fail via an injected singular
    /// pivot. Only effective when the `fault-inject` feature is enabled;
    /// silently inert otherwise. Used to test failure isolation and
    /// checkpoint resume against a deterministic casualty.
    pub fault_sample: Option<usize>,
}

impl Default for MismatchConfig {
    fn default() -> Self {
        MismatchConfig {
            sigma_vt: 2.0e-3,
            sigma_kp_frac: 0.005,
            n_runs: 30,
            seed: 0xD1E5,
            fault_sample: None,
        }
    }
}

fn perturb(model: &MosModel, rng: &mut StdRng, mm: &MismatchConfig) -> MosModel {
    let mut out = model.clone();
    let gauss = |rng: &mut StdRng| -> f64 {
        // Box–Muller.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    out.vt0 += mm.sigma_vt * gauss(rng);
    out.kp *= 1.0 + mm.sigma_kp_frac * gauss(rng);
    out
}

/// Extracts the large-signal polynomial of one (possibly perturbed) TCA
/// half via a DC sweep of the clamped fixture.
fn half_poly(cfg: &MixerConfig) -> Result<Poly3, AnalysisError> {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.add_vsource("vdd", vdd, Circuit::gnd(), Waveform::Dc(cfg.vdd));
    ckt.add_vsource("vin", vin, Circuit::gnd(), Waveform::Dc(cfg.tca_vcm));
    let probe = ckt.add_vsource("vprobe", out, Circuit::gnd(), Waveform::Dc(cfg.tca_vcm));
    let _: TcaHalf = build_tca_half(&mut ckt, "tca", vin, out, vdd, cfg);
    let dv = 0.05;
    let n_pts = 15;
    let values: Vec<f64> = (0..n_pts)
        .map(|k| cfg.tca_vcm - dv + 2.0 * dv * k as f64 / (n_pts - 1) as f64)
        .collect();
    let sweep = dc_sweep(&ckt, "vin", &values, &OpOptions::default())?;
    let x: Vec<f64> = values.iter().map(|v| v - cfg.tca_vcm).collect();
    let i: Vec<f64> = sweep
        .points
        .iter()
        .map(|p| p.branch_current(probe))
        .collect();
    let c = polyfit(&x, &i, 3).map_err(AnalysisError::singular)?;
    Ok(Poly3 {
        a1: c[1],
        a2: c[2],
        a3: c[3],
    })
}

/// One Monte-Carlo IIP2 sample (dBm at the EMF).
///
/// The differential pair's residual even-order coefficient is the
/// *difference* of the halves' `a2` (their common part cancels); the
/// intercept follows as `|a1_avg/Δa2|`, referred through the termination
/// divider.
fn iip2_sample(
    base: &MixerConfig,
    rng: &mut StdRng,
    mm: &MismatchConfig,
) -> Result<f64, AnalysisError> {
    let cfg_p = MixerConfig {
        nmos: perturb(&base.nmos, rng, mm),
        pmos: perturb(&base.pmos, rng, mm),
        ..base.clone()
    };
    let cfg_n = MixerConfig {
        nmos: perturb(&base.nmos, rng, mm),
        pmos: perturb(&base.pmos, rng, mm),
        ..base.clone()
    };
    let pp = half_poly(&cfg_p)?;
    let pn = half_poly(&cfg_n)?;
    let a1 = 0.5 * (pp.a1.abs() + pn.a1.abs());
    let da2 = (pp.a2 - pn.a2).abs().max(1e-12);
    let d = base.input_term_r / (base.rs + base.input_term_r);
    let a_iip2_emf = (a1 / da2) / d;
    Ok(vpeak_to_dbm(a_iip2_emf, Z0))
}

/// Outcome of one Monte-Carlo sample.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleOutcome {
    /// The sample solved; IIP2 in dBm at the EMF.
    Ok(f64),
    /// The sample failed to solve; the trace records what the
    /// convergence ladder tried before giving up.
    Failed(ConvergenceTrace),
}

impl SampleOutcome {
    /// `true` for a solved sample.
    pub fn is_ok(&self) -> bool {
        matches!(self, SampleOutcome::Ok(_))
    }

    /// The IIP2 value, when the sample solved.
    pub fn value(&self) -> Option<f64> {
        match self {
            SampleOutcome::Ok(v) => Some(*v),
            SampleOutcome::Failed(_) => None,
        }
    }

    /// The failure trace, when the sample did not solve.
    pub fn trace(&self) -> Option<&ConvergenceTrace> {
        match self {
            SampleOutcome::Ok(_) => None,
            SampleOutcome::Failed(t) => Some(t),
        }
    }
}

/// A completed Monte-Carlo study with per-sample outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct McStudy {
    /// Outcome of sample `i` at index `i`. Shorter than the requested
    /// `n_runs` when a run budget interrupted the study (see
    /// [`interrupted`](Self::interrupted)).
    pub outcomes: Vec<SampleOutcome>,
    /// Samples evaluated by this invocation.
    pub computed: usize,
    /// Samples restored from the checkpoint instead of recomputed.
    pub resumed: usize,
    /// `Some` when a [`RunBudget`](remix_exec::RunBudget) armed on this
    /// thread stopped the study before every sample ran; the completed
    /// prefix in `outcomes` is still valid and, with a checkpoint, a
    /// later invocation finishes only the remaining samples.
    pub interrupted: Option<remix_exec::Interruption>,
}

impl McStudy {
    /// IIP2 values of the solved samples, sorted ascending.
    pub fn passed(&self) -> Vec<f64> {
        let mut out: Vec<f64> = self
            .outcomes
            .iter()
            .filter_map(SampleOutcome::value)
            .collect();
        out.sort_by(f64::total_cmp);
        out
    }

    /// Number of solved samples.
    pub fn n_ok(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_ok()).count()
    }

    /// Number of failed samples.
    pub fn n_failed(&self) -> usize {
        self.outcomes.len() - self.n_ok()
    }

    /// Fraction of samples that solved (1.0 for an empty study).
    pub fn yield_fraction(&self) -> f64 {
        if self.outcomes.is_empty() {
            1.0
        } else {
            self.n_ok() as f64 / self.outcomes.len() as f64
        }
    }

    /// `(sample index, trace)` for every failed sample, in order.
    pub fn failures(&self) -> impl Iterator<Item = (usize, &ConvergenceTrace)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.trace().map(|t| (i, t)))
    }

    /// One-line yield summary, e.g. `yield 39/40 (97.5 %)`.
    pub fn summary_line(&self) -> String {
        format!(
            "yield {}/{} ({:.1} %)",
            self.n_ok(),
            self.outcomes.len(),
            100.0 * self.yield_fraction()
        )
    }
}

/// Derives the RNG seed of sample `index` (SplitMix64 mix of the study
/// seed and the index), decoupling samples from one another.
fn sample_seed(seed: u64, index: usize) -> u64 {
    let mut z = seed.wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The trace attached to a sample failure; errors without one (lint
/// rejections, unknown probes) get a single-line trace carrying the
/// rendered error so no failure is ever silent.
pub(crate) fn failure_trace(e: &AnalysisError) -> ConvergenceTrace {
    match e.trace() {
        Some(t) if !t.is_empty() => t.clone(),
        _ => ConvergenceTrace::new(e.to_string()),
    }
}

/// Maps a pool outcome back into the study's sample vocabulary: a
/// contained panic or an exhausted per-sample deadline is a *failed
/// sample* with a one-line trace, never a dead study.
fn pool_sample(outcome: &remix_exec::TaskOutcome<SampleOutcome>) -> SampleOutcome {
    match outcome {
        remix_exec::TaskOutcome::Done(sample) => sample.clone(),
        remix_exec::TaskOutcome::Failed(trace) => {
            SampleOutcome::Failed(ConvergenceTrace::new(trace.clone()))
        }
        remix_exec::TaskOutcome::TimedOut {
            attempts,
            budget_ms,
        } => SampleOutcome::Failed(ConvergenceTrace::new(format!(
            "sample timed out: {attempts} attempt(s) exhausted the {budget_ms} ms per-sample budget"
        ))),
    }
}

/// Runs the failure-isolating Monte-Carlo IIP2 study.
///
/// Every sample is attempted; failures are recorded with their traces
/// and the sweep continues. When `checkpoint` names a file, each
/// completed sample is persisted there and a compatible existing
/// checkpoint is resumed (completed samples are restored, not re-run).
/// A checkpoint written for a different seed or σ is ignored.
///
/// When a [`RunBudget`](remix_exec::RunBudget) armed on this thread
/// trips — at a sample boundary or inside a sample — the study stops
/// with [`McStudy::interrupted`] set and the completed prefix intact;
/// with a checkpoint, a later invocation finishes only the remaining
/// samples.
///
/// Equivalent to [`iip2_study_with`] on the default (serial) pool.
pub fn iip2_study(base: &MixerConfig, mm: &MismatchConfig, checkpoint: Option<&Path>) -> McStudy {
    iip2_study_with(base, mm, checkpoint, &remix_exec::PoolOptions::default())
}

/// [`iip2_study`] on an explicit [`remix_exec::PoolOptions`] — the
/// parallel entry point.
///
/// Samples are dispatched to the work-stealing pool; per-sample RNG
/// seeding plus the pool's ordered telemetry merge make the study's
/// outcomes and its `without_timings()` snapshot identical for any
/// worker count, including chaos-injected panics (which land as typed
/// [`SampleOutcome::Failed`] records, keyed deterministically by
/// sample index). Checkpoints are written in the version-3 bitmap
/// format after every completion, so a kill mid-study resumes exactly
/// the uncomputed set even when completion ran out of order; legacy
/// version-1 checkpoints still load.
///
/// Under an interruption, [`McStudy::outcomes`] keeps the longest
/// contiguous completed prefix (the serial contract), while the
/// checkpoint retains *every* completed sample for the resume.
pub fn iip2_study_with(
    base: &MixerConfig,
    mm: &MismatchConfig,
    checkpoint: Option<&Path>,
    pool: &remix_exec::PoolOptions,
) -> McStudy {
    let mut slots: Vec<Option<SampleOutcome>> = vec![None; mm.n_runs];
    let mut records: Vec<(usize, crate::checkpoint::StudyOutcome)> = Vec::new();
    if let Some(path) = checkpoint {
        for (i, outcome) in crate::checkpoint::load_mc_any(path, mm, mm.n_runs).unwrap_or_default()
        {
            records.push((i, crate::checkpoint::mc_record(&outcome)));
            slots[i] = Some(outcome);
        }
    }
    let resumed = records.len();
    let todo: Vec<usize> = (0..mm.n_runs).filter(|&i| slots[i].is_none()).collect();
    let config = crate::checkpoint::mc_study_config(mm);
    // A fault plan armed on the caller thread must also bite on pool
    // workers: capture it here and re-arm per task (counters restart
    // per sample — the deterministic parallel semantics). The study's
    // own `fault_sample` casualty takes precedence for its sample.
    #[cfg(feature = "fault-inject")]
    let caller_fault = remix_analysis::active_plan();
    let run = remix_exec::run_tasks(
        &todo,
        pool,
        |ctx| {
            let i = ctx.index;
            #[cfg(feature = "fault-inject")]
            let _fault = if mm.fault_sample == Some(i) {
                Some(remix_analysis::FaultPlan::singular_pivot().arm())
            } else {
                caller_fault.map(remix_analysis::FaultPlan::arm)
            };
            let mut rng = StdRng::seed_from_u64(sample_seed(mm.seed, i));
            let _span = remix_telemetry::span(remix_telemetry::names::CORE_MONTECARLO_SAMPLE)
                .with_field("index", i);
            match iip2_sample(base, &mut rng, mm) {
                Ok(v) => remix_exec::TaskResult::Done(SampleOutcome::Ok(v)),
                Err(e) => match e.interruption() {
                    // A budget trip mid-sample interrupts the *study*
                    // (or, under a per-sample deadline, re-dispatches
                    // the straggler); nothing is recorded for the
                    // sample, so a resumed run recomputes it in full.
                    Some(intr) => remix_exec::TaskResult::Interrupted(intr),
                    None => remix_exec::TaskResult::Done(SampleOutcome::Failed(failure_trace(&e))),
                },
            }
        },
        |index, outcome| {
            let sample = pool_sample(outcome);
            remix_telemetry::counter_add(
                match sample {
                    SampleOutcome::Ok(_) => remix_telemetry::names::CORE_MONTECARLO_SAMPLES_OK,
                    SampleOutcome::Failed(_) => {
                        remix_telemetry::names::CORE_MONTECARLO_SAMPLES_FAILED
                    }
                },
                1,
            );
            records.push((index, crate::checkpoint::mc_record(&sample)));
            if let Some(path) = checkpoint {
                // Checkpoint write failures must not kill the study the
                // checkpoint exists to protect; the run just loses
                // resumability.
                let _ =
                    crate::checkpoint::save_study_v3(path, "mc_iip2", &config, mm.n_runs, &records);
            }
        },
    );
    let computed = run.outcomes.len();
    for (i, outcome) in &run.outcomes {
        slots[*i] = Some(pool_sample(outcome));
    }
    let mut outcomes = Vec::with_capacity(mm.n_runs);
    for slot in &mut slots {
        match slot.take() {
            Some(done) => outcomes.push(done),
            None => break,
        }
    }
    McStudy {
        outcomes,
        computed,
        resumed,
        interrupted: run.interrupted,
    }
}

/// Runs the Monte-Carlo IIP2 study; returns one IIP2 (dBm) per sample,
/// sorted ascending.
///
/// # Errors
///
/// Fails on the first failed sample, carrying its convergence trace.
/// Use [`iip2_study`] to sweep past failures instead.
pub fn iip2_distribution(
    base: &MixerConfig,
    mm: &MismatchConfig,
) -> Result<Vec<f64>, AnalysisError> {
    let study = iip2_study(base, mm, None);
    if let Some((i, trace)) = study.failures().next() {
        return Err(AnalysisError::NoConvergence {
            context: format!("monte-carlo sample {i}"),
            iterations: trace.total_iterations(),
            trace: trace.clone(),
        });
    }
    Ok(study.passed())
}

/// Summary statistics of a sorted distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistSummary {
    /// Smallest sample.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Largest sample.
    pub max: f64,
}

/// Summarizes a sorted sample vector.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn summarize(sorted: &[f64]) -> DistSummary {
    assert!(!sorted.is_empty());
    DistSummary {
        min: sorted[0],
        median: sorted[sorted.len() / 2],
        max: sorted[sorted.len() - 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iip2_distribution_quantifies_matching_requirement() {
        // A finding the single-simulation paper cannot show: with raw
        // Pelgrom-scale mismatch (σ_vt = 2 mV) the *median* die sits in
        // the low-50s dBm — the paper's "> 65 dBm" needs
        // common-centroid-quality matching (σ_vt ≲ 0.5 mV), where the
        // median clears the line with margin. 12 samples per arm: the
        // 6-sample median estimator swings several dB with the RNG
        // stream; the larger draw pins the physics, not the generator.
        let raw = MismatchConfig {
            n_runs: 12,
            ..MismatchConfig::default()
        };
        let dist = iip2_distribution(&MixerConfig::default(), &raw).unwrap();
        assert_eq!(dist.len(), 12);
        let s = summarize(&dist);
        assert!(s.min > 45.0, "worst sample {:.1} dBm", s.min);
        assert!(s.median > 50.0, "median {:.1} dBm", s.median);
        assert!(s.min <= s.median && s.median <= s.max);

        let matched = MismatchConfig {
            sigma_vt: 0.5e-3,
            sigma_kp_frac: 0.001,
            n_runs: 12,
            ..MismatchConfig::default()
        };
        let dist2 = iip2_distribution(&MixerConfig::default(), &matched).unwrap();
        let s2 = summarize(&dist2);
        assert!(
            s2.median > 65.0,
            "well-matched median {:.1} dBm should clear the paper's line",
            s2.median
        );
        // Quadrupling σ(ΔVt) should cost roughly 20·log10(4) ≈ 12 dB of
        // median IIP2; demand at least half of that so the scaling law —
        // not a lucky draw — carries the comparison.
        assert!(
            s2.median - s.median > 6.0,
            "matching gain {:.1} dB too small (raw {:.1}, matched {:.1})",
            s2.median - s.median,
            s.median,
            s2.median
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mm = MismatchConfig {
            n_runs: 3,
            ..MismatchConfig::default()
        };
        let a = iip2_distribution(&MixerConfig::default(), &mm).unwrap();
        let b = iip2_distribution(&MixerConfig::default(), &mm).unwrap();
        assert_eq!(a, b);
        let mm2 = MismatchConfig { seed: 1, ..mm };
        let c = iip2_distribution(&MixerConfig::default(), &mm2).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn more_mismatch_less_iip2() {
        let tight = MismatchConfig {
            sigma_vt: 0.5e-3,
            sigma_kp_frac: 0.001,
            n_runs: 8,
            seed: 7,
            fault_sample: None,
        };
        let loose = MismatchConfig {
            sigma_vt: 8.0e-3,
            sigma_kp_frac: 0.02,
            n_runs: 8,
            seed: 7,
            fault_sample: None,
        };
        let base = MixerConfig::default();
        let dt = summarize(&iip2_distribution(&base, &tight).unwrap());
        let dl = summarize(&iip2_distribution(&base, &loose).unwrap());
        assert!(
            dt.median > dl.median,
            "tight {:.1} vs loose {:.1}",
            dt.median,
            dl.median
        );
    }

    #[test]
    fn samples_are_prefix_stable() {
        // Per-sample seeding makes outcome `i` independent of `n_runs`:
        // a short study is a strict prefix of a longer one. This is the
        // property checkpoint resume relies on.
        let base = MixerConfig::default();
        let short = iip2_study(
            &base,
            &MismatchConfig {
                n_runs: 2,
                ..MismatchConfig::default()
            },
            None,
        );
        let long = iip2_study(
            &base,
            &MismatchConfig {
                n_runs: 4,
                ..MismatchConfig::default()
            },
            None,
        );
        assert_eq!(short.outcomes[..], long.outcomes[..2]);
        assert_eq!(long.n_ok(), 4);
        assert!((long.yield_fraction() - 1.0).abs() < 1e-15);
        assert_eq!(long.summary_line(), "yield 4/4 (100.0 %)");
    }

    #[test]
    fn interrupted_study_resumes_completing_only_remaining_samples() {
        let path =
            std::env::temp_dir().join(format!("remix_mc_interrupt_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let base = MixerConfig::default();
        let mm = MismatchConfig {
            n_runs: 3,
            ..MismatchConfig::default()
        };

        // A zero deadline stops the study at the first sample boundary.
        let interrupted = {
            let budget =
                remix_exec::RunBudget::unlimited().with_deadline(std::time::Duration::ZERO);
            let token = budget.token();
            let _guard = token.arm();
            iip2_study(&base, &mm, Some(&path))
        };
        assert_eq!(interrupted.computed, 0);
        assert!(interrupted.outcomes.is_empty());
        assert!(matches!(
            interrupted.interrupted,
            Some(remix_exec::Interruption::DeadlineExpired { .. })
        ));

        // Unbudgeted, the same invocation completes the study; the
        // prefix computed before a mid-run interruption is never
        // recomputed.
        let first = {
            let budget = remix_exec::RunBudget::unlimited().with_newton_iterations(150);
            let token = budget.token();
            let _guard = token.arm();
            iip2_study(&base, &mm, Some(&path))
        };
        assert!(first.interrupted.is_some(), "budget should trip mid-study");
        assert!(
            first.computed < mm.n_runs,
            "interruption must leave samples for the resume"
        );
        let resumed = iip2_study(&base, &mm, Some(&path));
        assert!(resumed.interrupted.is_none());
        assert_eq!(resumed.resumed, first.outcomes.len());
        assert_eq!(resumed.computed, mm.n_runs - first.outcomes.len());
        let fresh = iip2_study(&base, &mm, None);
        assert_eq!(
            resumed.outcomes, fresh.outcomes,
            "resume must not change results"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_extends_a_shorter_run_without_recomputing() {
        let path =
            std::env::temp_dir().join(format!("remix_mc_resume_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let base = MixerConfig::default();
        let short = MismatchConfig {
            n_runs: 2,
            ..MismatchConfig::default()
        };
        let first = iip2_study(&base, &short, Some(&path));
        assert_eq!(first.computed, 2);
        assert_eq!(first.resumed, 0);

        let full = MismatchConfig {
            n_runs: 4,
            ..MismatchConfig::default()
        };
        let second = iip2_study(&base, &full, Some(&path));
        assert_eq!(second.resumed, 2, "completed samples must not re-run");
        assert_eq!(second.computed, 2);
        let fresh = iip2_study(&base, &full, None);
        assert_eq!(
            second.outcomes, fresh.outcomes,
            "resume must not change results"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_failure_is_isolated_and_checkpoint_resume_skips_completed() {
        // The acceptance scenario: 40 samples, one forced casualty. The
        // study completes the other 39, reports yield 39/40, and a
        // resumed run restores everything from the checkpoint.
        let path = std::env::temp_dir().join(format!("remix_mc_fault_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let base = MixerConfig::default();
        let mm = MismatchConfig {
            n_runs: 40,
            fault_sample: Some(7),
            ..MismatchConfig::default()
        };
        let study = iip2_study(&base, &mm, Some(&path));
        assert_eq!(study.outcomes.len(), 40);
        assert_eq!(study.computed, 40);
        assert_eq!(study.n_ok(), 39, "only the faulted sample may fail");
        assert_eq!(study.n_failed(), 1);
        assert!((study.yield_fraction() - 39.0 / 40.0).abs() < 1e-15);
        assert_eq!(study.summary_line(), "yield 39/40 (97.5 %)");
        let failures: Vec<_> = study.failures().collect();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, 7);
        assert!(
            !failures[0].1.is_empty(),
            "failed sample must carry the ladder trace"
        );
        assert_eq!(study.passed().len(), 39);
        assert!(study.passed().iter().all(|v| v.is_finite()));

        let resumed = iip2_study(&base, &mm, Some(&path));
        assert_eq!(resumed.computed, 0, "nothing may be recomputed");
        assert_eq!(resumed.resumed, 40);
        assert_eq!(resumed.n_ok(), 39);
        assert_eq!(resumed.summary_line(), "yield 39/40 (97.5 %)");
        assert_eq!(resumed.passed(), study.passed());
        let _ = std::fs::remove_file(&path);
    }
}
