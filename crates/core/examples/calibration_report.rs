//! Calibration report: prints every extracted device parameter and every
//! headline metric against the paper's targets — the tool used to steer
//! the calibration documented in DESIGN.md §4.
//!
//! ```text
//! cargo run --release -p remix-core --example calibration_report
//! ```

use remix_core::model::{ExtractedParams, MixerModel};
use remix_core::{MixerConfig, MixerMode};

fn main() {
    let cfg = MixerConfig::default();
    let params = ExtractedParams::extract(&cfg).unwrap();
    println!(
        "tca: gm={:.1}mS rout={:.0} cout={:.1}fF a_iip3={:.3}V en={:.2}nV ibias={:.2}mA",
        params.tca.gm * 1e3,
        params.tca.rout,
        params.tca.cout * 1e15,
        params.tca.a_iip3().unwrap_or(f64::NAN),
        params.tca.en2_white.sqrt() * 1e9,
        params.tca.bias_current * 1e3
    );
    println!(
        "tia: zf0={:.0} corner={:.2}MHz rin={:.1} isupply={:.2}mA",
        params.tia.zf0,
        params.tia.corner_hz / 1e6,
        params.tia.rin_at_5mhz,
        params.tia.supply_current * 1e3
    );
    println!(
        "ron_quad={:.0} rdeg={:.0} gm_pair={:.1}mS a_iip3_pair={:.3}V",
        params.ron_quad,
        params.rdeg,
        params.poly_gm_pair.a1.abs() * 1e3,
        params.poly_gm_pair.a_iip3().unwrap_or(f64::NAN)
    );
    println!(
        "power: active={:.2}mW passive={:.2}mW  (paper 9.36 / 9.24)",
        params.power_active_mw, params.power_passive_mw
    );
    for mode in [MixerMode::Active, MixerMode::Passive] {
        let m = MixerModel::new(cfg.clone(), mode, params.clone());
        println!("--- {mode:?} ---");
        println!(
            "  CG(2.45G,5M) = {:.1} dB   (paper: active 29.2 / passive 25.5)",
            m.conv_gain_db(2.45e9, 5e6)
        );
        println!(
            "  NF(5M)       = {:.1} dB   (paper: 7.6 / 10.2)",
            m.nf_db(5e6)
        );
        println!(
            "  IIP3         = {:.1} dBm  (paper: -11.9 / +6.57)",
            m.iip3_dbm()
        );
        println!(
            "  P1dB         = {:.1} dBm  (paper: -24.5 / -14)",
            m.p1db_dbm()
        );
        println!(
            "  IIP2(0.5%)   = {:.1} dBm  (paper: >65)",
            m.iip2_dbm(0.005)
        );
        println!(
            "  corners: in_hp={:.2}G gate_hp={:.2}G rf_pole={:.2}G if_pole={:.1}M flicker={:?}",
            m.input_hp_hz() / 1e9,
            m.gate_hp_hz() / 1e9,
            m.rf_pole_hz() / 1e9,
            m.if_pole_hz() / 1e6,
            m.flicker_corner_hz().map(|f| f / 1e3)
        );
    }
}
