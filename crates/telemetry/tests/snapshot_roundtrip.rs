//! Property test: a [`BenchRecord`] survives `render_json` →
//! `parse_json` for arbitrary snapshots — hostile metric names
//! (quotes, backslashes, control characters, non-ASCII) and the full
//! `f64` bit space for gauges, including NaN and the infinities.
//!
//! One documented normalization applies: the JSON layer renders
//! non-finite floats as `null` and parses `null` back as NaN, so
//! every non-finite gauge normalizes to NaN on the way round. The
//! property therefore compares finite values exactly and collapses
//! all non-finite values to "NaN after one round trip".

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code: panicking on setup failure is the point

use proptest::prelude::*;
use remix_telemetry::{
    BenchRecord, HistogramSnapshot, MetricEntry, MetricValue, MetricsSnapshot, SpanRollup,
};

/// Decodes a drawn u64 into a hostile-but-valid metric name: each
/// nibble selects from an alphabet that includes JSON-escape-relevant
/// characters (the shim has no string strategy, so names are derived
/// from integers).
fn hostile_name(bits: u64, salt: usize) -> String {
    const ALPHABET: [char; 16] = [
        'a', 'Z', '0', '.', '_', '"', '\\', '\n', '\t', '\r', '\u{1}', '\u{7f}', 'é', '≤', '🔥',
        ' ',
    ];
    let mut name = format!("m{salt}_");
    for shift in (0..64).step_by(4) {
        name.push(ALPHABET[((bits >> shift) & 0xF) as usize]);
    }
    name
}

/// `f64` from raw bits: covers NaN payloads, infinities, subnormals.
fn gauge_value(bits: u64) -> f64 {
    f64::from_bits(bits)
}

/// What a value must look like after one round trip.
fn normalize(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        f64::NAN
    }
}

fn roundtrip(record: &BenchRecord) -> BenchRecord {
    BenchRecord::parse_json(&record.render_json()).expect("rendered JSON must parse")
}

fn values_match(rendered: f64, parsed: f64) -> bool {
    let want = normalize(rendered);
    (want.is_nan() && parsed.is_nan()) || want == parsed
}

proptest! {
    #[test]
    fn bench_record_roundtrips_hostile_names_and_gauges(
        name_bits in proptest::collection::vec(any::<u64>(), 1..6),
        gauge_bits in proptest::collection::vec(any::<u64>(), 1..6),
        counter_vals in proptest::collection::vec(any::<u64>(), 1..6),
        pass in any::<bool>(),
    ) {
        let n = name_bits.len().min(gauge_bits.len()).min(counter_vals.len());
        let mut metrics = Vec::new();
        for i in 0..n {
            metrics.push(MetricEntry {
                name: hostile_name(name_bits[i], 2 * i),
                value: MetricValue::Counter(counter_vals[i]),
            });
            metrics.push(MetricEntry {
                name: hostile_name(name_bits[i].rotate_left(17), 2 * i + 1),
                value: MetricValue::Gauge(gauge_value(gauge_bits[i])),
            });
        }
        let snapshot = MetricsSnapshot { metrics, spans: vec![] };
        let record = BenchRecord::new("proptest_bin", "hostile label \"x\"", pass, "00ff", snapshot);
        let back = roundtrip(&record);

        prop_assert_eq!(back.schema_version, record.schema_version);
        prop_assert_eq!(&back.bin, &record.bin);
        prop_assert_eq!(&back.label, &record.label);
        prop_assert_eq!(back.pass, record.pass);
        prop_assert_eq!(back.snapshot.metrics.len(), record.snapshot.metrics.len());
        for (orig, rt) in record.snapshot.metrics.iter().zip(&back.snapshot.metrics) {
            prop_assert!(orig.name == rt.name, "name must survive escaping: {:?}", orig.name);
            match (&orig.value, &rt.value) {
                (MetricValue::Counter(a), MetricValue::Counter(b)) => prop_assert_eq!(a, b),
                (MetricValue::Gauge(a), MetricValue::Gauge(b)) => prop_assert!(
                    values_match(*a, *b),
                    "gauge {} -> {} violates the normalization contract", a, b
                ),
                (a, b) => prop_assert!(false, "metric kind flipped: {:?} -> {:?}", a, b),
            }
        }
    }

    #[test]
    fn histograms_and_spans_roundtrip(
        bucket_counts in proptest::collection::vec(any::<u32>(), 1..8),
        sum_bits in any::<u64>(),
        span_count in any::<u32>(),
        span_ns in any::<u64>(),
    ) {
        let buckets: Vec<(f64, u64)> = bucket_counts
            .iter()
            .enumerate()
            .map(|(i, c)| ((i as f64 + 1.0) * 0.5, u64::from(*c)))
            .collect();
        let count: u64 = buckets.iter().map(|(_, c)| c).sum::<u64>() + 3;
        let hist = HistogramSnapshot { buckets, count, sum: gauge_value(sum_bits) };
        let snapshot = MetricsSnapshot {
            metrics: vec![MetricEntry {
                name: "remix.test.hist \"quoted\"\\".to_string(),
                value: MetricValue::Histogram(hist.clone()),
            }],
            spans: vec![SpanRollup {
                name: "remix.test.span\n".to_string(),
                count: u64::from(span_count),
                total_ns: span_ns,
            }],
        };
        let record = BenchRecord::new("hist_bin", "l", true, "ab", snapshot);
        let back = roundtrip(&record);

        let MetricValue::Histogram(rt) = &back.snapshot.metrics[0].value else {
            return Err(TestCaseError::fail("histogram kind flipped"));
        };
        prop_assert_eq!(rt.count, hist.count);
        prop_assert_eq!(rt.buckets.len(), hist.buckets.len());
        for ((ob, oc), (rb, rc)) in hist.buckets.iter().zip(&rt.buckets) {
            prop_assert!(ob == rb, "bucket bound drifted: {} -> {}", ob, rb);
            prop_assert_eq!(oc, rc);
        }
        prop_assert!(values_match(hist.sum, rt.sum));
        prop_assert_eq!(&back.snapshot.spans, &record.snapshot.spans);
    }
}
