//! Seeded multi-thread stress tests for the metrics registry — the
//! runtime half of the parallel-scale-out certification (the
//! compile-time half is `tests/concurrency_certification.rs` at the
//! workspace root).
//!
//! Every workload is a deterministic xorshift stream seeded per
//! worker, so the expected totals are computable exactly on the main
//! thread: if any atomic increment were lost or any snapshot torn in
//! a way that violates the registry's contracts, the assertions fail.
//! These are also the tests CI's ThreadSanitizer job runs.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code: panicking on setup failure is the point

use remix_telemetry::{
    counter_add, gauge_set, histogram_observe, HistogramSnapshot, MetricValue, Telemetry,
};
use std::thread;

const WORKERS: u64 = 8;
const OPS: u64 = 2_000;

/// The named histogram's frozen state out of a snapshot.
fn histogram_of(snap: &remix_telemetry::MetricsSnapshot, name: &str) -> HistogramSnapshot {
    snap.metrics
        .iter()
        .find_map(|m| match &m.value {
            MetricValue::Histogram(h) if m.name == name => Some(h.clone()),
            _ => None,
        })
        .expect("histogram present")
}

/// Deterministic xorshift64* stream; the same seed always yields the
/// same workload, on any thread, in any interleaving.
fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[test]
fn counter_totals_are_exact_across_workers() {
    let t = Telemetry::new();
    let mut expected = 0u64;
    for w in 0..WORKERS {
        let mut rng = xorshift(w + 1);
        for _ in 0..OPS {
            expected += rng() % 7;
        }
    }
    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let t = t.clone();
            thread::spawn(move || {
                let _g = t.arm();
                let mut rng = xorshift(w + 1);
                for _ in 0..OPS {
                    counter_add("remix.stress.ops", rng() % 7);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker");
    }
    assert_eq!(
        t.snapshot().counter("remix.stress.ops"),
        Some(expected),
        "no increment may be lost across {WORKERS} workers x {OPS} ops"
    );
}

#[test]
fn histogram_observations_are_lossless() {
    let t = Telemetry::new();
    let mut expected_sum = 0.0f64;
    for w in 0..WORKERS {
        let mut rng = xorshift(w + 11);
        for _ in 0..OPS {
            expected_sum += (rng() % 1_000) as f64;
        }
    }
    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let t = t.clone();
            thread::spawn(move || {
                let _g = t.arm();
                let mut rng = xorshift(w + 11);
                for _ in 0..OPS {
                    histogram_observe("remix.stress.latency", (rng() % 1_000) as f64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker");
    }
    let snap = t.snapshot();
    let hist = histogram_of(&snap, "remix.stress.latency");
    assert_eq!(hist.count, WORKERS * OPS, "every observation lands");
    assert!(
        hist.buckets.iter().map(|(_, n)| n).sum::<u64>() <= hist.count,
        "bucket counts cannot exceed the total"
    );
    // The CAS-accumulated f64 sum is order-dependent only through
    // rounding; integer-valued observations below 2^53 add exactly.
    assert_eq!(hist.sum, expected_sum, "integer-valued sums are exact");
}

#[test]
fn snapshots_are_deterministic_across_interleavings() {
    // Two runs of the same seeded workload under different thread
    // schedules must produce byte-identical snapshots (timings are
    // already excluded: counters and histograms only).
    let render = || {
        let t = Telemetry::new();
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                let t = t.clone();
                thread::spawn(move || {
                    let _g = t.arm();
                    let mut rng = xorshift(w + 101);
                    for _ in 0..OPS {
                        let x = rng();
                        counter_add("remix.stress.det_ops", x % 3);
                        histogram_observe("remix.stress.det_lat", (x % 50) as f64);
                        if x % 5 == 0 {
                            counter_add("remix.stress.det_rare", 1);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        t.snapshot()
    };
    let first = render();
    let second = render();
    assert_eq!(first, second, "snapshot must not depend on interleaving");
}

#[test]
fn arming_is_per_thread_isolated() {
    // Two workers arm two different registries; a third runs disarmed.
    // Writes must segregate perfectly — the thread-local catalog
    // (AUD007) exists precisely so this property survives refactors.
    let a = Telemetry::new();
    let b = Telemetry::new();
    let ha = {
        let a = a.clone();
        thread::spawn(move || {
            let _g = a.arm();
            for _ in 0..OPS {
                counter_add("remix.stress.who", 1);
            }
        })
    };
    let hb = {
        let b = b.clone();
        thread::spawn(move || {
            let _g = b.arm();
            for _ in 0..OPS {
                counter_add("remix.stress.who", 2);
            }
        })
    };
    let hc = thread::spawn(move || {
        // No guard: these hooks must be inert, not cross-talk.
        for _ in 0..OPS {
            counter_add("remix.stress.who", 1_000_000);
        }
    });
    ha.join().expect("a");
    hb.join().expect("b");
    hc.join().expect("c");
    assert_eq!(a.snapshot().counter("remix.stress.who"), Some(OPS));
    assert_eq!(b.snapshot().counter("remix.stress.who"), Some(2 * OPS));
}

#[test]
fn snapshot_while_writing_observes_monotonic_counters() {
    // A reader snapshotting mid-flight must see values that only grow:
    // the registry's contract is per-cell monotonicity, not a frozen
    // cross-metric cut.
    let t = Telemetry::new();
    let writer = {
        let t = t.clone();
        thread::spawn(move || {
            let _g = t.arm();
            for i in 0..(WORKERS * OPS) {
                counter_add("remix.stress.mono", 1);
                if i % 64 == 0 {
                    gauge_set("remix.stress.level", i as f64);
                }
            }
        })
    };
    let mut last = 0u64;
    let mut last_gauge = -1.0f64;
    for _ in 0..200 {
        let snap = t.snapshot();
        let now = snap.counter("remix.stress.mono").unwrap_or(0);
        assert!(now >= last, "counter went backwards: {last} -> {now}");
        last = now;
        if let Some(g) = snap.gauge("remix.stress.level") {
            // Gauge::set is release, snapshot load is acquire: each
            // observed level must be no older than the previous one.
            assert!(g >= last_gauge, "gauge went backwards: {last_gauge} -> {g}");
            last_gauge = g;
        }
        thread::yield_now();
    }
    writer.join().expect("writer");
    assert_eq!(
        t.snapshot().counter("remix.stress.mono"),
        Some(WORKERS * OPS)
    );
}
