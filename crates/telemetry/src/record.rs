//! Versioned bench perf records (`BENCH_<bin>.json`).
//!
//! Every bench binary run under `remix_bench::run_bin` freezes its
//! telemetry registry into one of these: the machine-readable perf
//! trajectory future optimisation PRs are judged against. The layout
//! is versioned like the lint report and the study checkpoints —
//! consumers reject versions they do not understand instead of
//! misreading them.

use crate::json::{json_f64, json_str, parse_json, JsonValue};
use crate::metrics::{HistogramSnapshot, MetricEntry, MetricValue, MetricsSnapshot, SpanRollup};
use std::fmt;

/// Version of the [`BenchRecord`] JSON layout. History: 1 = first
/// release (metrics snapshot + span roll-up + pass flag + config
/// fingerprint).
pub const BENCH_RECORD_SCHEMA_VERSION: u32 = 1;

/// One bench binary's frozen perf record.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Layout version ([`BENCH_RECORD_SCHEMA_VERSION`] when written by
    /// this build).
    pub schema_version: u32,
    /// Binary name (`fig8_cg_vs_rf`), also the record's file stem.
    pub bin: String,
    /// Human-readable job label the supervisor ran.
    pub label: String,
    /// `true` when the supervised job completed.
    pub pass: bool,
    /// Fingerprint of the configuration the run measured (hex). Records
    /// with different fingerprints are not comparable point-to-point.
    pub config_fingerprint: String,
    /// The frozen metrics and span roll-ups.
    pub snapshot: MetricsSnapshot,
}

impl BenchRecord {
    /// Builds a version-current record.
    pub fn new(
        bin: impl Into<String>,
        label: impl Into<String>,
        pass: bool,
        config_fingerprint: impl Into<String>,
        snapshot: MetricsSnapshot,
    ) -> BenchRecord {
        BenchRecord {
            schema_version: BENCH_RECORD_SCHEMA_VERSION,
            bin: bin.into(),
            label: label.into(),
            pass,
            config_fingerprint: config_fingerprint.into(),
            snapshot,
        }
    }

    /// Pretty JSON rendering, one metric per line (greppable by CI
    /// smoke checks). Deterministic given a deterministic snapshot.
    pub fn render_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        s.push_str(&format!("  \"bin\": {},\n", json_str(&self.bin)));
        s.push_str(&format!("  \"label\": {},\n", json_str(&self.label)));
        s.push_str(&format!("  \"pass\": {},\n", self.pass));
        s.push_str(&format!(
            "  \"config_fingerprint\": {},\n",
            json_str(&self.config_fingerprint)
        ));
        s.push_str("  \"metrics\": [");
        for (i, m) in self.snapshot.metrics.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("    ");
            s.push_str(&render_metric(m));
        }
        s.push_str(if self.snapshot.metrics.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        s.push_str("  \"spans\": [");
        for (i, sp) in self.snapshot.spans.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!(
                "    {{\"name\": {}, \"count\": {}, \"total_ns\": {}}}",
                json_str(&sp.name),
                sp.count,
                sp.total_ns
            ));
        }
        s.push_str(if self.snapshot.spans.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        s.push_str("}\n");
        s
    }

    /// Parses a record written by [`BenchRecord::render_json`].
    ///
    /// # Errors
    ///
    /// [`RecordError`] on malformed JSON, missing fields, or a schema
    /// version this build does not understand.
    pub fn parse_json(text: &str) -> Result<BenchRecord, RecordError> {
        let doc = parse_json(text).map_err(|e| RecordError(e.to_string()))?;
        let version = doc
            .get("schema_version")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| RecordError("missing schema_version".into()))?;
        if version != u64::from(BENCH_RECORD_SCHEMA_VERSION) {
            return Err(RecordError(format!(
                "unsupported schema_version {version} (this build reads \
                 {BENCH_RECORD_SCHEMA_VERSION})"
            )));
        }
        let str_field = |key: &str| -> Result<String, RecordError> {
            doc.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| RecordError(format!("missing string field '{key}'")))
        };
        let metrics = doc
            .get("metrics")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| RecordError("missing metrics array".into()))?
            .iter()
            .map(parse_metric)
            .collect::<Result<Vec<_>, _>>()?;
        let spans = doc
            .get("spans")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| RecordError("missing spans array".into()))?
            .iter()
            .map(parse_span)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchRecord {
            schema_version: version as u32,
            bin: str_field("bin")?,
            label: str_field("label")?,
            pass: doc
                .get("pass")
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| RecordError("missing pass flag".into()))?,
            config_fingerprint: str_field("config_fingerprint")?,
            snapshot: MetricsSnapshot { metrics, spans },
        })
    }
}

fn render_metric(m: &MetricEntry) -> String {
    match &m.value {
        MetricValue::Counter(v) => format!(
            "{{\"name\": {}, \"kind\": \"counter\", \"value\": {v}}}",
            json_str(&m.name)
        ),
        MetricValue::Gauge(v) => format!(
            "{{\"name\": {}, \"kind\": \"gauge\", \"value\": {}}}",
            json_str(&m.name),
            json_f64(*v)
        ),
        MetricValue::Histogram(h) => {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(b, c)| format!("[{}, {c}]", json_f64(*b)))
                .collect();
            format!(
                "{{\"name\": {}, \"kind\": \"histogram\", \"count\": {}, \"sum\": {}, \
                 \"buckets\": [{}]}}",
                json_str(&m.name),
                h.count,
                json_f64(h.sum),
                buckets.join(", ")
            )
        }
    }
}

fn parse_metric(v: &JsonValue) -> Result<MetricEntry, RecordError> {
    let name = v
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| RecordError("metric without a name".into()))?
        .to_string();
    let kind = v
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| RecordError(format!("metric '{name}' without a kind")))?;
    let value = match kind {
        "counter" => MetricValue::Counter(
            v.get("value")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| RecordError(format!("counter '{name}' without a value")))?,
        ),
        "gauge" => MetricValue::Gauge(
            v.get("value")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| RecordError(format!("gauge '{name}' without a value")))?,
        ),
        "histogram" => {
            let buckets = v
                .get("buckets")
                .and_then(JsonValue::as_arr)
                .ok_or_else(|| RecordError(format!("histogram '{name}' without buckets")))?
                .iter()
                .map(|pair| {
                    let pair = pair.as_arr().unwrap_or(&[]);
                    match (
                        pair.first().and_then(JsonValue::as_f64),
                        pair.get(1).and_then(JsonValue::as_u64),
                    ) {
                        (Some(b), Some(c)) => Ok((b, c)),
                        _ => Err(RecordError(format!("histogram '{name}' malformed bucket"))),
                    }
                })
                .collect::<Result<Vec<_>, _>>()?;
            MetricValue::Histogram(HistogramSnapshot {
                buckets,
                count: v
                    .get("count")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| RecordError(format!("histogram '{name}' without count")))?,
                sum: v
                    .get("sum")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| RecordError(format!("histogram '{name}' without sum")))?,
            })
        }
        other => return Err(RecordError(format!("unknown metric kind '{other}'"))),
    };
    Ok(MetricEntry { name, value })
}

fn parse_span(v: &JsonValue) -> Result<SpanRollup, RecordError> {
    match (
        v.get("name").and_then(JsonValue::as_str),
        v.get("count").and_then(JsonValue::as_u64),
        v.get("total_ns").and_then(JsonValue::as_u64),
    ) {
        (Some(name), Some(count), Some(total_ns)) => Ok(SpanRollup {
            name: name.to_string(),
            count,
            total_ns,
        }),
        _ => Err(RecordError("malformed span roll-up entry".into())),
    }
}

/// Why a bench record could not be parsed.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordError(pub String);

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bench record error: {}", self.0)
    }
}

impl std::error::Error for RecordError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;
    use std::time::Duration;

    fn sample() -> BenchRecord {
        let reg = MetricsRegistry::new();
        reg.counter("remix.numerics.lu.factorizations").add(42);
        reg.gauge("remix.analysis.op.rcond").set(3.5e-7);
        reg.histogram_with_buckets("remix.numerics.newton.residual_norm", &[1e-9, 1e-6])
            .observe(2e-8);
        reg.record_span("remix.analysis.op", Duration::from_nanos(1_500));
        BenchRecord::new(
            "fig8_cg_vs_rf",
            "fig8 gain sweep",
            true,
            "00ff00ff00ff00ff",
            reg.snapshot(),
        )
    }

    #[test]
    fn render_parse_round_trip() {
        let record = sample();
        let json = record.render_json();
        let parsed = BenchRecord::parse_json(&json).expect("parse");
        assert_eq!(parsed, record);
        // And rendering the parse is byte-identical.
        assert_eq!(parsed.render_json(), json);
    }

    #[test]
    fn unsupported_versions_are_rejected() {
        let mut json = sample().render_json();
        json = json.replace("\"schema_version\": 1", "\"schema_version\": 999");
        let err = BenchRecord::parse_json(&json).expect_err("must reject");
        assert!(err.to_string().contains("unsupported schema_version"));
    }

    #[test]
    fn missing_fields_are_rejected() {
        assert!(BenchRecord::parse_json("{}").is_err());
        assert!(BenchRecord::parse_json("not json").is_err());
        let no_pass = sample().render_json().replace("  \"pass\": true,\n", "");
        assert!(BenchRecord::parse_json(&no_pass).is_err());
    }

    #[test]
    fn empty_snapshot_renders_valid_json() {
        let record = BenchRecord::new("empty", "empty", false, "0", MetricsSnapshot::default());
        let parsed = BenchRecord::parse_json(&record.render_json()).expect("parse");
        assert!(parsed.snapshot.is_empty());
        assert!(!parsed.pass);
    }

    #[test]
    fn metrics_render_one_per_line_for_grep() {
        let json = sample().render_json();
        let line = json
            .lines()
            .find(|l| l.contains("remix.numerics.lu.factorizations"))
            .expect("factorization line");
        assert!(
            line.contains("\"kind\": \"counter\", \"value\": 42"),
            "{line}"
        );
    }
}
