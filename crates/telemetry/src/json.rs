//! Minimal hand-rolled JSON: a string escaper for rendering and a
//! recursive-descent parser for reading records back. The build
//! environment has no serde; this mirrors the parser the checkpoint
//! protocol uses, trimmed to what [`BenchRecord`](crate::BenchRecord)
//! needs.

use std::collections::BTreeMap;
use std::fmt;

/// JSON string literal with the escapes JSON requires.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite `f64` in round-trippable scientific form; non-finite values
/// become `null` (JSON has no NaN/∞).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer without fraction or exponent, kept
    /// exact: `u64` counters above 2^53 would otherwise lose
    /// precision through an `f64` detour.
    Int(u64),
    /// Any other number (JSON does not distinguish integer kinds).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (key order is irrelevant to consumers; sorted map).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The number, when this is one (`null` reads as NaN for gauge
    /// round-trips).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The number as an unsigned integer, when it is one. Integers
    /// parsed as [`JsonValue::Int`] come back bit-exact at any
    /// magnitude.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(v) => Some(*v),
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The string, when this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool, when this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, when this is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse error with a byte offset for context.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, nothing
/// else).
///
/// # Errors
///
/// [`JsonError`] on malformed input or trailing garbage.
pub fn parse_json(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("malformed number"))?;
        // Plain non-negative integers stay exact (u64 counters and
        // span nanosecond totals exceed f64's 2^53 integer range).
        if let Ok(v) = text.parse::<u64>() {
            return Ok(JsonValue::Int(v));
        }
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("malformed \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str,
                    // so boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("empty char"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            parse_json("{\"a\": [1, 2.5e-3, \"x\\n\"], \"b\": {\"nested\": true}, \"c\": null}")
                .expect("parse");
        assert_eq!(v.get("a").and_then(|a| a.as_arr()).map(<[_]>::len), Some(3));
        assert_eq!(
            v.get("b")
                .and_then(|b| b.get("nested"))
                .and_then(JsonValue::as_bool),
            Some(true)
        );
        assert_eq!(v.get("c"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2] tail").is_err());
        assert!(parse_json("").is_err());
        assert!(parse_json("{\"a\": 1").is_err());
    }

    #[test]
    fn float_rendering_round_trips() {
        for v in [0.0, 1.5, 1e-300, -2.4e9, 123456.789, f64::MIN_POSITIVE] {
            let rendered = json_f64(v);
            let parsed = parse_json(&rendered).expect("parse").as_f64().expect("num");
            assert_eq!(parsed, v, "{rendered}");
        }
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nquote\"backslash\\tab\tend";
        let rendered = json_str(original);
        let parsed = parse_json(&rendered).expect("parse");
        assert_eq!(parsed.as_str(), Some(original));
    }
}
