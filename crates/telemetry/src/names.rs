//! The central catalog of every production metric, span and event name.
//!
//! Telemetry names are part of the stack's observable interface: CI
//! smoke checks grep bench records for them, perf guard-rails compare
//! snapshots by them, and a typo'd name silently forks a metric into a
//! never-read twin. Every string handed to the registry or the sink
//! from production code therefore lives here, and the workspace audit
//! (`remix-audit`, rule `AUD008_UNKNOWN_METRIC_NAME`) denies any
//! `"remix.*"` string literal that appears outside this module in
//! non-test code — call sites must name the constant instead.
//!
//! Naming convention: `remix.<crate>.<subsystem>.<quantity>`, with
//! timing-derived metrics suffixed `_ns`/`_ms`/`_seconds` so
//! [`MetricsSnapshot::without_timings`](crate::MetricsSnapshot::without_timings)
//! can mask them deterministically.

/// Counter: matrix factorizations performed (dense and sparse LU).
pub const LU_FACTORIZATIONS: &str = "remix.numerics.lu.factorizations";
/// Gauge: non-zeros in the most recent sparse LU's filled factors.
pub const LU_FILL_NNZ: &str = "remix.numerics.lu.fill_nnz";
/// Gauge: cheap `min|Uii|/max|Uii|` condition estimate of the most
/// recent factorization.
pub const LU_RCOND: &str = "remix.numerics.lu.rcond";
/// Span: one damped-Newton solve.
pub const NEWTON_SOLVE: &str = "remix.numerics.newton.solve";
/// Counter: Newton iterations across all solves.
pub const NEWTON_ITERATIONS: &str = "remix.numerics.newton.iterations";
/// Histogram: residual norms observed by the Newton loop.
pub const NEWTON_RESIDUAL_NORM: &str = "remix.numerics.newton.residual_norm";

/// Span: one operating-point analysis.
pub const ANALYSIS_OP: &str = "remix.analysis.op";
/// Gauge: rcond estimate of the final operating-point factorization.
pub const ANALYSIS_OP_RCOND: &str = "remix.analysis.op.rcond";
/// Span: one DC sweep.
pub const ANALYSIS_DCSWEEP: &str = "remix.analysis.dcsweep";
/// Span: one transient analysis.
pub const ANALYSIS_TRAN: &str = "remix.analysis.tran";
/// Span: one small-signal AC analysis.
pub const ANALYSIS_AC: &str = "remix.analysis.ac";
/// Span: one periodic steady-state analysis.
pub const ANALYSIS_PSS: &str = "remix.analysis.pss";
/// Span: one AC noise analysis.
pub const ANALYSIS_ACNOISE: &str = "remix.analysis.acnoise";
/// Span: one transient noise analysis.
pub const ANALYSIS_TRANNOISE: &str = "remix.analysis.trannoise";

/// Counter: cumulative Newton iterations burned by the homotopy ladder.
pub const CONVERGENCE_ITERATIONS: &str = "remix.analysis.convergence.iterations";
/// Counter: direct-Newton attempts in the homotopy ladder.
pub const CONVERGENCE_ATTEMPTS_DIRECT: &str = "remix.analysis.convergence.attempts.direct";
/// Counter: gmin-stepping attempts in the homotopy ladder.
pub const CONVERGENCE_ATTEMPTS_GMIN_LADDER: &str =
    "remix.analysis.convergence.attempts.gmin_ladder";
/// Counter: source-ramp attempts in the homotopy ladder.
pub const CONVERGENCE_ATTEMPTS_SOURCE_RAMP: &str =
    "remix.analysis.convergence.attempts.source_ramp";
/// Counter: pseudo-transient attempts in the homotopy ladder.
pub const CONVERGENCE_ATTEMPTS_PSEUDO_TRANSIENT: &str =
    "remix.analysis.convergence.attempts.pseudo_transient";
/// Counter: per-timestep Newton attempts in transient analyses.
pub const CONVERGENCE_ATTEMPTS_TRAN_STEP: &str = "remix.analysis.convergence.attempts.tran_step";
/// Counter: per-frequency-point solve attempts in AC analyses.
pub const CONVERGENCE_ATTEMPTS_AC_POINT: &str = "remix.analysis.convergence.attempts.ac_point";
/// Counter: PSS boundary-condition solve attempts.
pub const CONVERGENCE_ATTEMPTS_PSS_BOUNDARY: &str =
    "remix.analysis.convergence.attempts.pss_boundary";

/// Event: supervised-job lifecycle transition (queued/started/retried/
/// finished/watchdog_tripped).
pub const EXEC_JOB: &str = "remix.exec.job";
/// Counter: jobs submitted to a supervisor.
pub const EXEC_JOBS: &str = "remix.exec.jobs";
/// Counter: job retry attempts.
pub const EXEC_RETRIES: &str = "remix.exec.retries";
/// Counter: watchdog deadline trips.
pub const EXEC_WATCHDOG_TRIPS: &str = "remix.exec.watchdog_trips";

/// Event: study checkpoint written or restored.
pub const CORE_CHECKPOINT: &str = "remix.core.checkpoint";
/// Counter: successfully computed samples recorded in checkpoints.
pub const CORE_CHECKPOINT_OPS_OK: &str = "remix.core.checkpoint.ops_ok";
/// Counter: failed samples recorded in checkpoints.
pub const CORE_CHECKPOINT_OPS_FAILED: &str = "remix.core.checkpoint.ops_failed";
/// Span: one Monte-Carlo sample extraction.
pub const CORE_MONTECARLO_SAMPLE: &str = "remix.core.montecarlo.sample";
/// Counter: Monte-Carlo samples that converged.
pub const CORE_MONTECARLO_SAMPLES_OK: &str = "remix.core.montecarlo.samples_ok";
/// Counter: Monte-Carlo samples that failed with a trace.
pub const CORE_MONTECARLO_SAMPLES_FAILED: &str = "remix.core.montecarlo.samples_failed";
/// Span: one process corner evaluation.
pub const CORE_CORNERS_CORNER: &str = "remix.core.corners.corner";

/// Every production name, for conformance checks and documentation.
/// Sorted; [`names_are_canonical`](self) below pins uniqueness.
pub const ALL: &[&str] = &[
    ANALYSIS_AC,
    ANALYSIS_ACNOISE,
    CONVERGENCE_ATTEMPTS_AC_POINT,
    CONVERGENCE_ATTEMPTS_DIRECT,
    CONVERGENCE_ATTEMPTS_GMIN_LADDER,
    CONVERGENCE_ATTEMPTS_PSEUDO_TRANSIENT,
    CONVERGENCE_ATTEMPTS_PSS_BOUNDARY,
    CONVERGENCE_ATTEMPTS_SOURCE_RAMP,
    CONVERGENCE_ATTEMPTS_TRAN_STEP,
    CONVERGENCE_ITERATIONS,
    ANALYSIS_DCSWEEP,
    ANALYSIS_OP,
    ANALYSIS_OP_RCOND,
    ANALYSIS_PSS,
    ANALYSIS_TRAN,
    ANALYSIS_TRANNOISE,
    CORE_CHECKPOINT,
    CORE_CHECKPOINT_OPS_FAILED,
    CORE_CHECKPOINT_OPS_OK,
    CORE_CORNERS_CORNER,
    CORE_MONTECARLO_SAMPLE,
    CORE_MONTECARLO_SAMPLES_FAILED,
    CORE_MONTECARLO_SAMPLES_OK,
    EXEC_JOB,
    EXEC_JOBS,
    EXEC_RETRIES,
    EXEC_WATCHDOG_TRIPS,
    LU_FACTORIZATIONS,
    LU_FILL_NNZ,
    LU_RCOND,
    NEWTON_ITERATIONS,
    NEWTON_RESIDUAL_NORM,
    NEWTON_SOLVE,
];

#[cfg(test)]
mod tests {
    use super::ALL;

    #[test]
    fn names_are_canonical() {
        let mut seen = std::collections::BTreeSet::new();
        for name in ALL {
            assert!(
                name.starts_with("remix."),
                "'{name}' must use the remix.<crate>.<name> convention"
            );
            assert!(
                name.split('.').all(|seg| {
                    !seg.is_empty()
                        && seg
                            .chars()
                            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
                }),
                "'{name}' must be dotted lowercase snake_case"
            );
            assert!(seen.insert(*name), "'{name}' listed twice");
        }
    }

    #[test]
    fn timing_suffix_convention_is_respected() {
        // Nothing in the catalog accidentally looks like a timing
        // metric unless it is one; without_timings() masks by suffix.
        for name in ALL {
            if name.ends_with("_ns") || name.ends_with("_ms") || name.ends_with("_seconds") {
                panic!("'{name}' would be masked by without_timings(); none expected today");
            }
        }
    }
}
