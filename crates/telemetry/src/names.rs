//! The central catalog of every production metric, span and event name.
//!
//! Telemetry names are part of the stack's observable interface: CI
//! smoke checks grep bench records for them, perf guard-rails compare
//! snapshots by them, and a typo'd name silently forks a metric into a
//! never-read twin. Every string handed to the registry or the sink
//! from production code therefore lives here, and the workspace audit
//! (`remix-audit`, rule `AUD008_UNKNOWN_METRIC_NAME`) denies any
//! `"remix.*"` string literal that appears outside this module in
//! non-test code — call sites must name the constant instead.
//!
//! Naming convention: `remix.<crate>.<subsystem>.<quantity>`, with
//! timing-derived metrics suffixed `_ns`/`_ms`/`_seconds` so
//! [`MetricsSnapshot::without_timings`](crate::MetricsSnapshot::without_timings)
//! can mask them deterministically.

/// Counter: matrix factorizations performed (dense and sparse LU).
pub const LU_FACTORIZATIONS: &str = "remix.numerics.lu.factorizations";
/// Gauge: non-zeros in the most recent sparse LU's filled factors.
pub const LU_FILL_NNZ: &str = "remix.numerics.lu.fill_nnz";
/// Gauge: cheap `min|Uii|/max|Uii|` condition estimate of the most
/// recent factorization.
pub const LU_RCOND: &str = "remix.numerics.lu.rcond";
/// Span: one damped-Newton solve.
pub const NEWTON_SOLVE: &str = "remix.numerics.newton.solve";
/// Counter: Newton iterations across all solves.
pub const NEWTON_ITERATIONS: &str = "remix.numerics.newton.iterations";
/// Histogram: residual norms observed by the Newton loop.
pub const NEWTON_RESIDUAL_NORM: &str = "remix.numerics.newton.residual_norm";

/// Span: one operating-point analysis.
pub const ANALYSIS_OP: &str = "remix.analysis.op";
/// Gauge: rcond estimate of the final operating-point factorization.
pub const ANALYSIS_OP_RCOND: &str = "remix.analysis.op.rcond";
/// Span: one DC sweep.
pub const ANALYSIS_DCSWEEP: &str = "remix.analysis.dcsweep";
/// Span: one transient analysis.
pub const ANALYSIS_TRAN: &str = "remix.analysis.tran";
/// Span: one small-signal AC analysis.
pub const ANALYSIS_AC: &str = "remix.analysis.ac";
/// Span: one periodic steady-state analysis.
pub const ANALYSIS_PSS: &str = "remix.analysis.pss";
/// Span: one AC noise analysis.
pub const ANALYSIS_ACNOISE: &str = "remix.analysis.acnoise";
/// Span: one transient noise analysis.
pub const ANALYSIS_TRANNOISE: &str = "remix.analysis.trannoise";

/// Counter: cumulative Newton iterations burned by the homotopy ladder.
pub const CONVERGENCE_ITERATIONS: &str = "remix.analysis.convergence.iterations";
/// Counter: direct-Newton attempts in the homotopy ladder.
pub const CONVERGENCE_ATTEMPTS_DIRECT: &str = "remix.analysis.convergence.attempts.direct";
/// Counter: gmin-stepping attempts in the homotopy ladder.
pub const CONVERGENCE_ATTEMPTS_GMIN_LADDER: &str =
    "remix.analysis.convergence.attempts.gmin_ladder";
/// Counter: source-ramp attempts in the homotopy ladder.
pub const CONVERGENCE_ATTEMPTS_SOURCE_RAMP: &str =
    "remix.analysis.convergence.attempts.source_ramp";
/// Counter: pseudo-transient attempts in the homotopy ladder.
pub const CONVERGENCE_ATTEMPTS_PSEUDO_TRANSIENT: &str =
    "remix.analysis.convergence.attempts.pseudo_transient";
/// Counter: per-timestep Newton attempts in transient analyses.
pub const CONVERGENCE_ATTEMPTS_TRAN_STEP: &str = "remix.analysis.convergence.attempts.tran_step";
/// Counter: per-frequency-point solve attempts in AC analyses.
pub const CONVERGENCE_ATTEMPTS_AC_POINT: &str = "remix.analysis.convergence.attempts.ac_point";
/// Counter: PSS boundary-condition solve attempts.
pub const CONVERGENCE_ATTEMPTS_PSS_BOUNDARY: &str =
    "remix.analysis.convergence.attempts.pss_boundary";

/// Event: supervised-job lifecycle transition (queued/started/retried/
/// finished/watchdog_tripped).
pub const EXEC_JOB: &str = "remix.exec.job";
/// Counter: jobs submitted to a supervisor.
pub const EXEC_JOBS: &str = "remix.exec.jobs";
/// Counter: job retry attempts.
pub const EXEC_RETRIES: &str = "remix.exec.retries";
/// Counter: watchdog deadline trips.
pub const EXEC_WATCHDOG_TRIPS: &str = "remix.exec.watchdog_trips";

/// Counter: admission-queue rejections (queue full or hopeless
/// deadline); the typed `Shed` response rides back to the caller.
pub const EXEC_ADMISSION_SHEDS: &str = "remix.exec.admission.sheds";
/// Gauge: current admission-queue depth.
pub const EXEC_ADMISSION_DEPTH: &str = "remix.exec.admission.depth";
/// Event: environment-variable parse outcome worth surfacing (a set
/// but unparsable value, with the fallback applied).
pub const EXEC_ENV: &str = "remix.exec.env";
/// Counter: environment variables that were set but failed to parse
/// (the run falls back explicitly instead of silently ignoring them).
pub const EXEC_ENV_MALFORMED: &str = "remix.exec.env.malformed";

/// Event: work-stealing-pool lifecycle transition (started / worker
/// up / task panicked / straggler redispatched / chaos injected /
/// finished). Lifecycle rides on events only — the pool writes nothing
/// into the registry, so serial and parallel runs snapshot
/// byte-identically.
pub const EXEC_POOL: &str = "remix.exec.pool";
/// Span: one whole pool run (dispatch to last join), recorded on the
/// caller's registry. Its `total_ns` is the study's wall clock — the
/// number the parallel-soak speedup gate compares across worker
/// counts; `without_timings()` zeroes it like every span total.
pub const EXEC_POOL_RUN: &str = "remix.exec.pool.run";

/// Event: service connection lifecycle (accepted/rejected/closed).
pub const SERVE_CONN: &str = "remix.serve.conn";
/// Counter: connections accepted by the service.
pub const SERVE_CONNECTIONS: &str = "remix.serve.connections";
/// Counter: request frames read (valid or not).
pub const SERVE_FRAMES: &str = "remix.serve.frames";
/// Counter: frames rejected with a typed protocol error.
pub const SERVE_PROTOCOL_ERRORS: &str = "remix.serve.protocol_errors";
/// Span: one admitted service job, admission to terminal response.
pub const SERVE_JOB: &str = "remix.serve.job";
/// Counter: jobs that completed with a full result.
pub const SERVE_JOBS_OK: &str = "remix.serve.jobs_ok";
/// Counter: jobs that completed with a budget-tripped partial prefix.
pub const SERVE_JOBS_PARTIAL: &str = "remix.serve.jobs_partial";
/// Counter: jobs that failed (lint rejection, analysis error, panic).
pub const SERVE_JOBS_FAILED: &str = "remix.serve.jobs_failed";
/// Counter: admissions refused with a typed shed response.
pub const SERVE_SHEDS: &str = "remix.serve.sheds";
/// Counter: results served straight from the fingerprint cache.
pub const SERVE_CACHE_HITS: &str = "remix.serve.cache.hits";
/// Counter: cache misses that computed (and possibly populated) fresh.
pub const SERVE_CACHE_MISSES: &str = "remix.serve.cache.misses";
/// Counter: requests that joined an identical in-flight job
/// (single-flight dedup) instead of recomputing.
pub const SERVE_CACHE_JOINS: &str = "remix.serve.cache.joins";
/// Counter: cache entries restored from the persisted cache file on
/// startup.
pub const SERVE_CACHE_PERSIST_LOADED: &str = "remix.serve.cache.persist.loaded";
/// Counter: cache entries written to the persisted cache file on
/// graceful shutdown.
pub const SERVE_CACHE_PERSIST_SAVED: &str = "remix.serve.cache.persist.saved";
/// Counter: persisted cache files rejected wholesale (unreadable,
/// malformed, wrong version, or fingerprint mismatch) — the service
/// starts cold instead of serving stale bodies.
pub const SERVE_CACHE_PERSIST_REJECTED: &str = "remix.serve.cache.persist.rejected";
/// Gauge: admission-queue depth as seen by the service.
pub const SERVE_QUEUE_DEPTH: &str = "remix.serve.queue_depth";
/// Counter: chaos faults injected (dropped connections, torn frames,
/// delayed reads, worker panics).
pub const SERVE_CHAOS_INJECTED: &str = "remix.serve.chaos.injected";
/// Gauge: load-generator sustained throughput (jobs per second).
pub const SERVE_LOAD_JOBS_PER_SEC: &str = "remix.serve.load.jobs_per_sec";
/// Gauge: load-generator p99 latency of *accepted* jobs (ms; masked by
/// `without_timings()` like every timing-derived metric).
pub const SERVE_LOAD_P99_MS: &str = "remix.serve.load.p99_ms";
/// Gauge: load-generator cache hit rate over completed jobs (0..=1).
pub const SERVE_LOAD_CACHE_HIT_RATE: &str = "remix.serve.load.cache_hit_rate";
/// Counter: typed shed responses observed by the load generator.
pub const SERVE_LOAD_SHEDS: &str = "remix.serve.load.sheds";

/// Event: study checkpoint written or restored.
pub const CORE_CHECKPOINT: &str = "remix.core.checkpoint";
/// Counter: successfully computed samples recorded in checkpoints.
pub const CORE_CHECKPOINT_OPS_OK: &str = "remix.core.checkpoint.ops_ok";
/// Counter: failed samples recorded in checkpoints.
pub const CORE_CHECKPOINT_OPS_FAILED: &str = "remix.core.checkpoint.ops_failed";
/// Span: one Monte-Carlo sample extraction.
pub const CORE_MONTECARLO_SAMPLE: &str = "remix.core.montecarlo.sample";
/// Counter: Monte-Carlo samples that converged.
pub const CORE_MONTECARLO_SAMPLES_OK: &str = "remix.core.montecarlo.samples_ok";
/// Counter: Monte-Carlo samples that failed with a trace.
pub const CORE_MONTECARLO_SAMPLES_FAILED: &str = "remix.core.montecarlo.samples_failed";
/// Span: one process corner evaluation.
pub const CORE_CORNERS_CORNER: &str = "remix.core.corners.corner";

/// Span: one LO point of an N-path input-impedance sweep.
pub const TOPO_ZIN_POINT: &str = "remix.topo.zin.point";
/// Span: one topology-study sample (Monte-Carlo or corner).
pub const TOPO_STUDY_SAMPLE: &str = "remix.topo.study.sample";
/// Counter: topology-study samples that solved.
pub const TOPO_STUDY_SAMPLES_OK: &str = "remix.topo.study.samples_ok";
/// Counter: topology-study samples that failed.
pub const TOPO_STUDY_SAMPLES_FAILED: &str = "remix.topo.study.samples_failed";

/// Every production name, for conformance checks and documentation.
/// Sorted; [`names_are_canonical`](self) below pins uniqueness.
pub const ALL: &[&str] = &[
    ANALYSIS_AC,
    ANALYSIS_ACNOISE,
    CONVERGENCE_ATTEMPTS_AC_POINT,
    CONVERGENCE_ATTEMPTS_DIRECT,
    CONVERGENCE_ATTEMPTS_GMIN_LADDER,
    CONVERGENCE_ATTEMPTS_PSEUDO_TRANSIENT,
    CONVERGENCE_ATTEMPTS_PSS_BOUNDARY,
    CONVERGENCE_ATTEMPTS_SOURCE_RAMP,
    CONVERGENCE_ATTEMPTS_TRAN_STEP,
    CONVERGENCE_ITERATIONS,
    ANALYSIS_DCSWEEP,
    ANALYSIS_OP,
    ANALYSIS_OP_RCOND,
    ANALYSIS_PSS,
    ANALYSIS_TRAN,
    ANALYSIS_TRANNOISE,
    CORE_CHECKPOINT,
    CORE_CHECKPOINT_OPS_FAILED,
    CORE_CHECKPOINT_OPS_OK,
    CORE_CORNERS_CORNER,
    CORE_MONTECARLO_SAMPLE,
    CORE_MONTECARLO_SAMPLES_FAILED,
    CORE_MONTECARLO_SAMPLES_OK,
    EXEC_ADMISSION_DEPTH,
    EXEC_ADMISSION_SHEDS,
    EXEC_ENV,
    EXEC_ENV_MALFORMED,
    EXEC_JOB,
    EXEC_JOBS,
    EXEC_POOL,
    EXEC_POOL_RUN,
    EXEC_RETRIES,
    EXEC_WATCHDOG_TRIPS,
    LU_FACTORIZATIONS,
    LU_FILL_NNZ,
    LU_RCOND,
    NEWTON_ITERATIONS,
    NEWTON_RESIDUAL_NORM,
    NEWTON_SOLVE,
    SERVE_CACHE_HITS,
    SERVE_CACHE_JOINS,
    SERVE_CACHE_MISSES,
    SERVE_CACHE_PERSIST_LOADED,
    SERVE_CACHE_PERSIST_REJECTED,
    SERVE_CACHE_PERSIST_SAVED,
    SERVE_CHAOS_INJECTED,
    SERVE_CONN,
    SERVE_CONNECTIONS,
    SERVE_FRAMES,
    SERVE_JOB,
    SERVE_JOBS_FAILED,
    SERVE_JOBS_OK,
    SERVE_JOBS_PARTIAL,
    SERVE_LOAD_CACHE_HIT_RATE,
    SERVE_LOAD_JOBS_PER_SEC,
    SERVE_LOAD_P99_MS,
    SERVE_LOAD_SHEDS,
    SERVE_PROTOCOL_ERRORS,
    SERVE_QUEUE_DEPTH,
    SERVE_SHEDS,
    TOPO_STUDY_SAMPLE,
    TOPO_STUDY_SAMPLES_FAILED,
    TOPO_STUDY_SAMPLES_OK,
    TOPO_ZIN_POINT,
];

#[cfg(test)]
mod tests {
    use super::ALL;

    #[test]
    fn names_are_canonical() {
        let mut seen = std::collections::BTreeSet::new();
        for name in ALL {
            assert!(
                name.starts_with("remix."),
                "'{name}' must use the remix.<crate>.<name> convention"
            );
            assert!(
                name.split('.').all(|seg| {
                    !seg.is_empty()
                        && seg
                            .chars()
                            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
                }),
                "'{name}' must be dotted lowercase snake_case"
            );
            assert!(seen.insert(*name), "'{name}' listed twice");
        }
    }

    #[test]
    fn timing_suffix_convention_is_respected() {
        // Nothing in the catalog accidentally looks like a timing
        // metric unless it is one; without_timings() masks by suffix,
        // so every timing-suffixed name must be deliberate.
        const EXPECTED_TIMINGS: &[&str] = &[super::SERVE_LOAD_P99_MS];
        for name in ALL {
            if name.ends_with("_ns") || name.ends_with("_ms") || name.ends_with("_seconds") {
                assert!(
                    EXPECTED_TIMINGS.contains(name),
                    "'{name}' would be masked by without_timings(); add it to \
                     EXPECTED_TIMINGS only if it really measures time"
                );
            }
        }
    }
}
