//! Scoped spans: RAII timing regions with key/value fields.

use crate::sink::{Event, EventKind, FieldValue};
use crate::{with_active, Telemetry};
use std::time::Instant;

/// Opens a span on the armed telemetry context of this thread.
///
/// The returned guard measures the monotonic time until it drops, then
/// folds `(count += 1, total_ns += elapsed)` into the registry's span
/// roll-up and — when the sink observes — emits `span_enter`/
/// `span_exit` events carrying the attached fields.
///
/// With no context armed the guard is empty: creating and dropping it
/// costs one thread-local read and no allocation.
pub fn span(name: &'static str) -> SpanGuard {
    let inner = with_active(|t| ActiveSpan {
        name,
        telemetry: t.clone(),
        fields: Vec::new(),
        start: Instant::now(),
        entered: false,
    });
    let mut guard = SpanGuard { inner };
    if let Some(s) = &mut guard.inner {
        if s.telemetry.sink().is_observing() {
            s.entered = true;
            s.telemetry.sink().record(&Event {
                name,
                kind: EventKind::SpanEnter,
                fields: Vec::new(),
            });
            // Restart the clock below the enter-event I/O so the
            // measured duration is the body's, not the sink's.
            s.start = Instant::now();
        }
    }
    guard
}

struct ActiveSpan {
    name: &'static str,
    telemetry: Telemetry,
    fields: Vec<(&'static str, FieldValue)>,
    start: Instant,
    entered: bool,
}

/// RAII span handle returned by [`span`]. Attach fields with
/// [`SpanGuard::with_field`]; the span exits when the guard drops.
#[must_use = "a span measures the scope holding the guard"]
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Attaches one key/value field (builder style). No-op on an empty
    /// (disarmed) guard.
    pub fn with_field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        if let Some(s) = &mut self.inner {
            s.fields.push((key, value.into()));
        }
        self
    }

    /// `true` when a context was armed at creation.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(s) = self.inner.take() else { return };
        let elapsed = s.start.elapsed();
        s.telemetry.registry().record_span(s.name, elapsed);
        if s.entered {
            s.telemetry.sink().record(&Event {
                name: s.name,
                kind: EventKind::SpanExit {
                    duration_ns: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
                },
                fields: s.fields,
            });
        }
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("armed", &self.inner.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;
    use std::sync::Arc;

    #[test]
    fn disarmed_spans_are_empty() {
        let g = span("remix.test.idle").with_field("k", 1u64);
        assert!(!g.is_armed());
        drop(g);
    }

    #[test]
    fn spans_roll_up_into_the_registry() {
        let t = Telemetry::new();
        {
            let _g = t.arm();
            for _ in 0..3 {
                let _s = span("remix.test.step");
            }
        }
        let snap = t.snapshot();
        let roll = snap.span("remix.test.step").expect("rollup");
        assert_eq!(roll.count, 3);
    }

    #[test]
    fn observing_sinks_get_enter_and_exit_with_fields() {
        let sink = Arc::new(MemorySink::new());
        let t = Telemetry::with_sink(sink.clone());
        {
            let _g = t.arm();
            let _s = span("remix.test.op")
                .with_field("dim", 7u64)
                .with_field("mode", "active");
        }
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::SpanEnter);
        let EventKind::SpanExit { .. } = events[1].kind else {
            panic!("expected span exit, got {:?}", events[1].kind);
        };
        assert_eq!(events[1].fields.len(), 2);
        // The roll-up still accumulates alongside the sink.
        assert_eq!(t.snapshot().span("remix.test.op").map(|s| s.count), Some(1));
    }

    #[test]
    fn span_survives_context_switch_mid_scope() {
        let outer = Telemetry::new();
        let inner = Telemetry::new();
        let g = outer.arm();
        let s = span("remix.test.crossing");
        drop(g);
        let _g2 = inner.arm();
        drop(s); // must land in OUTER's registry (captured at entry)
        assert_eq!(
            outer
                .snapshot()
                .span("remix.test.crossing")
                .map(|r| r.count),
            Some(1)
        );
        assert!(inner.snapshot().span("remix.test.crossing").is_none());
    }
}
