//! The process-wide metric registry: counters, gauges, fixed-bucket
//! histograms and span roll-ups, with deterministically ordered
//! snapshots.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Default histogram buckets for residual norms and other
/// positive-and-tiny quantities: half-decade-ish log spacing from
/// 1e-12 to 1e2, values above the last bound land in the overflow.
pub const DEFAULT_RESIDUAL_BUCKETS: [f64; 8] = [1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2, 1.0, 1e2];

/// Default histogram buckets for durations in milliseconds.
pub const DEFAULT_DURATION_BUCKETS_MS: [f64; 8] =
    [0.01, 0.1, 1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0];

fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Metric maps hold plain data; a panic mid-insert cannot leave them
    // logically torn, so recover instead of cascading the poison.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Handle to one monotonic counter. Detached (default) handles are
/// inert: `add` does nothing, `value` reads zero. Clone freely; all
/// clones share the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n`. One relaxed atomic increment when attached.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            // audit: relaxed-ok: single-cell monotonic RMW; cross-thread
            // exactness is only claimed after a join, which supplies the
            // happens-before edge.
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (zero when detached).
    pub fn value(&self) -> u64 {
        // audit: relaxed-ok: single-cell read of a monotonic total;
        // mid-run reads are advisory, exact totals are read post-join.
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Handle to one last-value gauge (stored as `f64` bits). Detached
/// handles are inert.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Replaces the gauge value.
    ///
    /// Gauges *publish* derived results (an rcond after a
    /// factorization, a fill count after a symbolic pass): a
    /// release-store paired with the acquire-load in
    /// [`Gauge::value`]/snapshotting gives cross-thread readers — a
    /// watchdog sampling mid-run, the parallel supervisor's aggregator
    /// — a happens-before edge to the work that produced the value,
    /// not just the bits themselves.
    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.0 {
            cell.store(value.to_bits(), Ordering::Release);
        }
    }

    /// Current value (`NaN` when detached or never set). Acquire-load:
    /// see [`Gauge::set`].
    pub fn value(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(f64::NAN, |c| f64::from_bits(c.load(Ordering::Acquire)))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Upper bounds, ascending; observations above the last bound are
    /// counted only in `count`/`sum` (implicit overflow bucket).
    bounds: Vec<f64>,
    bucket_counts: Vec<AtomicU64>,
    count: AtomicU64,
    /// Running sum, stored as `f64` bits and updated by CAS.
    sum_bits: AtomicU64,
}

impl HistogramCore {
    fn new(bounds: &[f64]) -> Self {
        HistogramCore {
            bounds: bounds.to_vec(),
            bucket_counts: bounds.iter().map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    fn observe(&self, value: f64) {
        if let Some(k) = self.bounds.iter().position(|&b| value <= b) {
            // audit: relaxed-ok: independent monotonic cells; a snapshot
            // racing an observe may see bucket/count momentarily skewed
            // by one, which the post-join determinism contract permits.
            self.bucket_counts[k].fetch_add(1, Ordering::Relaxed);
        }
        // audit: relaxed-ok: same single-cell monotonic argument.
        self.count.fetch_add(1, Ordering::Relaxed);
        // The CAS retry loop publishes nothing beyond the sum cell
        // itself: read-modify-write atomicity alone keeps it lossless.
        // audit: relaxed-ok: CAS retry loop over one cell.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed, // audit: relaxed-ok: success order, single cell.
                Ordering::Relaxed, // audit: relaxed-ok: failure order, retry only.
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Adds a frozen histogram's buckets and totals into this one
    /// (bucket-by-position; used by [`MetricsRegistry::absorb`]).
    fn absorb(&self, hs: &HistogramSnapshot) {
        for (k, (_, c)) in hs.buckets.iter().enumerate() {
            if let Some(cell) = self.bucket_counts.get(k) {
                // audit: relaxed-ok: absorb runs post-join; single-cell
                // monotonic RMW.
                cell.fetch_add(*c, Ordering::Relaxed);
            }
        }
        // audit: relaxed-ok: post-join monotonic RMW, as buckets.
        self.count.fetch_add(hs.count, Ordering::Relaxed);
        // audit: relaxed-ok: CAS retry loop over one cell.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + hs.sum).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed, // audit: relaxed-ok: success order, single cell.
                Ordering::Relaxed, // audit: relaxed-ok: failure order, retry only.
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .bounds
                .iter()
                .zip(&self.bucket_counts)
                // audit: relaxed-ok: snapshot exactness is only promised
                // once writer threads are joined (happens-before via
                // join); mid-run snapshots are explicitly advisory.
                .map(|(&b, c)| (b, c.load(Ordering::Relaxed)))
                .collect(),
            // audit: relaxed-ok: see bucket loads above.
            count: self.count.load(Ordering::Relaxed),
            // audit: relaxed-ok: see bucket loads above.
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Handle to one fixed-bucket histogram. Detached handles are inert.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one observation: bumps the first bucket whose upper
    /// bound admits `value` (or only the total, past the last bound).
    #[inline]
    pub fn observe(&self, value: f64) {
        if let Some(core) = &self.0 {
            core.observe(value);
        }
    }
}

/// Registry of every metric one [`Telemetry`](crate::Telemetry) context
/// accumulates. All handles stay valid for the registry's lifetime;
/// snapshots are ordered by metric name so two identical runs render
/// byte-identical.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<HistogramCore>>>,
    /// Span roll-up: name → (exit count, total duration ns).
    spans: Mutex<BTreeMap<&'static str, (u64, u64)>>,
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Get-or-create the named counter.
    pub fn counter(&self, name: &'static str) -> Counter {
        let mut map = lock_or_recover(&self.counters);
        Counter(Some(Arc::clone(map.entry(name).or_default())))
    }

    /// Get-or-create the named gauge. A never-set gauge snapshots as
    /// `0.0`.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        let mut map = lock_or_recover(&self.gauges);
        Gauge(Some(Arc::clone(map.entry(name).or_default())))
    }

    /// Get-or-create the named histogram with
    /// [`DEFAULT_RESIDUAL_BUCKETS`].
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.histogram_with_buckets(name, &DEFAULT_RESIDUAL_BUCKETS)
    }

    /// Get-or-create the named histogram with explicit bucket upper
    /// bounds (ascending). Bounds are fixed by the first touch;
    /// subsequent calls reuse the existing buckets.
    pub fn histogram_with_buckets(&self, name: &'static str, bounds: &[f64]) -> Histogram {
        let mut map = lock_or_recover(&self.histograms);
        let core = map
            .entry(name)
            .or_insert_with(|| Arc::new(HistogramCore::new(bounds)));
        Histogram(Some(Arc::clone(core)))
    }

    /// Folds one exited span into the per-name roll-up. Public so
    /// deterministic tests (and replay tooling) can inject known
    /// durations.
    pub fn record_span(&self, name: &'static str, duration: Duration) {
        let ns = u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX);
        let mut map = lock_or_recover(&self.spans);
        let slot = map.entry(name).or_insert((0, 0));
        slot.0 += 1;
        slot.1 = slot.1.saturating_add(ns);
    }

    /// Folds `other`'s contents into this registry: counters, histogram
    /// buckets/totals and span roll-ups *add*; gauges *overwrite* (the
    /// last absorbed value wins, a never-set-but-touched gauge carries
    /// its `0.0` across). Metric names keyed in `other` but absent here
    /// are created, so snapshot shape is preserved.
    ///
    /// This is how a parallel driver keeps last-value gauges
    /// deterministic: each task runs against a fresh forked registry,
    /// and after the workers join the caller absorbs the task
    /// registries in ascending task order — the final gauge values are
    /// then exactly what a serial run would have left behind.
    pub fn absorb(&self, other: &MetricsRegistry) {
        let counters: Vec<(&'static str, u64)> = lock_or_recover(&other.counters)
            .iter()
            // audit: relaxed-ok: absorb runs after the writers joined;
            // the join supplies the happens-before edge.
            .map(|(name, cell)| (*name, cell.load(Ordering::Relaxed)))
            .collect();
        for (name, v) in counters {
            self.counter(name).add(v);
        }
        let gauges: Vec<(&'static str, u64)> = lock_or_recover(&other.gauges)
            .iter()
            .map(|(name, cell)| (*name, cell.load(Ordering::Acquire)))
            .collect();
        for (name, bits) in gauges {
            self.gauge(name).set(f64::from_bits(bits));
        }
        let histograms: Vec<(&'static str, Arc<HistogramCore>)> =
            lock_or_recover(&other.histograms)
                .iter()
                .map(|(name, core)| (*name, Arc::clone(core)))
                .collect();
        for (name, core) in histograms {
            let mine = {
                let mut map = lock_or_recover(&self.histograms);
                Arc::clone(
                    map.entry(name)
                        .or_insert_with(|| Arc::new(HistogramCore::new(&core.bounds))),
                )
            };
            mine.absorb(&core.snapshot());
        }
        let spans: Vec<(&'static str, (u64, u64))> = lock_or_recover(&other.spans)
            .iter()
            .map(|(name, &stats)| (*name, stats))
            .collect();
        let mut map = lock_or_recover(&self.spans);
        for (name, (count, total_ns)) in spans {
            let slot = map.entry(name).or_insert((0, 0));
            slot.0 += count;
            slot.1 = slot.1.saturating_add(total_ns);
        }
    }

    /// Snapshot of every metric and span roll-up, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut metrics: Vec<MetricEntry> = Vec::new();
        for (name, cell) in lock_or_recover(&self.counters).iter() {
            metrics.push(MetricEntry {
                name: (*name).to_string(),
                // audit: relaxed-ok: monotonic totals are exact after
                // writer joins; mid-run snapshots are advisory.
                value: MetricValue::Counter(cell.load(Ordering::Relaxed)),
            });
        }
        for (name, cell) in lock_or_recover(&self.gauges).iter() {
            metrics.push(MetricEntry {
                name: (*name).to_string(),
                // Acquire pairs with the release-store in `Gauge::set`.
                value: MetricValue::Gauge(f64::from_bits(cell.load(Ordering::Acquire))),
            });
        }
        for (name, core) in lock_or_recover(&self.histograms).iter() {
            metrics.push(MetricEntry {
                name: (*name).to_string(),
                value: MetricValue::Histogram(core.snapshot()),
            });
        }
        metrics.sort_by(|a, b| a.name.cmp(&b.name));
        let spans = lock_or_recover(&self.spans)
            .iter()
            .map(|(name, &(count, total_ns))| SpanRollup {
                name: (*name).to_string(),
                count,
                total_ns,
            })
            .collect();
        MetricsSnapshot { metrics, spans }
    }
}

/// One snapshot entry: a metric name with its frozen value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry {
    /// Metric name (`remix.<crate>.<name>`).
    pub name: String,
    /// Frozen value.
    pub value: MetricValue,
}

/// A frozen metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter total.
    Counter(u64),
    /// Last gauge value (`0.0` when never set).
    Gauge(f64),
    /// Fixed-bucket histogram state.
    Histogram(HistogramSnapshot),
}

/// Frozen fixed-bucket histogram state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// `(upper bound, observations at or below it and above the
    /// previous bound)` in ascending bound order.
    pub buckets: Vec<(f64, u64)>,
    /// Total observations, including those above the last bound.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

/// Aggregated statistics of one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRollup {
    /// Span name.
    pub name: String,
    /// Completed (exited) spans.
    pub count: u64,
    /// Total monotonic duration across those spans (ns).
    pub total_ns: u64,
}

/// A frozen, deterministically ordered view of one registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counters, gauges and histograms, sorted by name.
    pub metrics: Vec<MetricEntry>,
    /// Span roll-ups, sorted by name.
    pub spans: Vec<SpanRollup>,
}

impl MetricsSnapshot {
    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty() && self.spans.is_empty()
    }

    /// Value of the named counter, when present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.metrics.iter().find_map(|m| match m.value {
            MetricValue::Counter(v) if m.name == name => Some(v),
            _ => None,
        })
    }

    /// Value of the named gauge, when present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find_map(|m| match m.value {
            MetricValue::Gauge(v) if m.name == name => Some(v),
            _ => None,
        })
    }

    /// Roll-up of the named span, when present.
    pub fn span(&self, name: &str) -> Option<&SpanRollup> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// The snapshot with everything wall-clock-dependent removed:
    /// metrics whose name marks them as timings (`*_ns`, `*_ms`,
    /// `*_seconds`) are dropped and span durations are zeroed (the
    /// span *counts* stay). Two same-seed runs of a deterministic
    /// workload must produce equal de-timed snapshots.
    pub fn without_timings(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: self
                .metrics
                .iter()
                .filter(|m| {
                    !(m.name.ends_with("_ns")
                        || m.name.ends_with("_ms")
                        || m.name.ends_with("_seconds"))
                })
                .cloned()
                .collect(),
            spans: self
                .spans
                .iter()
                .map(|s| SpanRollup {
                    name: s.name.clone(),
                    count: s.count,
                    total_ns: 0,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("remix.test.hits");
        let b = reg.counter("remix.test.hits");
        a.add(2);
        b.add(3);
        assert_eq!(a.value(), 5);
        assert_eq!(reg.snapshot().counter("remix.test.hits"), Some(5));
    }

    #[test]
    fn gauges_keep_the_last_value() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("remix.test.rcond");
        g.set(1e-3);
        g.set(1e-9);
        assert_eq!(reg.snapshot().gauge("remix.test.rcond"), Some(1e-9));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with_buckets("remix.test.resid", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(500.0); // overflow: only count/sum
        let snap = reg.snapshot();
        let MetricValue::Histogram(hs) = &snap.metrics[0].value else {
            panic!("expected histogram");
        };
        assert_eq!(hs.buckets, vec![(1.0, 1), (10.0, 1)]);
        assert_eq!(hs.count, 3);
        assert!((hs.sum - 505.5).abs() < 1e-9);
    }

    #[test]
    fn snapshot_order_is_deterministic() {
        let reg = MetricsRegistry::new();
        reg.counter("remix.z.last").add(1);
        reg.gauge("remix.a.first").set(2.0);
        reg.counter("remix.m.middle").add(1);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["remix.a.first", "remix.m.middle", "remix.z.last"]
        );
    }

    #[test]
    fn span_rollup_accumulates_and_detimes() {
        let reg = MetricsRegistry::new();
        reg.record_span("remix.test.work", Duration::from_nanos(100));
        reg.record_span("remix.test.work", Duration::from_nanos(50));
        let snap = reg.snapshot();
        let s = snap.span("remix.test.work").expect("rollup");
        assert_eq!((s.count, s.total_ns), (2, 150));
        let detimed = snap.without_timings();
        assert_eq!(detimed.span("remix.test.work").map(|s| s.total_ns), Some(0));
        assert_eq!(detimed.span("remix.test.work").map(|s| s.count), Some(2));
    }

    #[test]
    fn absorb_adds_counters_histograms_spans_and_overwrites_gauges() {
        let a = MetricsRegistry::new();
        a.counter("remix.test.hits").add(2);
        a.gauge("remix.test.rcond").set(1e-3);
        a.histogram_with_buckets("remix.test.resid", &[1.0, 10.0])
            .observe(0.5);
        a.record_span("remix.test.work", Duration::from_nanos(100));

        let b = MetricsRegistry::new();
        b.counter("remix.test.hits").add(3);
        b.counter("remix.test.only_b").add(1);
        b.gauge("remix.test.rcond").set(1e-9);
        b.histogram_with_buckets("remix.test.resid", &[1.0, 10.0])
            .observe(5.0);
        b.record_span("remix.test.work", Duration::from_nanos(50));

        a.absorb(&b);
        let snap = a.snapshot();
        assert_eq!(snap.counter("remix.test.hits"), Some(5));
        assert_eq!(snap.counter("remix.test.only_b"), Some(1));
        assert_eq!(snap.gauge("remix.test.rcond"), Some(1e-9));
        let MetricValue::Histogram(hs) = &snap
            .metrics
            .iter()
            .find(|m| m.name == "remix.test.resid")
            .expect("histogram present")
            .value
        else {
            panic!("expected histogram");
        };
        assert_eq!(hs.buckets, vec![(1.0, 1), (10.0, 1)]);
        assert_eq!(hs.count, 2);
        assert!((hs.sum - 5.5).abs() < 1e-12);
        let s = snap.span("remix.test.work").expect("rollup");
        assert_eq!((s.count, s.total_ns), (2, 150));
    }

    #[test]
    fn ordered_absorb_reproduces_serial_gauge_history() {
        // Three "tasks" each set the same gauge; absorbing their
        // registries in ascending task order must leave the highest
        // task's value, exactly as a serial loop would.
        let caller = MetricsRegistry::new();
        let tasks: Vec<MetricsRegistry> = (0..3)
            .map(|i| {
                let r = MetricsRegistry::new();
                r.gauge("remix.test.last").set(f64::from(i) * 10.0);
                r
            })
            .collect();
        for t in &tasks {
            caller.absorb(t);
        }
        assert_eq!(caller.snapshot().gauge("remix.test.last"), Some(20.0));
    }

    #[test]
    fn absorb_carries_touched_but_never_set_entries() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        b.gauge("remix.test.touched");
        b.counter("remix.test.zero");
        a.absorb(&b);
        let snap = a.snapshot();
        assert_eq!(snap.gauge("remix.test.touched"), Some(0.0));
        assert_eq!(snap.counter("remix.test.zero"), Some(0));
    }

    #[test]
    fn without_timings_drops_timing_named_metrics() {
        let reg = MetricsRegistry::new();
        reg.counter("remix.test.ok").add(1);
        reg.gauge("remix.test.elapsed_ms").set(12.0);
        let snap = reg.snapshot().without_timings();
        assert_eq!(snap.metrics.len(), 1);
        assert_eq!(snap.metrics[0].name, "remix.test.ok");
    }
}
