//! Event sinks: where span transitions and lifecycle events go.

use crate::json::json_str;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// One typed field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (counts, dimensions, indices).
    U64(u64),
    /// Floating-point (frequencies, residuals, seconds).
    F64(f64),
    /// Short text (mode labels, outcome names, paths).
    Str(String),
}

impl FieldValue {
    /// JSON rendering of just the value.
    pub(crate) fn to_json(&self) -> String {
        match self {
            FieldValue::U64(v) => v.to_string(),
            FieldValue::F64(v) if v.is_finite() => format!("{v:e}"),
            FieldValue::F64(_) => "null".to_string(),
            FieldValue::Str(s) => json_str(s),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// What kind of moment an [`Event`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span was entered.
    SpanEnter,
    /// A span exited after the given monotonic duration.
    SpanExit {
        /// Span duration (ns).
        duration_ns: u64,
    },
    /// A point-in-time occurrence (job state change, checkpoint write).
    Point,
}

impl EventKind {
    fn label(&self) -> &'static str {
        match self {
            EventKind::SpanEnter => "span_enter",
            EventKind::SpanExit { .. } => "span_exit",
            EventKind::Point => "point",
        }
    }
}

/// One observability event, as delivered to a [`Sink`].
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event/span name (`remix.<crate>.<name>`).
    pub name: &'static str,
    /// The kind of moment.
    pub kind: EventKind,
    /// Attached key/value fields, in attachment order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Builds a [`EventKind::Point`] event.
    pub fn point(name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> Event {
        Event {
            name,
            kind: EventKind::Point,
            fields,
        }
    }

    /// One-line JSON object form, the unit of the JSON-lines log:
    /// `{"event":"point","name":"…","fields":{…}}` (plus
    /// `"duration_ns"` for span exits).
    pub fn render_json(&self) -> String {
        let mut s = format!(
            "{{\"event\":{},\"name\":{}",
            json_str(self.kind.label()),
            json_str(self.name)
        );
        if let EventKind::SpanExit { duration_ns } = self.kind {
            s.push_str(&format!(",\"duration_ns\":{duration_ns}"));
        }
        if !self.fields.is_empty() {
            s.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&json_str(k));
                s.push(':');
                s.push_str(&v.to_json());
            }
            s.push('}');
        }
        s.push('}');
        s
    }
}

/// Where events go. Implementations must be cheap and infallible from
/// the caller's perspective: observability never turns a good run into
/// a failed one.
pub trait Sink: Send + Sync {
    /// Delivers one event.
    fn record(&self, event: &Event);

    /// `true` when recorded events are actually retained somewhere.
    /// The hooks skip constructing events entirely when this is
    /// `false`, which is what makes the disabled path near-free.
    fn is_observing(&self) -> bool {
        true
    }

    /// Pushes any buffered events to their destination. Default: no-op.
    fn flush(&self) {}
}

/// The default sink: drops everything. [`Sink::is_observing`] returns
/// `false`, so callers never even build the events.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&self, _event: &Event) {}

    fn is_observing(&self) -> bool {
        false
    }
}

/// Test sink: collects every event in memory.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl MemorySink {
    /// New empty collector.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Everything recorded so far, in delivery order.
    pub fn events(&self) -> Vec<Event> {
        lock_or_recover(&self.events).clone()
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        lock_or_recover(&self.events).push(event.clone());
    }
}

/// Appends one JSON object per event to a file — the bench binaries'
/// event log. Write errors are swallowed (observability must not fail
/// the run); [`JsonLinesSink::flush`] pushes the buffer out.
#[derive(Debug)]
pub struct JsonLinesSink {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
}

impl JsonLinesSink {
    /// Creates (truncates) the log file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the [`File::create`] failure.
    pub fn create(path: &Path) -> std::io::Result<JsonLinesSink> {
        Ok(JsonLinesSink {
            path: path.to_path_buf(),
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Sink for JsonLinesSink {
    fn record(&self, event: &Event) {
        let mut w = lock_or_recover(&self.writer);
        let _ = writeln!(w, "{}", event.render_json());
    }

    fn flush(&self) {
        let _ = lock_or_recover(&self.writer).flush();
    }
}

impl Drop for JsonLinesSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_shapes() {
        let e = Event::point("remix.test.tick", vec![]);
        assert_eq!(
            e.render_json(),
            "{\"event\":\"point\",\"name\":\"remix.test.tick\"}"
        );
        let e = Event {
            name: "remix.test.work",
            kind: EventKind::SpanExit { duration_ns: 1500 },
            fields: vec![
                ("dim", FieldValue::from(42usize)),
                ("mode", FieldValue::from("active")),
                ("f", FieldValue::from(2.4e9)),
            ],
        };
        assert_eq!(
            e.render_json(),
            "{\"event\":\"span_exit\",\"name\":\"remix.test.work\",\"duration_ns\":1500,\
             \"fields\":{\"dim\":42,\"mode\":\"active\",\"f\":2.4e9}}"
        );
    }

    #[test]
    fn non_finite_fields_render_null() {
        let e = Event::point("remix.test.nan", vec![("v", FieldValue::F64(f64::NAN))]);
        assert!(e.render_json().contains("\"v\":null"));
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_event() {
        let dir = std::env::temp_dir().join("remix-telemetry-test-sink");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join(format!("events-{}.jsonl", std::process::id()));
        {
            let sink = JsonLinesSink::create(&path).expect("create sink");
            assert!(sink.is_observing());
            sink.record(&Event::point("remix.test.a", vec![]));
            sink.record(&Event::point("remix.test.b", vec![]));
        }
        let text = std::fs::read_to_string(&path).expect("read log");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("remix.test.a"));
        assert!(lines[1].contains("remix.test.b"));
        let _ = std::fs::remove_file(&path);
    }
}
