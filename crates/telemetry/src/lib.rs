//! # remix-telemetry
//!
//! Dependency-free observability for the remix solver stack, in the
//! style of [`remix-exec`]'s budget tokens: a telemetry context is
//! *armed on a thread* through an RAII guard, and free hook functions
//! sprinkled through the hot paths (`factor()`, the Newton loop, the
//! analysis entry points, the statistical drivers) charge it — or fall
//! through at near-zero cost when nothing is armed.
//!
//! Three layers:
//!
//! * **Metrics** ([`MetricsRegistry`]): monotonic counters, last-value
//!   gauges and fixed-bucket histograms, named by the
//!   `remix.<crate>.<name>` convention. [`MetricsRegistry::snapshot`]
//!   renders them in deterministic (name-sorted) order.
//! * **Spans** ([`SpanGuard`]): RAII scopes with a static name,
//!   key/value fields and a monotonic duration. Exited spans roll up
//!   into per-name `(count, total_ns)` statistics in the registry and
//!   emit [`Event`]s to the sink.
//! * **Sinks** ([`Sink`]): where events go. [`NoopSink`] (the default)
//!   discards everything without even constructing the event,
//!   [`MemorySink`] collects for tests, [`JsonLinesSink`] appends one
//!   JSON object per event for offline analysis.
//!
//! A bench binary caps a run by serializing the registry snapshot into
//! a versioned [`BenchRecord`] (`BENCH_<bin>.json`), the machine-readable
//! perf trajectory optimisation PRs are judged against.
//!
//! ## Arming
//!
//! ```
//! use remix_telemetry::{Telemetry, counter_add};
//!
//! let telemetry = Telemetry::new(); // no-op sink, fresh registry
//! {
//!     let _guard = telemetry.arm();
//!     counter_add("remix.example.widgets", 3);
//! } // disarmed again here
//! let snap = telemetry.snapshot();
//! assert_eq!(snap.counter("remix.example.widgets"), Some(3));
//! ```
//!
//! Hooks called on a thread with no armed context do nothing; the cost
//! is one thread-local read. Contexts nest like budget guards: arming
//! inside an armed scope shadows the outer context until the inner
//! guard drops.
//!
//! [`remix-exec`]: https://example.com/remix

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod json;
mod metrics;
pub mod names;
mod record;
mod sink;
mod span;

pub use json::{parse_json, JsonError, JsonValue};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricEntry, MetricValue, MetricsRegistry,
    MetricsSnapshot, SpanRollup, DEFAULT_DURATION_BUCKETS_MS, DEFAULT_RESIDUAL_BUCKETS,
};
pub use record::{BenchRecord, RecordError, BENCH_RECORD_SCHEMA_VERSION};
pub use sink::{Event, EventKind, FieldValue, JsonLinesSink, MemorySink, NoopSink, Sink};
pub use span::{span, SpanGuard};

use std::cell::RefCell;
use std::sync::Arc;

/// One observability context: a metrics registry plus an event sink.
///
/// Cheap to clone (two `Arc`s); arm it on the current thread with
/// [`Telemetry::arm`] so the free hooks ([`counter_add`], [`span`], …)
/// find it.
#[derive(Clone)]
pub struct Telemetry {
    registry: Arc<MetricsRegistry>,
    sink: Arc<dyn Sink>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("observing", &self.sink.is_observing())
            .finish()
    }
}

impl Telemetry {
    /// Fresh registry, no-op sink: metrics accumulate, events vanish.
    pub fn new() -> Self {
        Telemetry::with_sink(Arc::new(NoopSink))
    }

    /// Fresh registry writing events to `sink`.
    pub fn with_sink(sink: Arc<dyn Sink>) -> Self {
        Telemetry {
            registry: Arc::new(MetricsRegistry::new()),
            sink,
        }
    }

    /// The metric registry backing this context.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The event sink backing this context.
    pub fn sink(&self) -> &Arc<dyn Sink> {
        &self.sink
    }

    /// Snapshot of every metric and span roll-up, deterministically
    /// ordered by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Arms this context on the current thread until the guard drops.
    /// Nested arms shadow (and on drop restore) the outer context.
    #[must_use = "the context is disarmed when the guard drops"]
    pub fn arm(&self) -> TelemetryGuard {
        let previous = ACTIVE.with(|a| a.borrow_mut().replace(self.clone()));
        TelemetryGuard { previous }
    }

    /// The context armed on this thread, if any (a cheap clone). A pool
    /// captures it before spawning workers so tasks observe the
    /// caller's context instead of running dark.
    pub fn current() -> Option<Telemetry> {
        with_active(Telemetry::clone)
    }

    /// A context sharing this one's sink but with a fresh, empty
    /// registry. Pool tasks arm one fork per task: live events still
    /// stream to the shared sink, while metrics accumulate privately so
    /// the caller can [`MetricsRegistry::absorb`] the task registries
    /// in deterministic task order after the workers join.
    pub fn fork(&self) -> Telemetry {
        Telemetry {
            registry: Arc::new(MetricsRegistry::new()),
            sink: Arc::clone(&self.sink),
        }
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<Telemetry>> = const { RefCell::new(None) };
}

/// RAII guard returned by [`Telemetry::arm`]; restores the previously
/// armed context (if any) on drop.
#[derive(Debug)]
pub struct TelemetryGuard {
    previous: Option<Telemetry>,
}

impl Drop for TelemetryGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        ACTIVE.with(|a| *a.borrow_mut() = previous);
    }
}

/// Runs `f` with the armed context, or returns `None` when disarmed.
pub(crate) fn with_active<R>(f: impl FnOnce(&Telemetry) -> R) -> Option<R> {
    ACTIVE.with(|a| a.borrow().as_ref().map(f))
}

/// `true` when a telemetry context is armed on this thread.
pub fn is_armed() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// `true` when the armed context's sink actually records events —
/// i.e. the run is *observed* rather than running against the no-op
/// default. Plan lints (`SIM008`) use this to warn about long runs
/// nobody is watching.
pub fn is_observing() -> bool {
    with_active(|t| t.sink.is_observing()).unwrap_or(false)
}

/// Handle to the named counter of the armed registry (detached no-op
/// handle when disarmed). Fetch once outside a hot loop; `add` is then
/// a single atomic increment.
pub fn counter(name: &'static str) -> Counter {
    with_active(|t| t.registry.counter(name)).unwrap_or_default()
}

/// Adds `n` to the named counter of the armed registry, if any.
pub fn counter_add(name: &'static str, n: u64) {
    if let Some(c) = with_active(|t| t.registry.counter(name)) {
        c.add(n);
    }
}

/// Sets the named gauge of the armed registry, if any.
pub fn gauge_set(name: &'static str, value: f64) {
    if let Some(g) = with_active(|t| t.registry.gauge(name)) {
        g.set(value);
    }
}

/// Records `value` into the named histogram of the armed registry, if
/// any (created with [`DEFAULT_RESIDUAL_BUCKETS`] on first touch).
pub fn histogram_observe(name: &'static str, value: f64) {
    if let Some(h) = with_active(|t| t.registry.histogram(name)) {
        h.observe(value);
    }
}

/// Emits a point-in-time event (job lifecycle transition, checkpoint
/// write, …) to the armed sink. The field vector is only built by the
/// caller; when no observing sink is armed the event is dropped here.
pub fn event(name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
    if let Some(sink) = with_active(|t| Arc::clone(&t.sink)) {
        if sink.is_observing() {
            sink.record(&Event::point(name, fields));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_are_inert_when_disarmed() {
        assert!(!is_armed());
        assert!(!is_observing());
        counter_add("remix.test.inert", 5);
        gauge_set("remix.test.inert_gauge", 1.0);
        histogram_observe("remix.test.inert_hist", 1.0);
        event("remix.test.inert_event", vec![]);
        let c = counter("remix.test.inert");
        c.add(3);
        assert_eq!(c.value(), 0, "detached counter handles read zero");
    }

    #[test]
    fn arming_routes_hooks_and_nesting_restores() {
        let outer = Telemetry::new();
        let inner = Telemetry::new();
        {
            let _g = outer.arm();
            assert!(is_armed());
            counter_add("remix.test.routed", 1);
            {
                let _g2 = inner.arm();
                counter_add("remix.test.routed", 10);
            }
            counter_add("remix.test.routed", 1);
        }
        assert!(!is_armed());
        assert_eq!(outer.snapshot().counter("remix.test.routed"), Some(2));
        assert_eq!(inner.snapshot().counter("remix.test.routed"), Some(10));
    }

    #[test]
    fn observing_reflects_the_sink() {
        let noop = Telemetry::new();
        let _g = noop.arm();
        assert!(!is_observing());
        drop(_g);
        let observed = Telemetry::with_sink(Arc::new(MemorySink::new()));
        let _g = observed.arm();
        assert!(is_observing());
    }

    #[test]
    fn current_clones_the_armed_context_and_fork_shares_the_sink() {
        assert!(Telemetry::current().is_none());
        let sink = Arc::new(MemorySink::new());
        let t = Telemetry::with_sink(sink.clone());
        let _g = t.arm();
        let current = Telemetry::current().expect("armed");
        let fork = current.fork();
        {
            let _fg = fork.arm();
            counter_add("remix.test.forked", 7);
            event("remix.test.forked_event", vec![]);
        }
        // Fork's metrics are private until absorbed…
        assert_eq!(t.snapshot().counter("remix.test.forked"), None);
        assert_eq!(fork.snapshot().counter("remix.test.forked"), Some(7));
        t.registry().absorb(fork.registry());
        assert_eq!(t.snapshot().counter("remix.test.forked"), Some(7));
        // …but its events stream straight to the shared sink.
        assert_eq!(sink.events().len(), 1);
    }

    #[test]
    fn events_reach_a_memory_sink() {
        let sink = Arc::new(MemorySink::new());
        let t = Telemetry::with_sink(sink.clone());
        let _g = t.arm();
        event(
            "remix.test.lifecycle",
            vec![("state", FieldValue::from("started"))],
        );
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "remix.test.lifecycle");
    }
}
