//! # remix-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation section (see DESIGN.md §3 for the experiment index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig8_cg_vs_rf` | Fig. 8 — conversion gain vs RF frequency |
//! | `fig9_nf_vs_if` | Fig. 9 — NF and CG vs IF frequency |
//! | `fig10_iip3` | Fig. 10(a)/(b) — two-tone IIP3, both modes |
//! | `table1` | Table I — full comparison incl. literature rows |
//! | `switch_r` | Fig. 5 — transmission-gate / switch resistance curves |
//! | `spot_transient` | transistor-level validation spot checks |
//!
//! Criterion benches (`cargo bench`) measure the substrate's performance
//! on the workloads behind those artifacts.

use remix_core::{eval::MixerEvaluator, MixerConfig};
use remix_exec::{JobError, JobOutcome, RunBudget, Supervisor, SupervisorOptions};
use remix_lint::{lint_plan, LintConfig, SimPlan};
use remix_telemetry::{BenchRecord, JsonLinesSink, Telemetry, TelemetryGuard};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Environment variable capping a supervised bench run's wall clock in
/// milliseconds (see [`run_bin`]). Unset or unparsable means unlimited.
pub const DEADLINE_ENV: &str = "REMIX_BENCH_DEADLINE_MS";

/// Environment variable disabling the bench perf record (and the event
/// log with it): set `REMIX_BENCH_RECORD=0` to run a binary without
/// touching the filesystem. Any other value — or unset — records.
pub const RECORD_ENV: &str = "REMIX_BENCH_RECORD";

/// Environment variable overriding the JSON-lines event-log path. Set
/// `REMIX_TELEMETRY_EVENTS=0` to keep the metrics record but skip the
/// event log; any other value replaces the default
/// `BENCH_<bin>.events.jsonl`.
pub const EVENTS_ENV: &str = "REMIX_TELEMETRY_EVENTS";

fn bin_budget() -> RunBudget {
    // Typed env read: a malformed REMIX_BENCH_DEADLINE_MS warns on the
    // `remix.exec.env.malformed` counter/event and falls back to
    // unlimited, instead of being silently ignored.
    match remix_exec::env_u64_or_warn(DEADLINE_ENV, None) {
        Some(ms) => RunBudget::unlimited().with_deadline(Duration::from_millis(ms)),
        None => RunBudget::unlimited(),
    }
}

/// Shared driver for the bench binaries: runs `body` as one supervised
/// job ([`remix_exec::Supervisor`]) and turns its outcome into the
/// process exit status, replacing the per-bin `if let Err(e) = run()` /
/// `exit(1)` boilerplate.
///
/// * The body executes with a fresh budget token armed on the thread.
///   Set [`DEADLINE_ENV`] (`REMIX_BENCH_DEADLINE_MS`) to cap the wall
///   clock: a watchdog thread then trips the token past the deadline
///   and every budget-hooked analysis returns
///   `AnalysisError::BudgetExceeded` — with its convergence trace —
///   instead of running long.
/// * Errors print as `<label> failed: <error>` and exit with status 1
///   (analysis errors render their attempt table through `Display`).
/// * Panics are caught by the supervisor and print as
///   `<label> panicked: <payload>`, exiting with status 101 like an
///   unsupervised panic would.
/// * Unless [`RECORD_ENV`] (`REMIX_BENCH_RECORD`) is `0`, the run
///   executes under an armed telemetry context: spans and counters from
///   every instrumented layer accumulate in a fresh registry, lifecycle
///   events stream to `BENCH_<bin>.events.jsonl` ([`EVENTS_ENV`]
///   overrides the path, `0` disables just the log), and the frozen
///   snapshot is written as a versioned [`BenchRecord`] to
///   `BENCH_<bin>.json` — pass or fail, so a failed run still leaves
///   its perf trail.
pub fn run_bin(label: &str, mut body: impl FnMut() -> Result<(), Box<dyn std::error::Error>>) -> ! {
    let recorder = BenchRecorder::arm(label);
    let sup = Supervisor::new(SupervisorOptions {
        budget: bin_budget(),
        // Figure regeneration is deterministic: a failed run would fail
        // again, so spend no retries on it.
        max_retries: 0,
        ..SupervisorOptions::default()
    });
    let report = sup.run(label, |_token| {
        body().map_err(|e| JobError::Fatal(e.to_string()))
    });
    recorder.finish(report.outcome.is_done());
    match report.outcome {
        JobOutcome::Done(()) => std::process::exit(0),
        JobOutcome::Failed(msg) => {
            eprintln!("{label} failed: {msg}");
            std::process::exit(1);
        }
        JobOutcome::Panicked(msg) => {
            eprintln!("{label} panicked: {msg}");
            std::process::exit(101);
        }
    }
}

/// Telemetry capture for one bench process: arms a context on
/// construction (unless [`RECORD_ENV`] is `0`), streams lifecycle
/// events to `BENCH_<bin>.events.jsonl` (see [`EVENTS_ENV`]), and
/// writes the frozen snapshot as a versioned [`BenchRecord`] to
/// `BENCH_<bin>.json` on [`finish`](BenchRecorder::finish).
///
/// [`run_bin`] uses it around the supervised job; binaries with their
/// own exit semantics (the `lint` CLI) wrap their body in one directly.
pub struct BenchRecorder {
    telemetry: Telemetry,
    guard: Option<TelemetryGuard>,
    bin: String,
    label: String,
    enabled: bool,
}

impl BenchRecorder {
    /// Builds the sink, arms the thread-local context, and starts
    /// capturing. Observability must not fail the run: an unwritable
    /// event log degrades to metrics-only with a note on stderr.
    pub fn arm(label: &str) -> BenchRecorder {
        BenchRecorder::arm_with_bin(label, &bin_name(label))
    }

    /// Like [`arm`](BenchRecorder::arm) but with an explicit record
    /// stem: `arm_with_bin("serve load", "serve")` writes
    /// `BENCH_serve.json` regardless of the executable's file name.
    pub fn arm_with_bin(label: &str, bin: &str) -> BenchRecorder {
        let bin = slug(bin);
        let enabled = std::env::var(RECORD_ENV).map_or(true, |v| v != "0");
        let telemetry = match event_log_path(&bin) {
            Some(path) if enabled => match JsonLinesSink::create(path.as_ref()) {
                Ok(sink) => Telemetry::with_sink(Arc::new(sink)),
                Err(e) => {
                    eprintln!("{label}: cannot create event log {path}: {e}");
                    Telemetry::new()
                }
            },
            _ => Telemetry::new(),
        };
        let guard = enabled.then(|| telemetry.arm());
        BenchRecorder {
            telemetry,
            guard,
            bin,
            label: label.to_string(),
            enabled,
        }
    }

    /// Disarms, flushes the event log, and writes `BENCH_<bin>.json` —
    /// pass or fail, so a failed run still leaves its perf trail.
    pub fn finish(mut self, pass: bool) {
        self.guard.take();
        if !self.enabled {
            return;
        }
        self.telemetry.sink().flush();
        let record = BenchRecord::new(
            self.bin.clone(),
            self.label.clone(),
            pass,
            config_fingerprint(&self.label),
            self.telemetry.snapshot(),
        );
        let path = format!("BENCH_{}.json", self.bin);
        if let Err(e) = std::fs::write(&path, record.render_json()) {
            eprintln!("{}: cannot write bench record {path}: {e}", self.label);
        }
    }
}

/// The record file stem: the executable name when available (matches
/// the `[[bin]]` name in CI artifacts), otherwise a slug of the label.
fn bin_name(label: &str) -> String {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| slug(label))
}

/// Filesystem-safe lowercase slug (`fig8 gain sweep` → `fig8_gain_sweep`).
fn slug(label: &str) -> String {
    let s: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect();
    if s.is_empty() {
        "bench".to_string()
    } else {
        s
    }
}

/// Resolves the event-log path: [`EVENTS_ENV`] override, `0` meaning
/// "no event log", default `BENCH_<bin>.events.jsonl`.
fn event_log_path(bin: &str) -> Option<String> {
    match std::env::var(EVENTS_ENV) {
        Ok(v) if v == "0" => None,
        Ok(v) if !v.is_empty() => Some(v),
        _ => Some(format!("BENCH_{bin}.events.jsonl")),
    }
}

/// Fingerprint (FNV-1a 64, hex) of the configuration a bench record
/// measured: the default [`MixerConfig`] debug rendering plus the run
/// label. Records with different fingerprints are not comparable
/// point-to-point.
fn config_fingerprint(label: &str) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in format!("{:?}|{label}", MixerConfig::default()).bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Shared evaluator for all binaries/benches (extraction is seconds),
/// propagating extraction failure — including a tripped run budget —
/// as an error instead of panicking. The first outcome (pass or fail)
/// is cached for the life of the process.
pub fn try_shared_evaluator() -> Result<&'static MixerEvaluator, remix_analysis::AnalysisError> {
    static CACHE: OnceLock<Result<MixerEvaluator, remix_analysis::AnalysisError>> = OnceLock::new();
    CACHE
        .get_or_init(|| MixerEvaluator::new(&MixerConfig::default()))
        .as_ref()
        .map_err(Clone::clone)
}

/// Shared evaluator for all binaries/benches (extraction is seconds).
///
/// # Panics
///
/// If the extraction fails; fallible callers should prefer
/// [`try_shared_evaluator`].
pub fn shared_evaluator() -> &'static MixerEvaluator {
    match try_shared_evaluator() {
        Ok(eval) => eval,
        Err(e) => panic!("mixer extraction failed: {e}"), // audit: allow(AUD002): bench CLI entry: aborting with the extraction error is the contract
    }
}

/// Looks up the shipped measurement plan `label` (see
/// [`remix_core::plans`]), lints it, and aborts with the full report if
/// it has deny-level findings. Figure/table binaries call this before
/// spending seconds on extraction, so a mis-parameterized sweep dies in
/// milliseconds instead of producing a silently aliased artifact.
///
/// # Panics
///
/// If no shipped plan carries `label`, or its lint report has denies.
pub fn checked_plan(label: &str) -> SimPlan {
    let (_, plan) = remix_core::plans::shipped_plans()
        .into_iter()
        .find(|(l, _)| *l == label)
        .unwrap_or_else(|| panic!("no shipped plan named {label:?}")); // audit: allow(AUD002): bench CLI entry: a misnamed shipped plan is a build bug
    let report = lint_plan(&plan, &LintConfig::default());
    if !report.is_clean() {
        panic!("{label} plan fails simulation-plan lint:\n{report}"); // audit: allow(AUD002): bench CLI entry: shipped plans must pass their own lint gate
    }
    if report.warn_count() > 0 {
        eprint!("{label} plan lint warnings:\n{report}");
    }
    plan
}

/// Pool options for the study binaries (`mc_iip2`, `corners`,
/// `pnoise_mc`): honors `REMIX_EXEC_WORKERS` and
/// `REMIX_EXEC_POOL_CHAOS` via [`remix_exec::PoolOptions::from_env`]
/// and prints the resolved policy, so a bench log always says how
/// parallel the run actually was.
pub fn study_pool() -> remix_exec::PoolOptions {
    let pool = remix_exec::PoolOptions::from_env();
    println!(
        "parallelism: {} worker(s){}",
        pool.parallelism.worker_count(),
        if pool.chaos.is_active() {
            " [pool chaos active]"
        } else {
            ""
        }
    );
    pool
}

/// Renders a crude ASCII plot of `(x, y)` series for terminal inspection.
pub fn ascii_plot(
    series: &[(&str, &[(f64, f64)])],
    y_label: &str,
    x_div: f64,
    x_unit: &str,
) -> String {
    let mut out = String::new();
    let ymin = series
        .iter()
        .flat_map(|(_, s)| s.iter().map(|p| p.1))
        .fold(f64::MAX, f64::min);
    let ymax = series
        .iter()
        .flat_map(|(_, s)| s.iter().map(|p| p.1))
        .fold(f64::MIN, f64::max);
    let span = (ymax - ymin).max(1e-9);
    out.push_str(&format!(
        "{y_label}: {ymin:.1} .. {ymax:.1}  (each column = one sweep point)\n"
    ));
    for (name, s) in series {
        out.push_str(&format!("{name:>10} |"));
        for &(_, y) in s.iter() {
            let lvl = ((y - ymin) / span * 9.0).round() as usize;
            out.push(char::from_digit(lvl.min(9) as u32, 10).unwrap_or('9'));
        }
        out.push('\n');
    }
    if let Some((_, s)) = series.first() {
        out.push_str(&format!(
            "{:>10}  {:.2}..{:.2} {x_unit}\n",
            "x:",
            s.first().map(|p| p.0 / x_div).unwrap_or(0.0),
            s.last().map(|p| p.0 / x_div).unwrap_or(0.0),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_shipped_plan_passes_the_gate() {
        for label in ["fig8", "fig9", "fig10", "table1"] {
            let plan = checked_plan(label);
            assert!(!plan.name.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "no shipped plan named")]
    fn unknown_plan_label_panics() {
        checked_plan("fig99");
    }

    #[test]
    fn label_slugs_are_filesystem_safe() {
        assert_eq!(slug("fig8 gain sweep"), "fig8_gain_sweep");
        assert_eq!(slug("Table I"), "table_i");
        assert_eq!(slug(""), "bench");
    }

    #[test]
    fn config_fingerprint_is_deterministic_and_label_sensitive() {
        assert_eq!(config_fingerprint("fig8"), config_fingerprint("fig8"));
        assert_ne!(config_fingerprint("fig8"), config_fingerprint("fig9"));
        assert_eq!(config_fingerprint("fig8").len(), 16);
    }

    #[test]
    fn ascii_plot_renders() {
        let s: Vec<(f64, f64)> = (0..10).map(|k| (k as f64, k as f64)).collect();
        let plot = ascii_plot(&[("ramp", &s)], "y", 1.0, "u");
        assert!(plot.contains("ramp"));
        assert!(plot.contains("0123456789"));
    }
}
