//! Input return loss (S11) of the terminated RF port vs frequency, both
//! modes — the practical meaning of the paper's "50 ohm input impedance
//! termination".
//!
//! ```text
//! cargo run --release -p remix-bench --bin input_match
//! ```

use remix_bench::try_shared_evaluator;
use remix_core::MixerMode;

fn main() {
    remix_bench::run_bin("input-match study", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let eval = try_shared_evaluator()?;
    let freqs: Vec<f64> = (1..=14).map(|k| 0.5e9 * k as f64).collect();
    println!("differential input S11 (dB re 100 Ω)\n");
    println!("{:>9} {:>10} {:>10}", "f (GHz)", "active", "passive");
    let a = eval.input_match_s11(MixerMode::Active, &freqs)?;
    let p = eval.input_match_s11(MixerMode::Passive, &freqs)?;
    for i in 0..freqs.len() {
        println!("{:>9.2} {:>10.1} {:>10.1}", freqs[i] / 1e9, a[i].1, p[i].1);
    }
    println!("\nthe match is set by the shared termination network, so the");
    println!("two modes track each other — reconfiguration does not disturb");
    println!("the RF port (no re-match needed on a mode switch).");
    Ok(())
}
