//! Study matrix over the `remix-topo` circuit families: Monte-Carlo
//! mismatch and process corners for every family, plus a parallel DC
//! bias sweep of the MedRadio front-end — all through the
//! work-stealing pool behind `REMIX_EXEC_WORKERS`.
//!
//! ```text
//! cargo run --release -p remix-bench --bin topo_matrix
//! ```

use remix_rfkit::specs::{topo_family_rows, SpecValue};
use remix_topo::{
    bias_sweep, corner_study, mc_study, standard_corners, Family, MedRadioParams, TopoMismatch,
};

fn main() {
    remix_bench::run_bin("topo matrix", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let pool = remix_bench::study_pool();
    let mm = TopoMismatch::default();

    let mut medradio_median_uw = None;
    for family in Family::defaults() {
        let circuit = family.generate()?;
        println!("==== {} ====", family.name());
        println!("{}", circuit.stats());

        let mc = mc_study(&family, &mm, &pool)?;
        println!("  mc      | {}", mc.summary_line());
        if mc.yield_fraction() < 0.9 {
            return Err(format!(
                "{}: Monte-Carlo yield {:.0}% below the 90% floor",
                family.name(),
                100.0 * mc.yield_fraction()
            )
            .into());
        }

        let corners = corner_study(&family, &standard_corners(), &pool)?;
        println!("  corners | {}", corners.summary_line());
        if corners.n_ok() != standard_corners().len() {
            return Err(format!("{}: a process corner failed to solve", family.name()).into());
        }

        if matches!(family, Family::MedRadio(_)) {
            let vals = mc.values();
            medradio_median_uw = vals.get(vals.len() / 2).copied();
        }
        println!();
    }

    // Cross-check the MedRadio Monte-Carlo median against the family's
    // published spec row (sub-50 µW).
    let rows = topo_family_rows();
    let budget_uw = rows
        .iter()
        .find(|r| r.label == "medradio-fe")
        .and_then(|r| match r.power_mw {
            SpecValue::AtMost(mw) => Some(mw * 1e3),
            _ => None,
        })
        .ok_or("medradio-fe spec row lost its power bound")?;
    let median = medradio_median_uw.ok_or("MedRadio Monte-Carlo produced no samples")?;
    println!("medradio power: median {median:.1} µW vs spec ≤ {budget_uw:.0} µW");
    if median > budget_uw {
        return Err(
            format!("MedRadio median {median:.1} µW blows the {budget_uw:.0} µW spec").into(),
        );
    }

    // Parallel DC transfer sweep: MedRadio amp bias through the
    // dc_sweep_parallel lane.
    let family = Family::MedRadio(MedRadioParams::default());
    let values: Vec<f64> = (0..9).map(|i| 0.16 + 0.02 * i as f64).collect();
    let sweep = bias_sweep(&family, &values, &pool)?;
    if let Some(intr) = &sweep.interruption {
        return Err(format!("bias sweep interrupted: {intr:?}").into());
    }
    let circuit = family.generate()?;
    let amp = circuit
        .find_node("amp")
        .ok_or("medradio lost its amp node")?;
    let curve: Vec<(f64, f64)> = values
        .iter()
        .zip(sweep.value.points.iter())
        .map(|(&v, p)| (v, p.voltage(amp)))
        .collect();
    println!(
        "\nbias sweep ({} points through the pool):\n{}",
        curve.len(),
        remix_bench::ascii_plot(&[("v(amp)", &curve)], "v(amp) (V)", 1.0, "V bias")
    );
    for w in curve.windows(2) {
        if w[1].1 >= w[0].1 {
            return Err(
                format!("amp voltage must fall monotonically with bias: {:?}", curve).into(),
            );
        }
    }
    println!("topo matrix complete: 3 families × (mc + corners), MedRadio bias sweep monotone");
    Ok(())
}
