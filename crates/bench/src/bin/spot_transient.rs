//! Transistor-level validation spot checks: run the full ~40-device
//! netlist through the transient engine and compare conversion gain with
//! the behavioral model at selected (LO, IF) points. Slow by design —
//! this is the "ground truth" anchor for the fast sweeps.
//!
//! ```text
//! cargo run --release -p remix-bench --bin spot_transient
//! ```

use remix_bench::shared_evaluator;
use remix_core::MixerMode;

fn main() {
    remix_bench::run_bin("spot transient", || {
        run();
        Ok(())
    })
}

fn run() {
    let eval = shared_evaluator();
    println!("transistor-level transient vs behavioral model\n");
    println!(
        "{:>9} {:>9} {:>9} {:>13} {:>13} {:>8}",
        "mode", "LO (GHz)", "IF (MHz)", "circuit (dB)", "model (dB)", "Δ (dB)"
    );
    for (mode, f_lo) in [
        (MixerMode::Passive, 0.48e9),
        (MixerMode::Passive, 1.2e9),
        (MixerMode::Active, 1.2e9),
        (MixerMode::Active, 2.4e9),
    ] {
        let f_if = 5e6;
        match eval.circuit_conv_gain_spot(mode, f_lo, f_if) {
            Ok(circuit_db) => {
                let model_db = eval.model(mode).conv_gain_db(f_lo + f_if, f_if);
                println!(
                    "{:>9} {:>9.2} {:>9.1} {:>13.2} {:>13.2} {:>8.2}",
                    mode.label(),
                    f_lo / 1e9,
                    f_if / 1e6,
                    circuit_db,
                    model_db,
                    circuit_db - model_db
                );
            }
            Err(e) => println!(
                "{:>9} {:>9.2} transient failed: {e}",
                mode.label(),
                f_lo / 1e9
            ),
        }
    }
    println!("\nagreement within a couple of dB anchors the behavioral sweeps");
    println!("(Fig. 8/9/10 harnesses) to the actual netlist.");
}
