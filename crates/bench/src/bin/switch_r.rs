//! Regenerates the **Fig. 5** sanity artifacts: switch implementations.
//!
//! * Fig. 5(a): the PMOS mode switch Mp1/Mp2 — on-resistance (= the
//!   passive-mode degeneration R_deg) vs channel voltage, and hard-off
//!   behaviour with Vlogic high;
//! * Fig. 5(b): the transmission-gate resistive load — R vs pass voltage
//!   and sizing curves ("W/L of PMOS and NMOS is chosen so that some
//!   voltage drop occurs across it and act as a resistance").
//!
//! ```text
//! cargo run --release -p remix-bench --bin switch_r
//! ```

use remix_circuit::{size_tg_for_resistance, tg_on_resistance};
use remix_core::tg::{size_tg_load, tg_load_conductance};
use remix_core::MixerConfig;

fn main() {
    remix_bench::run_bin("switch-resistance curves", || {
        run();
        Ok(())
    })
}

fn run() {
    let cfg = MixerConfig::default();

    println!(
        "Fig. 5(a) — PMOS switch 1-2 (W = {:.0} µm)\n",
        cfg.sw12_w * 1e6
    );
    println!(
        "{:>12} {:>14} {:>16}",
        "Vchan (V)", "Ron on (Ω)", "Ioff @Vg=VDD (A)"
    );
    let p = cfg.pmos.clone();
    for k in 0..=10 {
        let v = 0.2 + 0.08 * k as f64;
        // On: gate at 0 (Vlogic low).
        let dv = 1e-3;
        let on = p.evaluate(v - dv, 0.0, v, cfg.vdd);
        let g = on.id.abs() * (cfg.sw12_w / cfg.sw12_l) / dv;
        // Off: gate at VDD (Vlogic high).
        let off = p.evaluate(v - 0.2, cfg.vdd, v, cfg.vdd);
        println!(
            "{:>12.2} {:>14.1} {:>16.3e}",
            v,
            1.0 / g,
            (off.id * cfg.sw12_w / cfg.sw12_l).abs()
        );
    }

    println!("\nFig. 5(b) — transmission-gate resistive switch / load\n");
    println!("TG sized for 500 Ω at mid-rail (pass-gate use, switches 3-4):");
    let s = size_tg_for_resistance(500.0, cfg.vdd, 65e-9);
    println!("  wn = {:.2} µm, wp = {:.2} µm", s.wn * 1e6, s.wp * 1e6);
    println!("{:>12} {:>12}", "Vpass (V)", "Rtot (Ω)");
    for k in 0..=12 {
        let v = 0.05 + k as f64 * 0.09;
        println!("{:>12.2} {:>12.1}", v, tg_on_resistance(&s, cfg.vdd, v));
    }

    println!(
        "\nTG load to VDD sized for {} Ω at Vpass = 0.8 V (active-mode load):",
        cfg.tg_load_r
    );
    let sl = size_tg_load(&cfg.nmos, &cfg.pmos, cfg.tg_load_r, cfg.vdd, 0.8, 65e-9);
    println!("  wn = {:.2} µm, wp = {:.2} µm", sl.wn * 1e6, sl.wp * 1e6);
    println!("{:>12} {:>12}", "Vpass (V)", "R (Ω)");
    for k in 0..=8 {
        let v = 0.5 + k as f64 * 0.08;
        let g = tg_load_conductance(&cfg.nmos, &cfg.pmos, &sl, cfg.vdd, v);
        println!("{:>12.2} {:>12.1}", v, 1.0 / g);
    }
    println!("\ngain tuning: the active conversion gain scales with this R (paper §II-B).");
    for r in [120.0, 240.0, 480.0, 950.0] {
        let sz = size_tg_load(&cfg.nmos, &cfg.pmos, r, cfg.vdd, 0.8, 65e-9);
        println!(
            "  target {:>5.0} Ω → wp {:>6.2} µm (realized {:>6.1} Ω)",
            r,
            sz.wp * 1e6,
            1.0 / tg_load_conductance(&cfg.nmos, &cfg.pmos, &sz, cfg.vdd, 0.8)
        );
    }
}
