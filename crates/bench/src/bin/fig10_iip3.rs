//! Regenerates **Fig. 10**: two-tone linearity test of the reconfigurable
//! mixer (LO = 2.4 GHz, tones at +5/+6 MHz offsets) — 10(a) passive,
//! 10(b) active. Prints the swept fundamental/IM3 output powers, the
//! slope-1/slope-3 fit lines, and the extracted intercepts.
//!
//! ```text
//! cargo run --release -p remix-bench --bin fig10_iip3
//! ```

use remix_bench::{checked_plan, try_shared_evaluator};
use remix_core::MixerMode;

fn main() {
    remix_bench::run_bin("fig10 two-tone study", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    // Lint the two-tone FFT record (coherence, Nyquist, IM3 headroom)
    // before paying for extraction.
    let plan = checked_plan("fig10");
    println!(
        "two-tone record: n = {}, fs = {:.3} GHz (lint-clean)\n",
        plan.fft_len.ok_or("fig10 plan declares an FFT")?,
        plan.sample_rate.ok_or("fig10 plan declares a rate")? / 1e9,
    );

    let eval = try_shared_evaluator()?;
    for (fig, mode) in [
        ("Fig. 10(a)", MixerMode::Passive),
        ("Fig. 10(b)", MixerMode::Active),
    ] {
        let m = eval.model(mode);
        let start = m.p1db_dbm() - 22.0;
        let pins: Vec<f64> = (0..10).map(|k| start + 2.0 * k as f64).collect();
        let (sweep, result) = eval.iip3_two_tone(mode, &pins)?;

        println!("{fig} — {} mode two-tone test (LO 2.4 GHz)\n", mode.label());
        println!(
            "{:>10} {:>12} {:>12} {:>12} {:>12}",
            "Pin(dBm)", "fund(dBm)", "IM3(dBm)", "fit fund", "fit IM3"
        );
        for i in 0..sweep.len() {
            println!(
                "{:>10.1} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
                sweep.pin_dbm[i],
                sweep.fund_dbm[i],
                sweep.im3_dbm[i],
                result.fund_line.eval(sweep.pin_dbm[i]),
                result.im3_line.eval(sweep.pin_dbm[i]),
            );
        }
        println!(
            "\nslopes: fundamental {:.3} (ideal 1), IM3 {:.3} (ideal 3)",
            result.fund_slope, result.im3_slope
        );
        let paper = match mode {
            MixerMode::Active => -11.9,
            MixerMode::Passive => 6.57,
        };
        println!(
            "IIP3 = {:+.2} dBm (paper {:+.2} dBm) | OIP3 = {:+.2} dBm | gain {:.1} dB\n",
            result.iip3_dbm, paper, result.oip3_dbm, result.gain_db
        );
    }
    println!(
        "mode separation: passive − active = {:.1} dB (paper: {:.1} dB)",
        eval.model(MixerMode::Passive).iip3_dbm() - eval.model(MixerMode::Active).iip3_dbm(),
        6.57 - (-11.9),
    );
    Ok(())
}
