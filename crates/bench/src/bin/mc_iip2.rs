//! Monte-Carlo IIP2 study: the paper claims "IIP2 is > 65 for both
//! cases"; even-order rejection is a *matching* property, so this binary
//! samples Pelgrom-style device mismatch on the TCA halves and prints the
//! resulting IIP2 distribution at two matching qualities.
//!
//! Failed samples are casualties, not crashes: each one prints its
//! convergence trace and the study keeps sweeping, reporting yield at
//! the end.
//!
//! ```text
//! cargo run --release -p remix-bench --bin mc_iip2
//! ```
//!
//! Samples run on the work-stealing study pool: `REMIX_EXEC_WORKERS=<n>`
//! pins the worker count (`0`/unset means every available core; the
//! study result is identical for any count) and `REMIX_EXEC_POOL_CHAOS`
//! exercises the deterministic fault schedule.

use remix_core::montecarlo::{iip2_study_with, summarize, MismatchConfig};
use remix_core::MixerConfig;

fn run(label: &str, mm: &MismatchConfig, pool: &remix_exec::PoolOptions) {
    let study = iip2_study_with(&MixerConfig::default(), mm, None, pool);
    println!(
        "\n{label}: σ(ΔVt) = {:.1} mV, σ(Δβ/β) = {:.2} %  ({} samples, {})",
        mm.sigma_vt * 1e3,
        mm.sigma_kp_frac * 1e2,
        mm.n_runs,
        study.summary_line()
    );
    for (i, trace) in study.failures() {
        println!("  sample {i} failed: {}", trace.summary());
    }
    let dist = study.passed();
    if dist.is_empty() {
        println!("  no samples solved — nothing to summarize");
        return;
    }
    let s = summarize(&dist);
    println!(
        "  IIP2 min {:.1} | median {:.1} | max {:.1} dBm",
        s.min, s.median, s.max
    );
    let above = dist.iter().filter(|v| **v > 65.0).count();
    println!(
        "  {above}/{} solved samples clear the paper's 65 dBm line",
        dist.len()
    );
    // Poor-man's histogram.
    for lo in (40..110).step_by(10) {
        let hi = lo + 10;
        let n = dist
            .iter()
            .filter(|v| **v >= lo as f64 && **v < hi as f64)
            .count();
        if n > 0 {
            println!("  {lo:>3}–{hi:<3} dBm | {}", "#".repeat(n));
        }
    }
}

fn main() {
    remix_bench::run_bin("monte-carlo iip2 study", || {
        generate();
        Ok(())
    })
}

fn generate() {
    println!("Monte-Carlo IIP2 vs device matching (TCA halves perturbed)");
    let pool = remix_bench::study_pool();
    run(
        "raw Pelgrom matching",
        &MismatchConfig {
            n_runs: 40,
            ..MismatchConfig::default()
        },
        &pool,
    );
    run(
        "common-centroid-quality matching",
        &MismatchConfig {
            sigma_vt: 0.5e-3,
            sigma_kp_frac: 0.001,
            n_runs: 40,
            ..MismatchConfig::default()
        },
        &pool,
    );
    println!("\nfinding: the paper's >65 dBm needs ~half-mV effective ΔVt —");
    println!("layout-level matching, not just topology, carries the claim.");
}
