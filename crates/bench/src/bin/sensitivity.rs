//! Design-sensitivity table: metric slope per +10 % of each design knob —
//! the quantitative companion to the ablation study, and the map a
//! designer would use to re-center the mixer for a different standard.
//!
//! ```text
//! cargo run --release -p remix-bench --bin sensitivity
//! ```

use remix_core::sensitivity::{sensitivity_table, standard_knobs};
use remix_core::MixerConfig;

fn main() {
    remix_bench::run_bin("sensitivity study", || {
        run();
        Ok(())
    })
}

fn run() {
    let base = MixerConfig::default();
    println!("metric change per +10% knob change (dB / dBm)\n");
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "knob", "ΔCGa", "ΔCGp", "ΔNFa", "ΔNFp", "ΔIIP3a", "ΔIIP3p"
    );
    match sensitivity_table(&base, &standard_knobs()) {
        Ok(table) => {
            for s in table {
                let d = s.delta;
                println!(
                    "{:<14} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
                    s.knob,
                    d.cg_active_db,
                    d.cg_passive_db,
                    d.nf_active_db,
                    d.nf_passive_db,
                    d.iip3_active_dbm,
                    d.iip3_passive_dbm,
                );
            }
        }
        Err(e) => println!("sensitivity run failed: {e}"),
    }
    println!("\nreadings: tg_load_r and tia_rf are the per-mode gain knobs the");
    println!("paper names; tail_current trades active gain against IIP3 along");
    println!("the CG·IIP3 product constraint; quad/sw widths move the passive");
    println!("divider; lo_amplitude mostly moves the switch resistance.");
}
