//! Load generator for `remix-serve`: boots an in-process server, fires
//! a mixed job workload (repeats for cache hits, unique decks for real
//! work, a hopeless flood segment for sheds) through the serve client's
//! retry path, and records throughput, tail latency, cache hit rate,
//! and shed counts to `BENCH_serve.json`.
//!
//! Knobs (all typed-env, malformed values warn and fall back):
//!
//! * `REMIX_SERVE_LOAD_JOBS`     — total jobs (default 120)
//! * `REMIX_SERVE_LOAD_CLIENTS` — concurrent client workers (default 8)
//! * `REMIX_SERVE_CHAOS`        — chaos spec injected into the server
//!
//! Under chaos or a 2× overload the pass criterion is unchanged: every
//! job ends in a typed terminal state (ok / partial / error / shed /
//! retries-exhausted) and the server drains cleanly. A panic or a
//! wedge is the only failure.

use remix_exec::{env_u64_or_warn, Job, JobError, Supervisor, SupervisorOptions};
use remix_serve::protocol::{JobKind, JobRequest};
use remix_serve::{call_with_retry, ClientError, RetryPolicy, ServeConfig, Server, Status};
use remix_telemetry::names;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// One client-side observation.
struct Observation {
    latency_ms: f64,
    status: Option<Status>,
    shed_or_exhausted: bool,
}

fn deck(resistance_k: u64) -> String {
    format!("* load\nv1 in 0 1\nr2 in out {resistance_k}k\nr3 out 0 1k\n.end\n")
}

/// The workload: ~40% repeated op jobs (cache fodder), ~30% unique dc
/// sweeps, ~30% unique transients with a real deadline. Deterministic:
/// job `i` always builds the same request.
fn build_job(i: u64) -> JobRequest {
    let (kind, deck) = match i % 10 {
        0..=3 => (JobKind::Op, deck(1 + i % 4)),
        4..=6 => (
            JobKind::DcSweep {
                source: "1".to_string(),
                start: 0.0,
                stop: 1.0,
                points: 11,
            },
            deck(100 + i),
        ),
        _ => (
            JobKind::Tran {
                t_stop: 2e-4,
                dt: 1e-6,
            },
            deck(200 + i),
        ),
    };
    JobRequest {
        id: format!("load-{i}"),
        kind,
        deck,
        deadline_ms: Some(5_000),
        newton_budget: None,
        timestep_budget: None,
        events: false,
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

fn run() -> Result<bool, String> {
    let total_jobs = env_u64_or_warn("REMIX_SERVE_LOAD_JOBS", Some(120))
        .unwrap_or(120)
        .max(1);
    let clients = env_u64_or_warn("REMIX_SERVE_LOAD_CLIENTS", Some(8))
        .unwrap_or(8)
        .clamp(1, 64) as usize;
    let mut config = ServeConfig::from_env();
    config.addr = "127.0.0.1:0".to_string();
    let chaos_active = config.chaos.is_active();
    let server = Server::start(config).map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();

    let policy = RetryPolicy {
        retries: 4,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(100),
    };
    let jobs: Vec<Job<Observation>> = (0..total_jobs)
        .map(|i| {
            let policy = policy.clone();
            Job::new(&format!("load-{i}"), move |_token| {
                let request = build_job(i);
                // audit: allow(AUD004): client-observed latency is the
                // measurand here; server-side budgets still govern the work.
                let started = Instant::now();
                let outcome = call_with_retry(addr, &request, &policy);
                let latency_ms = started.elapsed().as_secs_f64() * 1e3;
                match outcome {
                    Ok(response) => Ok(Observation {
                        latency_ms,
                        status: Some(response.status),
                        shed_or_exhausted: response.status == Status::Shed,
                    }),
                    Err(ClientError::RetriesExhausted(_)) => Ok(Observation {
                        latency_ms,
                        status: None,
                        shed_or_exhausted: true,
                    }),
                    Err(e) => Err(JobError::Fatal(format!("client failure: {e}"))),
                }
            })
        })
        .collect();

    let supervisor = Supervisor::new(SupervisorOptions {
        max_retries: 0,
        ..SupervisorOptions::default()
    });
    // audit: allow(AUD004): wall-clock window for the jobs/sec figure.
    let started = Instant::now();
    let reports = supervisor.run_queue(jobs, clients);
    let wall_s = started.elapsed().as_secs_f64();

    let mut observations = Vec::new();
    for report in reports {
        match report.outcome {
            remix_exec::JobOutcome::Done(obs) => observations.push(obs),
            remix_exec::JobOutcome::Failed(msg) => {
                return Err(format!("{}: {msg}", report.name));
            }
            remix_exec::JobOutcome::Panicked(msg) => {
                return Err(format!("{} panicked: {msg}", report.name));
            }
        }
    }
    let snapshot = server.shutdown();

    let mut latencies: Vec<f64> = observations.iter().map(|o| o.latency_ms).collect();
    latencies.sort_by(f64::total_cmp);
    let p99 = percentile(&latencies, 0.99);
    let jobs_per_sec = if wall_s > 0.0 {
        observations.len() as f64 / wall_s
    } else {
        0.0
    };
    let client_sheds = observations.iter().filter(|o| o.shed_or_exhausted).count();
    let hits = snapshot.counter(names::SERVE_CACHE_HITS).unwrap_or(0);
    let misses = snapshot.counter(names::SERVE_CACHE_MISSES).unwrap_or(0);
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    let server_sheds = snapshot.counter(names::SERVE_SHEDS).unwrap_or(0);
    let chaos_injected = snapshot.counter(names::SERVE_CHAOS_INJECTED).unwrap_or(0);

    remix_telemetry::gauge_set(names::SERVE_LOAD_JOBS_PER_SEC, jobs_per_sec);
    remix_telemetry::gauge_set(names::SERVE_LOAD_P99_MS, p99);
    remix_telemetry::gauge_set(names::SERVE_LOAD_CACHE_HIT_RATE, hit_rate);
    remix_telemetry::counter_add(names::SERVE_LOAD_SHEDS, client_sheds as u64);
    remix_telemetry::counter_add(names::SERVE_SHEDS, server_sheds);
    remix_telemetry::counter_add(names::SERVE_CHAOS_INJECTED, chaos_injected);
    for (name, status) in [
        (names::SERVE_JOBS_OK, Status::Ok),
        (names::SERVE_JOBS_PARTIAL, Status::Partial),
        (names::SERVE_JOBS_FAILED, Status::Error),
    ] {
        let n = observations
            .iter()
            .filter(|o| o.status == Some(status))
            .count() as u64;
        remix_telemetry::counter_add(name, n);
    }

    let hit_pct = hit_rate * 100.0;
    println!(
        "serve_load: {} jobs in {wall_s:.2}s = {jobs_per_sec:.1} jobs/s; \
         p99 {p99:.1} ms; cache hit rate {hit_pct:.0}%; \
         sheds {client_sheds} (server {server_sheds}); \
         chaos injections {chaos_injected}",
        observations.len()
    );
    // Pass: everything terminated in a typed state (enforced above by
    // the Err paths) and, without chaos, most jobs actually succeeded.
    let ok_jobs = observations
        .iter()
        .filter(|o| o.status == Some(Status::Ok))
        .count();
    Ok(chaos_active || ok_jobs * 2 >= observations.len())
}

fn main() -> ExitCode {
    // Explicit record stem: this binary's record is the service's
    // benchmark, so it writes BENCH_serve.json (not BENCH_serve_load).
    let recorder = remix_bench::BenchRecorder::arm_with_bin("serve load", "serve");
    let result = run();
    match result {
        Ok(pass) => {
            recorder.finish(pass);
            if pass {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("serve load failed: {message}");
            recorder.finish(false);
            ExitCode::FAILURE
        }
    }
}
