//! Regenerates **Table I**: simulation results and comparison — the two
//! "This work" columns produced by the simulation flow next to the eight
//! literature rows transcribed from the paper.
//!
//! Also prints the §III/§IV text claims (power split, 1dB-CP, IIP2,
//! flicker corner) with their paper values.
//!
//! ```text
//! cargo run --release -p remix-bench --bin table1
//! ```

use remix_bench::{checked_plan, shared_evaluator};
use remix_core::MixerMode;
use remix_rfkit::specs::{table1_literature, MixerSpecRow};

fn print_row(r: &MixerSpecRow) {
    println!(
        "{:<22} {:>10} {:>9} {:>11} {:>13} {:>10} {:>12} {:>10} {:>7}",
        r.label,
        r.gain_db.to_string(),
        r.nf_db.to_string(),
        r.iip3_dbm.to_string(),
        r.p1db_dbm.to_string(),
        r.power_mw.to_string(),
        r.bandwidth_ghz.to_string(),
        r.technology,
        r.supply_v,
    );
}

fn main() {
    remix_bench::run_bin("table1", || {
        run();
        Ok(())
    })
}

fn run() {
    // Lint the compression record before paying for extraction.
    let _plan = checked_plan("table1");

    let eval = shared_evaluator();

    println!("Table I — simulation results and comparison\n");
    println!(
        "{:<22} {:>10} {:>9} {:>11} {:>13} {:>10} {:>12} {:>10} {:>7}",
        "design",
        "gain(dB)",
        "NF(dB)",
        "IIP3(dBm)",
        "1dB-CP(dBm)",
        "P(mW)",
        "BW(GHz)",
        "tech",
        "VDD"
    );
    println!("{}", "-".repeat(110));
    print_row(&eval.table1_row(MixerMode::Active));
    print_row(&eval.table1_row(MixerMode::Passive));
    println!("{}", "-".repeat(110));
    for row in table1_literature() {
        print_row(&row);
    }

    println!("\npaper's own \"This work\" columns for reference:");
    println!("  active : 29.2 dB | 7.7 dB | -11.9 dBm | -24.5 dBm | 9.36 mW | 1–5.5 GHz");
    println!("  passive: 25.5 dB | 10.2 dB | 6.57 dBm | -14 dBm   | 9.24 mW | 0.5–5.1 GHz");

    println!("\ntext claims (§III–IV):");
    let a = eval.model(MixerMode::Active);
    let p = eval.model(MixerMode::Passive);
    println!(
        "  power: active {:.2} mW / passive {:.2} mW (paper 9.36 / 9.24; TIA only burns in passive)",
        a.power_mw(),
        p.power_mw()
    );
    println!(
        "  IIP2 @0.5% mismatch: active {:.1} dBm, passive {:.1} dBm (paper: > 65 both)",
        a.iip2_dbm(0.005),
        p.iip2_dbm(0.005)
    );
    // Cycle-true PSS power cross-check (sub-band LO keeps it quick).
    for mode in [MixerMode::Active, MixerMode::Passive] {
        match eval.pss_power_mw(mode, 0.48e9) {
            Ok(pw) => println!(
                "  PSS cycle-average power ({}): {:.2} mW (held-LO DC estimate {:.2} mW)",
                mode.label(),
                pw,
                eval.model(mode).power_mw()
            ),
            Err(e) => println!("  PSS power ({}) failed: {e}", mode.label()),
        }
    }
    println!(
        "  passive flicker corner: {} (paper: < 100 kHz)",
        p.flicker_corner_hz()
            .map(|f| format!("{:.1} kHz", f / 1e3))
            .unwrap_or_else(|| "< 1 kHz (below search floor)".into())
    );
}
