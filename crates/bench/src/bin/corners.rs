//! PVT corner study: the Table I metrics re-derived at the five process
//! corners and hot/cold temperature — the robustness view a production
//! review would demand on top of the paper's single typical simulation.
//!
//! ```text
//! cargo run --release -p remix-bench --bin corners
//! ```
//!
//! Set `REMIX_CORNERS_CHECKPOINT=<path>` to persist a bitmap study
//! checkpoint after every corner: a deadline-interrupted run (see
//! `REMIX_BENCH_DEADLINE_MS`) then resumes from it, computing only the
//! corners it has not finished. Corners run on the work-stealing study
//! pool — `REMIX_EXEC_WORKERS=<n>` pins the worker count (`0`/unset
//! means every available core) and `REMIX_EXEC_POOL_CHAOS` arms the
//! deterministic fault schedule.

use remix_core::corners::{sweep_corners_resumable_with, Corner, ProcessCorner};
use remix_core::model::MixerModel;
use remix_core::{MixerConfig, MixerMode};
use std::path::PathBuf;

/// Environment variable naming the study-checkpoint file; unset means
/// no persistence (and no resume).
const CHECKPOINT_ENV: &str = "REMIX_CORNERS_CHECKPOINT";

fn main() {
    remix_bench::run_bin("corner sweep", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let base = MixerConfig::default();
    // Keep the table tractable: off-TT corners only at 27 °C.
    let mut corners = Vec::new();
    for process in ProcessCorner::all() {
        for temp_c in [-40.0, 27.0, 85.0] {
            if process != ProcessCorner::Tt && temp_c != 27.0 {
                continue;
            }
            corners.push(Corner {
                process,
                temp_c,
                vdd: None,
            });
        }
    }

    println!("PVT corner study (RF 2.45 GHz, IF 5 MHz)");
    let pool = remix_bench::study_pool();
    println!();
    println!(
        "{:>6} {:>6} {:>9} {:>9} {:>8} {:>8} {:>10} {:>10} {:>8} {:>8}",
        "corner", "T(°C)", "CGa(dB)", "CGp(dB)", "NFa", "NFp", "IIP3a", "IIP3p", "Pa(mW)", "Pp(mW)"
    );
    let ckpt = std::env::var_os(CHECKPOINT_ENV).map(PathBuf::from);
    let partial = sweep_corners_resumable_with(&base, &corners, ckpt.as_deref(), &pool);
    let sweep = &partial.value;
    for (corner, outcome) in &sweep.results {
        match outcome.params() {
            Some(params) => {
                let cfg = corner.apply(&base);
                let a = MixerModel::new(cfg.clone(), MixerMode::Active, params.clone());
                let p = MixerModel::new(cfg, MixerMode::Passive, params.clone());
                println!(
                    "{:>6} {:>6.0} {:>9.1} {:>9.1} {:>8.1} {:>8.1} {:>10.1} {:>10.1} {:>8.2} {:>8.2}",
                    corner.process.label(),
                    corner.temp_c,
                    a.conv_gain_db(2.45e9, 5e6),
                    p.conv_gain_db(2.45e9, 5e6),
                    a.nf_db(5e6),
                    p.nf_db(5e6),
                    a.iip3_dbm(),
                    p.iip3_dbm(),
                    a.power_mw(),
                    p.power_mw(),
                );
            }
            None => println!(
                "{:>6} {:>6.0}  extraction failed (full trace below)",
                corner.process.label(),
                corner.temp_c
            ),
        }
    }
    println!(
        "\n{} ({} computed, {} resumed from checkpoint)",
        sweep.summary_line(),
        sweep.computed,
        sweep.resumed
    );
    for (corner, trace) in sweep.failures() {
        println!(
            "\n{} @ {:.0} °C failed:\n{}",
            corner.process.label(),
            corner.temp_c,
            trace.render()
        );
    }
    if let Some(why) = &partial.interruption {
        return Err(format!(
            "interrupted ({}) after {} of {} corners; rerun with the same {} to finish the rest\n{}",
            why.interruption,
            sweep.results.len(),
            corners.len(),
            CHECKPOINT_ENV,
            why.trace.render()
        )
        .into());
    }
    println!("\nexpected shape: FF fastest/highest gain, SS slowest; the");
    println!("active>passive gain and passive>active linearity orderings");
    println!("hold at every corner (asserted in remix-core::corners tests).");
    Ok(())
}
