//! Regenerates **Fig. 9**: simulated DSB noise figure and conversion gain
//! vs IF frequency (RF at 2.45 GHz), both modes.
//!
//! ```text
//! cargo run --release -p remix-bench --bin fig9_nf_vs_if
//! ```

use remix_bench::{ascii_plot, checked_plan, try_shared_evaluator};
use remix_core::MixerMode;

fn main() {
    remix_bench::run_bin("fig9 noise sweep", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    // Lint the noise sweep (band must bracket the flicker corner and the
    // 5 MHz IF) before extraction; the grid derives from the linted plan.
    let plan = checked_plan("fig9");
    let (if_min, if_max) = plan.noise_band.ok_or("fig9 plan declares a noise band")?;

    let eval = try_shared_evaluator()?;
    let f_rf = 2.45e9;
    // Log sweep 1 kHz .. 100 MHz like the paper's x axis, 5 pts/decade.
    let points = (5.0 * (if_max / if_min).log10()).round() as usize;
    let ifs: Vec<f64> = (0..=points)
        .map(|k| if_min * 10f64.powf(k as f64 / 5.0))
        .collect();

    let nf_a = eval.nf_vs_if(MixerMode::Active, &ifs);
    let nf_p = eval.nf_vs_if(MixerMode::Passive, &ifs);
    let cg_a = eval.gain_vs_if(MixerMode::Active, &ifs, f_rf);
    let cg_p = eval.gain_vs_if(MixerMode::Passive, &ifs, f_rf);

    println!("Fig. 9 — DSB NF and conversion gain vs IF (RF = 2.45 GHz)\n");
    println!(
        "{:>11} {:>9} {:>9} {:>9} {:>9}",
        "IF (Hz)", "NF act", "NF pas", "CG act", "CG pas"
    );
    for i in 0..ifs.len() {
        println!(
            "{:>11.3e} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            ifs[i], nf_a[i].1, nf_p[i].1, cg_a[i].1, cg_p[i].1
        );
    }

    println!();
    print!(
        "{}",
        ascii_plot(
            &[("NF active", &nf_a), ("NF passive", &nf_p)],
            "NF (dB), log-f sweep",
            1e6,
            "MHz"
        )
    );

    let spot = |series: &[(f64, f64)]| {
        remix_numerics::interp::lerp_logx(
            &series.iter().map(|p| p.0).collect::<Vec<_>>(),
            &series.iter().map(|p| p.1).collect::<Vec<_>>(),
            5e6,
        )
    };
    println!(
        "\n@5 MHz: NF active {:.1} dB (paper 7.6), passive {:.1} dB (paper 10.2)",
        spot(&nf_a),
        spot(&nf_p)
    );
    println!(
        "flicker corners: active {:?}, passive {:?} (paper: passive < 100 kHz)",
        eval.model(MixerMode::Active)
            .flicker_corner_hz()
            .map(|f| format!("{:.0} kHz", f / 1e3)),
        eval.model(MixerMode::Passive)
            .flicker_corner_hz()
            .map(|f| format!("{:.0} kHz", f / 1e3)),
    );
    Ok(())
}
