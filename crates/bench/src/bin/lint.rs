//! ERC + simulation-plan lint report — the clippy of this repository.
//!
//! With no arguments, runs the full `remix-lint` rule set over both mode
//! netlists of the paper's mixer (plus the live mode-switch netlist) and
//! the shipped measurement plans of every figure/table binary.
//! Positional arguments are SPICE decks (`.cir`) to lint instead; with
//! `--fix`, machine-applicable fixes are applied to fixpoint and the
//! repaired deck is written back in place.
//!
//! ```text
//! cargo run --release -p remix-bench --bin lint            # text
//! cargo run --release -p remix-bench --bin lint -- --json  # machine-readable
//! cargo run --release -p remix-bench --bin lint -- --fix broken.cir
//! ```
//!
//! Exit status is non-zero if any netlist or plan has deny-level
//! findings left (after fixing, when `--fix` is given), so this doubles
//! as a CI gate. Unfixable findings are listed explicitly.

use remix_core::mixer::{LoDrive, ReconfigurableMixer, RfDrive};
use remix_core::plans::shipped_plans;
use remix_core::{MixerConfig, MixerMode};
use remix_lint::{fix_circuit, lint, lint_deck, lint_plan, Fix, LintConfig, LintReport, RuleId};
use std::process::ExitCode;

/// One linted subject: a built-in netlist, a shipped plan, or a deck.
struct Subject {
    name: String,
    report: LintReport,
    applied: Vec<Fix>,
}

impl Subject {
    fn plain(name: impl Into<String>, report: LintReport) -> Self {
        Subject {
            name: name.into(),
            report,
            applied: Vec::new(),
        }
    }
}

fn builtin_subjects() -> Vec<Subject> {
    let mixer = ReconfigurableMixer::new(MixerConfig::default());
    let mut out = Vec::new();
    for mode in [MixerMode::Active, MixerMode::Passive] {
        out.push(Subject::plain(
            format!("{} mode", mode.label()),
            mixer.lint_report(mode),
        ));
    }
    let (switch_ckt, _) = mixer.build_mode_switch(
        MixerMode::Active,
        MixerMode::Passive,
        100e-9,
        1e-9,
        &RfDrive::Bias,
        &LoDrive::held(2.4e9),
    );
    out.push(Subject::plain(
        "mode switch (active→passive)",
        lint(&switch_ckt, &LintConfig::default()),
    ));
    for (label, plan) in shipped_plans() {
        out.push(Subject::plain(
            format!("{label} plan"),
            lint_plan(&plan, &LintConfig::default()),
        ));
    }
    out
}

/// Lints one SPICE deck from disk — deck-structure rules
/// (ERC014–ERC016) included; with `fix`, applies every
/// machine-applicable fix to fixpoint and rewrites the deck in place.
/// Deck-structure findings have no machine fix and are merged into the
/// post-fix report, surfacing as unfixable (the rewrite emits the
/// flattened circuit, so a rewritten deck no longer contains them).
fn deck_subject(path: &str, fix: bool, config: &LintConfig) -> Result<Subject, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read deck: {e}"))?;
    // Operator-supplied decks may split model cards into sibling files:
    // resolve `.include` sandboxed to the deck's own directory (depth-
    // capped, no `..`/absolute escapes) before parsing. Decks arriving
    // over the serve protocol never get this — the string parser
    // refuses `.include` outright there.
    let root = std::path::Path::new(path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or_else(|| std::path::Path::new("."));
    let text = remix_circuit::resolve_includes(&text, root)
        .map_err(|e| format!("{path}: include error: {e}"))?;
    let parsed =
        remix_circuit::parse_spice(&text).map_err(|e| format!("{path}: parse error: {e}"))?;
    if fix {
        const DECK_RULES: [RuleId; 3] = [
            RuleId::ParamHygiene,
            RuleId::SubcktInstance,
            RuleId::ParamCycle,
        ];
        let deck_diags: Vec<_> = lint_deck(&parsed, config)
            .diagnostics
            .into_iter()
            .filter(|d| DECK_RULES.contains(&d.rule))
            .collect();
        let mut circuit = parsed.circuit;
        let outcome = fix_circuit(&mut circuit, config);
        if !outcome.applied.is_empty() {
            let fixed = remix_circuit::to_spice(&circuit, &format!("{path} (remix-lint --fix)"));
            std::fs::write(path, fixed).map_err(|e| format!("{path}: cannot write deck: {e}"))?;
        }
        let mut report = outcome.report;
        report.diagnostics.extend(deck_diags);
        report
            .diagnostics
            .sort_by(|a, b| (a.rule.code(), a.line).cmp(&(b.rule.code(), b.line)));
        Ok(Subject {
            name: path.to_string(),
            report,
            applied: outcome.applied,
        })
    } else {
        Ok(Subject::plain(path, lint_deck(&parsed, config)))
    }
}

fn main() -> ExitCode {
    // The lint CLI keeps its own exit semantics (deny-driven, not
    // supervisor-driven), so it wraps its body in a recorder directly
    // instead of going through `run_bin`.
    let recorder = remix_bench::BenchRecorder::arm("lint");
    let clean = run();
    recorder.finish(clean);
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Full CLI body; `true` means deny-clean (exit 0).
fn run() -> bool {
    let mut json = false;
    let mut fix = false;
    let mut decks: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--fix" => fix = true,
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other} (expected --json, --fix, or deck paths)");
                return false;
            }
            deck => decks.push(deck.to_string()),
        }
    }

    let config = LintConfig::default();
    let subjects = if decks.is_empty() {
        builtin_subjects()
    } else {
        let mut out = Vec::new();
        for path in &decks {
            match deck_subject(path, fix, &config) {
                Ok(s) => out.push(s),
                Err(e) => {
                    eprintln!("{e}");
                    return false;
                }
            }
        }
        out
    };

    if json {
        // `{:?}` on these names produces a JSON-compatible quoted key:
        // escape_debug only escapes quotes/backslashes/controls and JSON
        // accepts raw Unicode.
        let items: Vec<String> = subjects
            .iter()
            .map(|s| format!("{:?}:{}", s.name, s.report.render_json()))
            .collect();
        println!("{{{}}}", items.join(","));
    } else {
        println!("remix-lint rule catalog:");
        for rule in RuleId::ALL {
            println!(
                "  {:<24} {:<5} {}",
                rule.code(),
                rule.default_severity().to_string(),
                rule.summary()
            );
        }
        println!();
    }

    let mut denies = 0usize;
    let mut unfixable = 0usize;
    for subject in &subjects {
        denies += subject.report.deny_count();
        let stuck = subject
            .report
            .diagnostics
            .iter()
            .filter(|d| d.fix.is_none())
            .count();
        if fix {
            unfixable += stuck;
        }
        if json {
            continue;
        }
        println!("==== {} ====", subject.name);
        if !subject.applied.is_empty() {
            println!("applied {} fix(es):", subject.applied.len());
            for f in &subject.applied {
                println!("  {}", f.describe());
            }
        }
        print!("{}", subject.report.render_text());
        if fix {
            for d in subject
                .report
                .diagnostics
                .iter()
                .filter(|d| d.fix.is_none())
            {
                println!("unfixable: [{}] {}", d.rule.code(), d.message);
            }
        }
        println!();
    }

    if denies == 0 {
        if !json {
            println!("all netlists and plans are deny-clean");
        }
        true
    } else {
        if !json {
            println!(
                "{denies} deny-level finding(s){}",
                if fix {
                    format!(", {unfixable} unfixable")
                } else {
                    String::new()
                }
            );
        }
        false
    }
}
