//! ERC lint report for the paper's mixer netlists — the clippy of this
//! repository. Runs the full `remix-lint` rule set over both mode
//! netlists (and the live mode-switch netlist) and prints every finding.
//!
//! ```text
//! cargo run --release -p remix-bench --bin lint           # text
//! cargo run --release -p remix-bench --bin lint -- --json # machine-readable
//! ```
//!
//! Exit status is non-zero if any netlist has deny-level findings, so
//! this doubles as a CI gate.

use remix_core::mixer::{LoDrive, ReconfigurableMixer, RfDrive};
use remix_core::{MixerConfig, MixerMode};
use remix_lint::{lint, LintConfig, LintReport, RuleId};
use std::process::ExitCode;

fn reports() -> Vec<(String, LintReport)> {
    let mixer = ReconfigurableMixer::new(MixerConfig::default());
    let mut out = Vec::new();
    for mode in [MixerMode::Active, MixerMode::Passive] {
        out.push((format!("{} mode", mode.label()), mixer.lint_report(mode)));
    }
    let (switch_ckt, _) = mixer.build_mode_switch(
        MixerMode::Active,
        MixerMode::Passive,
        100e-9,
        1e-9,
        &RfDrive::Bias,
        &LoDrive::held(2.4e9),
    );
    out.push((
        "mode switch (active→passive)".to_string(),
        lint(&switch_ckt, &LintConfig::default()),
    ));
    out
}

fn main() -> ExitCode {
    let json = std::env::args().any(|a| a == "--json");
    let reports = reports();
    let mut denies = 0usize;

    if json {
        // `{:?}` on these names produces a JSON-compatible quoted key:
        // escape_debug only escapes quotes/backslashes/controls and JSON
        // accepts raw Unicode.
        let items: Vec<String> = reports
            .iter()
            .map(|(name, r)| format!("{:?}:{}", name, r.render_json()))
            .collect();
        println!("{{{}}}", items.join(","));
    } else {
        println!("remix-lint rule catalog:");
        for rule in RuleId::ALL {
            println!(
                "  {:<24} {:<5} {}",
                rule.code(),
                rule.default_severity().to_string(),
                rule.summary()
            );
        }
        println!();
    }

    for (name, report) in &reports {
        denies += report.deny_count();
        if !json {
            println!("==== {name} ====");
            print!("{}", report.render_text());
            println!();
        }
    }

    if denies == 0 {
        if !json {
            println!("all netlists are deny-clean");
        }
        ExitCode::SUCCESS
    } else {
        if !json {
            println!("{denies} deny-level finding(s)");
        }
        ExitCode::FAILURE
    }
}
