//! Gain reconfigurability study — the paper's two tuning knobs:
//!
//! * active mode: "The Gm of MOS Mn1 and Mn2 can be changed by changing
//!   the value of bias voltage, thus varying the gain of mixer";
//! * passive mode: "The gain of the TIA can be tuned by changing the
//!   value of RF".
//!
//! ```text
//! cargo run --release -p remix-bench --bin gain_tuning
//! ```

use remix_bench::try_shared_evaluator;
use remix_core::MixerMode;

fn main() {
    remix_bench::run_bin("gain-tuning study", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let eval = try_shared_evaluator()?;

    println!("active-mode gain vs Gm gate bias (2.45 GHz → 5 MHz)\n");
    println!("{:>10} {:>10}", "Vbias (V)", "CG (dB)");
    let biases: Vec<f64> = (0..8).map(|k| 0.45 + 0.05 * k as f64).collect();
    for (vb, g) in eval.active_gain_vs_bias(&biases)? {
        println!("{:>10.2} {:>10.2}", vb, g);
    }

    println!("\npassive-mode gain vs TIA feedback RF (CF rescaled to keep the IF corner)\n");
    println!("{:>10} {:>10}", "RF (Ω)", "CG (dB)");
    let base_rf = eval.model(MixerMode::Passive).config().tia_rf;
    let rfs: Vec<f64> = [0.25, 0.5, 1.0, 2.0, 4.0]
        .iter()
        .map(|k| k * base_rf)
        .collect();
    for (rf, g) in eval.passive_gain_vs_rf_feedback(&rfs)? {
        println!("{:>10.0} {:>10.2}", rf, g);
    }
    println!("\neach 2× in RF buys ≈6 dB — the paper's \"another degree of");
    println!("freedom to configure the gain of the downconverter\".");
    Ok(())
}
