//! N-path synthesized bandpass: `|Z_in(f_rf)|` of the mixer-first
//! receiver versus swept LO frequency (`remix-topo` family a). The
//! curve must peak where the LO lands on the probe tone — the
//! frequency-translated baseband impedance — and collapse toward
//! `R_s + R_sw` away from it.
//!
//! ```text
//! cargo run --release -p remix-bench --bin npath_zin
//! ```

use remix_topo::{input_impedance_vs_lo, MixerFirstParams, ZinConfig, ZinOutcome};

fn main() {
    remix_bench::run_bin("npath zin", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let params = MixerFirstParams::default();
    // Probe at bin 10 (10 MHz), LO swept 6–14 MHz on a 1 MHz grid.
    let cfg = ZinConfig::centered(1e6, 10, 4);
    let pool = remix_bench::study_pool();

    println!(
        "N-path mixer-first receiver: N = {}, switch {:.0} µm, R_bb = {:.0} Ω, R_s = {:.0} Ω",
        params.n_phases,
        params.switch_w * 1e6,
        params.r_bb,
        params.rs
    );
    let rx = params.generate()?;
    println!("{}\n", rx.circuit.stats());

    let sweep = input_impedance_vs_lo(&params, &cfg, &pool)?;
    println!("probe f_rf = {:.3e} Hz", sweep.f_rf);
    for (f_lo, outcome) in &sweep.points {
        match outcome {
            ZinOutcome::Ok(z) => println!(
                "  f_lo {:>6.2} MHz  |Zin| {:>8.1} Ω  (re {:>8.1}, im {:>8.1})",
                f_lo / 1e6,
                z.abs(),
                z.re,
                z.im
            ),
            ZinOutcome::Failed(msg) => println!("  f_lo {:>6.2} MHz  failed: {msg}", f_lo / 1e6),
        }
    }

    let mags = sweep.magnitudes();
    println!(
        "\n{}",
        remix_bench::ascii_plot(&[("|Zin| ohm", &mags)], "|Zin| (ohm)", 1e6, "MHz")
    );
    println!("{}", sweep.summary_line());

    // The whole point of the family: the bandpass centre is the LO.
    let (f_peak, z_peak) = sweep.peak().ok_or("no LO point solved")?;
    if (f_peak - sweep.f_rf).abs() > 0.5 * cfg.f_grid {
        return Err(format!(
            "bandpass peak at {f_peak:.3e} Hz, expected at the probe {:.3e} Hz",
            sweep.f_rf
        )
        .into());
    }
    let edge = mags
        .iter()
        .filter(|(f, _)| (f - sweep.f_rf).abs() > 2.5 * cfg.f_grid)
        .map(|&(_, m)| m)
        .fold(f64::MIN, f64::max);
    if edge > 0.0 && z_peak < 1.5 * edge {
        return Err(
            format!("no bandpass contrast: peak {z_peak:.1} Ω vs band-edge {edge:.1} Ω").into(),
        );
    }
    println!("bandpass confirmed: peak {z_peak:.1} Ω at f_lo = f_rf, worst edge {edge:.1} Ω");
    Ok(())
}
