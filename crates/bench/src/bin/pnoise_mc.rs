//! Monte-Carlo transient noise on the full mixer netlist — the PNOISE
//! substitute (DESIGN.md): sampled thermal-noise currents are attached to
//! every resistor and MOSFET and propagated through the switching circuit
//! by the ordinary transient engine; the output PSD then *includes* noise
//! folding, exactly like a spectrum-analyzer measurement.
//!
//! Deliberately slow (hundreds of thousands of Newton solves). Run with:
//!
//! ```text
//! cargo run --release -p remix-bench --bin pnoise_mc
//! ```
//!
//! The two modes are independent transient runs, so they dispatch to
//! the work-stealing study pool: `REMIX_EXEC_WORKERS=<n>` pins the
//! worker count (`0`/unset means every available core) and
//! `REMIX_EXEC_POOL_CHAOS` arms the deterministic fault schedule.
//! Reports print in mode order regardless of which finishes first.

use remix_analysis::{noise_transient, NoiseTranConfig, TranOptions};
use remix_bench::shared_evaluator;
use remix_core::mixer::{LoDrive, ReconfigurableMixer, RfDrive};
use remix_core::MixerMode;
use remix_dsp::psd::welch;
use remix_dsp::window::Window;

fn main() {
    remix_bench::run_bin("pnoise monte-carlo", || {
        run();
        Ok(())
    })
}

fn run() {
    let eval = shared_evaluator();
    let f_lo = 0.48e9; // sub-band LO keeps the step count tractable
    println!("Monte-Carlo transient noise vs analytic model (LO 0.48 GHz)");
    let pool = remix_bench::study_pool();
    println!();
    let modes = [MixerMode::Passive, MixerMode::Active];
    let indices: Vec<usize> = (0..modes.len()).collect();
    let report = |mode: MixerMode| -> String {
        let m = eval.model(mode);
        let mixer = ReconfigurableMixer::new(m.config().clone());
        let (ckt, nodes) = mixer.build(mode, &RfDrive::Bias, &LoDrive::sine(f_lo));
        let h = 0.2e-9;
        let n_total = 1 << 15; // ~6.6 µs
        let opts = TranOptions::new(n_total as f64 * h, h);
        let cfg = NoiseTranConfig {
            amplitude_boost: 10.0,
            ..NoiseTranConfig::default()
        };
        match noise_transient(&ckt, &opts, &cfg) {
            Ok(res) => {
                let (p, q) = nodes.if_out(mode);
                let wave = res.differential_waveform(p, q);
                let fs = 1.0 / h;
                let psd = welch(&wave[1..], fs, 4096, Window::Hann);
                let out_psd = psd.at(5e6) / (cfg.amplitude_boost * cfg.amplitude_boost);
                // Refer through the model's conversion gain and compare
                // with the analytic NF at the same sub-band LO.
                let cg = m.conv_gain(f_lo + 5e6, 5e6);
                // NF = total output noise over the output noise due to the
                // source EMF alone (PSD 4kT0·2rs at the EMF; cg is the
                // EMF-referred conversion gain).
                let four_kt0_rs = 4.0 * 1.380649e-23 * 290.0 * 100.0;
                let nf_mc = 10.0 * (out_psd / (cg * cg) / four_kt0_rs).log10();
                format!(
                    "{:<8} {n_total} steps: MC NF ≈ {:.1} dB | analytic model {:.1} dB",
                    mode.label(),
                    nf_mc,
                    m.nf_db(5e6)
                )
            }
            Err(e) => format!("{:<8} failed: {e}", mode.label()),
        }
    };
    let run = remix_exec::run_tasks(
        &indices,
        &pool,
        |ctx| remix_exec::TaskResult::Done(report(modes[ctx.index])),
        |_, _| {},
    );
    // Outcomes come back sorted by mode index, so the report order is
    // stable no matter which transient finishes first.
    for (i, outcome) in &run.outcomes {
        match outcome {
            remix_exec::TaskOutcome::Done(line) => println!("{line}"),
            remix_exec::TaskOutcome::Failed(why) => {
                println!("{:<8} died: {why}", modes[*i].label());
            }
            remix_exec::TaskOutcome::TimedOut { attempts, .. } => {
                println!(
                    "{:<8} timed out after {attempts} attempt(s)",
                    modes[*i].label()
                );
            }
        }
    }
    if let Some(why) = &run.interrupted {
        println!("study interrupted: {why}");
    }
    println!("\nreading: the MC estimate sits several dB above the analytic");
    println!("budget, for understood reasons — (a) the 0.48 GHz LO (chosen so");
    println!("the step count stays tractable) is the receiver's *band edge*,");
    println!("where conversion gain is down several dB and NF correspondingly");
    println!("up, while the analytic budget is referenced to band centre;");
    println!("(b) the MC includes full-bandwidth folding and time-varying");
    println!("switch conductances that the budget approximates; (c) Welch");
    println!("variance at this record length is ±1–2 dB. Within that, the");
    println!("time-varying circuit confirms the budget's magnitude class.");
}
