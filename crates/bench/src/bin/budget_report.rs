//! Link-budget tables of the reconfigurable mixer in both modes — the
//! RF-systems view of where gain, noise and linearity are spent.
//!
//! ```text
//! cargo run --release -p remix-bench --bin budget_report
//! ```

use remix_bench::shared_evaluator;
use remix_core::MixerMode;
use remix_rfkit::budget::budget_table;

fn main() {
    remix_bench::run_bin("budget report", || {
        run();
        Ok(())
    })
}

fn run() {
    let eval = shared_evaluator();
    for mode in [MixerMode::Active, MixerMode::Passive] {
        let m = eval.model(mode);
        println!(
            "==== {} mode budget (RF 2.45 GHz → IF 5 MHz, rs 100 Ω diff) ====\n",
            mode.label()
        );
        let cascade = m.as_cascade();
        print!(
            "{}",
            budget_table(&cascade, 2.45e9, 5e6, 2.0 * m.config().rs)
        );
        println!(
            "\ncascade total {:.1} dB vs model conv gain {:.1} dB\n",
            cascade.conv_gain_db(2.45e9, 5e6),
            m.conv_gain_db(2.45e9, 5e6)
        );
    }
}
