//! Dedicated-vs-reconfigurable comparison — the paper's Fig. 1 trade-off
//! table and its intro's "two radios are power hungry" argument, made
//! executable: a stand-alone Gilbert mixer and a stand-alone passive
//! mixer (same device physics, de-reconfigured netlists) against the one
//! reconfigurable circuit.
//!
//! ```text
//! cargo run --release -p remix-bench --bin baselines
//! ```

use remix_bench::try_shared_evaluator;
use remix_core::baseline::{BaselineKind, BaselineMixer};
use remix_core::{MixerConfig, MixerMode};

fn main() {
    remix_bench::run_bin("baselines", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let eval = try_shared_evaluator()?;
    let base = MixerConfig::default();
    println!("building dedicated baselines (fresh extractions)…\n");
    let ded_a = BaselineMixer::new(BaselineKind::DedicatedActive, &base)?;
    let ded_p = BaselineMixer::new(BaselineKind::DedicatedPassive, &base)?;

    println!(
        "{:<26} {:>9} {:>8} {:>10} {:>8}",
        "design", "CG (dB)", "NF (dB)", "IIP3(dBm)", "P (mW)"
    );
    println!("{}", "-".repeat(66));
    let rows: Vec<(&str, f64, f64, f64, f64)> = vec![
        (
            "dedicated active",
            ded_a.model.conv_gain_db(2.45e9, 5e6),
            ded_a.model.nf_db(5e6),
            ded_a.model.iip3_dbm(),
            ded_a.model.power_mw(),
        ),
        (
            "reconfig (active mode)",
            eval.model(MixerMode::Active).conv_gain_db(2.45e9, 5e6),
            eval.model(MixerMode::Active).nf_db(5e6),
            eval.model(MixerMode::Active).iip3_dbm(),
            eval.model(MixerMode::Active).power_mw(),
        ),
        (
            "dedicated passive",
            ded_p.model.conv_gain_db(2.45e9, 5e6),
            ded_p.model.nf_db(5e6),
            ded_p.model.iip3_dbm(),
            ded_p.model.power_mw(),
        ),
        (
            "reconfig (passive mode)",
            eval.model(MixerMode::Passive).conv_gain_db(2.45e9, 5e6),
            eval.model(MixerMode::Passive).nf_db(5e6),
            eval.model(MixerMode::Passive).iip3_dbm(),
            eval.model(MixerMode::Passive).power_mw(),
        ),
    ];
    for (name, cg, nf, ip3, p) in rows {
        println!("{name:<26} {cg:>9.1} {nf:>8.1} {ip3:>10.1} {p:>8.2}");
    }

    println!(
        "\ntwo-radio solution power (dedicated pair, 10% idle standby): {:.2} mW",
        ded_a.two_radio_power_mw(&ded_p, 0.1)
    );
    println!(
        "reconfigurable single circuit: {:.2} / {:.2} mW per mode",
        eval.model(MixerMode::Active).power_mw(),
        eval.model(MixerMode::Passive).power_mw()
    );
    println!("\nthe reconfigurable circuit gives up ≲2 dB to each dedicated");
    println!("design in its own specialty while replacing both — the paper's");
    println!("cost/power/area argument in numbers.");
    Ok(())
}
