//! Ablation study of the design choices DESIGN.md calls out: each row
//! removes one mechanism from the default design and re-derives the
//! headline metrics, quantifying what that mechanism buys.
//!
//! ```text
//! cargo run --release -p remix-bench --bin ablation
//! ```

use remix_analysis::{dc_operating_point, OpOptions};
use remix_core::mixer::{LoDrive, ReconfigurableMixer, RfDrive};
use remix_core::model::{ExtractedParams, MixerModel};
use remix_core::{MixerConfig, MixerMode};

/// Active-mode IF common mode with the LO held on — the headroom
/// indicator (a collapsing CM means the TG load is being driven into its
/// strong-conduction region and the *realized* load resistance falls).
fn qout_cm(cfg: &MixerConfig) -> f64 {
    let mixer = ReconfigurableMixer::new(cfg.clone());
    let (ckt, nodes) = mixer.build(MixerMode::Active, &RfDrive::Bias, &LoDrive::held(2.4e9));
    match dc_operating_point(&ckt, &OpOptions::default()) {
        Ok(op) => op.voltage(nodes.qout_p),
        Err(_) => f64::NAN,
    }
}

fn row(label: &str, cfg: &MixerConfig) {
    match ExtractedParams::extract(cfg) {
        Ok(params) => {
            let a = MixerModel::new(cfg.clone(), MixerMode::Active, params.clone());
            let p = MixerModel::new(cfg.clone(), MixerMode::Passive, params);
            println!(
                "{:<28} {:>8.1} {:>8.1} {:>7.1} {:>7.1} {:>9.1} {:>9.1} {:>8.2}",
                label,
                a.conv_gain_db(2.45e9, 5e6),
                p.conv_gain_db(2.45e9, 5e6),
                a.nf_db(5e6),
                p.nf_db(5e6),
                a.iip3_dbm(),
                p.iip3_dbm(),
                qout_cm(cfg),
            );
        }
        Err(e) => println!("{label:<28} extraction failed: {e}"),
    }
}

fn main() {
    remix_bench::run_bin("ablation study", || {
        run();
        Ok(())
    })
}

fn run() {
    let base = MixerConfig::default();
    println!("ablation of design mechanisms (CG/NF/IIP3 at 2.45 GHz, 5 MHz IF)\n");
    println!(
        "{:<28} {:>8} {:>8} {:>7} {:>7} {:>9} {:>9} {:>8}",
        "variant", "CGa", "CGp", "NFa", "NFp", "IIP3a", "IIP3p", "vCM(V)"
    );
    row("default", &base);
    row(
        "no current bleeding",
        &MixerConfig {
            bleed_frac: 1e-6,
            ..base.clone()
        },
    );
    row(
        "no Rdeg (wide Mp1/Mp2)",
        &MixerConfig {
            sw12_w: 300e-6,
            ..base.clone()
        },
    );
    row(
        "heavy Rdeg (narrow Mp1/Mp2)",
        &MixerConfig {
            sw12_w: 4e-6,
            ..base.clone()
        },
    );
    row(
        "small TG load (½R)",
        &MixerConfig {
            tg_load_r: base.tg_load_r / 2.0,
            cc: base.cc * 2.0,
            ..base.clone()
        },
    );
    row(
        "weak LO (0.3 V swing)",
        &MixerConfig {
            lo_amplitude: 0.3,
            lo_common: 0.75,
            ..base.clone()
        },
    );
    row(
        "half TIA bias",
        &MixerConfig {
            ota_i1: base.ota_i1 / 2.0,
            ota_i2: base.ota_i2 / 2.0,
            ..base.clone()
        },
    );
    println!("\nreadings:");
    println!("* bleeding's benefit is HEADROOM: without it the held-LO IF");
    println!("  common mode (vCM) collapses and the realized TG resistance —");
    println!("  and with it the transistor-level gain — falls, even though");
    println!("  the behavioral CG column (which trusts the nominal load R)");
    println!("  barely moves. Compare with spot_transient.");
    println!("* Rdeg trades passive gain (CGp) for switch linearity; the");
    println!("  IIP3p column is flat because the model's passive intercept");
    println!("  is TCA-limited (EXPERIMENTS.md, deviation 1).");
    println!("* a weak LO costs the passive path dearly (higher switch R).");
}
