//! Annotated operating point of the full mixer netlist in both modes:
//! per-device regions/currents/gm and node voltages — the table a
//! designer pins next to the schematic.
//!
//! ```text
//! cargo run --release -p remix-bench --bin op_report
//! ```

use remix_analysis::{bias_warnings, dc_operating_point, device_table, node_table, OpOptions};
use remix_core::mixer::{LoDrive, ReconfigurableMixer, RfDrive};
use remix_core::{MixerConfig, MixerMode};

fn main() {
    remix_bench::run_bin("op report", || {
        run();
        Ok(())
    })
}

fn run() {
    let mixer = ReconfigurableMixer::new(MixerConfig::default());
    for mode in [MixerMode::Active, MixerMode::Passive] {
        let (ckt, _) = mixer.build(mode, &RfDrive::Bias, &LoDrive::held(2.4e9));
        match dc_operating_point(&ckt, &OpOptions::default()) {
            Ok(op) => {
                println!("==== {} mode (LO held at its extreme) ====\n", mode.label());
                println!("{}\n", ckt.stats());
                println!("{}", device_table(&ckt, &op));
                println!("{}", node_table(&ckt, &op));
                match op.rcond() {
                    Some(r) => println!("condition estimate: rcond ≈ {r:.3e}"),
                    None => println!("condition estimate: unavailable"),
                }
                if let Some(w) = op.condition_warning() {
                    println!("  ! {w}");
                }
                println!();
                let warns = bias_warnings(&ckt, &op);
                if warns.is_empty() {
                    println!("bias check: clean\n");
                } else {
                    println!("bias warnings:");
                    for w in warns {
                        println!("  ! {w}");
                    }
                    println!();
                }
            }
            Err(e) => println!("{} mode: operating point failed: {e}", mode.label()),
        }
    }
}
