//! Live reconfiguration: one netlist, all seven control voltages flipped
//! mid-transient — the paper's central "reconfiguration in single
//! circuitry between active and passive modes" claim, exercised at
//! transistor level.
//!
//! ```text
//! cargo run --release -p remix-bench --bin mode_switch
//! ```

use remix_bench::shared_evaluator;
use remix_core::MixerMode;

fn main() {
    remix_bench::run_bin("mode-switch transient", || {
        run();
        Ok(())
    })
}

fn run() {
    let eval = shared_evaluator();
    println!("live mode-switch transient (LO 1.2 GHz, IF 5 MHz, ~40 devices)\n");
    for (first, second) in [
        (MixerMode::Passive, MixerMode::Active),
        (MixerMode::Active, MixerMode::Passive),
    ] {
        match eval.mode_switch_transient(first, second, 1.2e9, 5e6) {
            Ok((g1, g2)) => {
                println!(
                    "{} → {}: CG {:.1} dB in the {} half, {:.1} dB after switching to {}",
                    first.label(),
                    second.label(),
                    g1,
                    first.label(),
                    g2,
                    second.label()
                );
            }
            Err(e) => println!(
                "{} → {}: transient failed: {e}",
                first.label(),
                second.label()
            ),
        }
    }
    println!("\nboth orders settle within one IF period of the control edge —");
    println!("the reconfiguration is glitch-bounded by the IF filter, not by");
    println!("any bias re-settling, because the LO path and supplies are shared.");
}
