//! Regenerates **Fig. 8**: simulated conversion gain of the
//! reconfigurable mixer vs RF frequency (IF = 5 MHz), both modes.
//!
//! ```text
//! cargo run --release -p remix-bench --bin fig8_cg_vs_rf
//! ```

use remix_bench::{ascii_plot, checked_plan, try_shared_evaluator};
use remix_core::MixerMode;
use remix_rfkit::convgain::band_edges_3db;

fn main() {
    remix_bench::run_bin("fig8 gain sweep", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    // Lint the sweep before paying for extraction; the grid is derived
    // from the linted plan so the two cannot drift apart.
    let plan = checked_plan("fig8");
    let (f_min, f_max) = plan.sweep_band.ok_or("fig8 plan declares a sweep")?;

    let eval = try_shared_evaluator()?;
    let f_if = 5e6;
    // The paper sweeps 0.5–7 GHz.
    let step = 0.25e9;
    let freqs: Vec<f64> = ((f_min / step).round() as usize..=(f_max / step).round() as usize)
        .map(|k| step * k as f64)
        .collect();

    let active = eval.gain_vs_rf(MixerMode::Active, &freqs, f_if);
    let passive = eval.gain_vs_rf(MixerMode::Passive, &freqs, f_if);

    println!("Fig. 8 — conversion gain vs RF frequency (IF = 5 MHz)\n");
    println!(
        "{:>9} {:>12} {:>12}",
        "RF (GHz)", "active (dB)", "passive (dB)"
    );
    for i in 0..freqs.len() {
        println!(
            "{:>9.2} {:>12.2} {:>12.2}",
            freqs[i] / 1e9,
            active[i].1,
            passive[i].1
        );
    }

    println!();
    print!(
        "{}",
        ascii_plot(
            &[("active", &active), ("passive", &passive)],
            "CG (dB)",
            1e9,
            "GHz"
        )
    );

    for (mode, series) in [(MixerMode::Active, &active), (MixerMode::Passive, &passive)] {
        let g: Vec<f64> = series.iter().map(|p| p.1).collect();
        let f: Vec<f64> = series.iter().map(|p| p.0).collect();
        let peak = g.iter().cloned().fold(f64::MIN, f64::max);
        let (lo, hi) = band_edges_3db(&f, &g);
        println!(
            "\n{:<8} peak {:.1} dB, −3 dB band {} – {}",
            mode.label(),
            peak,
            lo.map(|v| format!("{:.2} GHz", v / 1e9))
                .unwrap_or("<0.25 GHz".into()),
            hi.map(|v| format!("{:.2} GHz", v / 1e9))
                .unwrap_or(">7 GHz".into()),
        );
    }
    println!("\npaper: active 29.2 dB over 1–5.5 GHz; passive 25.5 dB over 0.5–5.1 GHz");
    Ok(())
}
