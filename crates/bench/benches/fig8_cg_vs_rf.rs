//! Criterion bench for the Fig. 8 workload: the full conversion-gain-vs-RF
//! sweep (28 points, both modes) on the extracted behavioral model.

#![allow(clippy::unwrap_used, clippy::expect_used)] // bench harness: panicking on setup failure is the contract
use criterion::{criterion_group, criterion_main, Criterion};
use remix_bench::shared_evaluator;
use remix_core::MixerMode;
use std::hint::black_box;

fn bench_fig8(c: &mut Criterion) {
    let eval = shared_evaluator();
    let freqs: Vec<f64> = (1..=28).map(|k| 0.25e9 * k as f64).collect();
    c.bench_function("fig8_gain_vs_rf_both_modes", |b| {
        b.iter(|| {
            let a = eval.gain_vs_rf(MixerMode::Active, black_box(&freqs), 5e6);
            let p = eval.gain_vs_rf(MixerMode::Passive, black_box(&freqs), 5e6);
            black_box((a, p))
        })
    });
    c.bench_function("fig8_band_edges", |b| {
        b.iter(|| black_box(eval.band_edges(black_box(MixerMode::Active))))
    });
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
