//! Criterion bench for the Table I workload: producing both "This work"
//! columns (gain/NF/IIP3/P1dB/power/band edges) from the extracted model,
//! plus the full extraction itself.

#![allow(clippy::unwrap_used, clippy::expect_used)] // bench harness: panicking on setup failure is the contract
use criterion::{criterion_group, criterion_main, Criterion};
use remix_bench::shared_evaluator;
use remix_core::{model::ExtractedParams, MixerConfig, MixerMode};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let eval = shared_evaluator();
    c.bench_function("table1_both_rows", |b| {
        b.iter(|| {
            let a = eval.table1_row(MixerMode::Active);
            let p = eval.table1_row(MixerMode::Passive);
            black_box((a, p))
        })
    });
    let mut g = c.benchmark_group("extraction");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(8));
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.bench_function("full_device_extraction", |b| {
        b.iter(|| black_box(ExtractedParams::extract(black_box(&MixerConfig::default())).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
