//! Criterion bench for the Fig. 9 workload: NF and CG vs IF sweeps
//! (26 log-spaced points, both modes) including the flicker-corner search.

#![allow(clippy::unwrap_used, clippy::expect_used)] // bench harness: panicking on setup failure is the contract
use criterion::{criterion_group, criterion_main, Criterion};
use remix_bench::shared_evaluator;
use remix_core::MixerMode;
use std::hint::black_box;

fn bench_fig9(c: &mut Criterion) {
    let eval = shared_evaluator();
    let ifs: Vec<f64> = (0..=25).map(|k| 1e3 * 10f64.powf(k as f64 / 5.0)).collect();
    c.bench_function("fig9_nf_vs_if_both_modes", |b| {
        b.iter(|| {
            let a = eval.nf_vs_if(MixerMode::Active, black_box(&ifs));
            let p = eval.nf_vs_if(MixerMode::Passive, black_box(&ifs));
            black_box((a, p))
        })
    });
    c.bench_function("fig9_flicker_corner_search", |b| {
        b.iter(|| black_box(eval.model(MixerMode::Active).flicker_corner_hz()))
    });
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
