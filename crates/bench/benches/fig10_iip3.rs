//! Criterion bench for the Fig. 10 workload: one full two-tone power
//! sweep with coherent FFT readout and intercept extraction (the
//! heaviest behavioral measurement in the repository).

#![allow(clippy::unwrap_used, clippy::expect_used)] // bench harness: panicking on setup failure is the contract
use criterion::{criterion_group, criterion_main, Criterion};
use remix_bench::shared_evaluator;
use remix_core::MixerMode;
use std::hint::black_box;

fn bench_fig10(c: &mut Criterion) {
    let eval = shared_evaluator();
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(8));
    g.warm_up_time(std::time::Duration::from_secs(1));
    let pins: Vec<f64> = (0..6).map(|k| -45.0 + 4.0 * k as f64).collect();
    g.bench_function("two_tone_sweep_active", |b| {
        b.iter(|| {
            black_box(
                eval.iip3_two_tone(MixerMode::Active, black_box(&pins))
                    .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
