//! Criterion benches for the simulation substrate itself: the primitives
//! every figure regeneration leans on — sparse LU on an MNA-sized system,
//! a DC operating point of the full mixer netlist, one AC sweep point,
//! 1k transient steps, and a 64k-point FFT.

#![allow(clippy::unwrap_used, clippy::expect_used)] // bench harness: panicking on setup failure is the contract
use criterion::{criterion_group, criterion_main, Criterion};
use remix_analysis::{ac_sweep, dc_operating_point, transient, OpOptions, TranOptions};
use remix_core::mixer::{LoDrive, ReconfigurableMixer, RfDrive};
use remix_core::{MixerConfig, MixerMode};
use remix_numerics::{SparseLu, TripletMatrix};
use std::hint::black_box;

fn bench_substrate(c: &mut Criterion) {
    // Sparse LU on a 60-unknown MNA-shaped system.
    let n = 60;
    let mut t = TripletMatrix::new(n, n);
    let mut state = 0xABCDEFu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 32) as f64 / (1u64 << 31) as f64) - 1.0
    };
    for r in 0..n {
        t.push(r, r, 5.0 + next().abs());
        for _ in 0..3 {
            let ci = ((next().abs() * n as f64) as usize).min(n - 1);
            t.push(r, ci, next());
        }
    }
    let csr = t.to_csr();
    let b: Vec<f64> = (0..n).map(|_| next()).collect();
    c.bench_function("sparse_lu_factor_solve_60", |bch| {
        bch.iter(|| {
            let lu = SparseLu::factor(black_box(&csr)).unwrap();
            black_box(lu.solve(black_box(&b)).unwrap())
        })
    });

    // Full mixer DC operating point.
    let mixer = ReconfigurableMixer::new(MixerConfig::default());
    let (ckt, _) = mixer.build(MixerMode::Active, &RfDrive::Bias, &LoDrive::held(2.4e9));
    let mut g = c.benchmark_group("mixer_netlist");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(8));
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.bench_function("dc_operating_point_full_mixer", |bch| {
        bch.iter(|| black_box(dc_operating_point(black_box(&ckt), &OpOptions::default()).unwrap()))
    });
    let op = dc_operating_point(&ckt, &OpOptions::default()).unwrap();
    g.bench_function("ac_sweep_10pt_full_mixer", |bch| {
        let freqs: Vec<f64> = (1..=10).map(|k| k as f64 * 0.5e9).collect();
        bch.iter(|| black_box(ac_sweep(black_box(&ckt), &op, &freqs).unwrap()))
    });
    g.finish();

    // Transient: RC network for a clean step-rate number.
    let mut rc = remix_circuit::Circuit::new();
    let a = rc.node("a");
    let o = rc.node("o");
    rc.add_vsource(
        "v",
        a,
        remix_circuit::Circuit::gnd(),
        remix_circuit::Waveform::sine(0.5, 1e6),
    );
    rc.add_resistor("r", a, o, 1e3);
    rc.add_capacitor("c", o, remix_circuit::Circuit::gnd(), 1e-9);
    c.bench_function("transient_1000_steps_rc", |bch| {
        bch.iter(|| black_box(transient(black_box(&rc), &TranOptions::new(1e-6, 1e-9)).unwrap()))
    });

    // 64k FFT.
    let sig: Vec<f64> = (0..65536).map(|i| (i as f64 * 0.01).sin()).collect();
    c.bench_function("fft_real_64k", |bch| {
        bch.iter(|| black_box(remix_dsp::fft_real(black_box(&sig))))
    });
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
