//! The circuit netlist builder.

use crate::element::{Element, Mosfet};
use crate::mos::MosModel;
use crate::node::{ElementId, Node};
use crate::waveform::Waveform;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Structural problems detected by [`Circuit::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A node (other than ground) is referenced by fewer than two
    /// elements — it cannot carry a defined voltage.
    DanglingNode {
        /// Name of the offending node.
        node: String,
    },
    /// A node has no DC path to ground (only capacitors connect it), which
    /// makes the DC matrix singular without gmin.
    NoDcPath {
        /// Name of the offending node.
        node: String,
    },
    /// The circuit contains no elements.
    Empty,
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::DanglingNode { node } => {
                write!(f, "node '{node}' is connected to fewer than two elements")
            }
            CircuitError::NoDcPath { node } => {
                write!(f, "node '{node}' has no DC path to ground")
            }
            CircuitError::Empty => write!(f, "circuit contains no elements"),
        }
    }
}

impl Error for CircuitError {}

/// A circuit under construction: named nodes plus an ordered element list.
///
/// # Examples
///
/// ```
/// use remix_circuit::{Circuit, Waveform};
///
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("in");
/// let vout = ckt.node("out");
/// ckt.add_vsource("vin", vin, Circuit::gnd(), Waveform::Dc(1.0));
/// ckt.add_resistor("r1", vin, vout, 1e3);
/// ckt.add_resistor("r2", vout, Circuit::gnd(), 1e3);
/// assert_eq!(ckt.element_count(), 3);
/// ckt.validate().unwrap();
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    name_to_node: HashMap<String, Node>,
    elements: Vec<Element>,
    element_names: HashMap<String, ElementId>,
}

impl Circuit {
    /// Creates an empty circuit (ground pre-registered as node 0).
    pub fn new() -> Self {
        let mut c = Circuit {
            node_names: vec!["0".to_string()],
            name_to_node: HashMap::new(),
            elements: Vec::new(),
            element_names: HashMap::new(),
        };
        c.name_to_node.insert("0".to_string(), Node::GROUND);
        c
    }

    /// The ground node.
    pub const fn gnd() -> Node {
        Node::GROUND
    }

    /// Returns the node with the given name, creating it if needed.
    /// The names `"0"` and `"gnd"` refer to ground.
    pub fn node(&mut self, name: &str) -> Node {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Node::GROUND;
        }
        if let Some(&n) = self.name_to_node.get(name) {
            return n;
        }
        let n = Node(self.node_names.len());
        self.node_names.push(name.to_string());
        self.name_to_node.insert(name.to_string(), n);
        n
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<Node> {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Some(Node::GROUND);
        }
        self.name_to_node.get(name).copied()
    }

    /// Name of a node.
    pub fn node_name(&self, n: Node) -> &str {
        &self.node_names[n.0]
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of non-ground nodes (MNA voltage unknowns).
    pub fn unknown_node_count(&self) -> usize {
        self.node_names.len() - 1
    }

    /// The ordered element list.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Element by id.
    pub fn element(&self, id: ElementId) -> &Element {
        &self.elements[id.0]
    }

    /// Mutable element access (for reconfiguring values between analyses,
    /// e.g. flipping a mode-control voltage).
    pub fn element_mut(&mut self, id: ElementId) -> &mut Element {
        &mut self.elements[id.0]
    }

    /// Finds an element id by instance name.
    pub fn find_element(&self, name: &str) -> Option<ElementId> {
        self.element_names.get(name).copied()
    }

    fn push(&mut self, e: Element) -> ElementId {
        let name = e.name().to_string();
        assert!(
            !self.element_names.contains_key(&name),
            "duplicate element name '{name}'"
        );
        let id = ElementId(self.elements.len());
        self.elements.push(e);
        self.element_names.insert(name, id);
        id
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not positive and finite, or the name is a
    /// duplicate.
    pub fn add_resistor(&mut self, name: &str, a: Node, b: Node, r: f64) -> ElementId {
        assert!(r.is_finite() && r > 0.0, "resistance must be positive, got {r}");
        self.push(Element::Resistor {
            name: name.to_string(),
            a,
            b,
            r,
        })
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not positive and finite, or the name is a
    /// duplicate.
    pub fn add_capacitor(&mut self, name: &str, a: Node, b: Node, c: f64) -> ElementId {
        assert!(c.is_finite() && c > 0.0, "capacitance must be positive, got {c}");
        self.push(Element::Capacitor {
            name: name.to_string(),
            a,
            b,
            c,
        })
    }

    /// Adds an inductor.
    ///
    /// # Panics
    ///
    /// Panics if `l` is not positive and finite, or the name is a
    /// duplicate.
    pub fn add_inductor(&mut self, name: &str, a: Node, b: Node, l: f64) -> ElementId {
        assert!(l.is_finite() && l > 0.0, "inductance must be positive, got {l}");
        self.push(Element::Inductor {
            name: name.to_string(),
            a,
            b,
            l,
        })
    }

    /// Adds a voltage source with no AC component.
    pub fn add_vsource(&mut self, name: &str, p: Node, n: Node, wave: Waveform) -> ElementId {
        self.push(Element::VoltageSource {
            name: name.to_string(),
            p,
            n,
            wave,
            ac_mag: 0.0,
            ac_phase: 0.0,
        })
    }

    /// Adds a voltage source that also drives small-signal analyses with
    /// the given AC magnitude/phase.
    pub fn add_vsource_ac(
        &mut self,
        name: &str,
        p: Node,
        n: Node,
        wave: Waveform,
        ac_mag: f64,
        ac_phase: f64,
    ) -> ElementId {
        self.push(Element::VoltageSource {
            name: name.to_string(),
            p,
            n,
            wave,
            ac_mag,
            ac_phase,
        })
    }

    /// Adds a current source (current flows `p → n` through the source).
    pub fn add_isource(&mut self, name: &str, p: Node, n: Node, wave: Waveform) -> ElementId {
        self.push(Element::CurrentSource {
            name: name.to_string(),
            p,
            n,
            wave,
            ac_mag: 0.0,
        })
    }

    /// Adds a current source with an AC magnitude (used by noise transfer
    /// solves).
    pub fn add_isource_ac(
        &mut self,
        name: &str,
        p: Node,
        n: Node,
        wave: Waveform,
        ac_mag: f64,
    ) -> ElementId {
        self.push(Element::CurrentSource {
            name: name.to_string(),
            p,
            n,
            wave,
            ac_mag,
        })
    }

    /// Adds a voltage-controlled current source.
    ///
    /// # Panics
    ///
    /// Panics if `gm` is not finite.
    pub fn add_vccs(
        &mut self,
        name: &str,
        p: Node,
        n: Node,
        cp: Node,
        cn: Node,
        gm: f64,
    ) -> ElementId {
        assert!(gm.is_finite(), "gm must be finite");
        self.push(Element::Vccs {
            name: name.to_string(),
            p,
            n,
            cp,
            cn,
            gm,
        })
    }

    /// Adds a voltage-controlled voltage source.
    ///
    /// # Panics
    ///
    /// Panics if `gain` is not finite.
    pub fn add_vcvs(
        &mut self,
        name: &str,
        p: Node,
        n: Node,
        cp: Node,
        cn: Node,
        gain: f64,
    ) -> ElementId {
        assert!(gain.is_finite(), "gain must be finite");
        self.push(Element::Vcvs {
            name: name.to_string(),
            p,
            n,
            cp,
            cn,
            gain,
        })
    }

    /// Adds a MOSFET.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `l` is not positive and finite.
    #[allow(clippy::too_many_arguments)]
    pub fn add_mosfet(
        &mut self,
        name: &str,
        model: MosModel,
        w: f64,
        l: f64,
        d: Node,
        g: Node,
        s: Node,
        b: Node,
    ) -> ElementId {
        assert!(w.is_finite() && w > 0.0, "width must be positive");
        assert!(l.is_finite() && l > 0.0, "length must be positive");
        self.push(Element::Mos {
            name: name.to_string(),
            dev: Mosfet {
                model,
                w,
                l,
                d,
                g,
                s,
                b,
            },
        })
    }

    /// Structural validation: dangling nodes and missing DC paths.
    ///
    /// # Errors
    ///
    /// Returns the first [`CircuitError`] found.
    pub fn validate(&self) -> Result<(), CircuitError> {
        if self.elements.is_empty() {
            return Err(CircuitError::Empty);
        }
        let n = self.node_count();
        let mut touch_count = vec![0usize; n];
        for e in &self.elements {
            for node in e.nodes() {
                touch_count[node.0] += 1;
            }
        }
        for (i, &cnt) in touch_count.iter().enumerate().skip(1) {
            if cnt < 2 {
                return Err(CircuitError::DanglingNode {
                    node: self.node_names[i].clone(),
                });
            }
        }
        // DC-path check: union-find over elements that conduct DC.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for e in &self.elements {
            if !e.provides_dc_path() {
                continue;
            }
            let nodes = e.nodes();
            for w in nodes.windows(2) {
                let (ra, rb) = (find(&mut parent, w[0].0), find(&mut parent, w[1].0));
                if ra != rb {
                    parent[ra] = rb;
                }
            }
        }
        let ground_root = find(&mut parent, 0);
        for i in 1..n {
            if find(&mut parent, i) != ground_root {
                return Err(CircuitError::NoDcPath {
                    node: self.node_names[i].clone(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit: {} nodes, {} elements",
            self.node_count(),
            self.element_count()
        )?;
        for e in &self.elements {
            let nodes: Vec<String> = e.nodes().iter().map(|n| self.node_name(*n).to_string()).collect();
            writeln!(f, "  {} ({})", e.name(), nodes.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_creation_and_lookup() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let a2 = c.node("a");
        assert_eq!(a, a2);
        assert_eq!(c.node("gnd"), Node::GROUND);
        assert_eq!(c.node("0"), Node::GROUND);
        assert_eq!(c.find_node("a"), Some(a));
        assert_eq!(c.find_node("missing"), None);
        assert_eq!(c.node_name(a), "a");
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.unknown_node_count(), 1);
    }

    #[test]
    fn voltage_divider_builds() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.add_vsource("v1", vin, Circuit::gnd(), Waveform::Dc(1.0));
        c.add_resistor("r1", vin, out, 1e3);
        c.add_resistor("r2", out, Circuit::gnd(), 1e3);
        assert!(c.validate().is_ok());
        assert_eq!(c.element_count(), 3);
        assert!(c.find_element("r1").is_some());
        assert!(c.find_element("zz").is_none());
    }

    #[test]
    fn empty_circuit_invalid() {
        assert_eq!(Circuit::new().validate(), Err(CircuitError::Empty));
    }

    #[test]
    fn dangling_node_detected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_resistor("r1", a, b, 1.0);
        c.add_vsource("v1", a, Circuit::gnd(), Waveform::Dc(1.0));
        // b touches only r1.
        match c.validate() {
            Err(CircuitError::DanglingNode { node }) => assert_eq!(node, "b"),
            other => panic!("expected dangling node, got {other:?}"),
        }
    }

    #[test]
    fn no_dc_path_detected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("v1", a, Circuit::gnd(), Waveform::Dc(1.0));
        c.add_capacitor("c1", a, b, 1e-12);
        c.add_resistor("r1", b, b, 1.0); // self-loop keeps b "touched" twice
        match c.validate() {
            Err(CircuitError::NoDcPath { node }) => assert_eq!(node, "b"),
            other => panic!("expected no-dc-path, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "duplicate element name")]
    fn duplicate_names_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor("r1", a, Circuit::gnd(), 1.0);
        c.add_resistor("r1", a, Circuit::gnd(), 2.0);
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn negative_resistance_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor("r1", a, Circuit::gnd(), -1.0);
    }

    #[test]
    fn element_mutation() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let id = c.add_vsource("v1", a, Circuit::gnd(), Waveform::Dc(0.0));
        if let Element::VoltageSource { wave, .. } = c.element_mut(id) {
            *wave = Waveform::Dc(1.2);
        }
        if let Element::VoltageSource { wave, .. } = c.element(id) {
            assert_eq!(wave.dc_value(), 1.2);
        } else {
            panic!("wrong element type");
        }
    }

    #[test]
    fn display_lists_elements() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor("rload", a, Circuit::gnd(), 50.0);
        let s = c.to_string();
        assert!(s.contains("rload"));
        assert!(s.contains("2 nodes"));
    }

    #[test]
    fn mosfet_addition() {
        let mut c = Circuit::new();
        let d = c.node("d");
        let g = c.node("g");
        c.add_mosfet(
            "m1",
            MosModel::nmos_65nm(),
            10e-6,
            65e-9,
            d,
            g,
            Circuit::gnd(),
            Circuit::gnd(),
        );
        assert_eq!(c.element_count(), 1);
    }
}
